//! Zero-overhead smoke test for disabled tracing: the per-callsite cost of
//! a *disabled* `span!` times the number of callsite hits a real flow run
//! makes must stay under 2% of that flow run's wall time.
//!
//! Deliberately not a wall-clock A/B of two flow runs — at the measured
//! nanoseconds-per-callsite, run-to-run scheduler noise dwarfs the
//! difference and the comparison flakes. Instead: measure the disabled
//! callsite cost `c` on a tight loop (stable to measure, it is the whole
//! fast path), count the callsite hits `r` of one traced run (its record
//! count is a conservative over-count: spans produce two records per hit),
//! and assert `c * r < 2%` of the untraced run's wall time.

use bmbe_designs::all_designs;
use bmbe_flow::{run_control_flow, FlowOptions};
use bmbe_gates::Library;
use std::hint::black_box;
use std::time::Instant;

#[test]
fn disabled_tracing_costs_under_two_percent_of_a_flow_run() {
    let library = Library::cmos035();
    let designs = all_designs().expect("shipped designs build");
    let design = designs
        .iter()
        .find(|d| d.name == "Stack")
        .expect("Stack benchmark design");

    // Per-callsite cost of the disabled fast path (one relaxed atomic load
    // plus a thread-local flag read), amortized over a tight loop.
    bmbe_obs::set_enabled(false);
    const CALLS: u32 = 1_000_000;
    let start = Instant::now();
    for i in 0..CALLS {
        let _g = bmbe_obs::span!("test.overhead_probe");
        black_box(i);
    }
    let per_callsite = start.elapsed() / CALLS;

    // Callsite hits of one real (cold-cache) flow run, counted by tracing
    // it. Record count over-counts hits: every span contributes two
    // records, so the budget below is conservative.
    drop(bmbe_obs::flush());
    bmbe_obs::set_enabled(true);
    run_control_flow(&design.compiled, &FlowOptions::optimized(), &library)
        .expect("traced flow");
    bmbe_obs::set_enabled(false);
    let hits = bmbe_obs::flush().events.len() as u32;
    assert!(hits > 0, "traced flow must record spans");

    // Wall time of the same run untraced (median of three).
    let mut walls: Vec<_> = (0..3)
        .map(|_| {
            let start = Instant::now();
            black_box(
                run_control_flow(&design.compiled, &FlowOptions::optimized(), &library)
                    .expect("untraced flow"),
            );
            start.elapsed()
        })
        .collect();
    walls.sort();
    let wall = walls[1];

    let budget = wall.mul_f64(0.02);
    let cost = per_callsite * hits;
    assert!(
        cost < budget,
        "disabled-tracing cost {cost:?} ({hits} callsite hits x {per_callsite:?}) exceeds 2% \
         of the flow's {wall:?} wall time ({budget:?})"
    );
}
