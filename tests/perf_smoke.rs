//! Performance smoke test: the warm-cache optimized flow over all four
//! benchmark designs must finish well inside a generous wall-clock bound.
//! This is not a benchmark — the bound is an order of magnitude above the
//! measured time (milliseconds on release builds) — it exists to catch
//! catastrophic regressions (an accidental exponential path, a lost cache)
//! in ordinary `cargo test` runs.

use bmbe_designs::all_designs;
use bmbe_flow::{run_control_flow_with, ControllerCache, FlowOptions, PhaseProfile};
use bmbe_gates::Library;
use std::time::{Duration, Instant};

#[test]
fn warm_cache_full_flow_stays_within_wall_clock_bound() {
    // Debug builds are roughly an order of magnitude slower; stay generous
    // in both profiles so a loaded CI host never flakes.
    let bound = if cfg!(debug_assertions) {
        Duration::from_secs(300)
    } else {
        Duration::from_secs(60)
    };
    let library = Library::cmos035();
    let designs = all_designs().expect("shipped designs build");
    let cache = ControllerCache::new();
    // Cold pass populates the cache; the timed pass must then hit on every
    // controller of every design.
    for design in &designs {
        run_control_flow_with(
            &design.compiled,
            &FlowOptions::optimized(),
            &library,
            &cache,
        )
        .unwrap_or_else(|e| panic!("{} cold: {e}", design.name));
    }
    let start = Instant::now();
    let mut phases = PhaseProfile::default();
    for design in &designs {
        let result = run_control_flow_with(
            &design.compiled,
            &FlowOptions::optimized(),
            &library,
            &cache,
        )
        .unwrap_or_else(|e| panic!("{} warm: {e}", design.name));
        assert_eq!(
            result.cache_misses, 0,
            "{}: warm run must not re-synthesize",
            design.name
        );
        phases.accumulate(&result.phases);
    }
    let elapsed = start.elapsed();
    assert!(
        elapsed < bound,
        "warm-cache flow over all designs took {elapsed:?} (bound {bound:?}); \
         phase totals: {phases:?}"
    );
    // Warm runs serve every shape from the cache, so no synthesis phase
    // time may be re-spent.
    assert_eq!(
        phases.shapes, 0,
        "warm runs must not re-run the per-shape chain"
    );
}

/// The cached cold flow on a 2-shape design with no dedup (the clustered
/// Stack) must stay within noise of the serial uncached flow: its misses
/// run inline (see `fanout_budget` — one long pole means no fan-out), so
/// the only extra work is keying and instantiation, which is microseconds
/// against a multi-millisecond flow. The generous margin absorbs loaded-CI
/// noise; what this pins is the *absence* of a fan-out or bookkeeping
/// penalty on small designs (the BENCH_flow.json Stack regression).
#[test]
fn stack_cached_cold_flow_is_not_slower_than_serial() {
    let library = Library::cmos035();
    let designs = all_designs().expect("shipped designs build");
    let stack = designs
        .iter()
        .find(|d| d.name == "Stack")
        .expect("Stack benchmark present");
    let serial_options = FlowOptions::optimized().serial_uncached();
    let mut cached_options = FlowOptions::optimized();
    cached_options.threads = Some(1);
    let mut serial_samples = Vec::new();
    let mut cached_samples = Vec::new();
    // Interleave the two sides so drift on a loaded host biases both
    // equally; compare medians, which shrug off stray slow samples.
    for _ in 0..9 {
        let start = Instant::now();
        run_control_flow_with(&stack.compiled, &serial_options, &library, &ControllerCache::new())
            .expect("serial flow");
        serial_samples.push(start.elapsed());
        let start = Instant::now();
        run_control_flow_with(&stack.compiled, &cached_options, &library, &ControllerCache::new())
            .expect("cached flow");
        cached_samples.push(start.elapsed());
    }
    serial_samples.sort();
    cached_samples.sort();
    let serial = serial_samples[serial_samples.len() / 2];
    let cached = cached_samples[cached_samples.len() / 2];
    assert!(
        cached <= serial.mul_f64(1.35) + Duration::from_millis(2),
        "cached cold Stack flow (median {cached:?}) regressed past serial (median {serial:?})"
    );
}
