//! Performance smoke test: the warm-cache optimized flow over all four
//! benchmark designs must finish well inside a generous wall-clock bound.
//! This is not a benchmark — the bound is an order of magnitude above the
//! measured time (milliseconds on release builds) — it exists to catch
//! catastrophic regressions (an accidental exponential path, a lost cache)
//! in ordinary `cargo test` runs.

use bmbe_designs::all_designs;
use bmbe_flow::{run_control_flow_with, ControllerCache, FlowOptions, PhaseProfile};
use bmbe_gates::Library;
use std::time::{Duration, Instant};

#[test]
fn warm_cache_full_flow_stays_within_wall_clock_bound() {
    // Debug builds are roughly an order of magnitude slower; stay generous
    // in both profiles so a loaded CI host never flakes.
    let bound = if cfg!(debug_assertions) {
        Duration::from_secs(300)
    } else {
        Duration::from_secs(60)
    };
    let library = Library::cmos035();
    let designs = all_designs().expect("shipped designs build");
    let cache = ControllerCache::new();
    // Cold pass populates the cache; the timed pass must then hit on every
    // controller of every design.
    for design in &designs {
        run_control_flow_with(
            &design.compiled,
            &FlowOptions::optimized(),
            &library,
            &cache,
        )
        .unwrap_or_else(|e| panic!("{} cold: {e}", design.name));
    }
    let start = Instant::now();
    let mut phases = PhaseProfile::default();
    for design in &designs {
        let result = run_control_flow_with(
            &design.compiled,
            &FlowOptions::optimized(),
            &library,
            &cache,
        )
        .unwrap_or_else(|e| panic!("{} warm: {e}", design.name));
        assert_eq!(
            result.cache_misses, 0,
            "{}: warm run must not re-synthesize",
            design.name
        );
        phases.accumulate(&result.phases);
    }
    let elapsed = start.elapsed();
    assert!(
        elapsed < bound,
        "warm-cache flow over all designs took {elapsed:?} (bound {bound:?}); \
         phase totals: {phases:?}"
    );
    // Warm runs serve every shape from the cache, so no synthesis phase
    // time may be re-spent.
    assert_eq!(
        phases.shapes, 0,
        "warm runs must not re-run the per-shape chain"
    );
}
