//! End-to-end integration tests: every benchmark design through the full
//! flow with functional checks, plus the §4.3 verification experiment.

use bmbe::core::opt::verify::{run_acr_experiment, AcrVerdict};
use bmbe::designs::all_designs;
use bmbe::flow::{run_design, BenchError};
use bmbe::gates::Library;
use bmbe::sim::prims::Delays;

#[test]
fn all_four_benchmarks_run_and_check() {
    let library = Library::cmos035();
    let delays = Delays::default();
    for design in all_designs().unwrap() {
        let comparison = run_design(&design, &library, &delays)
            .unwrap_or_else(|e: BenchError| panic!("{}: {e}", design.name));
        assert!(
            comparison.speed_improvement() > 0.0,
            "{}: optimized must be faster ({comparison})",
            design.name
        );
        assert!(
            comparison.area_overhead() > 0.0,
            "{}: the paper's area overhead must reproduce ({comparison})",
            design.name
        );
    }
}

#[test]
fn improvement_extremes_match_paper() {
    // The paper's gradient: the control-dominated systolic counter gains
    // the most; the datapath-dominated microprocessor core the least.
    let library = Library::cmos035();
    let delays = Delays::default();
    let designs = all_designs().unwrap();
    let improvements: Vec<(String, f64)> = designs
        .iter()
        .map(|d| {
            let c = run_design(d, &library, &delays).unwrap_or_else(|e| panic!("{}: {e}", d.name));
            (d.name.to_string(), c.speed_improvement())
        })
        .collect();
    let counter = improvements[0].1;
    let cpu = improvements[3].1;
    for (name, impr) in &improvements {
        assert!(
            counter >= *impr,
            "counter ({counter:.1}%) must gain the most, {name} got {impr:.1}%"
        );
        assert!(
            cpu <= *impr,
            "cpu ({cpu:.1}%) must gain the least, {name} got {impr:.1}%"
        );
    }
}

#[test]
fn section_4_3_verification_experiment() {
    let rows = run_acr_experiment().unwrap();
    assert!(rows.len() >= 9, "all legal operator pairs covered");
    assert!(
        rows.iter().all(|r| !r.verdict.is_mismatch()),
        "activation channel removal must be behaviour preserving: {rows:?}"
    );
    assert!(
        rows.iter().any(|r| r.verdict == AcrVerdict::Equivalent),
        "at least the enclosure merges verify"
    );
}
