//! Integration tests pinning the paper's figures and tables: Fig. 3/4/5
//! state counts, Table 1 legality, and Table 2 expansions, exercised
//! through the public API of the umbrella crate.

use bmbe::core::ast::{legal, ChActivity, ChExpr, InterleaveOp};
use bmbe::core::compile::compile_to_bm;
use bmbe::core::components::{call, decision_wait, passivator, sequencer};
use bmbe::core::expand::expand;
use bmbe::core::opt::acr::activation_channel_removal;
use bmbe::core::opt::cluster::{ClusterOptions, CtrlNetlist};
use bmbe::core::parse::parse_ch;

fn names(v: &[&str]) -> Vec<String> {
    v.iter().map(|s| s.to_string()).collect()
}

#[test]
fn fig3_state_counts() {
    let cases: Vec<(&str, ChExpr, usize)> = vec![
        ("sequencer", sequencer("p", &names(&["a1", "a2"])), 6),
        ("call", call(&names(&["a1", "a2"]), "b"), 7),
        ("passivator", passivator("a", "b"), 2),
    ];
    for (name, program, states) in cases {
        let spec = compile_to_bm(name, &program).unwrap();
        assert_eq!(spec.num_states(), states, "{name}");
    }
}

#[test]
fn fig4_activation_channel_removal() {
    let dw = decision_wait("a1", &names(&["i1", "i2"]), &names(&["o1", "o2"]));
    let seq = sequencer("o2", &names(&["c1", "c2"]));
    let merged = activation_channel_removal(&dw, &seq, "o2", None).unwrap();
    let spec = compile_to_bm("merged", &merged).unwrap();
    assert_eq!(spec.num_states(), 11);
}

#[test]
fn fig5_call_distribution() {
    let mut netlist = CtrlNetlist::new();
    netlist.add("seq", sequencer("a", &names(&["b1", "b2"])));
    netlist.add("call", call(&names(&["b1", "b2"]), "c"));
    let report = netlist.t2_clustering(&ClusterOptions::default());
    assert_eq!(report.distributed_calls.len(), 1);
    assert_eq!(netlist.components.len(), 1);
    let spec = compile_to_bm("result", &netlist.components[0].program).unwrap();
    assert_eq!(spec.num_states(), 6);
}

#[test]
fn table1_row_count_and_totals() {
    use ChActivity::{Active, Passive};
    // The paper's Table 1 has 24 cells, 13 "yes" (3+2+3+3+1+1).
    let mut yes = 0;
    for op in InterleaveOp::ALL {
        for a in [Active, Passive] {
            for b in [Active, Passive] {
                if legal(op, a, b) {
                    yes += 1;
                }
            }
        }
    }
    assert_eq!(yes, 13);
}

#[test]
fn table2_enc_early_passive_active() {
    // The expansion shown in §3 of the paper.
    let e = parse_ch("(enc-early (p-to-p passive a) (p-to-p active b))").unwrap();
    let x = expand(&e).unwrap();
    assert_eq!(
        x.to_string(),
        "[(i a_r +) (o b_r +) (i b_a +) (o b_r -) (i b_a -)][(o a_a +)][(i a_r -)][(o a_a -)]"
    );
}

#[test]
fn paper_text_examples_parse() {
    // Every CH program printed verbatim in the paper parses and compiles.
    let texts = [
        "(rep (enc-early (p-to-p passive P) (seq (p-to-p active A1) (p-to-p active A2))))",
        "(rep (mutex (enc-early (p-to-p passive A1) (p-to-p active B)) \
                     (enc-early (p-to-p passive A2) (p-to-p active B))))",
        "(rep (enc-middle (p-to-p passive A) (p-to-p passive B)))",
        "(rep (enc-early (p-to-p passive a1) (mutex \
            (enc-early (p-to-p passive i1) (p-to-p active o1)) \
            (enc-early (p-to-p passive i2) (p-to-p active o2)))))",
        "(rep (enc-early (p-to-p passive o2) (seq (p-to-p active c1) (p-to-p active c2))))",
        "(rep (enc-early (p-to-p passive a) (seq (enc-early void (p-to-p active c)) \
            (enc-early void (p-to-p active c)))))",
    ];
    for text in texts {
        let program = parse_ch(text).unwrap_or_else(|e| panic!("{text}: {e}"));
        compile_to_bm("t", &program).unwrap_or_else(|e| panic!("{text}: {e}"));
    }
}
