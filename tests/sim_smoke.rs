//! Simulation smoke test: every benchmark scenario must run on the
//! event-wheel scheduler well inside a generous wall-clock bound, and must
//! reproduce the heap oracle's outcome exactly. Like `perf_smoke`, this is
//! not a benchmark — the bound is an order of magnitude above the measured
//! time — it catches catastrophic scheduler regressions in ordinary
//! `cargo test` runs.

use bmbe_designs::all_designs;
use bmbe_flow::{
    run_control_flow_with, simulate_with, to_flow_scenario, ControllerCache, FlowOptions,
};
use bmbe_gates::Library;
use bmbe_sim::prims::Delays;
use bmbe_sim::SchedulerKind;
use std::time::{Duration, Instant};

#[test]
fn wheel_scheduler_runs_all_scenarios_within_wall_clock_bound() {
    let bound = if cfg!(debug_assertions) {
        Duration::from_secs(300)
    } else {
        Duration::from_secs(60)
    };
    let library = Library::cmos035();
    let delays = Delays::default();
    let designs = all_designs().expect("shipped designs build");
    let cache = ControllerCache::new();
    let flows: Vec<_> = designs
        .iter()
        .map(|design| {
            (
                design,
                to_flow_scenario(&design.scenario),
                run_control_flow_with(
                    &design.compiled,
                    &FlowOptions::optimized(),
                    &library,
                    &cache,
                )
                .unwrap_or_else(|e| panic!("{} flow: {e}", design.name)),
            )
        })
        .collect();

    // The timed pass: every scenario on the production wheel scheduler.
    let start = Instant::now();
    let mut wheel_runs = Vec::new();
    for (design, scenario, flow) in &flows {
        let run = simulate_with(
            &design.compiled,
            flow,
            scenario,
            &delays,
            SchedulerKind::Wheel,
        )
        .unwrap_or_else(|e| panic!("{} wheel sim: {e}", design.name));
        assert!(
            run.completed,
            "{}: wheel run did not complete (reached {} ns after {} events)",
            design.name, run.time_ns, run.events
        );
        assert_eq!(run.stats.scheduler, SchedulerKind::Wheel);
        assert!(
            run.stats.peak_queue_depth > 0,
            "{}: a completed run must have queued events",
            design.name
        );
        wheel_runs.push(run);
    }
    let elapsed = start.elapsed();
    assert!(
        elapsed < bound,
        "wheel simulation of all scenarios took {elapsed:?} (bound {bound:?})"
    );

    // Differential pass: the heap oracle must agree on every observable of
    // every design (events, end time, outputs, sync counts, memories).
    for ((design, scenario, flow), wheel_run) in flows.iter().zip(&wheel_runs) {
        let heap_run = simulate_with(
            &design.compiled,
            flow,
            scenario,
            &delays,
            SchedulerKind::Heap,
        )
        .unwrap_or_else(|e| panic!("{} heap sim: {e}", design.name));
        assert!(
            wheel_run.same_result(&heap_run),
            "{}: wheel and heap schedulers disagree",
            design.name
        );
    }
}
