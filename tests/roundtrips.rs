//! Cross-crate round-trip tests: every standard component's Burst-Mode
//! machine survives the `.bms` text format, renders to Graphviz, and its CH
//! program survives the concrete syntax.

use bmbe::bm::text::{from_bms, to_bms, to_dot};
use bmbe::core::compile::compile_to_bm;
use bmbe::core::components;
use bmbe::core::parse::{parse_ch, print_ch};

fn names(v: &[&str]) -> Vec<String> {
    v.iter().map(|s| s.to_string()).collect()
}

fn standard_components() -> Vec<(&'static str, bmbe::core::ast::ChExpr)> {
    vec![
        ("sequencer", components::sequencer("p", &names(&["a", "b"]))),
        ("concur", components::concur("p", &names(&["a", "b"]))),
        ("call", components::call(&names(&["x", "y"]), "z")),
        ("passivator", components::passivator("a", "b")),
        ("sync3", components::sync(&names(&["a", "b", "c"]))),
        (
            "dw",
            components::decision_wait("p", &names(&["i1", "i2"]), &names(&["o1", "o2"])),
        ),
        ("loop", components::loop_forever("a", "b")),
        ("xfer", components::transferrer("a", "pl", "ps")),
        ("case", components::case("a", "s", &names(&["b0", "b1"]))),
        ("while", components::while_loop("a", "g", "b")),
    ]
}

#[test]
fn bms_text_roundtrip_for_all_standard_components() {
    for (name, program) in standard_components() {
        let spec = compile_to_bm(name, &program).unwrap_or_else(|e| panic!("{name}: {e}"));
        let text = to_bms(&spec);
        let back = from_bms(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(back.num_states(), spec.num_states(), "{name}");
        assert_eq!(back.arcs().len(), spec.arcs().len(), "{name}");
        assert_eq!(to_bms(&back), text, "{name}: second serialization differs");
    }
}

#[test]
fn dot_output_is_well_formed() {
    for (name, program) in standard_components() {
        let spec = compile_to_bm(name, &program).unwrap();
        let dot = to_dot(&spec);
        assert!(dot.starts_with("digraph"), "{name}");
        assert!(dot.ends_with("}\n"), "{name}");
        assert_eq!(dot.matches("->").count(), spec.arcs().len(), "{name}");
    }
}

#[test]
fn ch_concrete_syntax_roundtrip_for_all_standard_components() {
    for (name, program) in standard_components() {
        let text = print_ch(&program);
        let back = parse_ch(&text).unwrap_or_else(|e| panic!("{name}: {text}: {e}"));
        assert_eq!(back, program, "{name}");
        // And the reparsed program compiles to the identical machine.
        let a = compile_to_bm(name, &program).unwrap();
        let b = compile_to_bm(name, &back).unwrap();
        assert_eq!(to_bms(&a), to_bms(&b), "{name}");
    }
}

#[test]
fn verb_channel_joins_the_pipeline() {
    // A verb channel spliced into a sequencer-like program compiles and
    // synthesizes like its p-to-p equivalent.
    let with_verb = parse_ch(
        "(rep (enc-early (p-to-p passive p)
              (seq (verb v ((o v_r +)) ((i v_a +)) ((o v_r -)) ((i v_a -)))
                   (p-to-p active w))))",
    )
    .expect("parses");
    let plain = parse_ch(
        "(rep (enc-early (p-to-p passive p)
              (seq (p-to-p active v) (p-to-p active w))))",
    )
    .expect("parses");
    let a = compile_to_bm("verb", &with_verb).expect("compiles");
    let b = compile_to_bm("plain", &plain).expect("compiles");
    assert_eq!(a.num_states(), b.num_states());
    let ctrl =
        bmbe::bm::synth::synthesize(&a, bmbe::bm::synth::MinimizeMode::Speed).expect("synthesizes");
    ctrl.verify_ternary().expect("hazard-free");
}
