//! The paper's §4.1/§4.2 clustering examples, end to end: Activation
//! Channel Removal on the decision-wait + sequencer pair (Fig. 4), and Call
//! Distribution on the sequencer + call pair (Fig. 5), each verified by
//! trace-theory conformance (§4.3).
//!
//! ```text
//! cargo run --example clustering
//! ```

use bmbe::core::compile::compile_to_bm;
use bmbe::core::components::{call, decision_wait, sequencer};
use bmbe::core::opt::acr::activation_channel_removal;
use bmbe::core::opt::cluster::{ClusterOptions, CtrlNetlist};
use bmbe::core::opt::verify::verify_acr;
use bmbe::core::parse::print_ch;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Fig. 4: Activation Channel Removal -----------------------------
    let dw = decision_wait(
        "a1",
        &["i1".into(), "i2".into()],
        &["o1".into(), "o2".into()],
    );
    let seq = sequencer("o2", &["c1".into(), "c2".into()]);
    println!("decision-wait: {}", print_ch(&dw));
    println!("sequencer:     {}", print_ch(&seq));

    let merged = activation_channel_removal(&dw, &seq, "o2", None)
        .map_err(|e| format!("merge failed: {e}"))?;
    println!("merged:        {}", print_ch(&merged));
    let spec = compile_to_bm("merged", &merged)?;
    println!(
        "merged machine: {} states (Fig. 4 shows 11)",
        spec.num_states()
    );

    // §4.3-style verification: compose + hide must equal the merged program.
    let verdict = verify_acr(&dw, &seq, "o2")?;
    println!("trace-theory verdict: {verdict}");
    println!();

    // --- Fig. 5: Call Distribution ---------------------------------------
    let mut netlist = CtrlNetlist::new();
    netlist.add("seq", sequencer("a", &["b1".into(), "b2".into()]));
    netlist.add("call", call(&["b1".into(), "b2".into()], "c"));
    let report = netlist.t2_clustering(&ClusterOptions::default());
    println!("call distribution: {report}");
    let result = &netlist.components[0];
    println!("result:        {}", print_ch(&result.program));
    let spec = compile_to_bm("result", &result.program)?;
    println!(
        "result machine: {} states (Fig. 5 shows 6)",
        spec.num_states()
    );
    Ok(())
}
