//! Quickstart: model a handshake controller in CH, compile it to a
//! Burst-Mode machine, synthesize hazard-free two-level logic, and
//! technology-map it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use bmbe::bm::synth::{synthesize, MinimizeMode};
use bmbe::bm::text::{to_bms, to_dot};
use bmbe::core::compile::compile_to_bm;
use bmbe::core::parse::parse_ch;
use bmbe::gates::{map, Library, MapObjective, MapStyle, SubjectGraph};
use bmbe::logic::Cover;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The paper's sequencer, in CH concrete syntax (§3.4).
    let ch = parse_ch(
        "(rep (enc-early (p-to-p passive p)
                         (seq (p-to-p active a1) (p-to-p active a2))))",
    )?;

    // 2. CH -> Burst-Mode (Fig. 3: six states).
    let spec = compile_to_bm("sequencer", &ch)?;
    println!("=== Burst-Mode specification ===");
    print!("{}", to_bms(&spec));
    println!();

    // 3. Minimalist-equivalent synthesis: hazard-free two-level logic.
    let ctrl = synthesize(&spec, MinimizeMode::Speed)?;
    ctrl.verify_ternary()
        .map_err(|e| format!("hazard found: {e}"))?;
    println!("=== Synthesized controller ===");
    println!(
        "{} inputs, {} outputs, {} state bits, {} products, {} literals",
        ctrl.inputs.len(),
        ctrl.outputs.len(),
        ctrl.num_state_bits,
        ctrl.num_products(),
        ctrl.num_literals()
    );
    for (name, cover) in ctrl.outputs.iter().zip(&ctrl.output_covers) {
        println!("  {name} = {cover}");
    }
    println!();

    // 4. Technology mapping (the paper's split-module style).
    let functions: Vec<(String, &Cover)> = ctrl
        .outputs
        .iter()
        .cloned()
        .chain((0..ctrl.num_state_bits).map(|j| format!("y{j}")))
        .zip(
            ctrl.output_covers
                .iter()
                .chain(ctrl.next_state_covers.iter()),
        )
        .collect();
    let subject = SubjectGraph::from_covers(ctrl.num_vars(), &functions);
    let mapped = map(
        &subject,
        &Library::cmos035(),
        MapObjective::Delay,
        MapStyle::SplitModules,
    );
    let violations = bmbe::gates::verify_mapped(&ctrl, &mapped);
    println!("=== Technology mapped ===");
    println!(
        "{} cells, {:.0} um^2, {:.3} ns critical path, {} hazard violations",
        mapped.num_cells(),
        mapped.area,
        mapped.critical_delay(),
        violations.len()
    );
    println!();
    println!("=== Graphviz (paste into dot) ===");
    print!("{}", to_dot(&spec));
    Ok(())
}
