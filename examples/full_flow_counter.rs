//! The complete Fig. 1 flow on the systolic counter: mini-Balsa source →
//! handshake components → control/datapath split → CH → clustering →
//! Burst-Mode synthesis → technology mapping → simulation, unoptimized vs
//! optimized.
//!
//! ```text
//! cargo run --release --example full_flow_counter
//! ```

use bmbe::designs::scenarios::systolic_counter;
use bmbe::flow::{run_control_flow, run_design, FlowOptions};
use bmbe::gates::Library;
use bmbe::sim::prims::Delays;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = systolic_counter()?;
    println!("--- mini-Balsa source ---------------------------------------");
    println!("{}", design.source);
    println!();
    println!("--- compiled handshake components ---------------------------");
    print!("{}", design.compiled.netlist);
    println!();

    let library = Library::cmos035();
    let unopt = run_control_flow(&design.compiled, &FlowOptions::unoptimized(), &library)?;
    let opt = run_control_flow(&design.compiled, &FlowOptions::optimized(), &library)?;
    println!("--- control flow --------------------------------------------");
    println!(
        "unoptimized: {} template components, {:.0} um^2 control area",
        unopt.controllers.len(),
        unopt.control_area
    );
    println!(
        "optimized:   {} clustered controllers, {:.0} um^2 control area",
        opt.controllers.len(),
        opt.control_area
    );
    if let Some(r) = &opt.cluster_report {
        println!("clustering:  {r}");
    }
    for c in &opt.controllers {
        println!(
            "   {:<45} {:>2} states, {:>3} products, {:.3} ns",
            c.name,
            c.bm_states,
            c.controller.num_products(),
            c.mapped.critical_delay()
        );
    }
    println!();

    println!("--- benchmark (one full 8-handshake cycle) ------------------");
    let comparison = run_design(&design, &library, &Delays::default())
        .map_err(|e| format!("benchmark failed: {e}"))?;
    println!("{comparison}");
    Ok(())
}
