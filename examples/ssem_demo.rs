//! Runs the SSEM (Manchester Baby) core on the paper's benchmark program —
//! writing 0 through 4 to consecutive memory locations — on the fully
//! synthesized asynchronous implementation, and dumps the resulting store.
//!
//! ```text
//! cargo run --release --example ssem_demo
//! ```

use bmbe::designs::scenarios::ssem_core;
use bmbe::designs::ssem::benchmark_expectation;
use bmbe::flow::{run_control_flow, simulate, to_flow_scenario, FlowOptions};
use bmbe::gates::Library;
use bmbe::sim::prims::Delays;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = ssem_core()?;
    println!("--- SSEM core, mini-Balsa -----------------------------------");
    println!("{}", design.source);
    println!();

    let library = Library::cmos035();
    let flow = run_control_flow(&design.compiled, &FlowOptions::optimized(), &library)?;
    println!(
        "synthesized {} controllers from {} control components",
        flow.controllers.len(),
        flow.components_before
    );

    let scenario = to_flow_scenario(&design.scenario);
    let run = simulate(&design.compiled, &flow, &scenario, &Delays::default())?;
    if !run.completed {
        return Err(format!("the core did not halt within {} ns", run.time_ns).into());
    }
    println!(
        "halted after {:.1} ns ({} simulation events)",
        run.time_ns, run.events
    );
    println!();
    println!("--- store after the run -------------------------------------");
    let memory = &run.memories["m"];
    for (addr, word) in memory.iter().enumerate() {
        if *word != 0 {
            println!("  m[{addr:>2}] = {:#018x}", word);
        }
    }
    println!();
    for (addr, expected) in benchmark_expectation() {
        let got = memory[addr];
        println!(
            "  m[{addr}] = {got} (expected {expected}) {}",
            if got == expected { "OK" } else { "MISMATCH" }
        );
    }
    Ok(())
}
