//! The `bmbe` command-line tool: drive the burst-mode back-end from files.
//!
//! ```text
//! bmbe ch2bms  FILE.ch   [--dot]        compile CH to a burst-mode spec
//! bmbe synth   FILE.ch                  ... and synthesize hazard-free logic
//! bmbe flow    FILE.balsa [--no-opt]    run the full control flow
//! bmbe batch   FILE.balsa... [--no-opt] run many designs as one batch
//! bmbe table3                           run the paper's benchmark table
//! bmbe gauntlet [--seed S] [--designs N] [--only NAME] [--inject I]
//!                                       run the differential gauntlet
//! ```
//!
//! `batch` runs every file as a job over one shared controller cache
//! (persistent when `BMBE_CACHE_DIR` is set), deduplicating controller
//! shapes across the whole fleet, and streams one JSON object per job on
//! stdout.
//!
//! `gauntlet` generates a seeded corpus slice and runs every design
//! through all five differential oracle pairs (see
//! `bmbe::flow::gauntlet`), printing one JSON object per finding plus a
//! summary; a finding's `seed`, `family`, and `params` fields make
//! `bmbe gauntlet --seed S --designs N --only NAME` a one-command
//! reproduction.

use bmbe::bm::synth::{synthesize, MinimizeMode};
use bmbe::bm::text::{to_bms, to_dot};
use bmbe::core::compile::compile_to_bm;
use bmbe::core::parse::parse_ch;
use bmbe::designs::all_designs;
use bmbe::flow::{run_control_flow, run_design, FlowOptions};
use bmbe::gates::Library;
use bmbe::sim::prims::Delays;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  bmbe ch2bms FILE.ch [--dot]\n  bmbe synth FILE.ch\n  \
         bmbe flow FILE.balsa [--no-opt]\n  bmbe batch FILE.balsa... [--no-opt]\n  \
         bmbe table3\n  \
         bmbe gauntlet [--seed S] [--designs N] [--only NAME] [--inject I]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("ch2bms") => cmd_ch2bms(&args[1..]),
        Some("synth") => cmd_synth(&args[1..]),
        Some("flow") => cmd_flow(&args[1..]),
        Some("batch") => cmd_batch(&args[1..]),
        Some("table3") => cmd_table3(),
        Some("gauntlet") => cmd_gauntlet(&args[1..]),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn read_file(path: &str) -> Result<String, Box<dyn std::error::Error>> {
    Ok(std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?)
}

fn cmd_ch2bms(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let path = args.first().ok_or("missing CH file")?;
    let dot = args.iter().any(|a| a == "--dot");
    let program = parse_ch(&read_file(path)?)?;
    let spec = compile_to_bm("machine", &program)?;
    if dot {
        print!("{}", to_dot(&spec));
    } else {
        print!("{}", to_bms(&spec));
    }
    Ok(())
}

fn cmd_synth(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let path = args.first().ok_or("missing CH file")?;
    let program = parse_ch(&read_file(path)?)?;
    let spec = compile_to_bm("machine", &program)?;
    println!("; {} states, {} arcs", spec.num_states(), spec.arcs().len());
    let ctrl = synthesize(&spec, MinimizeMode::Speed)?;
    ctrl.verify_ternary().map_err(|e| format!("hazard: {e}"))?;
    println!(
        "; {} inputs, {} outputs, {} state bits, {} products ({} literals), hazard-free",
        ctrl.inputs.len(),
        ctrl.outputs.len(),
        ctrl.num_state_bits,
        ctrl.num_products(),
        ctrl.num_literals()
    );
    for (name, cover) in ctrl.outputs.iter().zip(&ctrl.output_covers) {
        println!("{name} = {cover}");
    }
    for (j, cover) in ctrl.next_state_covers.iter().enumerate() {
        println!("y{j} = {cover}");
    }
    Ok(())
}

fn cmd_flow(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let path = args.first().ok_or("missing mini-Balsa file")?;
    let optimize = !args.iter().any(|a| a == "--no-opt");
    let program = bmbe::balsa::parse(&read_file(path)?)?;
    let design = bmbe::balsa::compile_procedure(&program.procedures[0])?;
    let options = if optimize {
        FlowOptions::optimized()
    } else {
        FlowOptions::unoptimized()
    };
    let flow = run_control_flow(&design, &options, &Library::cmos035())?;
    println!(
        "{}: {} control components -> {} controllers, {:.0} um^2 control area",
        flow.design,
        flow.components_before,
        flow.controllers.len(),
        flow.control_area
    );
    if let Some(report) = &flow.cluster_report {
        println!("clustering: {report}");
    }
    for c in &flow.controllers {
        println!(
            "  {:<50} {:>3} states {:>4} products {:>8.1} um^2 {:>6.3} ns",
            c.name,
            c.bm_states,
            c.controller.num_products(),
            c.area(),
            c.critical_delay()
        );
    }
    Ok(())
}

fn cmd_batch(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use bmbe::flow::{run_batch, BatchJob, ControllerCache};
    let optimize = !args.iter().any(|a| a == "--no-opt");
    let paths: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    if paths.is_empty() {
        return Err("missing mini-Balsa files".into());
    }
    let mut jobs = Vec::with_capacity(paths.len());
    for path in &paths {
        let program = bmbe::balsa::parse(&read_file(path)?)?;
        let design = bmbe::balsa::compile_procedure(&program.procedures[0])
            .map_err(|e| format!("{path}: {e}"))?;
        let mut job = BatchJob::new(path.as_str(), design);
        if !optimize {
            job.options = FlowOptions::unoptimized();
        }
        job.options = job.options.with_env_fault();
        jobs.push(job);
    }
    // One shared cache for the whole fleet — persistent across invocations
    // when BMBE_CACHE_DIR points at a cache directory.
    let cache = ControllerCache::from_env();
    let threads = bmbe::par::default_threads();
    let summary = run_batch(&jobs, &Library::cmos035(), &cache, threads);
    let escape = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    for outcome in &summary.jobs {
        match outcome {
            Ok(r) => println!(
                "{{\"job\": \"{}\", \"design\": \"{}\", \"ok\": true, \
                 \"controllers\": {}, \"products\": {}, \"control_area\": {:.1}, \
                 \"cache_hits\": {}, \"synthesized\": {}, \"shared\": {}}}",
                escape(&r.label),
                escape(&r.design),
                r.controllers,
                r.products,
                r.control_area,
                r.cache_hits,
                r.synthesized,
                r.shared
            ),
            Err(f) => println!(
                "{{\"job\": \"{}\", \"design\": \"{}\", \"ok\": false, \
                 \"phase\": \"{}\", \"error\": \"{}\"}}",
                escape(&f.label),
                escape(&f.design),
                escape(f.phase),
                escape(&f.error)
            ),
        }
    }
    println!(
        "{{\"summary\": true, \"jobs\": {}, \"failed\": {}, \"distinct_shapes\": {}, \
         \"synthesized\": {}, \"shared_waits\": {}, \"cache_hits\": {}}}",
        summary.jobs.len(),
        summary.failed(),
        summary.distinct_shapes,
        summary.synthesized,
        summary.shared_waits,
        summary.cache_hits
    );
    if summary.failed() > 0 {
        return Err(format!("{} of {} jobs failed", summary.failed(), summary.jobs.len()).into());
    }
    Ok(())
}

fn cmd_gauntlet(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use bmbe::flow::{run_gauntlet, ControllerCache, GauntletConfig};
    let mut cfg = GauntletConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--seed" => cfg.seed = val("--seed")?.parse()?,
            "--designs" => cfg.designs = val("--designs")?.parse()?,
            "--threads" => cfg.threads = val("--threads")?.parse()?,
            "--only" => cfg.only = Some(val("--only")?.to_string()),
            "--inject" => cfg.inject = Some(val("--inject")?.parse()?),
            other => return Err(format!("unknown flag {other}").into()),
        }
    }
    let cache = ControllerCache::from_env();
    let report = run_gauntlet(&cfg, &Library::cmos035(), &cache)?;
    let escape = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    for f in &report.findings {
        println!(
            "{{\"finding\": true, \"oracle\": \"{}\", \"design\": \"{}\", \
             \"family\": \"{}\", \"params\": \"{}\", \"seed\": {}, \
             \"replay\": \"bmbe gauntlet --seed {} --designs {} --only {}\", \
             \"detail\": \"{}\"}}",
            escape(f.oracle),
            escape(&f.design),
            escape(&f.family),
            escape(&f.params),
            f.seed,
            report.seed,
            report.designs,
            escape(&f.design),
            escape(&f.detail)
        );
    }
    println!(
        "{{\"summary\": true, \"seed\": {}, \"designs\": {}, \"findings\": {}, \
         \"heap_vs_wheel\": {}, \"compiled_vs_wheel\": {}, \"otf_vs_materialized\": {}, \
         \"serial_vs_parallel\": {}, \"fault_vs_clean\": {}, \
         \"cache_hits\": {}, \"synthesized\": {}, \"shared\": {}, \"wall_s\": {:.3}}}",
        report.seed,
        report.designs,
        report.findings.len(),
        report.checks.heap_vs_wheel,
        report.checks.compiled_vs_wheel,
        report.checks.otf_vs_materialized,
        report.checks.serial_vs_parallel,
        report.checks.fault_vs_clean,
        report.cache_hits,
        report.synthesized,
        report.shared,
        report.wall_s
    );
    if !report.clean() {
        return Err(format!(
            "gauntlet found {} divergence(s) across {} designs",
            report.findings.len(),
            report.designs
        )
        .into());
    }
    Ok(())
}

fn cmd_table3() -> Result<(), Box<dyn std::error::Error>> {
    let library = Library::cmos035();
    let delays = Delays::default();
    for design in all_designs()? {
        let comparison = run_design(&design, &library, &delays)?;
        println!("{comparison}");
    }
    Ok(())
}
