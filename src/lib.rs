#![warn(missing_docs)]
//! # bmbe — a Burst-Mode oriented back-end for a Balsa-like synthesis system
//!
//! A from-scratch Rust reproduction of *“A Burst-Mode Oriented Back-End for
//! the Balsa Synthesis System”* (Chelcea, Bardsley, Edwards, Nowick —
//! DATE 2002): the CH control-specification language, the clustering
//! optimizations (Activation Channel Removal and Call Distribution), the
//! CH-to-Burst-Mode compiler, a Minimalist-equivalent hazard-free
//! synthesizer, a technology mapper with hazard analysis, a trace-theory
//! verifier, a mini-Balsa front end, an event-driven simulator, and the
//! paper's four benchmark designs.
//!
//! This crate re-exports the whole workspace; see the individual crates for
//! details:
//!
//! * [`logic`] — cube algebra and hazard-free two-level minimization
//! * [`hsnet`] — the handshake-component netlist IR
//! * [`balsa`] — the mini-Balsa language and compiler
//! * [`core`] — the CH language, CH-to-BMS, and the clustering optimizer
//! * [`bm`] — Burst-Mode specifications and controller synthesis
//! * [`gates`] — cell library, technology mapping, hazard analysis
//! * [`sim`] — the discrete-event simulator
//! * [`trace`] — Dill-style trace structures (the AVER stand-in)
//! * [`designs`] — the four benchmark designs
//! * [`flow`] — the end-to-end pipeline and Table 3 harness
//!
//! # Examples
//!
//! Model the paper's sequencer in CH, compile it to the six-state
//! Burst-Mode machine of Fig. 3, and synthesize hazard-free logic:
//!
//! ```
//! use bmbe::core::parse::parse_ch;
//! use bmbe::core::compile::compile_to_bm;
//! use bmbe::bm::synth::{synthesize, MinimizeMode};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ch = parse_ch(
//!     "(rep (enc-early (p-to-p passive p)
//!                      (seq (p-to-p active a1) (p-to-p active a2))))",
//! )?;
//! let spec = compile_to_bm("sequencer", &ch)?;
//! assert_eq!(spec.num_states(), 6);
//! let ctrl = synthesize(&spec, MinimizeMode::Speed)?;
//! ctrl.verify_ternary().map_err(|e| format!("hazard: {e}"))?;
//! # Ok(())
//! # }
//! ```

pub use bmbe_balsa as balsa;
pub use bmbe_bm as bm;
pub use bmbe_core as core;
pub use bmbe_designs as designs;
pub use bmbe_flow as flow;
pub use bmbe_gates as gates;
pub use bmbe_hsnet as hsnet;
pub use bmbe_logic as logic;
pub use bmbe_par as par;
pub use bmbe_sim as sim;
pub use bmbe_trace as trace;
