//! The compiled bit-parallel simulation backend.
//!
//! Instead of scheduling discrete events, a [`CompiledCircuit`] evaluates
//! **64 independent scenarios at once**: every wire holds a `u64` *lane
//! word* whose bit `L` is the wire's value in scenario lane `L`. Mapped
//! controller netlists are levelized (via [`bmbe_hsnet::levelize`]) into
//! straight-line instruction tapes — one [`TapeOp`] per cell, evaluated
//! with [`CellKind::eval_lanes`] — and the asynchronous state feedback is
//! resolved by a settle-to-fixpoint loop per activation, mirroring the
//! event engine's `ControllerPrim::settle` exactly (lane-wise: a lane at
//! its fixpoint is unchanged by further iterations, so mixed-convergence
//! batches still match the scalar oracle bit for bit).
//!
//! The run itself is a *wave* loop with unit-delay (Jacobi) semantics:
//! all wire writes scheduled in wave `k` apply simultaneously at the start
//! of wave `k + 1`, then every primitive watching a changed wire is
//! re-evaluated, in primitive-index order. Writes are deferred and the
//! evaluation order of a wave cannot influence its result, which is what
//! makes compiled outcomes bit-identical at any worker-thread count. Data
//! slots (bundled data) are written immediately, like the event engine's
//! `Ctx::write_slot`.
//!
//! The backend is untimed: per-scenario *behaviour* (completion, port
//! traffic, memory contents) matches the event-wheel oracle — asserted by
//! the differential property tests — while `time_ns` does not exist here.
//! The event wheel remains the timing/hazard oracle.
//!
//! Lanes complete independently: when a lane's done condition first holds
//! at the end of a wave, the lane is removed from the live mask and its
//! pending writes are cancelled — the analogue of the event engine
//! stopping at the done event and leaving the queue unprocessed.

use bmbe_gates::CellKind;
use bmbe_hsnet::{levelize, BinOp, UnOp};
use std::collections::HashMap;
use std::fmt;

use crate::prims::{eval_binop, eval_unop};

/// Number of scenario lanes a batch evaluates at once (the bits of a
/// `u64` lane word).
pub const LANES: usize = 64;

/// Which simulation backend runs a scenario set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimBackend {
    /// The event-driven engine (wheel or heap scheduler) — the timing and
    /// hazard oracle.
    EventWheel,
    /// The bit-parallel compiled engine: 64 scenarios per lane word.
    Compiled,
    /// Compiled for batches of more than one scenario, the event engine
    /// for a single scenario (where timing matters and lanes would idle).
    #[default]
    Auto,
}

impl SimBackend {
    /// Resolves [`SimBackend::Auto`] against the batch size.
    pub fn resolve(self, scenarios: usize) -> SimBackend {
        match self {
            SimBackend::Auto if scenarios > 1 => SimBackend::Compiled,
            SimBackend::Auto => SimBackend::EventWheel,
            other => other,
        }
    }

    /// The backend's report name.
    pub fn name(self) -> &'static str {
        match self {
            SimBackend::EventWheel => "event_wheel",
            SimBackend::Compiled => "compiled",
            SimBackend::Auto => "auto",
        }
    }
}

/// A wire in the compiled circuit: one `u64` lane word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CWire(pub u32);

/// A per-lane data slot (64 `u64` values, one per lane).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CSlot(pub u32);

/// A compiled primitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CPrim(pub u32);

/// A four-phase bundled-data channel endpoint.
#[derive(Debug, Clone, Copy)]
pub struct CCh {
    /// Request wire.
    pub req: CWire,
    /// Acknowledge wire.
    pub ack: CWire,
    /// Data slot.
    pub slot: CSlot,
}

/// One read or write site of a compiled memory.
#[derive(Debug, Clone, Copy)]
pub struct CSite {
    /// Data channel.
    pub data: CCh,
    /// Address channel.
    pub addr: CCh,
}

/// A mapped gate handed to [`CircuitBuilder::add_controller`]: cell kind,
/// input subject-node ids, output subject-node id (mirrors
/// `bmbe_gates::MappedGate` without depending on the mapping structs).
#[derive(Debug, Clone)]
pub struct GateSpec {
    /// The cell.
    pub cell: CellKind,
    /// Input subject-node ids.
    pub inputs: Vec<usize>,
    /// Output subject-node id.
    pub output: usize,
}

/// One instruction of a controller tape: opcode (the cell kind), up to
/// four input slot indices, and the output slot.
#[derive(Debug, Clone, Copy)]
pub struct TapeOp {
    /// The cell evaluated lane-parallel.
    pub cell: CellKind,
    /// Input scratch-slot indices (`n` of them used).
    pub ins: [u16; 4],
    /// Number of inputs.
    pub n: u8,
    /// Output scratch-slot index.
    pub out: u16,
}

/// A levelized controller instruction tape. Scratch slots are the subject
/// nodes: slots `0..inputs.len()` load from the input wires, slots
/// `inputs.len()..inputs.len()+num_state` load from the fed-back state
/// word (the feedback arcs the settle loop iterates), constant-one slots
/// are preset, and the ops write the rest in level order.
#[derive(Debug, Clone)]
pub struct ControllerTape {
    /// Input wires, in function-variable order.
    pub inputs: Vec<CWire>,
    /// Output wires, matching `out_roots`.
    pub outputs: Vec<CWire>,
    /// Number of state bits (the feedback arcs).
    pub num_state: usize,
    /// Scratch slots needed (= subject nodes).
    pub slots: usize,
    /// Slots preset to all-ones (constant-one subject nodes).
    pub ones: Vec<u16>,
    /// The instructions, in levelized topological order.
    pub ops: Vec<TapeOp>,
    /// Scratch slot of each output function root.
    pub out_roots: Vec<u16>,
    /// Scratch slot of each next-state function root — the feedback arcs:
    /// these values are written back into the state input slots on the
    /// next settle iteration.
    pub state_roots: Vec<u16>,
    /// Initial state code (broadcast to every lane).
    pub initial_code: u64,
    /// Logic depth (levelization levels).
    pub levels: u32,
}

/// Errors compiling a netlist into a tape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The gate netlist has a combinational cycle (levelization failed).
    Cycle {
        /// The controller.
        controller: String,
        /// The lowest-index subject node on a cycle.
        node: usize,
    },
    /// The netlist is malformed for tape compilation.
    BadTape {
        /// The controller.
        controller: String,
        /// What is wrong.
        detail: String,
    },
    /// A deliberately injected fault (see the flow crate's `sim_compile`
    /// fault phase).
    Injected {
        /// The controller.
        controller: String,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Cycle { controller, node } => write!(
                f,
                "controller {controller}: combinational cycle through subject node {node}"
            ),
            CompileError::BadTape { controller, detail } => {
                write!(f, "controller {controller}: {detail}")
            }
            CompileError::Injected { controller } => {
                write!(f, "controller {controller}: injected sim_compile fault")
            }
        }
    }
}

impl std::error::Error for CompileError {}

const NO_ACTIVE: u16 = u16::MAX;

/// A compiled primitive's specification (behavioural ops mirror the event
/// primitives in [`crate::prims`] one for one).
#[derive(Debug, Clone)]
enum POp {
    Controller(usize),
    Constant { ch: CCh, value: u64 },
    Variable { write: CCh, reads: Vec<CCh> },
    BinFunc { op: BinOp, out: CCh, lhs: CCh, rhs: CCh },
    UnFunc { op: UnOp, out: CCh, operand: CCh },
    CallMux { ins: Vec<CCh>, out: CCh },
    PullMux { clients: Vec<CCh>, source: CCh },
    Memory { words: usize, reads: Vec<CSite>, writes: Vec<CSite> },
    SelectAdapter { sel_req: CWire, sel_acks: Vec<CWire>, provider: CCh },
    FetchData { pull: CCh, push: CCh },
    ActivationDriver { req: CWire, ack: CWire },
    SyncResponder { req: CWire, ack: CWire },
    PullProvider { ch: CCh },
    PushConsumer { ch: CCh },
}

/// Per-primitive mutable run state (lane-indexed vectors).
#[derive(Debug, Clone)]
enum PState {
    None,
    Ctrl { state: Vec<u64> },
    Var { value: Vec<u64> },
    Mux { active: Vec<u16> },
    Mem { words: Vec<u64>, raddr: Vec<u64> },
    Sel { chosen: Vec<u16> },
    Driver { cycles: Vec<u64>, completions: Vec<u64> },
    Sync { count: Vec<u64> },
    Provider { values: Vec<Vec<u64>>, ix: Vec<usize> },
    Consumer { received: Vec<Vec<u64>> },
}

/// Builds a [`CompiledCircuit`].
#[derive(Default)]
pub struct CircuitBuilder {
    num_wires: u32,
    num_slots: u32,
    ops: Vec<POp>,
    watch: Vec<(u32, Vec<CWire>)>,
    tapes: Vec<ControllerTape>,
}

impl CircuitBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a wire.
    pub fn wire(&mut self) -> CWire {
        self.num_wires += 1;
        CWire(self.num_wires - 1)
    }

    /// Allocates a data slot.
    pub fn slot(&mut self) -> CSlot {
        self.num_slots += 1;
        CSlot(self.num_slots - 1)
    }

    /// Allocates a channel (req + ack wires and a slot).
    pub fn ch(&mut self) -> CCh {
        CCh {
            req: self.wire(),
            ack: self.wire(),
            slot: self.slot(),
        }
    }

    fn add(&mut self, op: POp, watch: Vec<CWire>) -> CPrim {
        let id = self.ops.len() as u32;
        self.ops.push(op);
        self.watch.push((id, watch));
        CPrim(id)
    }

    /// Compiles a mapped controller netlist into a levelized tape.
    ///
    /// `gates` come with subject-node ids; `ones` are constant-one subject
    /// nodes; `out_roots`/`state_roots` are the subject nodes of the output
    /// and next-state function roots. Subject inputs must be laid out as
    /// the event engine's function variables: wires `inputs` first, then
    /// `num_state` fed-back state bits.
    ///
    /// # Errors
    ///
    /// [`CompileError`] on a combinational cycle or malformed netlist.
    #[allow(clippy::too_many_arguments)]
    pub fn add_controller(
        &mut self,
        name: &str,
        inputs: Vec<CWire>,
        outputs: Vec<CWire>,
        num_state: usize,
        initial_code: u64,
        num_nodes: usize,
        ones: &[usize],
        gates: &[GateSpec],
        out_roots: &[usize],
        state_roots: &[usize],
    ) -> Result<CPrim, CompileError> {
        let bad = |detail: String| CompileError::BadTape {
            controller: name.to_string(),
            detail,
        };
        if num_nodes > u16::MAX as usize {
            return Err(bad(format!("{num_nodes} subject nodes exceed the tape limit")));
        }
        let num_fn_inputs = inputs.len() + num_state;
        if num_fn_inputs > num_nodes {
            return Err(bad(format!(
                "{} wires + {num_state} state bits exceed {num_nodes} subject nodes",
                inputs.len()
            )));
        }
        if out_roots.len() != outputs.len() {
            return Err(bad(format!(
                "{} output roots for {} output wires",
                out_roots.len(),
                outputs.len()
            )));
        }
        if state_roots.len() != num_state {
            return Err(bad(format!(
                "{} state roots for {num_state} state bits",
                state_roots.len()
            )));
        }
        // Validate gates and collect the dependency graph over subject
        // nodes (driven node <- its gate's inputs).
        let mut driver = vec![usize::MAX; num_nodes];
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); num_nodes];
        for (gi, g) in gates.iter().enumerate() {
            if matches!(g.cell, CellKind::Celem2) {
                return Err(bad("stateful cell C2 in a controller tape".to_string()));
            }
            if g.inputs.len() != g.cell.num_inputs() {
                return Err(bad(format!(
                    "gate {gi} ({}) has {} inputs, expected {}",
                    g.cell,
                    g.inputs.len(),
                    g.cell.num_inputs()
                )));
            }
            if g.output >= num_nodes || g.inputs.iter().any(|&i| i >= num_nodes) {
                return Err(bad(format!("gate {gi} references a node out of range")));
            }
            if g.output < num_fn_inputs {
                return Err(bad(format!("gate {gi} drives input node {}", g.output)));
            }
            if driver[g.output] != usize::MAX {
                return Err(bad(format!("node {} driven by two gates", g.output)));
            }
            driver[g.output] = gi;
            preds[g.output] = g.inputs.clone();
        }
        for (&r, what) in out_roots
            .iter()
            .zip(std::iter::repeat("output"))
            .chain(state_roots.iter().zip(std::iter::repeat("state")))
        {
            if r >= num_nodes {
                return Err(bad(format!("{what} root {r} out of range")));
            }
        }
        let lev = levelize::levelize(&preds).map_err(|e| CompileError::Cycle {
            controller: name.to_string(),
            node: e.node,
        })?;
        // Tape order: ascending (level, node) over driven nodes.
        let mut driven: Vec<usize> = (0..num_nodes).filter(|&v| driver[v] != usize::MAX).collect();
        driven.sort_unstable_by_key(|&v| (lev.level[v], v));
        let ops: Vec<TapeOp> = driven
            .iter()
            .map(|&v| {
                let g = &gates[driver[v]];
                let mut ins = [0u16; 4];
                for (i, &p) in g.inputs.iter().enumerate() {
                    ins[i] = p as u16;
                }
                TapeOp {
                    cell: g.cell,
                    ins,
                    n: g.inputs.len() as u8,
                    out: v as u16,
                }
            })
            .collect();
        let tape = ControllerTape {
            inputs,
            outputs,
            num_state,
            slots: num_nodes,
            ones: ones.iter().map(|&o| o as u16).collect(),
            ops,
            out_roots: out_roots.iter().map(|&r| r as u16).collect(),
            state_roots: state_roots.iter().map(|&r| r as u16).collect(),
            initial_code,
            levels: lev.num_levels,
        };
        let watch = tape.inputs.clone();
        let k = self.tapes.len();
        self.tapes.push(tape);
        Ok(self.add(POp::Controller(k), watch))
    }

    /// Adds a constant source (see `ConstantPrim`).
    pub fn add_constant(&mut self, ch: CCh, value: u64) -> CPrim {
        self.add(POp::Constant { ch, value }, vec![ch.req])
    }

    /// Adds a storage variable (see `VariablePrim`).
    pub fn add_variable(&mut self, write: CCh, reads: Vec<CCh>) -> CPrim {
        let mut watch = vec![write.req];
        watch.extend(reads.iter().map(|c| c.req));
        self.add(POp::Variable { write, reads }, watch)
    }

    /// Adds a binary function (see `BinFuncPrim`).
    pub fn add_binfunc(&mut self, op: BinOp, out: CCh, lhs: CCh, rhs: CCh) -> CPrim {
        self.add(
            POp::BinFunc { op, out, lhs, rhs },
            vec![out.req, lhs.ack, rhs.ack],
        )
    }

    /// Adds a unary function (see `UnFuncPrim`).
    pub fn add_unfunc(&mut self, op: UnOp, out: CCh, operand: CCh) -> CPrim {
        self.add(POp::UnFunc { op, out, operand }, vec![out.req, operand.ack])
    }

    /// Adds a call-mux (see `CallMuxPrim`).
    pub fn add_call_mux(&mut self, ins: Vec<CCh>, out: CCh) -> CPrim {
        let mut watch: Vec<CWire> = ins.iter().map(|c| c.req).collect();
        watch.push(out.ack);
        self.add(POp::CallMux { ins, out }, watch)
    }

    /// Adds a pull-mux (see `PullMuxPrim`).
    pub fn add_pull_mux(&mut self, clients: Vec<CCh>, source: CCh) -> CPrim {
        let mut watch: Vec<CWire> = clients.iter().map(|c| c.req).collect();
        watch.push(source.ack);
        self.add(POp::PullMux { clients, source }, watch)
    }

    /// Adds a word-addressed memory (see `MemoryPrim`).
    pub fn add_memory(&mut self, words: usize, reads: Vec<CSite>, writes: Vec<CSite>) -> CPrim {
        let mut watch = Vec::new();
        for s in reads.iter().chain(&writes) {
            watch.push(s.data.req);
            watch.push(s.addr.ack);
        }
        self.add(
            POp::Memory {
                words: words.max(1),
                reads,
                writes,
            },
            watch,
        )
    }

    /// Adds a select adapter (see `SelectAdapterPrim`).
    pub fn add_select_adapter(
        &mut self,
        sel_req: CWire,
        sel_acks: Vec<CWire>,
        provider: CCh,
    ) -> CPrim {
        let watch = vec![sel_req, provider.ack];
        self.add(
            POp::SelectAdapter {
                sel_req,
                sel_acks,
                provider,
            },
            watch,
        )
    }

    /// Adds a fetch bundled-data copy (see `FetchDataPrim`).
    pub fn add_fetch(&mut self, pull: CCh, push: CCh) -> CPrim {
        self.add(POp::FetchData { pull, push }, vec![pull.ack])
    }

    /// Adds the activation driver environment (see `ActivationDriverEnv`);
    /// per-lane cycle counts come from the run's [`LaneSpec`]s.
    pub fn add_activation_driver(&mut self, req: CWire, ack: CWire) -> CPrim {
        self.add(POp::ActivationDriver { req, ack }, vec![ack])
    }

    /// Adds a sync responder environment (see `SyncResponderEnv`).
    pub fn add_sync_responder(&mut self, req: CWire, ack: CWire) -> CPrim {
        self.add(POp::SyncResponder { req, ack }, vec![req])
    }

    /// Adds a pull provider environment (see `PullProviderEnv`); per-lane
    /// value scripts come from the run's [`LaneSpec`]s.
    pub fn add_pull_provider(&mut self, ch: CCh) -> CPrim {
        self.add(POp::PullProvider { ch }, vec![ch.req])
    }

    /// Adds a push consumer environment (see `PushConsumerEnv`).
    pub fn add_push_consumer(&mut self, ch: CCh) -> CPrim {
        self.add(POp::PushConsumer { ch }, vec![ch.req])
    }

    /// Finalizes the circuit (computes the wire-to-watchers index).
    pub fn finish(self) -> CompiledCircuit {
        let mut watchers: Vec<Vec<u32>> = vec![Vec::new(); self.num_wires as usize];
        for (op, wires) in &self.watch {
            for w in wires {
                let list = &mut watchers[w.0 as usize];
                if list.last() != Some(op) {
                    list.push(*op);
                }
            }
        }
        let max_tape_slots = self.tapes.iter().map(|t| t.slots).max().unwrap_or(0);
        CompiledCircuit {
            num_wires: self.num_wires as usize,
            num_slots: self.num_slots as usize,
            ops: self.ops,
            watchers,
            tapes: self.tapes,
            max_tape_slots,
        }
    }
}

/// When a lane's run is complete (mirrors the flow's `Done`).
#[derive(Debug, Clone, Copy)]
pub enum DoneSpec {
    /// The activation driver completed this many handshakes.
    Activations(CPrim, u64),
    /// A push consumer received this many values.
    Outputs(CPrim, usize),
    /// A sync responder completed this many handshakes.
    Syncs(CPrim, u64),
}

/// Per-lane scenario bindings for one run.
#[derive(Debug, Clone)]
pub struct LaneSpec {
    /// Activation handshakes the driver performs on this lane.
    pub activation_cycles: u64,
    /// Scripted values per pull-provider primitive.
    pub provider_values: Vec<(CPrim, Vec<u64>)>,
    /// Initial memory contents per memory primitive (zero-filled).
    pub memory_init: Vec<(CPrim, Vec<u64>)>,
    /// The lane's completion condition.
    pub done: DoneSpec,
}

/// One batched run: up to [`LANES`] lane specs and a wave budget (the
/// untimed analogue of the event engine's `max_time`).
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// The lanes (1..=64).
    pub lanes: Vec<LaneSpec>,
    /// Wave budget; lanes not complete when it runs out report
    /// `completed = false`.
    pub max_waves: u64,
}

/// Outcome of a batched run, with per-lane data harvested from every
/// environment and memory primitive (keyed by [`CPrim`]).
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Lanes the run evaluated.
    pub lanes: usize,
    /// Completion bitmask (bit `L` = lane `L` met its done condition).
    pub completed: u64,
    /// Waves executed.
    pub waves: u64,
    /// Applied wire changes per lane (the compiled analogue of processed
    /// events).
    pub lane_events: Vec<u64>,
    /// Total controller settle iterations across the run.
    pub settle_iters: u64,
    /// Values received per push consumer, per lane.
    pub consumer_received: HashMap<u32, Vec<Vec<u64>>>,
    /// Handshakes completed per sync responder, per lane.
    pub sync_counts: HashMap<u32, Vec<u64>>,
    /// Activation completions per driver, per lane.
    pub driver_completions: HashMap<u32, Vec<u64>>,
    /// Final memory words per memory, per lane.
    pub memories: HashMap<u32, Vec<Vec<u64>>>,
}

impl RunResult {
    /// Total applied wire changes across the batch's **live** lanes.
    ///
    /// `lane_events` holds one entry per live lane (the dead padding of a
    /// partial batch is masked out of every write and asserted
    /// event-free at harvest), so this sum is the correct numerator for
    /// any events-per-second figure: a 5-lane batch reports the work of 5
    /// scenarios, not 64.
    pub fn live_events(&self) -> u64 {
        self.lane_events.iter().sum()
    }
}

/// A compiled circuit: immutable specification shared by any number of
/// batched runs (compile once, run many batches).
#[derive(Debug)]
pub struct CompiledCircuit {
    num_wires: usize,
    num_slots: usize,
    ops: Vec<POp>,
    watchers: Vec<Vec<u32>>,
    tapes: Vec<ControllerTape>,
    max_tape_slots: usize,
}

impl CompiledCircuit {
    /// Number of controller tapes.
    pub fn num_tapes(&self) -> usize {
        self.tapes.len()
    }

    /// Number of wires (lane words).
    pub fn num_wires(&self) -> usize {
        self.num_wires
    }

    /// The controller tapes (for reporting: op counts, levels).
    pub fn tapes(&self) -> &[ControllerTape] {
        &self.tapes
    }

    /// Runs a batch of up to [`LANES`] scenarios to quiescence, completion
    /// of every lane, or the wave budget.
    ///
    /// # Panics
    ///
    /// Panics if `spec.lanes` is empty or exceeds [`LANES`], or if a
    /// [`LaneSpec`] references a primitive of the wrong kind.
    pub fn run(&self, spec: &RunSpec) -> RunResult {
        let n = spec.lanes.len();
        assert!(n >= 1 && n <= LANES, "lane count {n} out of range");
        static LANE_BUCKETS: [u64; 8] = [1, 2, 4, 8, 16, 24, 32, 64];
        bmbe_obs::histogram!("sim.lanes_occupancy", &LANE_BUCKETS).observe(n as u64);
        let _run_span = bmbe_obs::span!("sim.settle", "sim");
        let mut st = RunState::new(self, spec);
        st.init(self, spec);
        st.check_done(spec);
        while st.live != 0 && st.waves < spec.max_waves && !st.pend_dirty.is_empty() {
            st.apply(self);
            st.eval_triggered(self);
            st.clear_changed();
            st.check_done(spec);
            st.waves += 1;
        }
        bmbe_obs::trace_counter!("sim.compiled.waves", st.waves);
        bmbe_obs::trace_counter!("sim.compiled.settle_iters", st.settle_iters);
        st.harvest(self, n)
    }
}

/// Mutable state of one batched run.
struct RunState {
    wires: Vec<u64>,
    changed: Vec<u64>,
    chg_dirty: Vec<u32>,
    pend_val: Vec<u64>,
    pend_mask: Vec<u64>,
    pend_dirty: Vec<u32>,
    slots: Vec<u64>, // slot-major: slots[slot * LANES + lane]
    pstates: Vec<PState>,
    scratch: Vec<u64>,
    trig: Vec<bool>,
    trig_list: Vec<u32>,
    live: u64,
    completed: u64,
    waves: u64,
    settle_iters: u64,
    lane_events: Vec<u64>,
}

fn for_lanes(mut m: u64, mut f: impl FnMut(usize)) {
    while m != 0 {
        let l = m.trailing_zeros() as usize;
        f(l);
        m &= m - 1;
    }
}

impl RunState {
    fn new(c: &CompiledCircuit, spec: &RunSpec) -> RunState {
        let n = spec.lanes.len();
        let live = if n == LANES { !0u64 } else { (1u64 << n) - 1 };
        let mut pstates = Vec::with_capacity(c.ops.len());
        for (pi, op) in c.ops.iter().enumerate() {
            pstates.push(match op {
                POp::Controller(k) => {
                    let t = &c.tapes[*k];
                    let code = t.initial_code;
                    PState::Ctrl {
                        state: (0..t.num_state)
                            .map(|j| if code >> j & 1 == 1 { !0u64 } else { 0 })
                            .collect(),
                    }
                }
                POp::Variable { .. } => PState::Var {
                    value: vec![0; LANES],
                },
                POp::CallMux { .. } | POp::PullMux { .. } => PState::Mux {
                    active: vec![NO_ACTIVE; LANES],
                },
                POp::Memory { words, reads, .. } => {
                    let mut w = vec![0u64; words * LANES];
                    for (lane, ls) in spec.lanes.iter().enumerate() {
                        for (p, init) in &ls.memory_init {
                            if p.0 as usize == pi {
                                for (a, v) in init.iter().enumerate().take(*words) {
                                    w[a * LANES + lane] = *v;
                                }
                            }
                        }
                    }
                    PState::Mem {
                        words: w,
                        raddr: vec![0; reads.len() * LANES],
                    }
                }
                POp::SelectAdapter { .. } => PState::Sel {
                    chosen: vec![NO_ACTIVE; LANES],
                },
                POp::ActivationDriver { .. } => {
                    let mut cycles = vec![0u64; LANES];
                    for (lane, ls) in spec.lanes.iter().enumerate() {
                        cycles[lane] = ls.activation_cycles;
                    }
                    PState::Driver {
                        cycles,
                        completions: vec![0; LANES],
                    }
                }
                POp::SyncResponder { .. } => PState::Sync {
                    count: vec![0; LANES],
                },
                POp::PullProvider { .. } => {
                    let mut values: Vec<Vec<u64>> = vec![Vec::new(); LANES];
                    for (lane, ls) in spec.lanes.iter().enumerate() {
                        for (p, vals) in &ls.provider_values {
                            if p.0 as usize == pi {
                                values[lane] = vals.clone();
                            }
                        }
                    }
                    PState::Provider {
                        values,
                        ix: vec![0; LANES],
                    }
                }
                POp::PushConsumer { .. } => PState::Consumer {
                    received: vec![Vec::new(); LANES],
                },
                _ => PState::None,
            });
        }
        RunState {
            wires: vec![0; c.num_wires],
            changed: vec![0; c.num_wires],
            chg_dirty: Vec::new(),
            pend_val: vec![0; c.num_wires],
            pend_mask: vec![0; c.num_wires],
            pend_dirty: Vec::new(),
            slots: vec![0; c.num_slots * LANES],
            pstates,
            scratch: vec![0; c.max_tape_slots],
            trig: vec![false; c.ops.len()],
            trig_list: Vec::new(),
            live,
            completed: 0,
            waves: 0,
            settle_iters: 0,
            lane_events: vec![0; LANES],
        }
    }

    /// Schedules a (masked) wire write for the next wave. Masks are
    /// restricted to live lanes, freezing completed scenarios.
    fn sched(&mut self, w: CWire, val: u64, mask: u64) {
        let mask = mask & self.live;
        if mask == 0 {
            return;
        }
        let ix = w.0 as usize;
        if self.pend_mask[ix] == 0 {
            self.pend_dirty.push(w.0);
        }
        self.pend_val[ix] = (self.pend_val[ix] & !mask) | (val & mask);
        self.pend_mask[ix] |= mask;
    }

    fn sched_lane(&mut self, w: CWire, bit: bool, lane: usize) {
        self.sched(w, if bit { !0 } else { 0 }, 1u64 << lane);
    }

    fn wire(&self, w: CWire) -> u64 {
        self.wires[w.0 as usize]
    }

    fn chg(&self, w: CWire) -> u64 {
        self.changed[w.0 as usize]
    }

    fn slot_ix(s: CSlot, lane: usize) -> usize {
        s.0 as usize * LANES + lane
    }

    /// Initial actions (the event engine's `Sim::init`): only the
    /// activation driver schedules.
    fn init(&mut self, c: &CompiledCircuit, spec: &RunSpec) {
        let mut mask = 0u64;
        for (lane, ls) in spec.lanes.iter().enumerate() {
            if ls.activation_cycles > 0 {
                mask |= 1 << lane;
            }
        }
        for op in &c.ops {
            if let POp::ActivationDriver { req, .. } = op {
                let req = *req;
                self.sched(req, !0, mask);
            }
        }
    }

    /// Applies the pending writes, computing changed masks and marking
    /// watcher primitives.
    fn apply(&mut self, c: &CompiledCircuit) {
        for di in 0..self.pend_dirty.len() {
            let w = self.pend_dirty[di] as usize;
            let m = self.pend_mask[w];
            self.pend_mask[w] = 0;
            if m == 0 {
                continue;
            }
            let cur = self.wires[w];
            let new = (cur & !m) | (self.pend_val[w] & m);
            let diff = cur ^ new;
            if diff == 0 {
                continue;
            }
            self.wires[w] = new;
            self.changed[w] = diff;
            self.chg_dirty.push(w as u32);
            for_lanes(diff, |l| self.lane_events[l] += 1);
            for &op in &c.watchers[w] {
                if !self.trig[op as usize] {
                    self.trig[op as usize] = true;
                    self.trig_list.push(op);
                }
            }
        }
        self.pend_dirty.clear();
    }

    fn eval_triggered(&mut self, c: &CompiledCircuit) {
        // Primitive-index order: deterministic whatever order the wires
        // marked them in (writes are deferred, so order cannot change the
        // wave's result anyway — this just pins the per-lane state
        // mutation order).
        self.trig_list.sort_unstable();
        let list = std::mem::take(&mut self.trig_list);
        for &op in &list {
            self.trig[op as usize] = false;
            self.eval_op(c, op as usize);
        }
        self.trig_list = list;
        self.trig_list.clear();
    }

    fn clear_changed(&mut self) {
        for &w in &self.chg_dirty {
            self.changed[w as usize] = 0;
        }
        self.chg_dirty.clear();
    }

    /// End-of-wave done update: newly completed lanes leave the live mask
    /// and their pending writes are cancelled (the event engine stops at
    /// the done event; nothing scheduled after it runs).
    fn check_done(&mut self, spec: &RunSpec) {
        let mut newly = 0u64;
        for (lane, ls) in spec.lanes.iter().enumerate() {
            let bit = 1u64 << lane;
            if self.live & bit == 0 {
                continue;
            }
            let done = match ls.done {
                DoneSpec::Activations(p, count) => match &self.pstates[p.0 as usize] {
                    PState::Driver { completions, .. } => completions[lane] >= count,
                    _ => panic!("done condition targets a non-driver primitive"),
                },
                DoneSpec::Outputs(p, count) => match &self.pstates[p.0 as usize] {
                    PState::Consumer { received } => received[lane].len() >= count,
                    _ => panic!("done condition targets a non-consumer primitive"),
                },
                DoneSpec::Syncs(p, count) => match &self.pstates[p.0 as usize] {
                    PState::Sync { count: n } => n[lane] >= count,
                    _ => panic!("done condition targets a non-responder primitive"),
                },
            };
            if done {
                newly |= bit;
            }
        }
        if newly != 0 {
            self.completed |= newly;
            self.live &= !newly;
            for &w in &self.pend_dirty {
                self.pend_mask[w as usize] &= self.live;
            }
        }
    }

    fn eval_op(&mut self, c: &CompiledCircuit, op_ix: usize) {
        // Take the per-primitive state out so `self` stays free for wire
        // and slot access during evaluation.
        let mut pst = std::mem::replace(&mut self.pstates[op_ix], PState::None);
        match &c.ops[op_ix] {
            POp::Controller(k) => self.eval_controller(&c.tapes[*k], &mut pst),
            POp::Constant { ch, value } => {
                let m = self.chg(ch.req);
                let up = m & self.wire(ch.req);
                for_lanes(up, |l| self.slots[Self::slot_ix(ch.slot, l)] = *value);
                self.sched(ch.ack, !0, up);
                self.sched(ch.ack, 0, m & !self.wire(ch.req));
            }
            POp::Variable { write, reads } => {
                let PState::Var { value } = &mut pst else {
                    unreachable!()
                };
                let m = self.chg(write.req);
                let v = self.wire(write.req);
                for_lanes(m & v, |l| value[l] = self.slots[Self::slot_ix(write.slot, l)]);
                self.sched(write.ack, !0, m & v);
                self.sched(write.ack, 0, m & !v);
                for r in reads {
                    let m = self.chg(r.req);
                    let v = self.wire(r.req);
                    for_lanes(m & v, |l| self.slots[Self::slot_ix(r.slot, l)] = value[l]);
                    self.sched(r.ack, !0, m & v);
                    self.sched(r.ack, 0, m & !v);
                }
            }
            POp::BinFunc { op, out, lhs, rhs } => {
                let out_req = self.wire(out.req);
                let m1 = self.chg(out.req) & out_req;
                self.sched(lhs.req, !0, m1);
                self.sched(rhs.req, !0, m1);
                let m2 = (self.chg(lhs.ack) | self.chg(rhs.ack))
                    & self.wire(lhs.ack)
                    & self.wire(rhs.ack)
                    & out_req;
                for_lanes(m2, |l| {
                    let v = eval_binop(
                        *op,
                        self.slots[Self::slot_ix(lhs.slot, l)],
                        self.slots[Self::slot_ix(rhs.slot, l)],
                    );
                    self.slots[Self::slot_ix(out.slot, l)] = v;
                });
                self.sched(out.ack, !0, m2);
                self.sched(lhs.req, 0, m2);
                self.sched(rhs.req, 0, m2);
                let m3 = (self.chg(out.req) | self.chg(lhs.ack) | self.chg(rhs.ack))
                    & !out_req
                    & !self.wire(lhs.ack)
                    & !self.wire(rhs.ack)
                    & self.wire(out.ack);
                self.sched(out.ack, 0, m3);
            }
            POp::UnFunc { op, out, operand } => {
                let out_req = self.wire(out.req);
                let m1 = self.chg(out.req) & out_req;
                self.sched(operand.req, !0, m1);
                let m2 = self.chg(operand.ack) & self.wire(operand.ack) & out_req;
                for_lanes(m2, |l| {
                    let v = eval_unop(*op, self.slots[Self::slot_ix(operand.slot, l)]);
                    self.slots[Self::slot_ix(out.slot, l)] = v;
                });
                self.sched(out.ack, !0, m2);
                self.sched(operand.req, 0, m2);
                let m3 = (self.chg(out.req) | self.chg(operand.ack))
                    & !out_req
                    & !self.wire(operand.ack)
                    & self.wire(out.ack);
                self.sched(out.ack, 0, m3);
            }
            POp::CallMux { ins, out } => {
                let PState::Mux { active } = &mut pst else {
                    unreachable!()
                };
                for (i, ch) in ins.iter().enumerate() {
                    let m = self.chg(ch.req);
                    let v = self.wire(ch.req);
                    for_lanes(m & v, |l| {
                        active[l] = i as u16;
                        self.slots[Self::slot_ix(out.slot, l)] =
                            self.slots[Self::slot_ix(ch.slot, l)];
                    });
                    self.sched(out.req, !0, m & v);
                    self.sched(out.req, 0, m & !v);
                }
                let m = self.chg(out.ack);
                let v = self.wire(out.ack);
                for_lanes(m, |l| {
                    if active[l] != NO_ACTIVE {
                        let i = active[l] as usize;
                        let bit = v >> l & 1 == 1;
                        self.sched_lane(ins[i].ack, bit, l);
                        if !bit {
                            active[l] = NO_ACTIVE;
                        }
                    }
                });
            }
            POp::PullMux { clients, source } => {
                let PState::Mux { active } = &mut pst else {
                    unreachable!()
                };
                for (i, ch) in clients.iter().enumerate() {
                    let m = self.chg(ch.req);
                    let v = self.wire(ch.req);
                    for_lanes(m & v, |l| active[l] = i as u16);
                    self.sched(source.req, !0, m & v);
                    self.sched(source.req, 0, m & !v);
                }
                let m = self.chg(source.ack);
                let v = self.wire(source.ack);
                for_lanes(m, |l| {
                    if active[l] != NO_ACTIVE {
                        let i = active[l] as usize;
                        let bit = v >> l & 1 == 1;
                        if bit {
                            self.slots[Self::slot_ix(clients[i].slot, l)] =
                                self.slots[Self::slot_ix(source.slot, l)];
                        }
                        self.sched_lane(clients[i].ack, bit, l);
                        if !bit {
                            active[l] = NO_ACTIVE;
                        }
                    }
                });
            }
            POp::Memory {
                words,
                reads,
                writes,
            } => {
                let PState::Mem {
                    words: mem,
                    raddr,
                } = &mut pst
                else {
                    unreachable!()
                };
                for (i, site) in reads.iter().enumerate() {
                    let m = self.chg(site.data.req);
                    let v = self.wire(site.data.req);
                    self.sched(site.addr.req, !0, m & v);
                    self.sched(site.data.ack, 0, m & !v);
                    let ma = self.chg(site.addr.ack);
                    let av = self.wire(site.addr.ack);
                    for_lanes(ma & av, |l| {
                        raddr[i * LANES + l] = self.slots[Self::slot_ix(site.addr.slot, l)];
                    });
                    self.sched(site.addr.req, 0, ma & av);
                    let serve = ma & !av & self.wire(site.data.req);
                    for_lanes(serve, |l| {
                        let a = (raddr[i * LANES + l] as usize) % words;
                        self.slots[Self::slot_ix(site.data.slot, l)] = mem[a * LANES + l];
                    });
                    self.sched(site.data.ack, !0, serve);
                }
                for site in writes {
                    let m = self.chg(site.data.req);
                    let v = self.wire(site.data.req);
                    self.sched(site.addr.req, !0, m & v);
                    self.sched(site.data.ack, 0, m & !v);
                    let ma = self.chg(site.addr.ack);
                    let av = self.wire(site.addr.ack);
                    for_lanes(ma & av, |l| {
                        let a = (self.slots[Self::slot_ix(site.addr.slot, l)] as usize) % words;
                        mem[a * LANES + l] = self.slots[Self::slot_ix(site.data.slot, l)];
                    });
                    self.sched(site.addr.req, 0, ma & av);
                    self.sched(site.data.ack, !0, ma & !av & self.wire(site.data.req));
                }
            }
            POp::SelectAdapter {
                sel_req,
                sel_acks,
                provider,
            } => {
                let PState::Sel { chosen } = &mut pst else {
                    unreachable!()
                };
                let m = self.chg(*sel_req);
                let v = self.wire(*sel_req);
                self.sched(provider.req, !0, m & v);
                for_lanes(m & !v, |l| {
                    if chosen[l] != NO_ACTIVE {
                        let ack = sel_acks[chosen[l] as usize];
                        chosen[l] = NO_ACTIVE;
                        self.sched_lane(ack, false, l);
                    }
                });
                let m2 = self.chg(provider.ack) & self.wire(provider.ack) & self.wire(*sel_req);
                for_lanes(m2, |l| {
                    let val = self.slots[Self::slot_ix(provider.slot, l)] as usize;
                    let c = val.min(sel_acks.len() - 1);
                    chosen[l] = c as u16;
                    self.sched_lane(sel_acks[c], true, l);
                });
                self.sched(provider.req, 0, m2);
            }
            POp::FetchData { pull, push } => {
                let up = self.chg(pull.ack) & self.wire(pull.ack);
                for_lanes(up, |l| {
                    self.slots[Self::slot_ix(push.slot, l)] =
                        self.slots[Self::slot_ix(pull.slot, l)];
                });
            }
            POp::ActivationDriver { req, ack } => {
                let PState::Driver {
                    cycles,
                    completions,
                } = &mut pst
                else {
                    unreachable!()
                };
                let m = self.chg(*ack);
                let v = self.wire(*ack);
                self.sched(*req, 0, m & v);
                for_lanes(m & !v, |l| {
                    completions[l] += 1;
                    if completions[l] < cycles[l] {
                        self.sched_lane(*req, true, l);
                    }
                });
            }
            POp::SyncResponder { req, ack } => {
                let PState::Sync { count } = &mut pst else {
                    unreachable!()
                };
                let m = self.chg(*req);
                let v = self.wire(*req);
                for_lanes(m & !v, |l| count[l] += 1);
                self.sched(*ack, v, m);
            }
            POp::PullProvider { ch } => {
                let PState::Provider { values, ix } = &mut pst else {
                    unreachable!()
                };
                let m = self.chg(ch.req);
                let v = self.wire(ch.req);
                for_lanes(m & v, |l| {
                    let val = if values[l].is_empty() {
                        0
                    } else {
                        values[l][ix[l] % values[l].len()]
                    };
                    ix[l] += 1;
                    self.slots[Self::slot_ix(ch.slot, l)] = val;
                });
                self.sched(ch.ack, !0, m & v);
                self.sched(ch.ack, 0, m & !v);
            }
            POp::PushConsumer { ch } => {
                let PState::Consumer { received } = &mut pst else {
                    unreachable!()
                };
                let m = self.chg(ch.req);
                let v = self.wire(ch.req);
                for_lanes(m & v, |l| {
                    received[l].push(self.slots[Self::slot_ix(ch.slot, l)]);
                });
                self.sched(ch.ack, !0, m & v);
                self.sched(ch.ack, 0, m & !v);
            }
        }
        self.pstates[op_ix] = pst;
    }

    /// Lane-parallel mirror of `ControllerPrim::on_change` + `settle`.
    fn eval_controller(&mut self, t: &ControllerTape, pst: &mut PState) {
        let PState::Ctrl { state } = pst else {
            unreachable!()
        };
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch[..t.slots].fill(0);
        for &o in &t.ones {
            scratch[o as usize] = !0;
        }
        let ni = t.inputs.len();
        for (i, &w) in t.inputs.iter().enumerate() {
            scratch[i] = self.wire(w);
        }
        // Settle the feedback: up to 4 next-state evaluations, exactly the
        // scalar `settle`. Lanes at their fixpoint stay put while slower
        // lanes iterate.
        let mut fixed = false;
        let mut iters = 0u64;
        for _ in 0..4 {
            for (j, &s) in state.iter().enumerate() {
                scratch[ni + j] = s;
            }
            run_tape(t, &mut scratch);
            iters += 1;
            let same = state
                .iter()
                .enumerate()
                .all(|(j, &s)| scratch[t.state_roots[j] as usize] == s);
            if same {
                fixed = true;
                break;
            }
            for (j, s) in state.iter_mut().enumerate() {
                *s = scratch[t.state_roots[j] as usize];
            }
        }
        if !fixed {
            // Pathological non-convergence: outputs at the state after the
            // fourth update, like the scalar engine.
            for (j, &s) in state.iter().enumerate() {
                scratch[ni + j] = s;
            }
            run_tape(t, &mut scratch);
            iters += 1;
        }
        self.settle_iters += iters;
        static SETTLE_BUCKETS: [u64; 6] = [1, 2, 3, 4, 5, 8];
        bmbe_obs::histogram!("sim.settle_iters", &SETTLE_BUCKETS).observe(iters);
        for (o, &ow) in t.outputs.iter().enumerate() {
            let computed = scratch[t.out_roots[o] as usize];
            let diff = computed ^ self.wire(ow);
            if diff != 0 {
                self.sched(ow, computed, diff);
            }
        }
        self.scratch = scratch;
    }

    fn harvest(self, c: &CompiledCircuit, n: usize) -> RunResult {
        // Live-lane accounting contract: a partial batch pads the 64-wide
        // words with dead lanes, but every scheduled write is masked with
        // `live` before it lands, so the padding can never accrue events.
        // Everything harvested below is truncated to the `n` live lanes —
        // consumers of `lane_events` (the events/s gauge, `SimStats`)
        // therefore count live lanes only, never the padding.
        debug_assert!(
            self.lane_events[n..].iter().all(|&e| e == 0),
            "dead padded lanes accrued events: {:?}",
            &self.lane_events[n..]
        );
        let mut consumer_received = HashMap::new();
        let mut sync_counts = HashMap::new();
        let mut driver_completions = HashMap::new();
        let mut memories = HashMap::new();
        for (pi, (op, pst)) in c.ops.iter().zip(&self.pstates).enumerate() {
            let pi = pi as u32;
            match (op, pst) {
                (POp::PushConsumer { .. }, PState::Consumer { received }) => {
                    consumer_received.insert(pi, received[..n].to_vec());
                }
                (POp::SyncResponder { .. }, PState::Sync { count }) => {
                    sync_counts.insert(pi, count[..n].to_vec());
                }
                (POp::ActivationDriver { .. }, PState::Driver { completions, .. }) => {
                    driver_completions.insert(pi, completions[..n].to_vec());
                }
                (POp::Memory { words, .. }, PState::Mem { words: mem, .. }) => {
                    let per_lane: Vec<Vec<u64>> = (0..n)
                        .map(|l| (0..*words).map(|a| mem[a * LANES + l]).collect())
                        .collect();
                    memories.insert(pi, per_lane);
                }
                _ => {}
            }
        }
        RunResult {
            lanes: n,
            completed: self.completed,
            waves: self.waves,
            lane_events: self.lane_events[..n].to_vec(),
            settle_iters: self.settle_iters,
            consumer_received,
            sync_counts,
            driver_completions,
            memories,
        }
    }
}

fn run_tape(t: &ControllerTape, scratch: &mut [u64]) {
    for op in &t.ops {
        let mut buf = [0u64; 4];
        let n = op.n as usize;
        for i in 0..n {
            buf[i] = scratch[op.ins[i] as usize];
        }
        // Validated at compile time: combinational cells, matching arity.
        scratch[op.out as usize] = op
            .cell
            .eval_lanes(&buf[..n])
            .expect("tape validated at compile");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lane_spec(cycles: u64, done: DoneSpec) -> LaneSpec {
        LaneSpec {
            activation_cycles: cycles,
            provider_values: Vec::new(),
            memory_init: Vec::new(),
            done,
        }
    }

    /// Driver -> sync responder loop: lane L performs L % 3 + 1
    /// activations; counts and completion must track per lane.
    #[test]
    fn driver_responder_loop_completes_per_lane() {
        let mut b = CircuitBuilder::new();
        let req = b.wire();
        let ack = b.wire();
        let driver = b.add_activation_driver(req, ack);
        let resp = b.add_sync_responder(req, ack);
        let c = b.finish();
        let lanes: Vec<LaneSpec> = (0..64)
            .map(|l| lane_spec(l % 3 + 1, DoneSpec::Activations(driver, l % 3 + 1)))
            .collect();
        let r = c.run(&RunSpec {
            lanes,
            max_waves: 1000,
        });
        assert_eq!(r.completed, !0u64);
        for l in 0..64 {
            assert_eq!(r.sync_counts[&resp.0][l], l as u64 % 3 + 1, "lane {l}");
            assert_eq!(r.driver_completions[&driver.0][l], l as u64 % 3 + 1);
        }
        // Lanes complete at different waves; later traffic must not bump
        // frozen counters.
        assert!(r.waves > 4);
    }

    /// A buffered controller (output = Buf(input) through an inverter
    /// pair) between driver and responder.
    #[test]
    fn controller_tape_propagates_through_gates() {
        let mut b = CircuitBuilder::new();
        let a_req = b.wire();
        let a_ack = b.wire();
        let c_req = b.wire();
        b.add_activation_driver(a_req, a_ack);
        // Tape: node 0 = input (a_req), node 1 = Inv(0), node 2 = Inv(1).
        // Output root = node 2 (== input), driving c_req.
        let ctrl = b
            .add_controller(
                "buf",
                vec![a_req],
                vec![c_req],
                0,
                0,
                3,
                &[],
                &[
                    GateSpec {
                        cell: CellKind::Inv,
                        inputs: vec![0],
                        output: 1,
                    },
                    GateSpec {
                        cell: CellKind::Inv,
                        inputs: vec![1],
                        output: 2,
                    },
                ],
                &[2],
                &[],
            )
            .unwrap();
        let resp = b.add_sync_responder(c_req, a_ack);
        let c = b.finish();
        assert_eq!(c.tapes()[ctrl.0 as usize - 1].levels, 3);
        let lanes: Vec<LaneSpec> = (0..10)
            .map(|_| lane_spec(2, DoneSpec::Syncs(resp, 2)))
            .collect();
        let r = c.run(&RunSpec {
            lanes,
            max_waves: 1000,
        });
        assert_eq!(r.completed, (1u64 << 10) - 1);
        for l in 0..10 {
            assert_eq!(r.sync_counts[&resp.0][l], 2);
        }
        assert!(r.settle_iters > 0);
    }

    /// A one-state-bit controller whose feedback settles in two
    /// iterations: y0 = Buf(input), output = Buf(y0). The settle loop must
    /// deliver the output of the *settled* state.
    #[test]
    fn state_feedback_settles_to_fixpoint() {
        let mut b = CircuitBuilder::new();
        let a_req = b.wire();
        let a_ack = b.wire();
        let o = b.wire();
        let driver = b.add_activation_driver(a_req, a_ack);
        // Nodes: 0 = input wire, 1 = state bit y0, 2 = Buf(0) (next-state
        // root), 3 = Buf(1) (output root).
        b.add_controller(
            "fb",
            vec![a_req],
            vec![o],
            1,
            0,
            4,
            &[],
            &[
                GateSpec {
                    cell: CellKind::Buf,
                    inputs: vec![0],
                    output: 2,
                },
                GateSpec {
                    cell: CellKind::Buf,
                    inputs: vec![1],
                    output: 3,
                },
            ],
            &[3],
            &[2],
        )
        .unwrap();
        let resp = b.add_sync_responder(o, a_ack);
        let c = b.finish();
        let lanes = vec![lane_spec(1, DoneSpec::Activations(driver, 1))];
        let r = c.run(&RunSpec {
            lanes,
            max_waves: 1000,
        });
        assert_eq!(r.completed, 1);
        assert_eq!(r.sync_counts[&resp.0][0], 1);
    }

    #[test]
    fn cyclic_tape_is_rejected() {
        let mut b = CircuitBuilder::new();
        let w = b.wire();
        let o = b.wire();
        let err = b
            .add_controller(
                "cyc",
                vec![w],
                vec![o],
                0,
                0,
                3,
                &[],
                &[
                    GateSpec {
                        cell: CellKind::Inv,
                        inputs: vec![2],
                        output: 1,
                    },
                    GateSpec {
                        cell: CellKind::Inv,
                        inputs: vec![1],
                        output: 2,
                    },
                ],
                &[1],
                &[],
            )
            .unwrap_err();
        assert!(matches!(err, CompileError::Cycle { node: 1, .. }), "{err}");
    }

    #[test]
    fn malformed_tapes_are_rejected() {
        let mut b = CircuitBuilder::new();
        let w = b.wire();
        let o = b.wire();
        // Stateful cell.
        let err = b
            .add_controller(
                "c2",
                vec![w],
                vec![o],
                0,
                0,
                2,
                &[],
                &[GateSpec {
                    cell: CellKind::Celem2,
                    inputs: vec![0, 0],
                    output: 1,
                }],
                &[1],
                &[],
            )
            .unwrap_err();
        assert!(err.to_string().contains("stateful"));
        // Double-driven node.
        let err = b
            .add_controller(
                "dd",
                vec![w],
                vec![o],
                0,
                0,
                2,
                &[],
                &[
                    GateSpec {
                        cell: CellKind::Inv,
                        inputs: vec![0],
                        output: 1,
                    },
                    GateSpec {
                        cell: CellKind::Buf,
                        inputs: vec![0],
                        output: 1,
                    },
                ],
                &[1],
                &[],
            )
            .unwrap_err();
        assert!(err.to_string().contains("two gates"));
    }

    #[test]
    fn backend_auto_resolves_by_batch_size() {
        assert_eq!(SimBackend::Auto.resolve(1), SimBackend::EventWheel);
        assert_eq!(SimBackend::Auto.resolve(2), SimBackend::Compiled);
        assert_eq!(SimBackend::Compiled.resolve(1), SimBackend::Compiled);
        assert_eq!(SimBackend::EventWheel.resolve(64), SimBackend::EventWheel);
    }
}
