//! Simulation primitives: synthesized burst-mode controllers, behavioural
//! datapath handshake components, and environment processes.
//!
//! Controllers evaluate their hazard-free two-level covers functionally and
//! apply the per-output delays back-annotated from technology mapping — the
//! analogue of the paper's `pearl`-back-annotated Verilog-XL simulation.
//! Datapath components follow four-phase bundled-data protocols with fixed
//! latencies (see [`Delays`]).

use crate::engine::{Ctx, NodeId, Primitive, SlotId, Time};
use bmbe_hsnet::{BinOp, UnOp};
use bmbe_logic::Cover;
use std::any::Any;

/// Latency parameters (ps) of the behavioural datapath and environment.
#[derive(Debug, Clone)]
pub struct Delays {
    /// Inter-component wire delay added to controller outputs.
    pub wire: Time,
    /// Variable read access.
    pub var_read: Time,
    /// Variable write.
    pub var_write: Time,
    /// Constant source.
    pub constant: Time,
    /// Adder/subtracter.
    pub arith: Time,
    /// Comparator.
    pub compare: Time,
    /// Bitwise logic.
    pub logic: Time,
    /// Unary function.
    pub unary: Time,
    /// Memory access.
    pub memory: Time,
    /// Call-mux / pull-mux steering.
    pub mux: Time,
    /// Select demultiplexer (case/while ack steering).
    pub select: Time,
    /// Environment response.
    pub env: Time,
}

impl Default for Delays {
    fn default() -> Self {
        Delays {
            wire: 120,
            var_read: 200,
            var_write: 250,
            constant: 100,
            arith: 1500,
            compare: 1200,
            logic: 600,
            unary: 300,
            memory: 2000,
            mux: 250,
            select: 300,
            env: 100,
        }
    }
}

impl Delays {
    /// Delay of a binary operation.
    pub fn binop(&self, op: BinOp) -> Time {
        match op {
            BinOp::Add | BinOp::Sub => self.arith,
            BinOp::Eq | BinOp::Lt | BinOp::SLt => self.compare,
            BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Shr => self.logic,
        }
    }
}

/// A four-phase bundled-data channel endpoint used by primitives.
#[derive(Debug, Clone, Copy)]
pub struct DataCh {
    /// Request wire.
    pub req: NodeId,
    /// Acknowledge wire.
    pub ack: NodeId,
    /// Data slot.
    pub slot: SlotId,
}

/// Evaluates a binary op on 64-bit values.
pub fn eval_binop(op: BinOp, a: u64, b: u64) -> u64 {
    match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Eq => (a == b) as u64,
        BinOp::Lt => (a < b) as u64,
        BinOp::SLt => ((a as i64) < (b as i64)) as u64,
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shr => a >> (b & 63),
    }
}

/// Evaluates a unary op.
pub fn eval_unop(op: UnOp, a: u64) -> u64 {
    match op {
        UnOp::Id => a,
        UnOp::Not => !a,
        UnOp::Neg => a.wrapping_neg(),
        UnOp::IsNeg => ((a as i64) < 0) as u64,
        UnOp::IsZero => (a == 0) as u64,
    }
}

// ---------------------------------------------------------------------------
// Synthesized controller
// ---------------------------------------------------------------------------

/// A synthesized burst-mode controller with back-annotated delays.
///
/// The state feedback is resolved *atomically* at each input event (the
/// Mealy semantics the burst-mode specification defines; the synthesized
/// logic is separately proven hazard-free, so the racing state bits never
/// produce different behaviour). Mapped per-output delays time the output
/// edges; this mirrors back-annotated functional simulation.
pub struct ControllerPrim {
    /// Input wires, in function-variable order.
    pub inputs: Vec<NodeId>,
    /// Output wires, matching `output_covers`.
    pub outputs: Vec<NodeId>,
    /// One cover per output, over inputs ++ state bits.
    pub output_covers: Vec<Cover>,
    /// One cover per state bit.
    pub next_state_covers: Vec<Cover>,
    /// Current state code.
    pub state: u64,
    /// Per-output delay (ps), including the inter-component wire delay.
    pub output_delays: Vec<Time>,
    /// Memoized settled transitions: slot = (key + 1, settled state,
    /// packed output bits), key = inputs | state << |inputs|, 0 = empty.
    /// Burst-mode controllers revisit a handful of (input, state) points
    /// millions of times in a long run; one open-addressed probe replaces
    /// the full cover evaluation. Empty when the packing preconditions
    /// (key and output bits each fit a `u64`) do not hold.
    memo: Vec<(u64, u64, u64)>,
}

const MEMO_SLOTS: usize = 256;
const MEMO_PROBES: usize = 8;

impl ControllerPrim {
    /// Builds a controller primitive in its initial state.
    pub fn new(
        inputs: Vec<NodeId>,
        outputs: Vec<NodeId>,
        output_covers: Vec<Cover>,
        next_state_covers: Vec<Cover>,
        initial_state: u64,
        output_delays: Vec<Time>,
    ) -> Self {
        let memoizable =
            inputs.len() + next_state_covers.len() < 64 && output_covers.len() <= 64;
        ControllerPrim {
            inputs,
            outputs,
            output_covers,
            next_state_covers,
            state: initial_state,
            output_delays,
            memo: if memoizable {
                vec![(0, 0, 0); MEMO_SLOTS]
            } else {
                Vec::new()
            },
        }
    }

    fn input_point(&self, ctx: &Ctx<'_>) -> u64 {
        let mut p = 0u64;
        for (i, &n) in self.inputs.iter().enumerate() {
            p |= (ctx.get(n) as u64) << i;
        }
        p
    }

    fn next_state(&self, x: u64, y: u64) -> u64 {
        let p = x | y << self.inputs.len();
        self.next_state_covers
            .iter()
            .enumerate()
            .fold(0u64, |acc, (j, c)| acc | (c.eval(p) as u64) << j)
    }

    fn memo_slot(key: u64) -> usize {
        (key.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 56) as usize
    }

    fn memo_get(&self, key: u64) -> Option<(u64, u64)> {
        if self.memo.is_empty() {
            return None;
        }
        let mut i = Self::memo_slot(key);
        for _ in 0..MEMO_PROBES {
            let (k, s, b) = self.memo[i & (MEMO_SLOTS - 1)];
            if k == key + 1 {
                return Some((s, b));
            }
            if k == 0 {
                return None;
            }
            i += 1;
        }
        None
    }

    fn memo_put(&mut self, key: u64, state: u64, bits: u64) {
        if self.memo.is_empty() {
            return;
        }
        let mut i = Self::memo_slot(key);
        for _ in 0..MEMO_PROBES {
            let slot = &mut self.memo[i & (MEMO_SLOTS - 1)];
            if slot.0 == 0 {
                *slot = (key + 1, state, bits);
                return;
            }
            i += 1;
        }
        // Saturated neighborhood: this transition stays unmemoized.
    }

    /// Settles the feedback and evaluates the outputs at input point `x`
    /// from the current state (one step suffices for an STT assignment; a
    /// couple more guard against pathological inputs).
    fn settle(&self, x: u64) -> (u64, u64) {
        let mut state = self.state;
        for _ in 0..4 {
            let y = self.next_state(x, state);
            if y == state {
                break;
            }
            state = y;
        }
        let p = x | state << self.inputs.len();
        let bits = self
            .output_covers
            .iter()
            .enumerate()
            .fold(0u64, |acc, (i, c)| acc | (c.eval(p) as u64) << i);
        (state, bits)
    }
}

impl Primitive for ControllerPrim {
    fn on_change(&mut self, ctx: &mut Ctx<'_>, _node: NodeId) {
        let x = self.input_point(ctx);
        let key = x | self.state << self.inputs.len();
        let (state, bits) = match self.memo_get(key) {
            Some(hit) => hit,
            None => {
                let computed = self.settle(x);
                self.memo_put(key, computed.0, computed.1);
                computed
            }
        };
        self.state = state;
        for i in 0..self.outputs.len() {
            let v = (bits >> i) & 1 != 0;
            if v != ctx.get(self.outputs[i]) {
                ctx.set_after(self.outputs[i], v, self.output_delays[i]);
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

// ---------------------------------------------------------------------------
// Datapath primitives
// ---------------------------------------------------------------------------

/// Constant source: a passive pull provider.
pub struct ConstantPrim {
    /// Its channel.
    pub ch: DataCh,
    /// The constant.
    pub value: u64,
    /// Response delay.
    pub delay: Time,
}

impl Primitive for ConstantPrim {
    fn on_change(&mut self, ctx: &mut Ctx<'_>, _node: NodeId) {
        let req = ctx.get(self.ch.req);
        if req {
            ctx.write_slot(self.ch.slot, self.value);
            ctx.set_after(self.ch.ack, true, self.delay);
        } else {
            ctx.set_after(self.ch.ack, false, self.delay / 2 + 1);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Storage variable: passive write port, passive read ports.
pub struct VariablePrim {
    /// Current value.
    pub value: u64,
    /// Write channel.
    pub write: DataCh,
    /// Read channels.
    pub reads: Vec<DataCh>,
    /// Write latch delay.
    pub wdelay: Time,
    /// Read access delay.
    pub rdelay: Time,
}

impl Primitive for VariablePrim {
    fn on_change(&mut self, ctx: &mut Ctx<'_>, node: NodeId) {
        if node == self.write.req {
            if ctx.get(self.write.req) {
                self.value = ctx.read_slot(self.write.slot);
                ctx.set_after(self.write.ack, true, self.wdelay);
            } else {
                ctx.set_after(self.write.ack, false, self.wdelay / 2 + 1);
            }
            return;
        }
        for r in &self.reads {
            if node == r.req {
                if ctx.get(r.req) {
                    ctx.write_slot(r.slot, self.value);
                    ctx.set_after(r.ack, true, self.rdelay);
                } else {
                    ctx.set_after(r.ack, false, self.rdelay / 2 + 1);
                }
                return;
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Binary function: passive result provider that pulls both operands.
pub struct BinFuncPrim {
    /// The operation.
    pub op: BinOp,
    /// Result channel.
    pub out: DataCh,
    /// Left operand channel.
    pub lhs: DataCh,
    /// Right operand channel.
    pub rhs: DataCh,
    /// Compute delay.
    pub delay: Time,
}

impl Primitive for BinFuncPrim {
    fn on_change(&mut self, ctx: &mut Ctx<'_>, node: NodeId) {
        let out_req = ctx.get(self.out.req);
        if node == self.out.req {
            if out_req {
                ctx.set_after(self.lhs.req, true, 1);
                ctx.set_after(self.rhs.req, true, 1);
            }
        }
        if (node == self.lhs.ack || node == self.rhs.ack)
            && ctx.get(self.lhs.ack)
            && ctx.get(self.rhs.ack)
            && out_req
        {
            let v = eval_binop(
                self.op,
                ctx.read_slot(self.lhs.slot),
                ctx.read_slot(self.rhs.slot),
            );
            ctx.write_slot(self.out.slot, v);
            ctx.set_after(self.out.ack, true, self.delay);
            ctx.set_after(self.lhs.req, false, 1);
            ctx.set_after(self.rhs.req, false, 1);
        }
        // Return-to-zero of the result once everything is quiet.
        if !out_req && !ctx.get(self.lhs.ack) && !ctx.get(self.rhs.ack) && ctx.get(self.out.ack) {
            ctx.set_after(self.out.ack, false, 1);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Unary function (including the identity bridge).
pub struct UnFuncPrim {
    /// The operation.
    pub op: UnOp,
    /// Result channel.
    pub out: DataCh,
    /// Operand channel.
    pub operand: DataCh,
    /// Compute delay.
    pub delay: Time,
}

impl Primitive for UnFuncPrim {
    fn on_change(&mut self, ctx: &mut Ctx<'_>, node: NodeId) {
        let out_req = ctx.get(self.out.req);
        if node == self.out.req && out_req {
            ctx.set_after(self.operand.req, true, 1);
        }
        if node == self.operand.ack && ctx.get(self.operand.ack) && out_req {
            let v = eval_unop(self.op, ctx.read_slot(self.operand.slot));
            ctx.write_slot(self.out.slot, v);
            ctx.set_after(self.out.ack, true, self.delay);
            ctx.set_after(self.operand.req, false, 1);
        }
        if !out_req && !ctx.get(self.operand.ack) && ctx.get(self.out.ack) {
            ctx.set_after(self.out.ack, false, 1);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Call-mux: mutually exclusive pushes merged onto one output push.
pub struct CallMuxPrim {
    /// The writer channels.
    pub ins: Vec<DataCh>,
    /// The merged output.
    pub out: DataCh,
    /// Steering delay.
    pub delay: Time,
    active: Option<usize>,
}

impl CallMuxPrim {
    /// Creates the primitive.
    pub fn new(ins: Vec<DataCh>, out: DataCh, delay: Time) -> Self {
        CallMuxPrim {
            ins,
            out,
            delay,
            active: None,
        }
    }
}

impl Primitive for CallMuxPrim {
    fn on_change(&mut self, ctx: &mut Ctx<'_>, node: NodeId) {
        for (i, ch) in self.ins.iter().enumerate() {
            if node == ch.req {
                if ctx.get(ch.req) {
                    self.active = Some(i);
                    let v = ctx.read_slot(ch.slot);
                    ctx.write_slot(self.out.slot, v);
                    ctx.set_after(self.out.req, true, self.delay);
                } else {
                    ctx.set_after(self.out.req, false, self.delay / 2 + 1);
                }
                return;
            }
        }
        if node == self.out.ack {
            if let Some(i) = self.active {
                let v = ctx.get(self.out.ack);
                ctx.set_after(self.ins[i].ack, v, 1);
                if !v {
                    self.active = None;
                }
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Pull-mux: mutually exclusive pull clients sharing one pulled source.
pub struct PullMuxPrim {
    /// The client channels.
    pub clients: Vec<DataCh>,
    /// The shared source.
    pub source: DataCh,
    /// Steering delay.
    pub delay: Time,
    active: Option<usize>,
}

impl PullMuxPrim {
    /// Creates the primitive.
    pub fn new(clients: Vec<DataCh>, source: DataCh, delay: Time) -> Self {
        PullMuxPrim {
            clients,
            source,
            delay,
            active: None,
        }
    }
}

impl Primitive for PullMuxPrim {
    fn on_change(&mut self, ctx: &mut Ctx<'_>, node: NodeId) {
        for (i, ch) in self.clients.iter().enumerate() {
            if node == ch.req {
                if ctx.get(ch.req) {
                    self.active = Some(i);
                    ctx.set_after(self.source.req, true, self.delay / 2 + 1);
                } else {
                    ctx.set_after(self.source.req, false, self.delay / 2 + 1);
                }
                return;
            }
        }
        if node == self.source.ack {
            if let Some(i) = self.active {
                let v = ctx.get(self.source.ack);
                if v {
                    let data = ctx.read_slot(self.source.slot);
                    ctx.write_slot(self.clients[i].slot, data);
                }
                ctx.set_after(self.clients[i].ack, v, self.delay / 2 + 1);
                if !v {
                    self.active = None;
                }
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// One read or write site of a memory.
#[derive(Debug, Clone, Copy)]
pub struct MemSite {
    /// Data channel (pull provider for reads, push consumer for writes).
    pub data: DataCh,
    /// Address channel (the memory actively pulls it).
    pub addr: DataCh,
}

/// Word-addressed memory.
pub struct MemoryPrim {
    /// The words.
    pub words: Vec<u64>,
    /// Read sites.
    pub reads: Vec<MemSite>,
    /// Write sites.
    pub writes: Vec<MemSite>,
    /// Access delay.
    pub delay: Time,
    raddr: Vec<u64>,
}

impl MemoryPrim {
    /// Creates a memory with all words zero.
    pub fn new(words: usize, reads: Vec<MemSite>, writes: Vec<MemSite>, delay: Time) -> Self {
        let n = reads.len();
        MemoryPrim {
            words: vec![0; words],
            reads,
            writes,
            delay,
            raddr: vec![0; n],
        }
    }
}

impl Primitive for MemoryPrim {
    fn on_change(&mut self, ctx: &mut Ctx<'_>, node: NodeId) {
        for i in 0..self.reads.len() {
            let site = self.reads[i];
            if node == site.data.req {
                if ctx.get(site.data.req) {
                    ctx.set_after(site.addr.req, true, 1);
                } else {
                    ctx.set_after(site.data.ack, false, 1);
                }
                return;
            }
            if node == site.addr.ack {
                if ctx.get(site.addr.ack) {
                    self.raddr[i] = ctx.read_slot(site.addr.slot);
                    ctx.set_after(site.addr.req, false, 1);
                } else if ctx.get(site.data.req) {
                    let a = (self.raddr[i] as usize) % self.words.len();
                    let v = self.words[a];
                    ctx.write_slot(site.data.slot, v);
                    ctx.set_after(site.data.ack, true, self.delay);
                }
                return;
            }
        }
        for j in 0..self.writes.len() {
            let site = self.writes[j];
            if node == site.data.req {
                if ctx.get(site.data.req) {
                    ctx.set_after(site.addr.req, true, 1);
                } else {
                    ctx.set_after(site.data.ack, false, 1);
                }
                return;
            }
            if node == site.addr.ack {
                if ctx.get(site.addr.ack) {
                    let a = (ctx.read_slot(site.addr.slot) as usize) % self.words.len();
                    let v = ctx.read_slot(site.data.slot);
                    self.words[a] = v;
                    ctx.set_after(site.addr.req, false, 1);
                } else if ctx.get(site.data.req) {
                    ctx.set_after(site.data.ack, true, self.delay);
                }
                return;
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Select demultiplexer for case/while components: pulls the selector value
/// and steers the acknowledge onto one of the controller's select-ack wires.
pub struct SelectAdapterPrim {
    /// The controller's select request (watched).
    pub sel_req: NodeId,
    /// The controller's per-branch acknowledge wires (driven).
    pub sel_acks: Vec<NodeId>,
    /// The selector value provider channel.
    pub provider: DataCh,
    /// Steering delay.
    pub delay: Time,
    chosen: Option<usize>,
}

impl SelectAdapterPrim {
    /// Creates the adapter.
    pub fn new(sel_req: NodeId, sel_acks: Vec<NodeId>, provider: DataCh, delay: Time) -> Self {
        SelectAdapterPrim {
            sel_req,
            sel_acks,
            provider,
            delay,
            chosen: None,
        }
    }
}

impl Primitive for SelectAdapterPrim {
    fn on_change(&mut self, ctx: &mut Ctx<'_>, node: NodeId) {
        if node == self.sel_req {
            if ctx.get(self.sel_req) {
                ctx.set_after(self.provider.req, true, 1);
            } else if let Some(c) = self.chosen.take() {
                ctx.set_after(self.sel_acks[c], false, self.delay / 2 + 1);
            }
        }
        if node == self.provider.ack && ctx.get(self.provider.ack) && ctx.get(self.sel_req) {
            let v = ctx.read_slot(self.provider.slot) as usize;
            let c = v.min(self.sel_acks.len() - 1);
            self.chosen = Some(c);
            ctx.set_after(self.sel_acks[c], true, self.delay);
            ctx.set_after(self.provider.req, false, 1);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Bundled-data forwarding inside a fetch component: copies the pulled
/// value to the push channel's slot as soon as the pull acknowledges.
pub struct FetchDataPrim {
    /// The pull channel (its ack is watched).
    pub pull: DataCh,
    /// The push channel (its slot is written).
    pub push: DataCh,
}

impl Primitive for FetchDataPrim {
    fn on_change(&mut self, ctx: &mut Ctx<'_>, node: NodeId) {
        if node == self.pull.ack && ctx.get(self.pull.ack) {
            let v = ctx.read_slot(self.pull.slot);
            ctx.write_slot(self.push.slot, v);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

// ---------------------------------------------------------------------------
// Environment processes
// ---------------------------------------------------------------------------

/// Drives the design's top activation with repeated four-phase handshakes
/// and records completion.
pub struct ActivationDriverEnv {
    /// The request we drive.
    pub req: NodeId,
    /// The acknowledge we watch.
    pub ack: NodeId,
    /// Number of activation cycles to perform.
    pub cycles: usize,
    /// Completed cycles.
    pub completions: usize,
    /// Time of the final completion (ps).
    pub done_time: Option<Time>,
    /// Environment reaction delay.
    pub delay: Time,
}

impl Primitive for ActivationDriverEnv {
    fn init(&mut self, ctx: &mut Ctx<'_>) {
        if self.cycles > 0 {
            ctx.set_after(self.req, true, self.delay);
        }
    }

    fn on_change(&mut self, ctx: &mut Ctx<'_>, _node: NodeId) {
        if ctx.get(self.ack) {
            ctx.set_after(self.req, false, self.delay);
        } else {
            self.completions += 1;
            if self.completions < self.cycles {
                ctx.set_after(self.req, true, self.delay);
            } else {
                self.done_time = Some(ctx.now());
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Passive responder on a sync port: acknowledges every request.
pub struct SyncResponderEnv {
    /// The request we watch.
    pub req: NodeId,
    /// The acknowledge we drive.
    pub ack: NodeId,
    /// Response delay.
    pub delay: Time,
    /// Completed handshakes.
    pub count: usize,
}

impl Primitive for SyncResponderEnv {
    fn on_change(&mut self, ctx: &mut Ctx<'_>, _node: NodeId) {
        let v = ctx.get(self.req);
        if !v {
            self.count += 1;
        }
        ctx.set_after(self.ack, v, self.delay);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Passive pull provider on an input port: supplies scripted values.
pub struct PullProviderEnv {
    /// The channel (we own the passive side).
    pub ch: DataCh,
    /// Values to supply, cycled when exhausted.
    pub values: Vec<u64>,
    /// Next index.
    pub ix: usize,
    /// Response delay.
    pub delay: Time,
}

impl Primitive for PullProviderEnv {
    fn on_change(&mut self, ctx: &mut Ctx<'_>, _node: NodeId) {
        if ctx.get(self.ch.req) {
            let v = if self.values.is_empty() {
                0
            } else {
                self.values[self.ix % self.values.len()]
            };
            self.ix += 1;
            ctx.write_slot(self.ch.slot, v);
            ctx.set_after(self.ch.ack, true, self.delay);
        } else {
            ctx.set_after(self.ch.ack, false, self.delay / 2 + 1);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Passive push consumer on an output port: records received values.
pub struct PushConsumerEnv {
    /// The channel (we own the passive side).
    pub ch: DataCh,
    /// Everything received.
    pub received: Vec<u64>,
    /// Response delay.
    pub delay: Time,
}

impl Primitive for PushConsumerEnv {
    fn on_change(&mut self, ctx: &mut Ctx<'_>, _node: NodeId) {
        if ctx.get(self.ch.req) {
            self.received.push(ctx.read_slot(self.ch.slot));
            ctx.set_after(self.ch.ack, true, self.delay);
        } else {
            ctx.set_after(self.ch.ack, false, self.delay / 2 + 1);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Sim;

    fn ch(sim: &mut Sim, name: &str) -> DataCh {
        DataCh {
            req: sim.node(&format!("{name}_r")),
            ack: sim.node(&format!("{name}_a")),
            slot: sim.slot(),
        }
    }

    #[test]
    fn constant_answers_pulls() {
        let mut sim = Sim::new();
        let c = ch(&mut sim, "k");
        sim.add_prim(
            Box::new(ConstantPrim {
                ch: c,
                value: 42,
                delay: 100,
            }),
            &[c.req],
        );
        sim.init();
        // Drive a pull by scheduling req+ manually through a driver prim.
        struct Once {
            req: NodeId,
            ack: NodeId,
            got: Option<u64>,
            slot: SlotId,
        }
        impl Primitive for Once {
            fn init(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_after(self.req, true, 10);
            }
            fn on_change(&mut self, ctx: &mut Ctx<'_>, _node: NodeId) {
                if ctx.get(self.ack) {
                    self.got = Some(ctx.read_slot(self.slot));
                    ctx.set_after(self.req, false, 10);
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        let driver = sim.add_prim(
            Box::new(Once {
                req: c.req,
                ack: c.ack,
                got: None,
                slot: c.slot,
            }),
            &[c.ack],
        );
        sim.init();
        sim.run_until(|_| false, 10_000);
        let d: &Once = sim.prim(driver).unwrap();
        assert_eq!(d.got, Some(42));
    }

    #[test]
    fn variable_stores_and_reads() {
        let mut sim = Sim::new();
        let w = ch(&mut sim, "v_w");
        let r = ch(&mut sim, "v_rd");
        sim.add_prim(
            Box::new(VariablePrim {
                value: 0,
                write: w,
                reads: vec![r],
                wdelay: 50,
                rdelay: 50,
            }),
            &[w.req, r.req],
        );
        struct Script {
            w: DataCh,
            r: DataCh,
            phase: usize,
            got: Option<u64>,
        }
        impl Primitive for Script {
            fn init(&mut self, ctx: &mut Ctx<'_>) {
                ctx.write_slot(self.w.slot, 7);
                ctx.set_after(self.w.req, true, 10);
            }
            fn on_change(&mut self, ctx: &mut Ctx<'_>, node: NodeId) {
                match self.phase {
                    0 if node == self.w.ack && ctx.get(self.w.ack) => {
                        self.phase = 1;
                        ctx.set_after(self.w.req, false, 10);
                    }
                    1 if node == self.w.ack && !ctx.get(self.w.ack) => {
                        self.phase = 2;
                        ctx.set_after(self.r.req, true, 10);
                    }
                    2 if node == self.r.ack && ctx.get(self.r.ack) => {
                        self.got = Some(ctx.read_slot(self.r.slot));
                        ctx.set_after(self.r.req, false, 10);
                    }
                    _ => {}
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        let script = sim.add_prim(
            Box::new(Script {
                w,
                r,
                phase: 0,
                got: None,
            }),
            &[w.ack, r.ack],
        );
        sim.init();
        sim.run_until(|_| false, 100_000);
        let s: &Script = sim.prim(script).unwrap();
        assert_eq!(s.got, Some(7));
    }

    #[test]
    fn binfunc_computes_sum_of_constants() {
        let mut sim = Sim::new();
        let out = ch(&mut sim, "f");
        let l = ch(&mut sim, "l");
        let r = ch(&mut sim, "r");
        sim.add_prim(
            Box::new(ConstantPrim {
                ch: l,
                value: 30,
                delay: 50,
            }),
            &[l.req],
        );
        sim.add_prim(
            Box::new(ConstantPrim {
                ch: r,
                value: 12,
                delay: 70,
            }),
            &[r.req],
        );
        sim.add_prim(
            Box::new(BinFuncPrim {
                op: BinOp::Add,
                out,
                lhs: l,
                rhs: r,
                delay: 200,
            }),
            &[out.req, l.ack, r.ack],
        );
        struct Puller {
            ch: DataCh,
            got: Option<u64>,
        }
        impl Primitive for Puller {
            fn init(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_after(self.ch.req, true, 10);
            }
            fn on_change(&mut self, ctx: &mut Ctx<'_>, _n: NodeId) {
                if ctx.get(self.ch.ack) {
                    self.got = Some(ctx.read_slot(self.ch.slot));
                    ctx.set_after(self.ch.req, false, 10);
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        let p = sim.add_prim(Box::new(Puller { ch: out, got: None }), &[out.ack]);
        sim.init();
        sim.run_until(|_| false, 100_000);
        let puller: &Puller = sim.prim(p).unwrap();
        assert_eq!(puller.got, Some(42));
    }

    #[test]
    fn eval_helpers() {
        assert_eq!(eval_binop(BinOp::Sub, 5, 7), (-2i64) as u64);
        assert_eq!(eval_binop(BinOp::SLt, (-1i64) as u64, 1), 1);
        assert_eq!(eval_binop(BinOp::Lt, (-1i64) as u64, 1), 0);
        assert_eq!(eval_unop(UnOp::IsZero, 0), 1);
        assert_eq!(eval_unop(UnOp::IsNeg, (-5i64) as u64), 1);
        assert_eq!(eval_unop(UnOp::Id, 9), 9);
    }
}
