//! The discrete-event simulation engine.
//!
//! Wires carry Boolean values; data moves in per-channel value slots
//! (bundled-data abstraction). Primitives — synthesized controllers,
//! behavioural datapath components, and environment processes — react to
//! wire changes and schedule further changes after their delays. Time is in
//! picoseconds.
//!
//! # Scheduling
//!
//! The production scheduler is a hierarchical event wheel (a calendar
//! queue, [`EventWheel`]): events within a fixed horizon live in
//! granularity-sized buckets indexed by an occupancy bitmap, events beyond
//! the horizon wait in an overflow heap and cascade into the wheel when it
//! rebases. Same-timestamp events are drained as one batch sorted by
//! sequence number, which reproduces the exact `(time, seq)` FIFO
//! tie-break of a binary heap while touching each bucket once. The seed's
//! `BinaryHeap` scheduler is kept, bit-for-bit, as [`SchedulerKind::Heap`]
//! — the reference oracle the differential property tests and the
//! `BENCH_sim` before/after numbers compare against.
//!
//! Action slots are free-listed: a slot is recycled as soon as its event
//! fires, so the action table stays as small as the peak number of
//! in-flight events instead of growing with the lifetime event count (the
//! heap oracle intentionally keeps the seed's append-only log). Watcher
//! delivery is indexed — no per-event clone of the watcher list.

use std::any::Any;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::HashMap;
use std::sync::Arc;

/// Simulation time in picoseconds.
pub type Time = u64;

/// Identifier of a wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Identifier of a data slot (one per data channel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotId(pub usize);

/// Identifier of a primitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PrimId(pub usize);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    SetNode(NodeId, bool),
    Notify(PrimId, u64),
}

/// Which scheduler backs a [`Sim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// The calendar-queue event wheel with free-listed action slots and
    /// indexed watcher delivery (the production path).
    #[default]
    Wheel,
    /// The seed's `BinaryHeap` scheduler with its append-only action log
    /// and per-event watcher-list clone, kept as the reference oracle.
    Heap,
    /// Picks per design: the heap for small circuits (whose peak queue
    /// depth of 1–3 never reaches the wheel's interesting regime), the
    /// wheel above [`AUTO_HEAP_MAX_PRIMS`] primitives. Resolved by
    /// [`SchedulerKind::resolve`] before a [`Sim`] is built.
    Auto,
}

/// Primitive-count threshold for [`SchedulerKind::Auto`]: at or below this
/// many primitives a design's event traffic is so shallow (BENCH_sim shows
/// peak queue depths of 1–3 on the three small paper designs) that the
/// plain binary heap wins; above it the wheel's O(1) bucket operations pay
/// off. The paper designs straddle it (counting handshake components plus
/// synthesized controllers): Systolic counter (10), Stack (26) and Wagging
/// register (53) resolve to the heap, the Microprocessor core (74) to the
/// wheel.
pub const AUTO_HEAP_MAX_PRIMS: usize = 56;

impl SchedulerKind {
    /// Resolves [`SchedulerKind::Auto`] against the size of the simulation
    /// (number of primitives); `Wheel` and `Heap` pass through unchanged.
    pub fn resolve(self, prims: usize) -> SchedulerKind {
        match self {
            SchedulerKind::Auto if prims <= AUTO_HEAP_MAX_PRIMS => SchedulerKind::Heap,
            SchedulerKind::Auto => SchedulerKind::Wheel,
            other => other,
        }
    }
}

/// A scheduled event: `(time, seq, action slot)`. Ordered by `(time, seq)`;
/// `seq` is globally monotonic, so ties in time resolve FIFO.
type Event = (Time, u64, u32);

const MIN_SHIFT: u32 = 6; // finest bucket granularity: 64 ps
const MAX_SHIFT: u32 = 26; // coarsest: ~67 µs per bucket
const WHEEL_BUCKETS: usize = 128;
const WORDS: usize = WHEEL_BUCKETS / 64;

/// A hierarchical event wheel (calendar queue) with adaptive bucket width.
///
/// Events with `time < wheel_start + horizon` live in one of
/// [`WHEEL_BUCKETS`] buckets of `2^shift` ps each; an occupancy bitmap
/// finds the next non-empty bucket in a few word operations. Events beyond
/// the horizon wait in an overflow min-heap and migrate into the buckets
/// when the wheel rebases (which only happens once every bucket is empty,
/// so no event is ever left behind). At each rebase the bucket width is
/// re-fit to the observed inter-event gap, so sparse event streams (gaps
/// wider than the whole fine-grained horizon) do not thrash the overflow
/// heap. Bucket width affects only how events are grouped, never the order
/// they come back out: within a bucket, the minimum timestamp is extracted
/// as a whole batch and sorted by sequence number — identical pop order to
/// a `(time, seq)` binary heap, pinned by the differential property tests
/// in `tests/prop_sched.rs`.
#[derive(Debug)]
pub struct EventWheel {
    /// Depth-1 fast slot: when the queue is empty, the next event is held
    /// here and popped back without touching a bucket, the occupancy
    /// bitmap, or the batch machinery. Handshake circuits spend most of
    /// their life at queue depth 1 (BENCH_sim peaks of 1–3), so this is
    /// the common case; a second push spills the held event into the
    /// buckets and the wheel proceeds as before.
    single: Option<Event>,
    buckets: Vec<Vec<Event>>,
    occupied: [u64; WORDS],
    wheel_start: Time,
    shift: u32,
    cursor: usize,
    near: usize,
    far: BinaryHeap<Reverse<Event>>,
    batch: Vec<Event>,
    batch_ix: usize,
    len: usize,
    peak: usize,
    /// EWMA of the time gap between consecutively popped events, the
    /// density estimate the next rebase fits the bucket width to.
    avg_gap: Time,
    last_pop: Time,
    /// Events that landed in the overflow heap (beyond the horizon).
    far_pushes: u64,
    /// Times the wheel rebased (each rebase re-fits the bucket width).
    refits: u64,
}

impl Default for EventWheel {
    fn default() -> Self {
        Self::new()
    }
}

impl EventWheel {
    /// An empty wheel based at time zero.
    pub fn new() -> Self {
        EventWheel {
            single: None,
            buckets: (0..WHEEL_BUCKETS).map(|_| Vec::new()).collect(),
            occupied: [0; WORDS],
            wheel_start: 0,
            shift: MIN_SHIFT,
            cursor: 0,
            near: 0,
            far: BinaryHeap::new(),
            batch: Vec::new(),
            batch_ix: 0,
            len: 0,
            peak: 0,
            avg_gap: 1 << MIN_SHIFT,
            last_pop: 0,
            far_pushes: 0,
            refits: 0,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Largest number of simultaneously pending events seen so far.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Events pushed beyond the horizon into the overflow heap.
    pub fn far_pushes(&self) -> u64 {
        self.far_pushes
    }

    /// Number of rebases (bucket-width refits) performed.
    pub fn refits(&self) -> u64 {
        self.refits
    }

    /// Schedules an event. `time` must not precede the last popped event's
    /// time (simulation time never runs backwards).
    pub fn push(&mut self, time: Time, seq: u64, slot: u32) {
        debug_assert!(time >= self.wheel_start, "event scheduled in the past");
        self.len += 1;
        self.peak = self.peak.max(self.len);
        if self.len == 1 {
            // Empty queue: hold the event in the fast slot, skipping the
            // bucket machinery entirely for depth-1 traffic.
            self.single = Some((time, seq, slot));
            return;
        }
        if let Some(held) = self.single.take() {
            self.push_inner(held);
        }
        self.push_inner((time, seq, slot));
    }

    /// Files an event into a bucket or the overflow heap (no accounting —
    /// `push` has already counted it).
    fn push_inner(&mut self, e: Event) {
        let offset = ((e.0 - self.wheel_start) >> self.shift) as usize;
        if offset >= WHEEL_BUCKETS {
            self.far_pushes += 1;
            self.far.push(Reverse(e));
            return;
        }
        self.buckets[offset].push(e);
        self.occupied[offset / 64] |= 1 << (offset % 64);
        self.near += 1;
    }

    /// Records the inter-event gap of a popped event for the density
    /// estimate (integer EWMA over the last ~8 events).
    fn note_pop(&mut self, time: Time) {
        let gap = time - self.last_pop;
        self.last_pop = time;
        self.avg_gap = (self.avg_gap - self.avg_gap / 8 + gap / 8).max(1);
    }

    /// Pops the pending event with the least `(time, seq)`.
    pub fn pop(&mut self) -> Option<Event> {
        loop {
            if self.batch_ix < self.batch.len() {
                let e = self.batch[self.batch_ix];
                self.batch_ix += 1;
                self.len -= 1;
                self.note_pop(e.0);
                return Some(e);
            }
            self.batch.clear();
            self.batch_ix = 0;
            if self.len == 0 {
                return None;
            }
            if let Some(e) = self.single.take() {
                // The fast slot only holds an event while it is the whole
                // queue (a second push spills it), so it is the minimum.
                debug_assert_eq!(self.len, 1);
                self.len = 0;
                self.note_pop(e.0);
                return Some(e);
            }
            if self.near == 0 {
                self.rebase();
            }
            let b = self.next_occupied_bucket();
            self.cursor = b;
            let bucket = &mut self.buckets[b];
            // Fast path: a lone event needs none of the batch machinery.
            // This is the common case at the low queue depths handshake
            // circuits run at.
            if bucket.len() == 1 {
                let e = bucket.pop().expect("occupied");
                self.occupied[b / 64] &= !(1 << (b % 64));
                self.near -= 1;
                self.len -= 1;
                self.note_pop(e.0);
                return Some(e);
            }
            // Extract the whole minimum-timestamp batch; later same-time
            // arrivals carry larger seqs and form the next batch, exactly
            // as a heap would interleave them.
            let tmin = bucket.iter().map(|e| e.0).min().expect("occupied");
            let mut i = 0;
            while i < bucket.len() {
                if bucket[i].0 == tmin {
                    self.batch.push(bucket.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            self.near -= self.batch.len();
            if bucket.is_empty() {
                self.occupied[b / 64] &= !(1 << (b % 64));
            }
            self.batch.sort_unstable_by_key(|&(_, seq, _)| seq);
        }
    }

    /// First non-empty bucket at or after the cursor (callers guarantee one
    /// exists: `near > 0`, and events are never scheduled before the last
    /// popped time, so nothing sits behind the cursor).
    fn next_occupied_bucket(&self) -> usize {
        let mut word = self.cursor / 64;
        let mut bits = self.occupied[word] & (!0u64 << (self.cursor % 64));
        loop {
            if bits != 0 {
                return word * 64 + bits.trailing_zeros() as usize;
            }
            word += 1;
            debug_assert!(word < WORDS, "near > 0 but no occupied bucket");
            bits = self.occupied[word];
        }
    }

    /// Re-bases the (fully drained) wheel at the earliest overflow event
    /// and migrates everything within the new horizon into the buckets.
    ///
    /// Bucket width is re-fit here from the observed inter-event gap so the
    /// horizon tracks the workload's time scale: sparse schedules (large
    /// gaps) get wide buckets instead of thrashing the overflow heap.
    /// Since the wheel is empty at rebase and width only affects grouping
    /// (order is resolved per-bucket in `pop`), this never reorders events.
    fn rebase(&mut self) {
        debug_assert_eq!(self.near, 0);
        self.refits += 1;
        // Aim for a bucket width of roughly twice the average gap, i.e.
        // ~2 events per bucket, clamped to the supported range.
        let target = self.avg_gap << 1;
        self.shift = (63 - target.max(1).leading_zeros()).clamp(MIN_SHIFT, MAX_SHIFT);
        let &Reverse((t0, _, _)) = self.far.peek().expect("len > 0 with empty wheel");
        self.wheel_start = t0 & !((1 << self.shift) - 1);
        self.cursor = 0;
        let horizon = self.wheel_start + ((WHEEL_BUCKETS as Time) << self.shift);
        while let Some(&Reverse((t, _, _))) = self.far.peek() {
            if t >= horizon {
                break;
            }
            let Reverse(e) = self.far.pop().expect("peeked");
            let offset = ((e.0 - self.wheel_start) >> self.shift) as usize;
            self.buckets[offset].push(e);
            self.occupied[offset / 64] |= 1 << (offset % 64);
            self.near += 1;
        }
        // Occupancy after migration: how well the refit width spreads the
        // pending events over the 128 buckets. Rebases are rare (the wheel
        // must drain first), so a histogram observation here is off the
        // hot path.
        static OCC_BUCKETS: [u64; 8] = [1, 2, 4, 8, 16, 32, 64, 128];
        let occupied: u32 = self.occupied.iter().map(|w| w.count_ones()).sum();
        bmbe_obs::histogram!("sim.wheel_occupancy", &OCC_BUCKETS).observe(occupied as u64);
    }
}

/// The scheduler behind a [`Sim`]: the event wheel or the heap oracle.
#[derive(Debug)]
enum EventQueue {
    Wheel(EventWheel),
    Heap {
        heap: BinaryHeap<Reverse<Event>>,
        peak: usize,
    },
}

impl EventQueue {
    fn new(kind: SchedulerKind) -> Self {
        match kind {
            // `Auto` should be resolved by the caller (it needs the design
            // size); an unresolved `Auto` gets the production default.
            SchedulerKind::Wheel | SchedulerKind::Auto => EventQueue::Wheel(EventWheel::new()),
            SchedulerKind::Heap => EventQueue::Heap {
                heap: BinaryHeap::new(),
                peak: 0,
            },
        }
    }

    fn push(&mut self, time: Time, seq: u64, slot: u32) {
        match self {
            EventQueue::Wheel(w) => w.push(time, seq, slot),
            EventQueue::Heap { heap, peak } => {
                heap.push(Reverse((time, seq, slot)));
                *peak = (*peak).max(heap.len());
            }
        }
    }

    fn pop(&mut self) -> Option<Event> {
        match self {
            EventQueue::Wheel(w) => w.pop(),
            EventQueue::Heap { heap, .. } => heap.pop().map(|Reverse(e)| e),
        }
    }

    fn peak(&self) -> usize {
        match self {
            EventQueue::Wheel(w) => w.peak(),
            EventQueue::Heap { peak, .. } => *peak,
        }
    }

    /// `(far_pushes, refits)` — zero on the heap oracle, which has no
    /// horizon and never rebases.
    fn wheel_stats(&self) -> (u64, u64) {
        match self {
            EventQueue::Wheel(w) => (w.far_pushes(), w.refits()),
            EventQueue::Heap { .. } => (0, 0),
        }
    }
}

/// A behavioural element of the simulation.
pub trait Primitive: Any {
    /// Called once before simulation starts.
    fn init(&mut self, _ctx: &mut Ctx<'_>) {}

    /// Called when a watched wire changes value.
    fn on_change(&mut self, ctx: &mut Ctx<'_>, node: NodeId);

    /// Called when a self-scheduled notification fires.
    fn on_notify(&mut self, _ctx: &mut Ctx<'_>, _tag: u64) {}

    /// Downcast support for post-simulation inspection.
    fn as_any(&self) -> &dyn Any;
}

/// The API primitives use to interact with the simulation.
pub struct Ctx<'a> {
    nodes: &'a [bool],
    slots: &'a mut [u64],
    queue: &'a mut EventQueue,
    actions: &'a mut Vec<Action>,
    free: &'a mut Vec<u32>,
    seq: &'a mut u64,
    now: Time,
    self_id: PrimId,
}

impl Ctx<'_> {
    /// The current simulation time (ps).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Reads a wire.
    pub fn get(&self, node: NodeId) -> bool {
        self.nodes[node.0]
    }

    /// Reads a data slot.
    pub fn read_slot(&self, slot: SlotId) -> u64 {
        self.slots[slot.0]
    }

    /// Writes a data slot (takes effect immediately — bundled data is
    /// assumed set up before its request/acknowledge edge).
    pub fn write_slot(&mut self, slot: SlotId, value: u64) {
        self.slots[slot.0] = value;
    }

    /// Schedules a wire change `delay` picoseconds from now.
    pub fn set_after(&mut self, node: NodeId, value: bool, delay: Time) {
        *self.seq += 1;
        let idx = self.push_action(Action::SetNode(node, value));
        self.queue.push(self.now + delay, *self.seq, idx);
    }

    /// Schedules a notification to this primitive.
    pub fn notify_after(&mut self, tag: u64, delay: Time) {
        *self.seq += 1;
        let id = self.self_id;
        let idx = self.push_action(Action::Notify(id, tag));
        self.queue.push(self.now + delay, *self.seq, idx);
    }

    /// Claims an action slot from the free list, or extends the table.
    fn push_action(&mut self, a: Action) -> u32 {
        match self.free.pop() {
            Some(i) => {
                self.actions[i as usize] = a;
                i
            }
            None => {
                self.actions.push(a);
                (self.actions.len() - 1) as u32
            }
        }
    }
}

/// The simulator.
pub struct Sim {
    nodes: Vec<bool>,
    node_names: Vec<Arc<str>>,
    names: HashMap<Arc<str>, NodeId>,
    slots: Vec<u64>,
    prims: Vec<Option<Box<dyn Primitive>>>,
    watchers: Vec<Vec<PrimId>>,
    queue: EventQueue,
    actions: Vec<Action>,
    free: Vec<u32>,
    kind: SchedulerKind,
    seq: u64,
    now: Time,
    /// Count of processed events (for run-away detection).
    pub events_processed: u64,
    /// Log every applied wire change (debugging aid). Lines go to stderr
    /// via `bmbe_obs::vlog!` at verbosity ≥ 1; callers that set this should
    /// also call `bmbe_obs::ensure_verbosity(1)` (simbuild does when
    /// `BMBE_SIM_TRACE` is set).
    pub trace: bool,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    /// Creates an empty simulator on the event-wheel scheduler.
    pub fn new() -> Self {
        Self::with_scheduler(SchedulerKind::Wheel)
    }

    /// Creates an empty simulator on the given scheduler.
    ///
    /// [`SchedulerKind::Heap`] reproduces the seed engine exactly — binary
    /// heap, append-only action log, per-event watcher clone — and exists
    /// as the reference oracle for differential tests and benchmarks.
    pub fn with_scheduler(kind: SchedulerKind) -> Self {
        // An unresolved `Auto` (see `SchedulerKind::resolve`) falls back to
        // the production wheel so `self.kind` is always concrete.
        let kind = match kind {
            SchedulerKind::Auto => SchedulerKind::Wheel,
            k => k,
        };
        Sim {
            nodes: Vec::new(),
            node_names: Vec::new(),
            names: HashMap::new(),
            slots: Vec::new(),
            prims: Vec::new(),
            watchers: Vec::new(),
            queue: EventQueue::new(kind),
            actions: Vec::new(),
            free: Vec::new(),
            kind,
            seq: 0,
            now: 0,
            events_processed: 0,
            trace: false,
        }
    }

    /// Which scheduler this simulator runs on.
    pub fn scheduler(&self) -> SchedulerKind {
        self.kind
    }

    /// Creates (or finds) a named wire, initially 0. The name is interned
    /// once (the lookup table and the id-to-name table share one
    /// allocation).
    pub fn node(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.names.get(name) {
            return id;
        }
        let id = NodeId(self.nodes.len());
        let interned: Arc<str> = Arc::from(name);
        self.nodes.push(false);
        self.node_names.push(interned.clone());
        self.names.insert(interned, id);
        self.watchers.push(Vec::new());
        id
    }

    /// The name of a wire.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.node_names[node.0]
    }

    /// Current value of a wire.
    pub fn value(&self, node: NodeId) -> bool {
        self.nodes[node.0]
    }

    /// Allocates a data slot.
    pub fn slot(&mut self) -> SlotId {
        self.slots.push(0);
        SlotId(self.slots.len() - 1)
    }

    /// Reads a data slot.
    pub fn slot_value(&self, slot: SlotId) -> u64 {
        self.slots[slot.0]
    }

    /// Registers a primitive watching the given wires.
    pub fn add_prim(&mut self, prim: Box<dyn Primitive>, watched: &[NodeId]) -> PrimId {
        let id = PrimId(self.prims.len());
        self.prims.push(Some(prim));
        for &n in watched {
            self.watchers[n.0].push(id);
        }
        id
    }

    /// Inspects a primitive after (or during) simulation.
    pub fn prim<T: 'static>(&self, id: PrimId) -> Option<&T> {
        self.prims[id.0]
            .as_ref()
            .and_then(|p| p.as_any().downcast_ref::<T>())
    }

    /// The current time (ps).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Largest number of simultaneously pending events seen so far.
    pub fn peak_queue_depth(&self) -> usize {
        self.queue.peak()
    }

    /// Events that overflowed the wheel horizon into the far heap (zero on
    /// the heap oracle).
    pub fn far_heap_hits(&self) -> u64 {
        self.queue.wheel_stats().0
    }

    /// Wheel rebases (bucket-width refits) performed so far (zero on the
    /// heap oracle).
    pub fn refit_count(&self) -> u64 {
        self.queue.wheel_stats().1
    }

    /// Size of the action-slot table. On the wheel scheduler slots are
    /// free-listed, so this is bounded by the peak queue depth, not the
    /// lifetime event count (the heap oracle keeps the seed's append-only
    /// log, where it equals total scheduled events).
    pub fn action_slots(&self) -> usize {
        self.actions.len()
    }

    fn call<F: FnOnce(&mut dyn Primitive, &mut Ctx<'_>)>(&mut self, id: PrimId, f: F) {
        let mut prim = self.prims[id.0].take().expect("no reentrant prim calls");
        let mut ctx = Ctx {
            nodes: &self.nodes,
            slots: &mut self.slots,
            queue: &mut self.queue,
            actions: &mut self.actions,
            free: &mut self.free,
            seq: &mut self.seq,
            now: self.now,
            self_id: id,
        };
        f(prim.as_mut(), &mut ctx);
        self.prims[id.0] = Some(prim);
    }

    /// Initializes every primitive (call once before running).
    pub fn init(&mut self) {
        for i in 0..self.prims.len() {
            self.call(PrimId(i), |p, ctx| p.init(ctx));
        }
    }

    /// Runs until the condition holds, the queue drains, or `max_time` (ps)
    /// passes. Returns `true` if the condition was met.
    pub fn run_until<F: FnMut(&Sim) -> bool>(&mut self, mut done: F, max_time: Time) -> bool {
        if done(self) {
            return true;
        }
        while let Some((t, _, action_ix)) = self.queue.pop() {
            if t > max_time {
                self.now = t;
                return false;
            }
            self.now = t;
            self.events_processed += 1;
            let action = self.actions[action_ix as usize];
            if self.kind == SchedulerKind::Wheel {
                self.free.push(action_ix);
            }
            match action {
                Action::SetNode(node, value) => {
                    if self.nodes[node.0] == value {
                        continue;
                    }
                    self.nodes[node.0] = value;
                    if self.trace {
                        bmbe_obs::vlog!(
                            1,
                            "[{:>8}ps] {} <- {}",
                            t,
                            self.node_names[node.0],
                            value as u8
                        );
                        bmbe_obs::event!("sim.wire_change", node.0 as i64);
                    }
                    match self.kind {
                        SchedulerKind::Heap => {
                            // The seed's per-event clone, preserved in the
                            // oracle so before/after numbers are honest.
                            let watchers = self.watchers[node.0].clone();
                            for w in watchers {
                                self.call(w, |p, ctx| p.on_change(ctx, node));
                            }
                        }
                        _ => {
                            // Indexed delivery: the watcher lists are fixed
                            // once simulation starts (primitives cannot
                            // register new ones), so no defensive clone.
                            for i in 0..self.watchers[node.0].len() {
                                let w = self.watchers[node.0][i];
                                self.call(w, |p, ctx| p.on_change(ctx, node));
                            }
                        }
                    }
                }
                Action::Notify(prim, tag) => {
                    self.call(prim, |p, ctx| p.on_notify(ctx, tag));
                }
            }
            if done(self) {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An inverter with delay, for engine smoke tests.
    struct Inv {
        input: NodeId,
        output: NodeId,
        delay: Time,
    }

    impl Primitive for Inv {
        fn init(&mut self, ctx: &mut Ctx<'_>) {
            let v = ctx.get(self.input);
            ctx.set_after(self.output, !v, self.delay);
        }
        fn on_change(&mut self, ctx: &mut Ctx<'_>, _node: NodeId) {
            let v = ctx.get(self.input);
            ctx.set_after(self.output, !v, self.delay);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    fn inverter_chain(kind: SchedulerKind) -> bool {
        let mut sim = Sim::with_scheduler(kind);
        let a = sim.node("a");
        let b = sim.node("b");
        let c = sim.node("c");
        sim.add_prim(
            Box::new(Inv {
                input: a,
                output: b,
                delay: 100,
            }),
            &[a],
        );
        sim.add_prim(
            Box::new(Inv {
                input: b,
                output: c,
                delay: 100,
            }),
            &[b],
        );
        sim.init();
        // after init: b = 1 (at t=100), c = !b ... settles: a=0,b=1,c=0.
        sim.run_until(|s| s.value(b) && !s.value(c) && s.now() >= 200, 10_000)
    }

    #[test]
    fn inverter_chain_propagates_with_delay() {
        assert!(inverter_chain(SchedulerKind::Wheel));
        assert!(inverter_chain(SchedulerKind::Heap));
    }

    #[test]
    fn ring_oscillator_keeps_running_until_limit() {
        let mut sim = Sim::new();
        let a = sim.node("a");
        sim.add_prim(
            Box::new(Inv {
                input: a,
                output: a,
                delay: 50,
            }),
            &[a],
        );
        sim.init();
        let done = sim.run_until(|_| false, 1_000);
        assert!(!done);
        assert!(sim.events_processed >= 19);
    }

    #[test]
    fn action_slots_are_recycled() {
        // A ring oscillator processes one event per 50 ps with exactly one
        // event in flight; after hundreds of thousands of events the slot
        // table must still be O(peak depth), not O(events).
        let mut sim = Sim::new();
        let a = sim.node("a");
        sim.add_prim(
            Box::new(Inv {
                input: a,
                output: a,
                delay: 50,
            }),
            &[a],
        );
        sim.init();
        sim.run_until(|_| false, 10_000_000);
        assert!(sim.events_processed > 100_000);
        assert!(
            sim.action_slots() <= sim.peak_queue_depth() + 1,
            "slots {} vs peak depth {}",
            sim.action_slots(),
            sim.peak_queue_depth()
        );
        assert!(sim.action_slots() < 16);
    }

    #[test]
    fn far_events_cascade_through_the_overflow_heap() {
        // Delays far beyond the wheel horizon (65 536 ps) must still fire
        // in order.
        struct SlowInv {
            input: NodeId,
            output: NodeId,
        }
        impl Primitive for SlowInv {
            fn init(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_after(self.output, true, 1_000_000);
            }
            fn on_change(&mut self, ctx: &mut Ctx<'_>, _node: NodeId) {
                let v = ctx.get(self.input);
                ctx.set_after(self.output, !v, 3_000_000);
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        let mut sim = Sim::new();
        let a = sim.node("a");
        sim.add_prim(Box::new(SlowInv { input: a, output: a }), &[a]);
        sim.init();
        let done = sim.run_until(|s| s.events_processed >= 5, 100_000_000);
        assert!(done);
        assert_eq!(sim.now(), 1_000_000 + 4 * 3_000_000);
    }

    #[test]
    fn named_nodes_are_shared() {
        let mut sim = Sim::new();
        let a1 = sim.node("x_r");
        let a2 = sim.node("x_r");
        assert_eq!(a1, a2);
        assert_eq!(sim.node_name(a1), "x_r");
    }

    #[test]
    fn slots_hold_data() {
        let mut sim = Sim::new();
        let s = sim.slot();
        assert_eq!(sim.slot_value(s), 0);
    }

    #[test]
    fn singleton_fast_slot_handles_depth_one_traffic() {
        let mut w = EventWheel::new();
        // Alternating push/pop never touches a bucket.
        for i in 0..1000u64 {
            w.push(i * 64, i, i as u32);
            assert_eq!(w.pop(), Some((i * 64, i, i as u32)));
        }
        assert!(w.is_empty());
        assert_eq!(w.peak(), 1);
        assert_eq!(w.refits(), 0);
        // A held event far beyond the horizon spills into the far heap
        // when a second push arrives, and still pops in order.
        w.push(100_000_000, 1000, 0);
        w.push(64_000, 1001, 1);
        assert_eq!(w.pop(), Some((64_000, 1001, 1)));
        assert_eq!(w.pop(), Some((100_000_000, 1000, 0)));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn auto_resolves_by_design_size() {
        assert_eq!(
            SchedulerKind::Auto.resolve(AUTO_HEAP_MAX_PRIMS),
            SchedulerKind::Heap
        );
        assert_eq!(
            SchedulerKind::Auto.resolve(AUTO_HEAP_MAX_PRIMS + 1),
            SchedulerKind::Wheel
        );
        assert_eq!(SchedulerKind::Wheel.resolve(1), SchedulerKind::Wheel);
        assert_eq!(SchedulerKind::Heap.resolve(10_000), SchedulerKind::Heap);
        // An unresolved Auto still builds a working (wheel) simulator.
        let sim = Sim::with_scheduler(SchedulerKind::Auto);
        assert_eq!(sim.scheduler(), SchedulerKind::Wheel);
    }

    #[test]
    fn wheel_pops_in_time_seq_order() {
        let mut w = EventWheel::new();
        // Same time, out-of-order seqs; far events; batch interleaving.
        w.push(100, 3, 0);
        w.push(100, 1, 1);
        w.push(50, 2, 2);
        w.push(1_000_000, 4, 3); // beyond the horizon
        w.push(100, 5, 4);
        assert_eq!(w.pop(), Some((50, 2, 2)));
        assert_eq!(w.pop(), Some((100, 1, 1)));
        assert_eq!(w.pop(), Some((100, 3, 0)));
        assert_eq!(w.pop(), Some((100, 5, 4)));
        // Push at current time after partial drain still orders by seq.
        w.push(200, 6, 5);
        assert_eq!(w.pop(), Some((200, 6, 5)));
        assert_eq!(w.pop(), Some((1_000_000, 4, 3)));
        assert_eq!(w.pop(), None);
        assert_eq!(w.peak(), 5);
    }
}
