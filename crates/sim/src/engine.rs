//! The discrete-event simulation engine.
//!
//! Wires carry Boolean values; data moves in per-channel value slots
//! (bundled-data abstraction). Primitives — synthesized controllers,
//! behavioural datapath components, and environment processes — react to
//! wire changes and schedule further changes after their delays. Time is in
//! picoseconds.

use std::any::Any;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::HashMap;

/// Simulation time in picoseconds.
pub type Time = u64;

/// Identifier of a wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Identifier of a data slot (one per data channel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotId(pub usize);

/// Identifier of a primitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PrimId(pub usize);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    SetNode(NodeId, bool),
    Notify(PrimId, u64),
}

/// A behavioural element of the simulation.
pub trait Primitive: Any {
    /// Called once before simulation starts.
    fn init(&mut self, _ctx: &mut Ctx<'_>) {}

    /// Called when a watched wire changes value.
    fn on_change(&mut self, ctx: &mut Ctx<'_>, node: NodeId);

    /// Called when a self-scheduled notification fires.
    fn on_notify(&mut self, _ctx: &mut Ctx<'_>, _tag: u64) {}

    /// Downcast support for post-simulation inspection.
    fn as_any(&self) -> &dyn Any;
}

/// The API primitives use to interact with the simulation.
pub struct Ctx<'a> {
    nodes: &'a [bool],
    slots: &'a mut [u64],
    queue: &'a mut BinaryHeap<Reverse<(Time, u64, usize)>>,
    actions: &'a mut Vec<Action>,
    seq: &'a mut u64,
    now: Time,
    self_id: PrimId,
}

impl Ctx<'_> {
    /// The current simulation time (ps).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Reads a wire.
    pub fn get(&self, node: NodeId) -> bool {
        self.nodes[node.0]
    }

    /// Reads a data slot.
    pub fn read_slot(&self, slot: SlotId) -> u64 {
        self.slots[slot.0]
    }

    /// Writes a data slot (takes effect immediately — bundled data is
    /// assumed set up before its request/acknowledge edge).
    pub fn write_slot(&mut self, slot: SlotId, value: u64) {
        self.slots[slot.0] = value;
    }

    /// Schedules a wire change `delay` picoseconds from now.
    pub fn set_after(&mut self, node: NodeId, value: bool, delay: Time) {
        *self.seq += 1;
        let idx = self.push_action(Action::SetNode(node, value));
        self.queue.push(Reverse((self.now + delay, *self.seq, idx)));
    }

    /// Schedules a notification to this primitive.
    pub fn notify_after(&mut self, tag: u64, delay: Time) {
        *self.seq += 1;
        let id = self.self_id;
        let idx = self.push_action(Action::Notify(id, tag));
        self.queue.push(Reverse((self.now + delay, *self.seq, idx)));
    }

    fn push_action(&mut self, a: Action) -> usize {
        self.actions.push(a);
        self.actions.len() - 1
    }
}

/// The simulator.
pub struct Sim {
    nodes: Vec<bool>,
    node_names: Vec<String>,
    names: HashMap<String, NodeId>,
    slots: Vec<u64>,
    prims: Vec<Option<Box<dyn Primitive>>>,
    watchers: Vec<Vec<PrimId>>,
    queue: BinaryHeap<Reverse<(Time, u64, usize)>>,
    actions: Vec<Action>,
    seq: u64,
    now: Time,
    /// Count of processed events (for run-away detection).
    pub events_processed: u64,
    /// Print every applied wire change to stderr (debugging aid).
    pub trace: bool,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    /// Creates an empty simulator.
    pub fn new() -> Self {
        Sim {
            nodes: Vec::new(),
            node_names: Vec::new(),
            names: HashMap::new(),
            slots: Vec::new(),
            prims: Vec::new(),
            watchers: Vec::new(),
            queue: BinaryHeap::new(),
            actions: Vec::new(),
            seq: 0,
            now: 0,
            events_processed: 0,
            trace: false,
        }
    }

    /// Creates (or finds) a named wire, initially 0.
    pub fn node(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.names.get(name) {
            return id;
        }
        let id = NodeId(self.nodes.len());
        self.nodes.push(false);
        self.node_names.push(name.to_string());
        self.names.insert(name.to_string(), id);
        self.watchers.push(Vec::new());
        id
    }

    /// The name of a wire.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.node_names[node.0]
    }

    /// Current value of a wire.
    pub fn value(&self, node: NodeId) -> bool {
        self.nodes[node.0]
    }

    /// Allocates a data slot.
    pub fn slot(&mut self) -> SlotId {
        self.slots.push(0);
        SlotId(self.slots.len() - 1)
    }

    /// Reads a data slot.
    pub fn slot_value(&self, slot: SlotId) -> u64 {
        self.slots[slot.0]
    }

    /// Registers a primitive watching the given wires.
    pub fn add_prim(&mut self, prim: Box<dyn Primitive>, watched: &[NodeId]) -> PrimId {
        let id = PrimId(self.prims.len());
        self.prims.push(Some(prim));
        for &n in watched {
            self.watchers[n.0].push(id);
        }
        id
    }

    /// Inspects a primitive after (or during) simulation.
    pub fn prim<T: 'static>(&self, id: PrimId) -> Option<&T> {
        self.prims[id.0]
            .as_ref()
            .and_then(|p| p.as_any().downcast_ref::<T>())
    }

    /// The current time (ps).
    pub fn now(&self) -> Time {
        self.now
    }

    fn call<F: FnOnce(&mut dyn Primitive, &mut Ctx<'_>)>(&mut self, id: PrimId, f: F) {
        let mut prim = self.prims[id.0].take().expect("no reentrant prim calls");
        let mut ctx = Ctx {
            nodes: &self.nodes,
            slots: &mut self.slots,
            queue: &mut self.queue,
            actions: &mut self.actions,
            seq: &mut self.seq,
            now: self.now,
            self_id: id,
        };
        f(prim.as_mut(), &mut ctx);
        self.prims[id.0] = Some(prim);
    }

    /// Initializes every primitive (call once before running).
    pub fn init(&mut self) {
        for i in 0..self.prims.len() {
            self.call(PrimId(i), |p, ctx| p.init(ctx));
        }
    }

    /// Runs until the condition holds, the queue drains, or `max_time` (ps)
    /// passes. Returns `true` if the condition was met.
    pub fn run_until<F: FnMut(&Sim) -> bool>(&mut self, mut done: F, max_time: Time) -> bool {
        if done(self) {
            return true;
        }
        while let Some(Reverse((t, _, action_ix))) = self.queue.pop() {
            if t > max_time {
                self.now = t;
                return false;
            }
            self.now = t;
            self.events_processed += 1;
            match self.actions[action_ix] {
                Action::SetNode(node, value) => {
                    if self.nodes[node.0] == value {
                        continue;
                    }
                    self.nodes[node.0] = value;
                    if self.trace {
                        eprintln!(
                            "[{:>8}ps] {} <- {}",
                            t, self.node_names[node.0], value as u8
                        );
                    }
                    let watchers = self.watchers[node.0].clone();
                    for w in watchers {
                        self.call(w, |p, ctx| p.on_change(ctx, node));
                    }
                }
                Action::Notify(prim, tag) => {
                    self.call(prim, |p, ctx| p.on_notify(ctx, tag));
                }
            }
            if done(self) {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An inverter with delay, for engine smoke tests.
    struct Inv {
        input: NodeId,
        output: NodeId,
        delay: Time,
    }

    impl Primitive for Inv {
        fn init(&mut self, ctx: &mut Ctx<'_>) {
            let v = ctx.get(self.input);
            ctx.set_after(self.output, !v, self.delay);
        }
        fn on_change(&mut self, ctx: &mut Ctx<'_>, _node: NodeId) {
            let v = ctx.get(self.input);
            ctx.set_after(self.output, !v, self.delay);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    #[test]
    fn inverter_chain_propagates_with_delay() {
        let mut sim = Sim::new();
        let a = sim.node("a");
        let b = sim.node("b");
        let c = sim.node("c");
        sim.add_prim(
            Box::new(Inv {
                input: a,
                output: b,
                delay: 100,
            }),
            &[a],
        );
        sim.add_prim(
            Box::new(Inv {
                input: b,
                output: c,
                delay: 100,
            }),
            &[b],
        );
        sim.init();
        // after init: b = 1 (at t=100), c = !b ... settles: a=0,b=1,c=0.
        let settled = sim.run_until(|s| s.value(b) && !s.value(c) && s.now() >= 200, 10_000);
        assert!(settled);
    }

    #[test]
    fn ring_oscillator_keeps_running_until_limit() {
        let mut sim = Sim::new();
        let a = sim.node("a");
        sim.add_prim(
            Box::new(Inv {
                input: a,
                output: a,
                delay: 50,
            }),
            &[a],
        );
        sim.init();
        let done = sim.run_until(|_| false, 1_000);
        assert!(!done);
        assert!(sim.events_processed >= 19);
    }

    #[test]
    fn named_nodes_are_shared() {
        let mut sim = Sim::new();
        let a1 = sim.node("x_r");
        let a2 = sim.node("x_r");
        assert_eq!(a1, a2);
        assert_eq!(sim.node_name(a1), "x_r");
    }

    #[test]
    fn slots_hold_data() {
        let mut sim = Sim::new();
        let s = sim.slot();
        assert_eq!(sim.slot_value(s), 0);
    }
}
