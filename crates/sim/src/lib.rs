#![warn(missing_docs)]
//! # bmbe-sim
//!
//! The discrete-event simulator used to reproduce the paper's benchmark
//! measurements: synthesized burst-mode controllers evaluated functionally
//! with delays back-annotated from technology mapping, behavioural
//! bundled-data datapath components, and scripted environment processes —
//! the role the paper's `pearl` + Verilog-XL combination plays.
//!
//! See [`engine::Sim`] for the core and [`prims`] for the primitive
//! library.

pub mod compile;
pub mod engine;
pub mod prims;

pub use compile::{
    CCh, CPrim, CSite, CSlot, CWire, CircuitBuilder, CompileError, CompiledCircuit,
    ControllerTape, DoneSpec, GateSpec, LaneSpec, RunResult, RunSpec, SimBackend, TapeOp, LANES,
};
pub use engine::{
    Ctx, EventWheel, NodeId, PrimId, Primitive, SchedulerKind, Sim, SlotId, Time,
    AUTO_HEAP_MAX_PRIMS,
};
pub use prims::{
    ActivationDriverEnv, BinFuncPrim, CallMuxPrim, ConstantPrim, ControllerPrim, DataCh, Delays,
    FetchDataPrim, MemSite, MemoryPrim, PullMuxPrim, PullProviderEnv, PushConsumerEnv,
    SelectAdapterPrim, SyncResponderEnv, UnFuncPrim, VariablePrim,
};
