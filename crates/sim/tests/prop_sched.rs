//! Differential property tests: the event-wheel scheduler against the
//! `BinaryHeap` reference oracle.
//!
//! Two layers: the bare queues must agree on pop order for arbitrary
//! monotone push/pop interleavings, and whole simulations of random gate
//! networks must behave identically — same event count, same final wires,
//! same simulated time — on both schedulers.

use bmbe_sim::{Ctx, EventWheel, NodeId, Primitive, SchedulerKind, Sim, Time};
use proptest::prelude::*;
use std::any::Any;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A push/pop script: `Some(time_increment)` pushes an event at
/// `last_popped_time + increment`, `None` pops from both queues.
fn arb_script() -> impl Strategy<Value = Vec<Option<u64>>> {
    proptest::collection::vec(
        prop_oneof![
            // Mostly pushes, spanning same-bucket, cross-bucket, and
            // far-beyond-horizon (the wheel horizon is 65 536 ps) deltas.
            (0u64..64).prop_map(Some),
            (64u64..4096).prop_map(Some),
            (60_000u64..200_000).prop_map(Some),
            Just(None),
        ],
        1..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The wheel pops the exact `(time, seq)` order of a binary heap for
    /// any monotone interleaving of pushes and pops.
    #[test]
    fn wheel_matches_heap_pop_order(script in arb_script()) {
        let mut wheel = EventWheel::new();
        let mut heap: BinaryHeap<Reverse<(Time, u64, u32)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut now = 0u64;
        for op in script {
            match op {
                Some(dt) => {
                    seq += 1;
                    let t = now + dt;
                    wheel.push(t, seq, seq as u32);
                    heap.push(Reverse((t, seq, seq as u32)));
                }
                None => {
                    let expected = heap.pop().map(|Reverse(e)| e);
                    let got = wheel.pop();
                    prop_assert_eq!(got, expected);
                    if let Some((t, _, _)) = got {
                        now = t;
                    }
                }
            }
        }
        // Drain the rest.
        loop {
            let expected = heap.pop().map(|Reverse(e)| e);
            let got = wheel.pop();
            prop_assert_eq!(got, expected);
            if got.is_none() {
                break;
            }
        }
        prop_assert!(wheel.is_empty());
    }
}

/// A gate for random networks: watches one wire, drives another with a
/// (possibly inverting) copy after a delay.
struct Gate {
    input: NodeId,
    output: NodeId,
    invert: bool,
    delay: Time,
}

impl Gate {
    fn fire(&self, ctx: &mut Ctx<'_>) {
        let v = ctx.get(self.input) ^ self.invert;
        ctx.set_after(self.output, v, self.delay);
    }
}

impl Primitive for Gate {
    fn init(&mut self, ctx: &mut Ctx<'_>) {
        self.fire(ctx);
    }
    fn on_change(&mut self, ctx: &mut Ctx<'_>, _node: NodeId) {
        self.fire(ctx);
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// A random network: `(nodes, gates)` with gates as
/// `(input, output, invert, delay)`.
type Network = (usize, Vec<(usize, usize, bool, u64)>);

fn arb_network() -> impl Strategy<Value = Network> {
    (
        2usize..8,
        proptest::collection::vec(
            (
                0usize..8,
                0usize..8,
                any::<bool>(),
                // Includes zero-delay gates: same-timestamp cascades are
                // exactly where batched delivery could get ordering wrong.
                prop_oneof![0u64..4, 10u64..400, 50_000u64..90_000],
            ),
            1..10,
        ),
    )
        .prop_map(|(n, gates)| {
            let gates = gates
                .into_iter()
                .map(|(i, o, invert, delay)| (i % n, o % n, invert, delay))
                .collect();
            (n, gates)
        })
}

fn run_network(kind: SchedulerKind, net: &Network) -> (bool, u64, Time, Vec<bool>) {
    let (num_nodes, gates) = net;
    let mut sim = Sim::with_scheduler(kind);
    let nodes: Vec<NodeId> = (0..*num_nodes)
        .map(|i| sim.node(&format!("n{i}")))
        .collect();
    for &(input, output, invert, delay) in gates {
        sim.add_prim(
            Box::new(Gate {
                input: nodes[input],
                output: nodes[output],
                invert,
                delay,
            }),
            &[nodes[input]],
        );
    }
    sim.init();
    // Zero-delay rings never advance time, so bound by event count as well
    // as simulated time; the done closure runs after every event on both
    // schedulers, so the stopping point only agrees if the event order does.
    let done = sim.run_until(|s| s.events_processed >= 500, 1_000_000);
    let values = nodes.iter().map(|&n| sim.value(n)).collect();
    (done, sim.events_processed, sim.now(), values)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random gate networks behave identically on both schedulers: same
    /// completion, event count, simulated time, and final wire values.
    #[test]
    fn random_networks_agree_across_schedulers(net in arb_network()) {
        let wheel = run_network(SchedulerKind::Wheel, &net);
        let heap = run_network(SchedulerKind::Heap, &net);
        prop_assert_eq!(&wheel, &heap);
    }
}
