//! Offline stand-in for the `criterion` crate.
//!
//! The workspace builds with no network access, so the real `criterion`
//! cannot be fetched. This crate implements the subset of the criterion 0.5
//! API the workspace's benches use (`benchmark_group`, `sample_size`,
//! `bench_function`, `Bencher::iter`, the `criterion_group!`/
//! `criterion_main!` macros) as a plain wall-clock harness: each benchmark
//! runs one warm-up iteration plus `sample_size` timed iterations and prints
//! min/median/mean times. It has no statistical analysis, plotting, or
//! baseline storage — enough to compare orders of magnitude and track the
//! perf trajectory offline.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

const DEFAULT_SAMPLES: usize = 10;

/// The benchmark harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: DEFAULT_SAMPLES,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs a stand-alone benchmark (no group).
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), self.sample_size, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times one benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; times the routine under test.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` calls of `routine` (after one warm-up call).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        std_black_box(routine()); // warm-up, untimed
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std_black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    b.samples.sort_unstable();
    let min = b.samples[0];
    let median = b.samples[b.samples.len() / 2];
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    println!(
        "{label:<40} min {:>12?}  median {:>12?}  mean {:>12?}  ({} samples)",
        min,
        median,
        mean,
        b.samples.len()
    );
}

/// Declares a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
