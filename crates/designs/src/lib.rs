#![warn(missing_docs)]
//! # bmbe-designs
//!
//! The paper's four benchmark designs (§6) in mini-Balsa, with their
//! benchmark scenarios:
//!
//! * an 8-handshake **systolic counter** [van Berkel 1993] — simulated for
//!   one full 8-handshake cycle;
//! * an 8-place 8-bit **wagging register** [van Berkel 1993] — simulated
//!   for forward latency over one full rotation;
//! * an 8-place 8-bit **stack** — simulated for three pushes followed by
//!   three pops;
//! * the **SSEM** (Manchester Baby) 32-bit non-pipelined microprocessor
//!   core [Bardsley 1998] — simulated running the paper's program, which
//!   writes the numbers 0 through 4 to consecutive memory locations.
//!
//! Each design provides its source, the compiled netlist, the scenario,
//! and a result check.

pub mod corpus;
pub mod scenarios;
pub mod sources;
pub mod ssem;

pub use corpus::{generate_corpus, CorpusSpec, GeneratedDesign};
pub use scenarios::{all_designs, derive_seed, scenario_variants, variants_of, Design};
pub use ssem::{assemble, Instr};
