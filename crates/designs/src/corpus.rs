//! The generated design corpus: parametric families plus a seeded random
//! mini-Balsa program generator (ROADMAP item 4).
//!
//! Four paper benchmarks cannot exercise a production back-end: the cache,
//! the batch driver, the calendar queue, and the compiled simulator need
//! realistic *distributions* of shapes, not the same four digests. This
//! module emits hundreds of distinct designs, every one as real mini-Balsa
//! source that goes through [`bmbe_balsa::parse`] and
//! [`bmbe_balsa::compile_procedure`] exactly like a user program:
//!
//! * **pipeline** — an `n`-stage, `w`-bit shift register (`o <- s_{n-1};
//!   shift; i -> s_0` per cycle);
//! * **calltree** — an `m`-way call component: one `shared` emitter with
//!   `m` call sites selected by a scripted `case` (the fodder for the
//!   paper's Call Distribution);
//! * **ring** — an `n`-place token ring rotating and incrementing a value
//!   each lap, emitting it;
//! * **wagging** — a `2k`-place wagging chain at width `w`, modelled on the
//!   Table 3 wagging register: input fills one half while the other drains
//!   in parallel;
//! * **rnd** — a seeded random program over the terminating grammar subset
//!   (seq, par over disjoint resources, `if`/`case` with `else`, channel
//!   I/O, memory writes) wrapped in the standard activation loop.
//!
//! Every design carries a deterministic functional [`Check`] where the
//! family semantics are simple enough to model (the random family relies on
//! the differential oracles instead), plus the family name, a canonical
//! parameter string, and the generator seed — enough for any consumer to
//! reproduce one design from a report line (`bmbe gauntlet --seed S --only
//! NAME`).

use crate::scenarios::{derive_seed, splitmix64, Check, DesignError, DesignScenario};
use bmbe_balsa::{compile_procedure, parse, CompiledDesign};
use std::collections::HashMap;
use std::fmt::Write as _;

/// A corpus design: like [`crate::scenarios::Design`] but owning its name
/// and source (generated, not shipped), and carrying its provenance.
pub struct GeneratedDesign {
    /// Unique name, also the procedure name (e.g. `pipe_n4_w8`).
    pub name: String,
    /// Family tag: `pipeline`, `calltree`, `ring`, `wagging`, or `rnd`.
    pub family: &'static str,
    /// Canonical parameter string (e.g. `n=4,w=8`).
    pub params: String,
    /// The generator seed that produced this design (the corpus seed for
    /// parametric families, the per-program seed for the random family).
    pub seed: u64,
    /// The emitted mini-Balsa source.
    pub source: String,
    /// The design compiled through the front end.
    pub compiled: CompiledDesign,
    /// Its benchmark scenario.
    pub scenario: DesignScenario,
}

/// What to generate: a fixed-seed corpus is a pure function of this spec,
/// so any slice of it is reproducible from `(seed, designs)` alone.
#[derive(Debug, Clone, Copy)]
pub struct CorpusSpec {
    /// Root seed; every random program derives its own seed from this via
    /// [`derive_seed`].
    pub seed: u64,
    /// Total designs to emit (families round-robin, sizes growing).
    pub designs: usize,
}

fn mask(w: u32) -> u64 {
    if w >= 64 {
        !0
    } else {
        (1u64 << w) - 1
    }
}

fn build_design(
    name: String,
    family: &'static str,
    params: String,
    seed: u64,
    source: String,
    scenario: DesignScenario,
) -> Result<GeneratedDesign, DesignError> {
    let prog = parse(&source).map_err(DesignError::Parse)?;
    let compiled = compile_procedure(&prog.procedures[0]).map_err(DesignError::Compile)?;
    Ok(GeneratedDesign {
        name,
        family,
        params,
        seed,
        source,
        compiled,
        scenario,
    })
}

/// An `n`-stage, `w`-bit pipeline: per activation cycle the oldest word is
/// emitted, the register file shifts, and a new word is read. Latency is
/// `n-1` cycles, so the first `n-1` outputs drain zeros.
pub fn pipeline(n: usize, w: u32, seed: u64) -> Result<GeneratedDesign, DesignError> {
    let n = n.max(1);
    let name = format!("pipe_n{n}_w{w}");
    let mut src = format!("-- generated: {n}-stage {w}-bit pipeline\n");
    let _ = writeln!(src, "procedure {name} (input i : {w} bits; output o : {w} bits) is");
    for k in 0..n {
        let _ = writeln!(src, "  variable s{k} : {w} bits");
    }
    src.push_str("begin\n  loop\n");
    if n == 1 {
        src.push_str("    i -> s0 ;\n    o <- s0\n");
    } else {
        let _ = writeln!(src, "    o <- s{} ;", n - 1);
        for k in (1..n).rev() {
            let _ = writeln!(src, "    s{k} := s{} ;", k - 1);
        }
        src.push_str("    i -> s0\n");
    }
    src.push_str("  end\nend\n");

    // Scripted inputs and the modelled expectation.
    let done_count = n + 2;
    let inputs: Vec<u64> = (0..done_count as u64)
        .map(|t| (seed.wrapping_add(t).wrapping_mul(0x9e37_79b9) | 1) & mask(w))
        .collect();
    let mut regs = vec![0u64; n];
    let mut expect = Vec::with_capacity(done_count);
    for &v in &inputs {
        if n == 1 {
            regs[0] = v;
            expect.push(v);
        } else {
            expect.push(regs[n - 1]);
            for k in (1..n).rev() {
                regs[k] = regs[k - 1];
            }
            regs[0] = v;
        }
    }
    let mut input_values = HashMap::new();
    input_values.insert("i".to_string(), inputs);
    build_design(
        name,
        "pipeline",
        format!("n={n},w={w}"),
        seed,
        src,
        DesignScenario {
            activation_cycles: 1,
            input_values,
            memory_init: HashMap::new(),
            done: ("output".into(), "o".into(), done_count),
            max_time: 200_000_000,
            check: Check::OutputEquals {
                port: "o".into(),
                values: expect,
            },
        },
    )
}

/// An `m`-way call tree at width `w`: one `shared` emitter with `m` call
/// sites, one per arm of a scripted `case` — after compilation an `m`-input
/// call component, the structure the paper's Call Distribution rewrites.
pub fn call_tree(m: usize, w: u32, seed: u64) -> Result<GeneratedDesign, DesignError> {
    let m = m.max(2);
    let sb = (usize::BITS - (m - 1).leading_zeros()).max(1);
    let name = format!("call_m{m}_w{w}");
    let mut src = format!("-- generated: {m}-way call tree, {w}-bit data\n");
    let _ = writeln!(
        src,
        "procedure {name} (input sel : {sb} bits; input i : {w} bits; output o : {w} bits) is"
    );
    let _ = writeln!(src, "  variable x : {w} bits");
    let _ = writeln!(src, "  variable s : {sb} bits");
    src.push_str("  shared emit is begin o <- x end\nbegin\n  loop\n    sel -> s ;\n    i -> x ;\n    case s of\n");
    for arm in 0..m - 1 {
        let sep = if arm == 0 { "     " } else { "    |" };
        let _ = writeln!(src, "{sep} {arm} then emit ()");
    }
    src.push_str("    else emit ()\n    end\n  end\nend\n");

    let inputs: Vec<u64> = (0..m as u64)
        .map(|t| (seed.wrapping_add(t).wrapping_mul(0x2545_f491) | 1) & mask(w))
        .collect();
    let mut input_values = HashMap::new();
    input_values.insert("sel".to_string(), (0..m as u64).collect());
    input_values.insert("i".to_string(), inputs.clone());
    build_design(
        name,
        "calltree",
        format!("m={m},w={w}"),
        seed,
        src,
        DesignScenario {
            activation_cycles: 1,
            input_values,
            memory_init: HashMap::new(),
            done: ("output".into(), "o".into(), m),
            max_time: 200_000_000,
            check: Check::OutputEquals {
                port: "o".into(),
                values: inputs,
            },
        },
    )
}

/// An `n`-place token ring: the token rotates through all places each lap,
/// is incremented, and the new value is emitted — lap `t` (1-based) emits
/// `t + 1` modulo the width.
pub fn token_ring(n: usize, w: u32, seed: u64) -> Result<GeneratedDesign, DesignError> {
    let n = n.max(1);
    let name = format!("ring_n{n}_w{w}");
    let mut src = format!("-- generated: {n}-place token ring, {w}-bit token\n");
    let _ = writeln!(src, "procedure {name} (output o : {w} bits) is");
    for k in 0..n {
        let _ = writeln!(src, "  variable v{k} : {w} bits");
    }
    src.push_str("begin\n  v0 := 1 ;\n  loop\n");
    for k in 1..n {
        let _ = writeln!(src, "    v{k} := v{} ;", k - 1);
    }
    if n > 1 {
        let _ = writeln!(src, "    v0 := v{} + 1 ;", n - 1);
    } else {
        src.push_str("    v0 := v0 + 1 ;\n");
    }
    src.push_str("    o <- v0\n  end\nend\n");

    // Both engines carry raw 64-bit values (no width masking), so lap `t`
    // emits exactly `t + 1` regardless of the declared width.
    let laps = 3;
    let expect: Vec<u64> = (2..2 + laps as u64).collect();
    build_design(
        name,
        "ring",
        format!("n={n},w={w}"),
        seed,
        src,
        DesignScenario {
            activation_cycles: 1,
            input_values: HashMap::new(),
            memory_init: HashMap::new(),
            done: ("output".into(), "o".into(), laps),
            max_time: 200_000_000,
            check: Check::OutputEquals {
                port: "o".into(),
                values: expect,
            },
        },
    )
}

/// A `2k`-place wagging chain at width `w`: each cycle pairs an input into
/// one half with an output draining the other, input and output proceeding
/// in parallel — the Table 3 wagging register generalized to depth `k`.
pub fn wagging_chain(k: usize, w: u32, seed: u64) -> Result<GeneratedDesign, DesignError> {
    let k = k.max(1);
    let places = 2 * k;
    let name = format!("wag_k{k}_w{w}");
    let mut src = format!("-- generated: {places}-place wagging chain, {w}-bit words\n");
    let _ = writeln!(src, "procedure {name} (input i : {w} bits; output o : {w} bits) is");
    for p in 0..places {
        let _ = writeln!(src, "  variable r{p} : {w} bits");
    }
    src.push_str("begin\n  loop\n");
    for p in 0..places {
        let sep = if p + 1 < places { " ;" } else { "" };
        let _ = writeln!(src, "    ( i -> r{p} || o <- r{} ){sep}", (p + k) % places);
    }
    src.push_str("  end\nend\n");

    // One full rotation: the first k outputs drain the uninitialized
    // opposite half (zeros), then the first k input words emerge.
    let inputs: Vec<u64> = (0..places as u64)
        .map(|t| (seed.wrapping_add(t).wrapping_mul(0x9e37_79b9) | 1) & mask(w))
        .collect();
    let mut expect = vec![0u64; k];
    expect.extend_from_slice(&inputs[..k]);
    let mut input_values = HashMap::new();
    input_values.insert("i".to_string(), inputs);
    build_design(
        name,
        "wagging",
        format!("k={k},w={w}"),
        seed,
        src,
        DesignScenario {
            activation_cycles: 1,
            input_values,
            memory_init: HashMap::new(),
            done: ("output".into(), "o".into(), places),
            max_time: 200_000_000,
            check: Check::OutputEquals {
                port: "o".into(),
                values: expect,
            },
        },
    )
}

/// The random-program generator's mutable state.
struct Gen {
    rng: u64,
    w: u32,
    vars: Vec<String>,
    inputs: Vec<String>,
    extra_out: Option<String>,
    sync: Option<String>,
    memory: bool,
    atoms_left: usize,
}

impl Gen {
    fn next(&mut self) -> u64 {
        splitmix64(&mut self.rng)
    }

    fn pick<'a>(&mut self, xs: &'a [String]) -> &'a str {
        let i = (self.next() % xs.len() as u64) as usize;
        &xs[i]
    }

    /// A random expression over variables, literals, and memory reads —
    /// every operator the four benchmarks exercise, depth-bounded.
    fn expr(&mut self, depth: usize) -> String {
        let vars = self.vars.clone();
        if depth == 0 || self.next() % 3 == 0 {
            return match self.next() % 4 {
                0 => format!("{}", self.next() & mask(self.w)),
                1 | 2 => self.pick(&vars).to_string(),
                _ if self.memory => format!("mm[{}]", self.next() % 4),
                _ => self.pick(&vars).to_string(),
            };
        }
        let a = self.expr(depth - 1);
        let b = self.expr(depth - 1);
        match self.next() % 8 {
            0 => format!("({a} + {b})"),
            1 => format!("({a} - {b})"),
            2 => format!("({a} and {b})"),
            3 => format!("({a} or {b})"),
            4 => format!("({a} xor {b})"),
            5 => format!("not {a}"),
            6 => format!("({a} = {b})"),
            _ => format!("zero({a})"),
        }
    }

    /// A random command from the terminating subset. No inner `loop` or
    /// `while`: the only unbounded iteration is the standard outer
    /// activation loop, so every generated iteration finishes.
    fn cmd(&mut self, depth: usize) -> String {
        if self.atoms_left > 0 {
            self.atoms_left -= 1;
        }
        let vars = self.vars.clone();
        let inputs = self.inputs.clone();
        let choice = if depth == 0 || self.atoms_left == 0 {
            self.next() % 5
        } else {
            self.next() % 10
        };
        match choice {
            0 => {
                let i = self.pick(&inputs).to_string();
                let v = self.pick(&vars).to_string();
                format!("{i} -> {v}")
            }
            1 | 2 => {
                let v = self.pick(&vars).to_string();
                let e = self.expr(2);
                format!("{v} := {e}")
            }
            3 => match (self.extra_out.clone(), self.sync.clone()) {
                (Some(o), _) => {
                    let e = self.expr(1);
                    format!("{o} <- {e}")
                }
                (None, Some(s)) => format!("sync {s}"),
                (None, None) => "continue".to_string(),
            },
            4 => {
                if self.memory {
                    let a = self.next() % 4;
                    let e = self.expr(1);
                    format!("mm[{a}] := {e}")
                } else {
                    let v = self.pick(&vars).to_string();
                    let e = self.expr(1);
                    format!("{v} := {e}")
                }
            }
            5 | 6 => {
                let a = self.cmd(depth - 1);
                let b = self.cmd(depth - 1);
                format!("( {a} ;\n      {b} )")
            }
            7 => {
                let e = self.expr(1);
                let a = self.cmd(depth - 1);
                let b = self.cmd(depth - 1);
                format!("if {e} then\n      {a}\n    else\n      {b}\n    end")
            }
            8 => {
                let e = self.expr(1);
                let a = self.cmd(depth - 1);
                let b = self.cmd(depth - 1);
                let c = self.cmd(depth - 1);
                format!(
                    "case {e} of\n      0 then {a}\n    | 1 then {b}\n    else {c}\n    end"
                )
            }
            _ => {
                // Parallel composition over disjoint resources only: a
                // receive into one variable alongside traffic that cannot
                // touch that variable or its port (hazard-free by
                // construction, like the wagging register's pairs).
                let i = self.pick(&inputs).to_string();
                let v = vars[0].clone();
                let rhs = match (&self.extra_out, &self.sync) {
                    (Some(o), _) if vars.len() > 1 => format!("{o} <- {}", vars[1]),
                    (_, Some(s)) => format!("sync {s}"),
                    _ => "continue".to_string(),
                };
                format!("( {i} -> {v} || {rhs} )")
            }
        }
    }
}

/// A seeded random mini-Balsa program: random port/variable/memory shape,
/// a depth-bounded random body from the terminating grammar subset, and a
/// guaranteed trailing send on the designated done port. The program is a
/// pure function of `seed`. Its scenario carries [`Check::None`]: the
/// expected behaviour is whatever the event-engine oracle computes, which
/// is exactly what the differential gauntlet asserts.
pub fn random_design(seed: u64) -> Result<GeneratedDesign, DesignError> {
    let mut rng = seed;
    let w = [1u32, 2, 4, 8][(splitmix64(&mut rng) % 4) as usize];
    let n_in = 1 + (splitmix64(&mut rng) % 2) as usize;
    let n_vars = 2 + (splitmix64(&mut rng) % 2) as usize;
    let extra_out = splitmix64(&mut rng) % 3 == 0;
    let with_sync = splitmix64(&mut rng) % 3 == 0;
    let memory = splitmix64(&mut rng) % 3 == 0;
    let name = format!("rnd_{seed:08x}");

    let inputs: Vec<String> = (0..n_in).map(|k| format!("ia{k}")).collect();
    let vars: Vec<String> = (0..n_vars).map(|k| format!("v{k}")).collect();
    let mut g = Gen {
        rng,
        w,
        vars: vars.clone(),
        inputs: inputs.clone(),
        extra_out: extra_out.then(|| "oy".to_string()),
        sync: with_sync.then(|| "sc".to_string()),
        memory,
        atoms_left: 10,
    };

    let mut ports: Vec<String> = inputs.iter().map(|i| format!("input {i} : {w} bits")).collect();
    ports.push(format!("output oz : {w} bits"));
    if extra_out {
        ports.push(format!("output oy : {w} bits"));
    }
    if with_sync {
        ports.push("sync sc".to_string());
    }

    let mut src = format!("-- generated: random program, seed {seed:#x}\n");
    let _ = writeln!(src, "procedure {name} ({}) is", ports.join("; "));
    for v in &vars {
        let _ = writeln!(src, "  variable {v} : {w} bits");
    }
    if memory {
        let _ = writeln!(src, "  memory mm : 4 words of {w} bits");
    }
    src.push_str("begin\n  loop\n");
    // Prologue: engage every declared resource once per iteration. The
    // front end allocates at least one write site per variable and one
    // read+write pair per memory, so a resource the random body happens
    // not to touch would leave a dangling channel in the netlist.
    for (k, i) in inputs.iter().enumerate() {
        let _ = writeln!(src, "    {i} -> {} ;", vars[k % vars.len()]);
    }
    for v in vars.iter().skip(n_in.min(vars.len())) {
        let e = g.expr(1);
        let _ = writeln!(src, "    {v} := {e} ;");
    }
    if memory {
        let _ = writeln!(src, "    mm[0] := {} ;", vars[0]);
    }
    if with_sync {
        src.push_str("    sync sc ;\n");
    }
    if extra_out {
        let _ = writeln!(src, "    oy <- {} ;", vars[0]);
    }
    let prefix_cmds = 1 + (g.next() % 3) as usize;
    for _ in 0..prefix_cmds {
        let c = g.cmd(2);
        let _ = writeln!(src, "    {c} ;");
    }
    // Epilogue: the designated done port is sent exactly once per
    // iteration, never inside the random prefix, so the done count equals
    // the iteration count; the payload reads every variable (and the
    // memory when present) so nothing is write-only.
    let mut all = vars[0].clone();
    for v in &vars[1..] {
        all = format!("({all} xor {v})");
    }
    if memory {
        all = format!("({all} xor mm[1])");
    }
    let _ = writeln!(src, "    oz <- {all}");
    src.push_str("  end\nend\n");

    let iters = 2 + (g.next() % 2) as usize;
    let mut input_values = HashMap::new();
    for i in &inputs {
        // Scripts cycle in both engines, so eight values cover any number
        // of receives deterministically.
        let vals: Vec<u64> = (0..8).map(|_| g.next() & mask(w)).collect();
        input_values.insert(i.clone(), vals);
    }
    build_design(
        name,
        "rnd",
        format!("w={w},in={n_in}"),
        seed,
        src,
        DesignScenario {
            activation_cycles: 1,
            input_values,
            memory_init: HashMap::new(),
            done: ("output".into(), "oz".into(), iters),
            max_time: 200_000_000,
            check: Check::None,
        },
    )
}

/// Generates a deterministic corpus slice: families round-robin with
/// growing sizes, interleaved with random programs (three random designs
/// per round of four parametric ones). A slice of `(seed, n)` is always a
/// prefix of `(seed, m >= n)`, so "the first 200 designs of seed 7" names
/// one reproducible set forever.
///
/// # Errors
///
/// Propagates front-end failures (a bug in an emitter or in the random
/// generator — the round-trip property tests pin this never happens).
pub fn generate_corpus(spec: &CorpusSpec) -> Result<Vec<GeneratedDesign>, DesignError> {
    let widths = [8u32, 4, 2, 1];
    let mut out = Vec::with_capacity(spec.designs);
    let mut round = 0usize;
    while out.len() < spec.designs {
        let w = widths[round % widths.len()];
        let builders: [fn(usize, u32, u64) -> Result<GeneratedDesign, DesignError>; 4] =
            [pipeline, call_tree, token_ring, wagging_chain];
        for (f, build) in builders.iter().enumerate() {
            if out.len() >= spec.designs {
                break;
            }
            // Size grows with the round; each family sees every width.
            let size = 1 + (round + f) % 7;
            let d = build(size + 1, w, spec.seed)?;
            // Rounds revisit (size, width) pairs after 28 rounds; dedup by
            // name so the corpus stays distinct designs.
            if out.iter().all(|g: &GeneratedDesign| g.name != d.name) {
                out.push(d);
            }
        }
        for r in 0..3 {
            if out.len() >= spec.designs {
                break;
            }
            let pseed = derive_seed(spec.seed, "rnd", "", (round * 3 + r) as u64);
            out.push(random_design(pseed)?);
        }
        round += 1;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_emit_valid_source() {
        for d in [
            pipeline(4, 8, 7).unwrap(),
            call_tree(4, 8, 7).unwrap(),
            token_ring(3, 8, 7).unwrap(),
            wagging_chain(2, 8, 7).unwrap(),
            random_design(7).unwrap(),
        ] {
            assert!(!d.source.is_empty());
            d.compiled.netlist.validate().unwrap_or_else(|e| panic!("{}: {e}", d.name));
        }
    }

    #[test]
    fn corpus_is_deterministic_and_prefix_stable() {
        let a = generate_corpus(&CorpusSpec { seed: 7, designs: 20 }).unwrap();
        let b = generate_corpus(&CorpusSpec { seed: 7, designs: 20 }).unwrap();
        let long = generate_corpus(&CorpusSpec { seed: 7, designs: 30 }).unwrap();
        assert_eq!(a.len(), 20);
        for ((x, y), z) in a.iter().zip(&b).zip(&long) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.source, y.source);
            assert_eq!(x.name, z.name, "prefix stability");
        }
        // All five families appear in a modest slice.
        for fam in ["pipeline", "calltree", "ring", "wagging", "rnd"] {
            assert!(a.iter().any(|d| d.family == fam), "missing {fam}");
        }
    }

    #[test]
    fn corpus_names_are_unique() {
        let c = generate_corpus(&CorpusSpec { seed: 3, designs: 60 }).unwrap();
        let mut names: Vec<&str> = c.iter().map(|d| d.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate corpus design names");
    }

    #[test]
    fn random_designs_differ_across_seeds() {
        let a = random_design(1).unwrap();
        let b = random_design(2).unwrap();
        assert_ne!(a.source, b.source);
        // And are reproducible for one seed.
        let a2 = random_design(1).unwrap();
        assert_eq!(a.source, a2.source);
    }
}
