//! Mini-Balsa sources of the four benchmark designs.

/// The 8-handshake systolic counter [van Berkel 1993]: a doubling tree of
/// shared procedures produces eight `tick` handshakes per `done`, giving the
/// systolic structure of calls the paper's Call Distribution feeds on.
pub const SYSTOLIC_COUNTER: &str = "\
-- 8-handshake systolic counter: tick fires 8 times per done.
procedure counter8 (sync tick; sync done) is
  shared c2 is begin sync tick ; sync tick end
  shared c4 is begin c2 () ; c2 () end
begin
  loop
    c4 () ; c4 () ; sync done
  end
end";

/// The 8-place 8-bit wagging register [van Berkel 1993]: input words are
/// distributed round-robin over eight places while the opposite half is
/// drained, input and output proceeding in parallel.
pub const WAGGING_REGISTER: &str = "\
-- 8-place, 8-bit word wagging register.
procedure wag8 (input i : 8 bits; output o : 8 bits) is
  variable r0 : 8 bits
  variable r1 : 8 bits
  variable r2 : 8 bits
  variable r3 : 8 bits
  variable r4 : 8 bits
  variable r5 : 8 bits
  variable r6 : 8 bits
  variable r7 : 8 bits
begin
  loop
    ( i -> r0 || o <- r4 ) ;
    ( i -> r1 || o <- r5 ) ;
    ( i -> r2 || o <- r6 ) ;
    ( i -> r3 || o <- r7 ) ;
    ( i -> r4 || o <- r0 ) ;
    ( i -> r5 || o <- r1 ) ;
    ( i -> r6 || o <- r2 ) ;
    ( i -> r7 || o <- r3 )
  end
end";

/// The 8-place 8-bit stack: a command stream selects pushes (reading
/// `din`) and pops (writing `dout`).
pub const STACK: &str = "\
-- 8-place, 8-bit stack; cmd 0 = push(din), cmd 1 = pop -> dout.
procedure stack8 (input cmd : 1 bits; input din : 8 bits; output dout : 8 bits) is
  memory buf : 8 words of 8 bits
  variable sp : 4 bits
  variable tmp : 8 bits
  variable c : 1 bits
begin
  loop
    cmd -> c ;
    if c = 0 then
      din -> tmp ;
      buf[sp] := tmp ;
      sp := sp + 1
    else
      sp := sp - 1 ;
      dout <- buf[sp]
    end
  end
end";

/// The SSEM (Manchester Baby) core: a 32-bit accumulator machine with a
/// 32-word store. Opcode in bits 15:13, operand address in bits 4:0.
/// Opcodes: 0 JMP, 1 JRP, 2 LDN, 3 STO, 4/5 SUB, 6 CMP (skip if negative),
/// 7 STP.
pub const SSEM: &str = "\
-- SSEM (Manchester Baby) non-pipelined core.
procedure ssem (sync halt) is
  memory m : 32 words of 32 bits
  variable pc : 32 bits
  variable ir : 32 bits
  variable acc : 32 bits
  variable running : 1 bits
begin
  running := 1 ;
  while running = 1 then
    ir := m[pc] ;
    pc := pc + 1 ;
    case (ir >> 13) and 7 of
      0 then pc := m[ir and 31]
    | 1 then pc := pc + m[ir and 31]
    | 2 then acc := 0 - m[ir and 31]
    | 3 then m[ir and 31] := acc
    | 4 then acc := acc - m[ir and 31]
    | 5 then acc := acc - m[ir and 31]
    | 6 then if negative(acc) then pc := pc + 1 else continue end
    | 7 then running := 0
    end
  end ;
  sync halt
end";

#[cfg(test)]
mod tests {
    use super::*;
    use bmbe_balsa::{compile_procedure, parse};

    #[test]
    fn all_sources_parse_and_compile() {
        for (name, src) in [
            ("counter", SYSTOLIC_COUNTER),
            ("wagging", WAGGING_REGISTER),
            ("stack", STACK),
            ("ssem", SSEM),
        ] {
            let prog = parse(src).unwrap_or_else(|e| panic!("{name}: {e}"));
            let design =
                compile_procedure(&prog.procedures[0]).unwrap_or_else(|e| panic!("{name}: {e}"));
            design
                .netlist
                .validate()
                .unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn counter_has_call_components() {
        let prog = parse(SYSTOLIC_COUNTER).unwrap();
        let design = compile_procedure(&prog.procedures[0]).unwrap();
        let calls = design
            .netlist
            .components()
            .iter()
            .filter(|c| matches!(c.kind, bmbe_hsnet::ComponentKind::Call { .. }))
            .count();
        assert!(calls >= 2, "{}", design.netlist);
    }

    #[test]
    fn wagging_register_has_concurs_and_muxes() {
        let prog = parse(WAGGING_REGISTER).unwrap();
        let design = compile_procedure(&prog.procedures[0]).unwrap();
        let concurs = design
            .netlist
            .components()
            .iter()
            .filter(|c| matches!(c.kind, bmbe_hsnet::ComponentKind::Concur { .. }))
            .count();
        assert_eq!(concurs, 8);
        assert!(design.netlist.components().iter().any(|c| matches!(
            c.kind,
            bmbe_hsnet::ComponentKind::PullMux { clients: 8, .. }
        )));
    }

    #[test]
    fn ssem_is_datapath_dominated() {
        let prog = parse(SSEM).unwrap();
        let design = compile_procedure(&prog.procedures[0]).unwrap();
        let p = design.netlist.partition();
        assert!(
            p.datapath.len() > 10,
            "{} datapath components",
            p.datapath.len()
        );
        assert!(p.control.len() > 10);
    }
}
