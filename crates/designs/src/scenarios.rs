//! Benchmark scenarios and result checks for the four designs.

use crate::sources;
use crate::ssem;
use bmbe_balsa::{compile_procedure, parse, BalsaError, CompiledDesign, ParseError};
use std::collections::HashMap;
use std::fmt;

/// What the benchmark run must satisfy once complete.
#[derive(Debug, Clone)]
pub enum Check {
    /// No functional check beyond completion.
    None,
    /// An output port must have delivered exactly these values.
    OutputEquals {
        /// The port.
        port: String,
        /// The expected sequence.
        values: Vec<u64>,
    },
    /// Memory cells must hold these values.
    MemoryEquals {
        /// The memory name.
        memory: String,
        /// `(address, value)` expectations.
        cells: Vec<(usize, u64)>,
    },
}

/// The scenario parameters (mirrors `bmbe-flow`'s scenario type without
/// depending on it, so this crate stays a leaf).
#[derive(Debug, Clone)]
pub struct DesignScenario {
    /// Activation handshakes to drive.
    pub activation_cycles: usize,
    /// Scripted input values per port.
    pub input_values: HashMap<String, Vec<u64>>,
    /// Memory preloads.
    pub memory_init: HashMap<String, Vec<u64>>,
    /// Completion: `(kind, port, count)` where kind is `"sync"`,
    /// `"output"`, or `"activations"`.
    pub done: (String, String, usize),
    /// Time limit in ps.
    pub max_time: u64,
    /// Functional check.
    pub check: Check,
}

/// A named benchmark design.
pub struct Design {
    /// Display name (as in Table 3).
    pub name: &'static str,
    /// Mini-Balsa source.
    pub source: &'static str,
    /// The compiled netlist.
    pub compiled: CompiledDesign,
    /// Its benchmark scenario.
    pub scenario: DesignScenario,
}

/// Errors constructing the designs.
#[derive(Debug)]
pub enum DesignError {
    /// Parse failure (a bug in the shipped sources).
    Parse(ParseError),
    /// Compile failure.
    Compile(BalsaError),
}

impl fmt::Display for DesignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesignError::Parse(e) => write!(f, "parse: {e}"),
            DesignError::Compile(e) => write!(f, "compile: {e}"),
        }
    }
}

impl std::error::Error for DesignError {}

fn build(name: &'static str, source: &'static str) -> Result<CompiledDesign, DesignError> {
    let _ = name;
    let prog = parse(source).map_err(DesignError::Parse)?;
    compile_procedure(&prog.procedures[0]).map_err(DesignError::Compile)
}

/// The systolic counter benchmark: one full 8-handshake cycle (one `done`).
pub fn systolic_counter() -> Result<Design, DesignError> {
    Ok(Design {
        name: "Systolic counter",
        source: sources::SYSTOLIC_COUNTER,
        compiled: build("counter8", sources::SYSTOLIC_COUNTER)?,
        scenario: DesignScenario {
            activation_cycles: 1,
            input_values: HashMap::new(),
            memory_init: HashMap::new(),
            done: ("sync".into(), "done".into(), 1),
            max_time: 200_000_000,
            check: Check::None,
        },
    })
}

/// The wagging register benchmark: forward latency over one full rotation
/// (eight words through the register).
pub fn wagging_register() -> Result<Design, DesignError> {
    let mut input_values = HashMap::new();
    input_values.insert("i".to_string(), (1..=16u64).collect());
    Ok(Design {
        name: "Wagging register",
        source: sources::WAGGING_REGISTER,
        compiled: build("wag8", sources::WAGGING_REGISTER)?,
        scenario: DesignScenario {
            activation_cycles: 1,
            input_values,
            memory_init: HashMap::new(),
            done: ("output".into(), "o".into(), 8),
            max_time: 200_000_000,
            // The first four outputs drain the uninitialized half (zeros),
            // then the first four input words emerge.
            check: Check::OutputEquals {
                port: "o".into(),
                values: vec![0, 0, 0, 0, 1, 2, 3, 4],
            },
        },
    })
}

/// The stack benchmark: three pushes followed by three pops.
pub fn stack() -> Result<Design, DesignError> {
    let mut input_values = HashMap::new();
    input_values.insert("cmd".to_string(), vec![0, 0, 0, 1, 1, 1]);
    input_values.insert("din".to_string(), vec![11, 22, 33]);
    Ok(Design {
        name: "Stack",
        source: sources::STACK,
        compiled: build("stack8", sources::STACK)?,
        scenario: DesignScenario {
            activation_cycles: 1,
            input_values,
            memory_init: HashMap::new(),
            done: ("output".into(), "dout".into(), 3),
            max_time: 200_000_000,
            check: Check::OutputEquals {
                port: "dout".into(),
                values: vec![33, 22, 11],
            },
        },
    })
}

/// The SSEM benchmark: the paper's program writing 0..4 to consecutive
/// memory locations, run to the `STP` instruction.
pub fn ssem_core() -> Result<Design, DesignError> {
    let mut memory_init = HashMap::new();
    memory_init.insert("m".to_string(), ssem::benchmark_program());
    Ok(Design {
        name: "Microprocessor core",
        source: sources::SSEM,
        compiled: build("ssem", sources::SSEM)?,
        scenario: DesignScenario {
            activation_cycles: 1,
            input_values: HashMap::new(),
            memory_init,
            done: ("sync".into(), "halt".into(), 1),
            max_time: 2_000_000_000,
            check: Check::MemoryEquals {
                memory: "m".into(),
                cells: ssem::benchmark_expectation(),
            },
        },
    })
}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives an independent per-design seed from a fleet-wide root seed, the
/// design's name, its family parameters, and a stream index (replica round,
/// variant stream, ...). Two designs in one batch — or two replicas of one
/// design — therefore never draw the same scenario-variant sequence, which
/// a plain `root + index` scheme cannot guarantee (every design of a
/// replica round used to share one stream). The mixing is FNV-1a over the
/// name and parameter bytes followed by a splitmix64 finalizer, so a
/// one-character name difference decorrelates the whole stream.
pub fn derive_seed(root: u64, name: &str, params: &str, index: u64) -> u64 {
    let mut h = root ^ 0x243f_6a88_85a3_08d3;
    for b in name.bytes().chain([0u8]).chain(params.bytes()) {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        h = h.rotate_left(23);
    }
    h ^= index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    splitmix64(&mut h)
}

/// Generates `n` scenario variants of a design's benchmark scenario for
/// batched (bit-parallel) simulation: variant 0 is the base scenario
/// verbatim; later variants keep the protocol shape (done condition kind,
/// memory preloads, and any control-scripting port such as the stack's
/// `cmd`) but randomize the scripted *data* values from a deterministic
/// `seed`, and every fourth variant additionally sweeps the run *length* —
/// activation cycles and the done-condition count scale together by 2–4× —
/// so a batch is a mix of short and long lanes rather than sixty-four
/// copies of the same trace length. Variants beyond the base carry
/// [`Check::None`] — their expected outcome is whatever the event-engine
/// oracle computes, which is exactly what the compiled-vs-event
/// differential tests assert.
///
/// Length sweeps are skipped for designs with memory preloads (the SSEM):
/// a preloaded program runs to its own halt exactly once, so its done
/// count cannot be multiplied.
pub fn scenario_variants(design: &Design, n: usize, seed: u64) -> Vec<DesignScenario> {
    // The per-design stream is derived from the design's name, so two
    // designs sharing one fleet seed never replay each other's variant
    // sequence (see [`derive_seed`]).
    variants_of(&design.scenario, n, derive_seed(seed, design.name, "", 0))
}

/// [`scenario_variants`] for a bare scenario — the batch driver's sim
/// stage works from a [`DesignScenario`] supplied per job, without a
/// [`Design`] wrapper.
pub fn variants_of(base: &DesignScenario, n: usize, seed: u64) -> Vec<DesignScenario> {
    (0..n)
        .map(|k| {
            // Each variant draws from its own stream derived from (seed,
            // variant index): variant k's data is a pure function of the
            // pair, independent of how many ports earlier variants
            // randomized — so inserting a port or reordering variants
            // never reshuffles every later variant's values.
            let mut rng =
                seed ^ 0xd6e8_feb8_6659_fd93 ^ (k as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let mut s = base.clone();
            if k > 0 {
                for (port, values) in &mut s.input_values {
                    // Command/selector scripts steer control flow; changing
                    // them changes the handshake count the done condition
                    // waits for, so only data ports vary (the scripts cycle,
                    // so longer variants replay the same balanced commands).
                    if port == "cmd" {
                        continue;
                    }
                    for v in values.iter_mut() {
                        *v = splitmix64(&mut rng) & 0xff;
                    }
                }
                if k % 4 == 3 && base.memory_init.is_empty() {
                    let m = 2 + (k / 4) % 3;
                    s.activation_cycles *= m;
                    s.done.2 *= m;
                }
                s.check = Check::None;
            }
            s
        })
        .collect()
}

/// All four designs in Table 3 order.
///
/// # Errors
///
/// Propagates construction failures (which indicate shipped-source bugs).
pub fn all_designs() -> Result<Vec<Design>, DesignError> {
    Ok(vec![
        systolic_counter()?,
        wagging_register()?,
        stack()?,
        ssem_core()?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_four_designs_build() {
        let designs = all_designs().unwrap();
        assert_eq!(designs.len(), 4);
        assert_eq!(designs[0].name, "Systolic counter");
        assert_eq!(designs[3].name, "Microprocessor core");
    }

    #[test]
    fn variants_preserve_shape_and_are_deterministic() {
        let stack = stack().unwrap();
        let a = scenario_variants(&stack, 8, 42);
        let b = scenario_variants(&stack, 8, 42);
        assert_eq!(a.len(), 8);
        // Variant 0 is the base scenario.
        assert_eq!(a[0].input_values, stack.scenario.input_values);
        assert!(matches!(a[0].check, Check::OutputEquals { .. }));
        for (k, v) in a.iter().enumerate().skip(1) {
            // Protocol shape survives: same ports, same lengths, same cmd.
            assert_eq!(v.input_values["cmd"], stack.scenario.input_values["cmd"]);
            assert_eq!(
                v.input_values["din"].len(),
                stack.scenario.input_values["din"].len()
            );
            assert!(matches!(v.check, Check::None), "variant {k}");
            // Every fourth variant sweeps the run length; the rest keep the
            // base done count. Either way the done kind and port survive.
            assert_eq!(v.done.0, stack.scenario.done.0);
            assert_eq!(v.done.1, stack.scenario.done.1);
            if k % 4 == 3 {
                let m = 2 + (k / 4) % 3;
                assert_eq!(v.done.2, stack.scenario.done.2 * m, "variant {k}");
                assert_eq!(
                    v.activation_cycles,
                    stack.scenario.activation_cycles * m,
                    "variant {k}"
                );
            } else {
                assert_eq!(v.done, stack.scenario.done);
                assert_eq!(v.activation_cycles, stack.scenario.activation_cycles);
            }
            // Deterministic for a fixed seed.
            assert_eq!(v.input_values, b[k].input_values);
        }
        // A different seed varies the data.
        let c = scenario_variants(&stack, 8, 43);
        assert_ne!(a[1].input_values["din"], c[1].input_values["din"]);
    }

    #[test]
    fn length_sweeps_skip_memory_preloaded_designs() {
        // The SSEM runs its preloaded program to a single halt; its done
        // count must never be multiplied.
        let ssem = ssem_core().unwrap();
        for (k, v) in scenario_variants(&ssem, 12, 7).iter().enumerate() {
            assert_eq!(v.done, ssem.scenario.done, "variant {k}");
            assert_eq!(v.activation_cycles, ssem.scenario.activation_cycles);
        }
    }

    #[test]
    fn per_design_streams_are_independent() {
        // Two designs sharing one fleet seed must not draw identical
        // variant sequences (the old shared-stream seeding did exactly
        // that for designs in the same replica round).
        let stack = stack().unwrap();
        let wag = wagging_register().unwrap();
        let sv = scenario_variants(&stack, 8, 42);
        let wv = scenario_variants(&wag, 8, 42);
        assert_ne!(sv[1].input_values["din"], wv[1].input_values["i"]);
        // derive_seed separates name, params, and index dimensions.
        assert_ne!(derive_seed(1, "a", "", 0), derive_seed(1, "b", "", 0));
        assert_ne!(derive_seed(1, "a", "n=2", 0), derive_seed(1, "a", "n=3", 0));
        assert_ne!(derive_seed(1, "a", "", 0), derive_seed(1, "a", "", 1));
        assert_ne!(derive_seed(1, "ab", "c", 0), derive_seed(1, "a", "bc", 0));
        assert_eq!(derive_seed(7, "x", "p", 3), derive_seed(7, "x", "p", 3));
    }

    #[test]
    fn variant_data_is_a_function_of_seed_and_index() {
        // Variant k's data must not depend on how many variants were
        // generated before it: the 6th variant of an 8-variant run equals
        // the 6th variant of a 64-variant run.
        let stack = stack().unwrap();
        let short = variants_of(&stack.scenario, 8, 99);
        let long = variants_of(&stack.scenario, 64, 99);
        for k in 0..8 {
            assert_eq!(short[k].input_values, long[k].input_values, "variant {k}");
        }
    }

    #[test]
    fn control_dominance_ordering() {
        // The systolic counter is pure control; the SSEM is datapath-heavy
        // (the paper's explanation of the improvement gradient).
        let designs = all_designs().unwrap();
        let ratio = |d: &Design| {
            let p = d.compiled.netlist.partition();
            p.control.len() as f64 / (p.control.len() + p.datapath.len()).max(1) as f64
        };
        assert!(ratio(&designs[0]) > ratio(&designs[3]));
    }
}
