//! SSEM (Manchester Baby) assembler and the paper's benchmark program.

/// One SSEM instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// `pc := m[a]` (absolute jump through memory).
    Jmp(u32),
    /// `pc := pc + m[a]` (relative jump through memory).
    Jrp(u32),
    /// `acc := -m[a]` (load negated — SSEM's only load).
    Ldn(u32),
    /// `m[a] := acc`.
    Sto(u32),
    /// `acc := acc - m[a]`.
    Sub(u32),
    /// Skip the next instruction when `acc < 0`.
    Cmp,
    /// Stop.
    Stp,
}

impl Instr {
    /// Encodes the instruction: opcode in bits 15:13, address in bits 4:0.
    pub fn encode(&self) -> u64 {
        let (op, addr) = match self {
            Instr::Jmp(a) => (0u64, *a),
            Instr::Jrp(a) => (1, *a),
            Instr::Ldn(a) => (2, *a),
            Instr::Sto(a) => (3, *a),
            Instr::Sub(a) => (4, *a),
            Instr::Cmp => (6, 0),
            Instr::Stp => (7, 0),
        };
        op << 13 | u64::from(addr & 31)
    }
}

/// Assembles a program into a 32-word store image.
///
/// # Panics
///
/// Panics when the program exceeds 32 words.
pub fn assemble(instrs: &[Instr], data: &[(usize, u64)]) -> Vec<u64> {
    assert!(instrs.len() <= 32);
    let mut image = vec![0u64; 32];
    for (i, ins) in instrs.iter().enumerate() {
        image[i] = ins.encode();
    }
    for &(addr, value) in data {
        image[addr] = value;
    }
    image
}

/// The paper's benchmark program: write the numbers 0 through 4 to the
/// consecutive memory locations 16..=20, then stop. Constants -0..-4 are
/// pre-loaded at 24..=28 (SSEM's `LDN` loads negated, so `LDN (24+k)`
/// leaves `k` in the accumulator).
pub fn benchmark_program() -> Vec<u64> {
    let mut instrs = Vec::new();
    for k in 0..5u32 {
        instrs.push(Instr::Ldn(24 + k));
        instrs.push(Instr::Sto(16 + k));
    }
    instrs.push(Instr::Stp);
    let data: Vec<(usize, u64)> = (0..5u64)
        .map(|k| (24 + k as usize, k.wrapping_neg()))
        .collect();
    assemble(&instrs, &data)
}

/// The memory locations the benchmark writes, with their expected values.
pub fn benchmark_expectation() -> Vec<(usize, u64)> {
    (0..5u64).map(|k| (16 + k as usize, k)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_matches_fields() {
        assert_eq!(Instr::Ldn(24).encode(), 2 << 13 | 24);
        assert_eq!(Instr::Stp.encode(), 7 << 13);
        assert_eq!(Instr::Jmp(31).encode(), 31);
    }

    #[test]
    fn benchmark_image_is_well_formed() {
        let image = benchmark_program();
        assert_eq!(image.len(), 32);
        // 11 instructions then zeroes until the constant pool.
        assert_eq!(image[10], Instr::Stp.encode());
        assert_eq!(image[24], 0);
        assert_eq!(image[25], u64::MAX); // -1
    }

    /// A tiny reference interpreter cross-checking the encoding semantics
    /// (and later the simulated core).
    pub fn interpret(mut m: Vec<u64>, max_steps: usize) -> Vec<u64> {
        let mut pc = 0u64;
        let mut acc = 0u64;
        for _ in 0..max_steps {
            let ir = m[(pc as usize) % 32];
            pc = pc.wrapping_add(1);
            let a = (ir & 31) as usize;
            match ir >> 13 & 7 {
                0 => pc = m[a],
                1 => pc = pc.wrapping_add(m[a]),
                2 => acc = m[a].wrapping_neg(),
                3 => m[a] = acc,
                4 | 5 => acc = acc.wrapping_sub(m[a]),
                6 => {
                    if (acc as i64) < 0 {
                        pc = pc.wrapping_add(1);
                    }
                }
                _ => return m,
            }
        }
        m
    }

    #[test]
    fn reference_interpreter_runs_benchmark() {
        let final_mem = interpret(benchmark_program(), 100);
        for (addr, value) in benchmark_expectation() {
            assert_eq!(final_mem[addr], value, "m[{addr}]");
        }
    }
}
