//! Property-based tests of the CH language: random Burst-Mode aware
//! programs must expand, print/parse roundtrip, compile to valid
//! Burst-Mode machines, and synthesize hazard-free.

use bmbe_bm::synth::{synthesize, MinimizeMode};
use bmbe_core::ast::{check_bm_aware, ChActivity, ChExpr, InterleaveOp};
use bmbe_core::compile::compile_to_bm;
use bmbe_core::expand::expand;
use bmbe_core::parse::{parse_ch, print_ch};
use proptest::prelude::*;
use std::cell::Cell;

thread_local! {
    static COUNTER: Cell<usize> = const { Cell::new(0) };
}

fn fresh(prefix: &str) -> String {
    COUNTER.with(|c| {
        c.set(c.get() + 1);
        format!("{prefix}{}", c.get())
    })
}

/// Random *active* (BM-aware) expression of bounded depth: the "body" side
/// of a component.
fn arb_active(depth: u32) -> BoxedStrategy<ChExpr> {
    if depth == 0 {
        return Just(()).prop_map(|()| ChExpr::active(fresh("a"))).boxed();
    }
    prop_oneof![
        Just(()).prop_map(|()| ChExpr::active(fresh("a"))),
        (arb_active(depth - 1), arb_active(depth - 1)).prop_map(|(x, y)| ChExpr::op(
            InterleaveOp::Seq,
            x,
            y
        )),
        (arb_active(depth - 1), arb_active(depth - 1)).prop_map(|(x, y)| ChExpr::op(
            InterleaveOp::SeqOv,
            x,
            y
        )),
        (arb_active(depth - 1), arb_active(depth - 1)).prop_map(|(x, y)| ChExpr::op(
            InterleaveOp::EncEarly,
            x,
            y
        )),
        (arb_active(depth - 1), arb_active(depth - 1)).prop_map(|(x, y)| ChExpr::op(
            InterleaveOp::EncMiddle,
            x,
            y
        )),
    ]
    .boxed()
}

/// Random BM-aware *component*: `rep` of a passive enclosure (the standard
/// controller shape) with a random active body, possibly a mutex of such.
fn arb_component() -> impl Strategy<Value = ChExpr> {
    let arm =
        |(body,): (ChExpr,)| ChExpr::op(InterleaveOp::EncEarly, ChExpr::passive(fresh("p")), body);
    prop_oneof![
        arb_active(2).prop_map(move |b| ChExpr::Rep(Box::new(arm((b,))))),
        (arb_active(1), arb_active(1)).prop_map(move |(b1, b2)| {
            ChExpr::Rep(Box::new(ChExpr::op(
                InterleaveOp::Mutex,
                arm((b1,)),
                arm((b2,)),
            )))
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_components_are_bm_aware(e in arb_component()) {
        prop_assert!(check_bm_aware(&e).is_ok());
    }

    #[test]
    fn expansion_has_four_events(e in arb_component()) {
        let x = expand(&e).expect("BM-aware programs expand");
        prop_assert_eq!(x.events.len(), 4);
        // Every transition's signal comes from a declared channel.
        let channels = e.channels();
        for t in x.transitions() {
            let chan = t.signal.rsplit_once('_').expect("wire names are chan_suffix").0;
            prop_assert!(channels.contains_key(chan), "{}", t.signal);
        }
    }

    #[test]
    fn print_parse_roundtrip(e in arb_component()) {
        let text = print_ch(&e);
        let back = parse_ch(&text).expect("printer emits valid syntax");
        prop_assert_eq!(back, e);
    }

    #[test]
    fn compile_yields_valid_bm(e in arb_component()) {
        let spec = compile_to_bm("prop", &e).expect("BM-aware programs compile");
        // compile_to_bm validates internally; sanity-check shape here.
        prop_assert!(spec.num_states() >= 2);
        prop_assert!(!spec.arcs().is_empty());
    }

    #[test]
    fn synthesis_is_hazard_free(e in arb_component()) {
        let spec = compile_to_bm("prop", &e).expect("compiles");
        if spec.signals().len() > 16 {
            return Ok(()); // keep the property fast
        }
        let ctrl = synthesize(&spec, MinimizeMode::Speed).expect("synthesizes");
        prop_assert!(ctrl.verify_ternary().is_ok());
    }

    #[test]
    fn activity_of_components_is_passive(e in arb_component()) {
        prop_assert_eq!(e.activity(), ChActivity::Passive);
    }
}
