#![warn(missing_docs)]
//! # bmbe-core
//!
//! The paper's primary contribution: the **CH** control-specification
//! language ([`ast`], [`mod@expand`]), the CH-to-Burst-Mode compiler
//! ([`compile`]), models of the standard Balsa control handshake components
//! ([`components`]), the clustering optimizations — Activation Channel
//! Removal and Call Distribution with the `T1`/`T2` netlist algorithms
//! ([`opt`]) — and trace-structure generation for the §4.3 formal
//! verification ([`trace_gen`]).
//!
//! # Examples
//!
//! Model a sequencer in CH, compile it to Burst-Mode, and synthesize it:
//!
//! ```
//! use bmbe_core::components::sequencer;
//! use bmbe_core::compile::compile_to_bm;
//! use bmbe_bm::synth::{synthesize, MinimizeMode};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ch = sequencer("p", &["a1".into(), "a2".into()]);
//! let spec = compile_to_bm("sequencer", &ch)?;
//! assert_eq!(spec.num_states(), 6); // Fig. 3 of the paper
//! let ctrl = synthesize(&spec, MinimizeMode::Speed)?;
//! ctrl.verify_ternary().map_err(|e| format!("hazard: {e}"))?;
//! # Ok(())
//! # }
//! ```

pub mod ast;
pub mod balsa_to_ch;
pub mod compile;
pub mod components;
pub mod expand;
pub mod opt;
pub mod parse;
pub mod trace_gen;

pub use ast::{check_bm_aware, legal, BmAwareError, ChActivity, ChExpr, InterleaveOp};
pub use balsa_to_ch::{balsa_to_ch, TranslateError};
pub use compile::{compile_to_bm, CompileError};
pub use expand::{expand, ExpandError, Expansion, Io, Item, Trans};
pub use opt::{activation_channel_removal, AcrFailure, ClusterOptions, CtrlNetlist};
pub use parse::{parse_ch, print_ch, ChParseError};
pub use trace_gen::{trace_of, TraceGenError};
