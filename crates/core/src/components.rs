//! CH models of the standard Balsa control handshake components (§3.4).
//!
//! Each constructor takes the component's channel names and returns the CH
//! program of its controller; these are what the Balsa-to-CH translator
//! instantiates for every control component of the netlist.

use crate::ast::{ChActivity, ChExpr, InterleaveOp};

/// An n-way sequencer: activated on `activate`, performs handshakes on each
/// `outs[i]` in order (§3.4).
///
/// # Panics
///
/// Panics when `outs` is empty.
pub fn sequencer(activate: &str, outs: &[String]) -> ChExpr {
    assert!(!outs.is_empty());
    let body = ChExpr::seq_all(outs.iter().map(|c| ChExpr::active(c)).collect());
    ChExpr::Rep(Box::new(ChExpr::op(
        InterleaveOp::EncEarly,
        ChExpr::passive(activate),
        body,
    )))
}

/// An n-way concur: activated on `activate`, performs all `outs` handshakes
/// in parallel (modelled with `enc-middle`, the C-element-style
/// synchronization of §3.3).
///
/// # Panics
///
/// Panics when `outs` is empty.
pub fn concur(activate: &str, outs: &[String]) -> ChExpr {
    assert!(!outs.is_empty());
    let mut iter = outs.iter().rev();
    let mut body = ChExpr::active(iter.next().expect("nonempty"));
    for c in iter {
        body = ChExpr::op(InterleaveOp::EncMiddle, ChExpr::active(c), body);
    }
    ChExpr::Rep(Box::new(ChExpr::op(
        InterleaveOp::EncEarly,
        ChExpr::passive(activate),
        body,
    )))
}

/// An n-way call: mutually exclusive activations on `ins` each perform one
/// handshake on `out` (§3.4).
///
/// # Panics
///
/// Panics when `ins` is empty.
pub fn call(ins: &[String], out: &str) -> ChExpr {
    assert!(!ins.is_empty());
    let arms: Vec<ChExpr> = ins
        .iter()
        .map(|i| {
            ChExpr::op(
                InterleaveOp::EncEarly,
                ChExpr::passive(i),
                ChExpr::active(out),
            )
        })
        .collect();
    ChExpr::Rep(Box::new(ChExpr::mutex_all(arms)))
}

/// A passivator: waits for handshakes on both passive channels and
/// synchronizes them (§3.4).
pub fn passivator(a: &str, b: &str) -> ChExpr {
    ChExpr::Rep(Box::new(ChExpr::op(
        InterleaveOp::EncMiddle,
        ChExpr::passive(a),
        ChExpr::passive(b),
    )))
}

/// An n-way synchronizer: all passive channels rendezvous.
///
/// # Panics
///
/// Panics when `chans` is empty.
pub fn sync(chans: &[String]) -> ChExpr {
    assert!(!chans.is_empty());
    let mut iter = chans.iter().rev();
    let mut body = ChExpr::passive(iter.next().expect("nonempty"));
    for c in iter {
        body = ChExpr::op(InterleaveOp::EncMiddle, ChExpr::passive(c), body);
    }
    ChExpr::Rep(Box::new(body))
}

/// A decision-wait: on activation, samples exactly one of the passive
/// `ins[i]` and completes the corresponding `outs[i]` (§4.1).
///
/// # Panics
///
/// Panics when the port lists are empty or of different lengths.
pub fn decision_wait(activate: &str, ins: &[String], outs: &[String]) -> ChExpr {
    assert!(!ins.is_empty());
    assert_eq!(ins.len(), outs.len());
    let arms: Vec<ChExpr> = ins
        .iter()
        .zip(outs)
        .map(|(i, o)| {
            ChExpr::op(
                InterleaveOp::EncEarly,
                ChExpr::passive(i),
                ChExpr::active(o),
            )
        })
        .collect();
    ChExpr::Rep(Box::new(ChExpr::op(
        InterleaveOp::EncEarly,
        ChExpr::passive(activate),
        ChExpr::mutex_all(arms),
    )))
}

/// A loop component: once activated, repeats handshakes on `out` forever
/// (the activation never completes).
pub fn loop_forever(activate: &str, out: &str) -> ChExpr {
    ChExpr::Rep(Box::new(ChExpr::op(
        InterleaveOp::EncEarly,
        ChExpr::passive(activate),
        ChExpr::Rep(Box::new(ChExpr::active(out))),
    )))
}

/// A transferrer/fetch controller: on activation, overlapped handshakes on
/// `pull` then `push` (§3.3 notes `seq-ov` models transferrers).
pub fn transferrer(activate: &str, pull: &str, push: &str) -> ChExpr {
    ChExpr::Rep(Box::new(ChExpr::op(
        InterleaveOp::EncEarly,
        ChExpr::passive(activate),
        ChExpr::op(
            InterleaveOp::SeqOv,
            ChExpr::active(pull),
            ChExpr::active(push),
        ),
    )))
}

/// A fork: one passive input broadcast to `outs` in parallel.
///
/// # Panics
///
/// Panics when `outs` is empty.
pub fn fork(input: &str, outs: &[String]) -> ChExpr {
    concur(input, outs)
}

/// An n-way case: on activation pulls the selector (`select` handshake via
/// mux-ack wires) and activates the matching branch.
///
/// # Panics
///
/// Panics when `branches` is empty.
pub fn case(activate: &str, select: &str, branches: &[String]) -> ChExpr {
    assert!(!branches.is_empty());
    let arms: Vec<(InterleaveOp, ChExpr)> = branches
        .iter()
        .map(|b| (InterleaveOp::EncEarly, ChExpr::active(b)))
        .collect();
    ChExpr::Rep(Box::new(ChExpr::op(
        InterleaveOp::EncEarly,
        ChExpr::passive(activate),
        ChExpr::MuxAck {
            name: select.to_string(),
            arms,
        },
    )))
}

/// A while component: on activation pulls the guard (mux-ack on `guard`);
/// a true guard (wire 1) runs `body` and re-tests, a false guard (wire 0)
/// breaks out and completes the activation.
pub fn while_loop(activate: &str, guard: &str, body: &str) -> ChExpr {
    ChExpr::Rep(Box::new(ChExpr::op(
        InterleaveOp::EncEarly,
        ChExpr::passive(activate),
        ChExpr::Rep(Box::new(ChExpr::MuxAck {
            name: guard.to_string(),
            arms: vec![
                // A false guard (wire 0) completes the guard handshake and
                // then breaks; sequencing (rather than enclosure) lets the
                // return-to-zero finish before the jump.
                (InterleaveOp::Seq, ChExpr::Break),
                (InterleaveOp::EncEarly, ChExpr::active(body)),
            ],
        })),
    )))
}

/// The CH activity of a named standard component's channel, used in tests
/// and the translator.
pub fn channel_activity(expr: &ChExpr, name: &str) -> Option<ChActivity> {
    expr.channels().get(name).copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_to_bm;

    fn names(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn sequencer_compiles_to_six_states_per_branch_pair() {
        let e = sequencer("p", &names(&["a1", "a2"]));
        let spec = compile_to_bm("seq2", &e).unwrap();
        assert_eq!(spec.num_states(), 6);
        let e3 = sequencer("p", &names(&["a1", "a2", "a3"]));
        let spec3 = compile_to_bm("seq3", &e3).unwrap();
        assert_eq!(spec3.num_states(), 8);
    }

    #[test]
    fn concur_synchronizes_outputs() {
        let e = concur("p", &names(&["x", "y"]));
        let spec = compile_to_bm("concur2", &e).unwrap();
        let text = spec.to_string();
        // Both requests rise in one output burst.
        assert!(text.contains("x_r+"), "{text}");
        assert!(text.contains("y_r+"), "{text}");
        let first = spec
            .arcs()
            .iter()
            .find(|a| a.from == spec.initial())
            .unwrap();
        assert_eq!(first.outputs.len(), 2);
    }

    #[test]
    fn call_compiles_per_figure() {
        let e = call(&names(&["a1", "a2"]), "b");
        let spec = compile_to_bm("call2", &e).unwrap();
        assert_eq!(spec.num_states(), 7);
        let e3 = call(&names(&["a1", "a2", "a3"]), "b");
        let spec3 = compile_to_bm("call3", &e3).unwrap();
        assert_eq!(spec3.num_states(), 10);
    }

    #[test]
    fn passivator_two_states() {
        let spec = compile_to_bm("pasv", &passivator("a", "b")).unwrap();
        assert_eq!(spec.num_states(), 2);
    }

    #[test]
    fn sync3_single_rendezvous() {
        let spec = compile_to_bm("sync3", &sync(&names(&["a", "b", "c"]))).unwrap();
        assert_eq!(spec.num_states(), 2);
        let first = spec
            .arcs()
            .iter()
            .find(|a| a.from == spec.initial())
            .unwrap();
        assert_eq!(first.inputs.len(), 3);
        assert_eq!(first.outputs.len(), 3);
    }

    #[test]
    fn decision_wait_two_pairs() {
        let e = decision_wait("a", &names(&["i1", "i2"]), &names(&["o1", "o2"]));
        let spec = compile_to_bm("dw2", &e).unwrap();
        assert_eq!(spec.num_states(), 9);
    }

    #[test]
    fn loop_component_compiles() {
        let spec = compile_to_bm("loop", &loop_forever("a", "b")).unwrap();
        spec.validate().unwrap();
        assert!(spec.to_string().contains("a_r+ | b_r+"));
    }

    #[test]
    fn transferrer_overlaps_pull_and_push() {
        let spec = compile_to_bm("xfer", &transferrer("a", "pl", "ps")).unwrap();
        let text = spec.to_string();
        assert!(text.contains("pl_r+"), "{text}");
        assert!(text.contains("ps_r+"), "{text}");
    }

    #[test]
    fn case_selects_branch() {
        let e = case("a", "sel", &names(&["b0", "b1"]));
        let spec = compile_to_bm("case2", &e).unwrap();
        let text = spec.to_string();
        assert!(text.contains("sel_a0+"), "{text}");
        assert!(text.contains("sel_a1+"), "{text}");
        assert!(text.contains("b0_r+"), "{text}");
    }

    #[test]
    fn while_loop_compiles() {
        let e = while_loop("a", "g", "body");
        let spec = compile_to_bm("while", &e).unwrap();
        spec.validate().unwrap();
        let text = spec.to_string();
        assert!(text.contains("body_r+"), "{text}");
        assert!(text.contains("a_a+"), "{text}");
    }

    #[test]
    fn all_components_are_bm_aware() {
        use crate::ast::check_bm_aware;
        for e in [
            sequencer("p", &names(&["a", "b"])),
            concur("p", &names(&["a", "b"])),
            call(&names(&["a", "b"]), "c"),
            passivator("a", "b"),
            sync(&names(&["a", "b", "c"])),
            decision_wait("p", &names(&["i"]), &names(&["o"])),
            loop_forever("a", "b"),
            transferrer("a", "b", "c"),
            case("a", "s", &names(&["x", "y"])),
            while_loop("a", "g", "b"),
        ] {
            check_bm_aware(&e).unwrap();
        }
    }
}
