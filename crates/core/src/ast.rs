//! The CH language: abstract syntax, activity typing, and the Burst-Mode
//! aware legality rules (Table 1 of the paper).
//!
//! CH is the paper's intermediate control-specification language: a small
//! channel calculus whose expressions denote four-phase handshake
//! expansions. Expressions are channel declarations or applications of
//! looping (`rep`, `break`) and interleaving operators (`enc-early`,
//! `enc-middle`, `enc-late`, `seq`, `seq-ov`, `mutex`).

use std::collections::BTreeMap;
use std::fmt;

/// Handshake activity of a CH expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChActivity {
    /// Initiates its handshake with an output request.
    Active,
    /// Awaits an input request.
    Passive,
    /// No events of its own (`void`, `break`).
    Neither,
}

impl fmt::Display for ChActivity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChActivity::Active => write!(f, "active"),
            ChActivity::Passive => write!(f, "passive"),
            ChActivity::Neither => write!(f, "neither"),
        }
    }
}

/// The six interleaving operators of CH (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InterleaveOp {
    /// Enclose the second argument between events 1 and 2 of the first.
    EncEarly,
    /// Events 1–2 (3–4) of the second enclosed between 1–2 (3–4) of the
    /// first; models C-element synchronization and forks.
    EncMiddle,
    /// Enclose the second argument between events 3 and 4 of the first.
    EncLate,
    /// Sequence: first argument completes, then the second runs.
    Seq,
    /// Overlapped sequencing (transferrer-style); active/active only.
    SeqOv,
    /// External mutually exclusive choice; passive/passive only.
    Mutex,
}

impl InterleaveOp {
    /// All operators, in Table 1 row order.
    pub const ALL: [InterleaveOp; 6] = [
        InterleaveOp::EncEarly,
        InterleaveOp::EncLate,
        InterleaveOp::EncMiddle,
        InterleaveOp::Seq,
        InterleaveOp::SeqOv,
        InterleaveOp::Mutex,
    ];

    /// The operator's CH keyword.
    pub fn keyword(&self) -> &'static str {
        match self {
            InterleaveOp::EncEarly => "enc-early",
            InterleaveOp::EncMiddle => "enc-middle",
            InterleaveOp::EncLate => "enc-late",
            InterleaveOp::Seq => "seq",
            InterleaveOp::SeqOv => "seq-ov",
            InterleaveOp::Mutex => "mutex",
        }
    }
}

impl fmt::Display for InterleaveOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.keyword())
    }
}

/// One transition of a `verb` channel event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerbTrans {
    /// `true` when the component drives the wire.
    pub out: bool,
    /// Wire name (used verbatim, not suffixed).
    pub signal: String,
    /// Rising or falling.
    pub rising: bool,
}

/// A CH expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChExpr {
    /// Point-to-point channel: a request and an acknowledge wire.
    PToP {
        /// Passive or active.
        activity: ChActivity,
        /// Channel name.
        name: String,
    },
    /// One request wire, `n` acknowledge wires (synchronized).
    MultAck {
        /// Passive or active.
        activity: ChActivity,
        /// Channel name.
        name: String,
        /// Number of acknowledge wires.
        n: usize,
    },
    /// `n` request wires, one acknowledge wire.
    MultReq {
        /// Passive or active.
        activity: ChActivity,
        /// Channel name.
        name: String,
        /// Number of request wires.
        n: usize,
    },
    /// One request, `n` acknowledge wires of which exactly one responds;
    /// the matching arm executes. Always active.
    MuxAck {
        /// Channel name.
        name: String,
        /// `(operator, expression)` arms selected by the acknowledge wires.
        arms: Vec<(InterleaveOp, ChExpr)>,
    },
    /// `n` request wires of which exactly one fires; the matching arm
    /// executes. Always passive.
    MuxReq {
        /// Channel name.
        name: String,
        /// `(operator, expression)` arms selected by the request wires.
        arms: Vec<(InterleaveOp, ChExpr)>,
    },
    /// The empty channel: all four events empty (used by the optimizer).
    Void,
    /// A channel whose four events are entirely user-specified (§3.1);
    /// its activity is given by its first transition.
    Verb {
        /// Channel name.
        name: String,
        /// The four events, each a list of transitions.
        events: [Vec<VerbTrans>; 4],
    },
    /// Repeat the argument forever.
    Rep(Box<ChExpr>),
    /// Exit the innermost loop.
    Break,
    /// Application of an interleaving operator to two expressions.
    Op {
        /// The operator.
        op: InterleaveOp,
        /// First argument.
        a: Box<ChExpr>,
        /// Second argument.
        b: Box<ChExpr>,
    },
}

impl ChExpr {
    /// Convenience constructor for a passive point-to-point channel.
    pub fn passive(name: impl Into<String>) -> ChExpr {
        ChExpr::PToP {
            activity: ChActivity::Passive,
            name: name.into(),
        }
    }

    /// Convenience constructor for an active point-to-point channel.
    pub fn active(name: impl Into<String>) -> ChExpr {
        ChExpr::PToP {
            activity: ChActivity::Active,
            name: name.into(),
        }
    }

    /// Convenience constructor for an operator application.
    pub fn op(op: InterleaveOp, a: ChExpr, b: ChExpr) -> ChExpr {
        ChExpr::Op {
            op,
            a: Box::new(a),
            b: Box::new(b),
        }
    }

    /// Right-nested sequencing of several expressions (§3.3:
    /// `(seq c1 c2 c3)` ≡ `(seq c1 (seq c2 c3))`).
    ///
    /// # Panics
    ///
    /// Panics on an empty list.
    pub fn seq_all(mut exprs: Vec<ChExpr>) -> ChExpr {
        assert!(!exprs.is_empty(), "seq of nothing");
        let mut acc = exprs.pop().expect("nonempty");
        while let Some(e) = exprs.pop() {
            acc = ChExpr::op(InterleaveOp::Seq, e, acc);
        }
        acc
    }

    /// Right-nested mutual exclusion of several expressions.
    ///
    /// # Panics
    ///
    /// Panics on an empty list.
    pub fn mutex_all(mut exprs: Vec<ChExpr>) -> ChExpr {
        assert!(!exprs.is_empty(), "mutex of nothing");
        let mut acc = exprs.pop().expect("nonempty");
        while let Some(e) = exprs.pop() {
            acc = ChExpr::op(InterleaveOp::Mutex, e, acc);
        }
        acc
    }

    /// The activity of the expression (§3.1–3.3): channels carry their
    /// declared activity; `rep` inherits its argument's; operators inherit
    /// their first argument's (falling back to the second when the first is
    /// `Neither`, as happens after the optimizer introduces `void`).
    pub fn activity(&self) -> ChActivity {
        match self {
            ChExpr::PToP { activity, .. }
            | ChExpr::MultAck { activity, .. }
            | ChExpr::MultReq { activity, .. } => *activity,
            ChExpr::MuxAck { .. } => ChActivity::Active,
            ChExpr::MuxReq { .. } => ChActivity::Passive,
            ChExpr::Void | ChExpr::Break => ChActivity::Neither,
            ChExpr::Verb { events, .. } => match events.iter().flat_map(|e| e.first()).next() {
                Some(t) if t.out => ChActivity::Active,
                Some(_) => ChActivity::Passive,
                None => ChActivity::Neither,
            },
            ChExpr::Rep(e) => e.activity(),
            ChExpr::Op { a, b, .. } => match a.activity() {
                ChActivity::Neither => b.activity(),
                other => other,
            },
        }
    }

    /// The channels mentioned in the expression, with their activity.
    /// Multiple mentions of the same name must agree (call fragments share
    /// their active channel).
    pub fn channels(&self) -> BTreeMap<String, ChActivity> {
        let mut map = BTreeMap::new();
        self.collect_channels(&mut map);
        map
    }

    fn collect_channels(&self, map: &mut BTreeMap<String, ChActivity>) {
        match self {
            ChExpr::PToP { activity, name }
            | ChExpr::MultAck { activity, name, .. }
            | ChExpr::MultReq { activity, name, .. } => {
                map.insert(name.clone(), *activity);
            }
            ChExpr::MuxAck { name, arms } => {
                map.insert(name.clone(), ChActivity::Active);
                for (_, e) in arms {
                    e.collect_channels(map);
                }
            }
            ChExpr::MuxReq { name, arms } => {
                map.insert(name.clone(), ChActivity::Passive);
                for (_, e) in arms {
                    e.collect_channels(map);
                }
            }
            ChExpr::Void | ChExpr::Break => {}
            ChExpr::Verb { name, .. } => {
                map.insert(name.clone(), self.activity());
            }
            ChExpr::Rep(e) => e.collect_channels(map),
            ChExpr::Op { a, b, .. } => {
                a.collect_channels(map);
                b.collect_channels(map);
            }
        }
    }

    /// Renames every occurrence of channel `from` to `to`.
    pub fn rename_channel(&mut self, from: &str, to: &str) {
        match self {
            ChExpr::PToP { name, .. }
            | ChExpr::MultAck { name, .. }
            | ChExpr::MultReq { name, .. }
            | ChExpr::MuxAck { name, .. }
            | ChExpr::MuxReq { name, .. } => {
                if name == from {
                    *name = to.to_string();
                }
            }
            ChExpr::Void | ChExpr::Break | ChExpr::Verb { .. } => {}
            ChExpr::Rep(e) => e.rename_channel(from, to),
            ChExpr::Op { a, b, .. } => {
                a.rename_channel(from, to);
                b.rename_channel(from, to);
            }
        }
        if let ChExpr::MuxAck { arms, .. } | ChExpr::MuxReq { arms, .. } = self {
            for (_, e) in arms {
                e.rename_channel(from, to);
            }
        }
    }

    /// Whether the expression contains a `verb` channel anywhere. Verb wire
    /// names are used verbatim (not `chan_suffix`), so verb programs cannot
    /// be alpha-renamed.
    pub fn contains_verb(&self) -> bool {
        match self {
            ChExpr::Verb { .. } => true,
            ChExpr::PToP { .. }
            | ChExpr::MultAck { .. }
            | ChExpr::MultReq { .. }
            | ChExpr::Void
            | ChExpr::Break => false,
            ChExpr::MuxAck { arms, .. } | ChExpr::MuxReq { arms, .. } => {
                arms.iter().any(|(_, e)| e.contains_verb())
            }
            ChExpr::Rep(e) => e.contains_verb(),
            ChExpr::Op { a, b, .. } => a.contains_verb() || b.contains_verb(),
        }
    }

    /// Channel names in first-occurrence order of a left-to-right,
    /// depth-first traversal — the order in which the four-phase expansion
    /// first mentions each channel, and hence a structural (name-free)
    /// ordering.
    pub fn channel_order(&self) -> Vec<String> {
        let mut order = Vec::new();
        self.collect_channel_order(&mut order);
        order
    }

    fn collect_channel_order(&self, order: &mut Vec<String>) {
        let push = |name: &String, order: &mut Vec<String>| {
            if !order.iter().any(|n| n == name) {
                order.push(name.clone());
            }
        };
        match self {
            ChExpr::PToP { name, .. }
            | ChExpr::MultAck { name, .. }
            | ChExpr::MultReq { name, .. }
            | ChExpr::Verb { name, .. } => push(name, order),
            ChExpr::MuxAck { name, arms } | ChExpr::MuxReq { name, arms } => {
                push(name, order);
                for (_, e) in arms {
                    e.collect_channel_order(order);
                }
            }
            ChExpr::Void | ChExpr::Break => {}
            ChExpr::Rep(e) => e.collect_channel_order(order),
            ChExpr::Op { a, b, .. } => {
                a.collect_channel_order(order);
                b.collect_channel_order(order);
            }
        }
    }

    /// Applies a simultaneous channel renaming: every channel whose name is
    /// a key of `map` is renamed to the mapped value; others are untouched.
    /// Unlike chained [`ChExpr::rename_channel`] calls, a simultaneous
    /// application cannot capture (rename through) another entry's target
    /// name.
    pub fn rename_channels(&self, map: &std::collections::HashMap<String, String>) -> ChExpr {
        let rename = |name: &String| map.get(name).cloned().unwrap_or_else(|| name.clone());
        match self {
            ChExpr::PToP { activity, name } => ChExpr::PToP {
                activity: *activity,
                name: rename(name),
            },
            ChExpr::MultAck { activity, name, n } => ChExpr::MultAck {
                activity: *activity,
                name: rename(name),
                n: *n,
            },
            ChExpr::MultReq { activity, name, n } => ChExpr::MultReq {
                activity: *activity,
                name: rename(name),
                n: *n,
            },
            ChExpr::MuxAck { name, arms } => ChExpr::MuxAck {
                name: rename(name),
                arms: arms
                    .iter()
                    .map(|(op, e)| (*op, e.rename_channels(map)))
                    .collect(),
            },
            ChExpr::MuxReq { name, arms } => ChExpr::MuxReq {
                name: rename(name),
                arms: arms
                    .iter()
                    .map(|(op, e)| (*op, e.rename_channels(map)))
                    .collect(),
            },
            ChExpr::Void => ChExpr::Void,
            ChExpr::Break => ChExpr::Break,
            ChExpr::Verb { .. } => self.clone(),
            ChExpr::Rep(e) => ChExpr::Rep(Box::new(e.rename_channels(map))),
            ChExpr::Op { op, a, b } => {
                ChExpr::op(*op, a.rename_channels(map), b.rename_channels(map))
            }
        }
    }
}

/// Alpha-renames an expression into canonical form: the `i`-th channel (in
/// [`ChExpr::channel_order`]) becomes `k{i}`. Two expressions that differ
/// only in channel names produce identical canonical forms, which is what
/// makes the printed canonical text a content address for the flow's
/// controller cache.
///
/// Returns the canonical expression plus the original channel names in
/// canonical order (`result.1[i]` is the channel that became `k{i}`), so a
/// wire `k{i}_suffix` of an artifact synthesized from the canonical form
/// can be mapped back to `{result.1[i]}_suffix`. Canonical names contain no
/// underscore, so the suffix split is unambiguous.
///
/// Returns `None` when the expression contains a `verb` channel (verb wire
/// names are verbatim and cannot be renamed); such programs are cached
/// under their literal printed text instead.
pub fn alpha_rename(expr: &ChExpr) -> Option<(ChExpr, Vec<String>)> {
    if expr.contains_verb() {
        return None;
    }
    let order = expr.channel_order();
    let map: std::collections::HashMap<String, String> = order
        .iter()
        .enumerate()
        .map(|(i, name)| (name.clone(), format!("k{i}")))
        .collect();
    Some((expr.rename_channels(&map), order))
}

/// Table 1 of the paper: whether an operator applied to arguments of the
/// given activities yields a correct-by-construction Burst-Mode
/// specification. `Neither` arguments (the optimizer's `void`) contribute no
/// events and are always compatible.
pub fn legal(op: InterleaveOp, a: ChActivity, b: ChActivity) -> bool {
    use ChActivity::{Active, Neither, Passive};
    if a == Neither || b == Neither {
        return true;
    }
    match (op, a, b) {
        (InterleaveOp::EncEarly, Active, Active) => true,
        (InterleaveOp::EncEarly, Active, Passive) => false,
        (InterleaveOp::EncEarly, Passive, _) => true,
        (InterleaveOp::EncLate, Passive, _) => true,
        (InterleaveOp::EncLate, Active, _) => false,
        (InterleaveOp::EncMiddle, Active, Active) => true,
        (InterleaveOp::EncMiddle, Active, Passive) => false,
        (InterleaveOp::EncMiddle, Passive, _) => true,
        (InterleaveOp::Seq, Active, Active) => true,
        (InterleaveOp::Seq, Active, Passive) => false,
        (InterleaveOp::Seq, Passive, _) => true,
        (InterleaveOp::SeqOv, Active, Active) => true,
        (InterleaveOp::SeqOv, _, _) => false,
        (InterleaveOp::Mutex, Passive, Passive) => true,
        (InterleaveOp::Mutex, _, _) => false,
        // Neither handled by the early return above.
        (_, Neither, _) | (_, _, Neither) => true,
    }
}

/// Checks the whole expression tree against the Burst-Mode aware rules,
/// returning the first offending operator application.
pub fn check_bm_aware(expr: &ChExpr) -> Result<(), BmAwareError> {
    match expr {
        ChExpr::PToP { .. }
        | ChExpr::MultAck { .. }
        | ChExpr::MultReq { .. }
        | ChExpr::Void
        | ChExpr::Verb { .. }
        | ChExpr::Break => Ok(()),
        ChExpr::Rep(e) => check_bm_aware(e),
        ChExpr::MuxAck { arms, .. } => {
            for (op, e) in arms {
                // The implicit first argument is the (active) mux channel.
                if !legal(*op, ChActivity::Active, e.activity()) {
                    return Err(BmAwareError {
                        op: *op,
                        a: ChActivity::Active,
                        b: e.activity(),
                    });
                }
                check_bm_aware(e)?;
            }
            Ok(())
        }
        ChExpr::MuxReq { arms, .. } => {
            for (op, e) in arms {
                if !legal(*op, ChActivity::Passive, e.activity()) {
                    return Err(BmAwareError {
                        op: *op,
                        a: ChActivity::Passive,
                        b: e.activity(),
                    });
                }
                check_bm_aware(e)?;
            }
            Ok(())
        }
        ChExpr::Op { op, a, b } => {
            if !legal(*op, a.activity(), b.activity()) {
                return Err(BmAwareError {
                    op: *op,
                    a: a.activity(),
                    b: b.activity(),
                });
            }
            check_bm_aware(a)?;
            check_bm_aware(b)
        }
    }
}

/// A violation of the Burst-Mode aware restrictions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BmAwareError {
    /// The operator.
    pub op: InterleaveOp,
    /// First-argument activity.
    pub a: ChActivity,
    /// Second-argument activity.
    pub b: ChActivity,
}

impl fmt::Display for BmAwareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "operator {} is not BM-aware for {}/{} arguments",
            self.op, self.a, self.b
        )
    }
}

impl std::error::Error for BmAwareError {}

#[cfg(test)]
mod tests {
    use super::*;
    use ChActivity::{Active, Passive};
    use InterleaveOp::*;

    #[test]
    fn table1_matches_paper() {
        // Rows of Table 1, columns aa, ap, pa, pp.
        let expect = [
            (EncEarly, [true, false, true, true]),
            (EncLate, [false, false, true, true]),
            (EncMiddle, [true, false, true, true]),
            (Seq, [true, false, true, true]),
            (SeqOv, [true, false, false, false]),
            (Mutex, [false, false, false, true]),
        ];
        for (op, row) in expect {
            assert_eq!(legal(op, Active, Active), row[0], "{op} aa");
            assert_eq!(legal(op, Active, Passive), row[1], "{op} ap");
            assert_eq!(legal(op, Passive, Active), row[2], "{op} pa");
            assert_eq!(legal(op, Passive, Passive), row[3], "{op} pp");
        }
    }

    #[test]
    fn sequencer_activity_is_passive() {
        // (rep (enc-early (p-to-p passive P) (seq (p-to-p active A1) ...)))
        let e = ChExpr::Rep(Box::new(ChExpr::op(
            EncEarly,
            ChExpr::passive("p"),
            ChExpr::op(Seq, ChExpr::active("a1"), ChExpr::active("a2")),
        )));
        assert_eq!(e.activity(), Passive);
        check_bm_aware(&e).unwrap();
    }

    #[test]
    fn void_first_argument_inherits_second() {
        let e = ChExpr::op(
            EncEarly,
            ChExpr::Void,
            ChExpr::op(Seq, ChExpr::active("c1"), ChExpr::active("c2")),
        );
        assert_eq!(e.activity(), Active);
        check_bm_aware(&e).unwrap();
    }

    #[test]
    fn illegal_combination_reported() {
        // enc-early active/passive is a "no" in Table 1.
        let e = ChExpr::op(EncEarly, ChExpr::active("a"), ChExpr::passive("b"));
        let err = check_bm_aware(&e).unwrap_err();
        assert_eq!(err.op, EncEarly);
        assert_eq!(err.a, Active);
        assert_eq!(err.b, Passive);
    }

    #[test]
    fn mutex_requires_passive_args() {
        let e = ChExpr::op(Mutex, ChExpr::active("a"), ChExpr::passive("b"));
        assert!(check_bm_aware(&e).is_err());
        let ok = ChExpr::op(Mutex, ChExpr::passive("a"), ChExpr::passive("b"));
        check_bm_aware(&ok).unwrap();
    }

    #[test]
    fn channels_collects_all() {
        let e = ChExpr::op(
            EncEarly,
            ChExpr::passive("p"),
            ChExpr::op(Seq, ChExpr::active("a1"), ChExpr::active("a2")),
        );
        let chans = e.channels();
        assert_eq!(chans.len(), 3);
        assert_eq!(chans["p"], Passive);
        assert_eq!(chans["a1"], Active);
    }

    #[test]
    fn rename_channel_works() {
        let mut e = ChExpr::op(Seq, ChExpr::active("x"), ChExpr::active("y"));
        e.rename_channel("x", "z");
        let chans = e.channels();
        assert!(chans.contains_key("z"));
        assert!(!chans.contains_key("x"));
    }

    #[test]
    fn seq_all_right_nests() {
        let e = ChExpr::seq_all(vec![
            ChExpr::active("a"),
            ChExpr::active("b"),
            ChExpr::active("c"),
        ]);
        match e {
            ChExpr::Op { op: Seq, a, b } => {
                assert_eq!(*a, ChExpr::active("a"));
                assert!(matches!(*b, ChExpr::Op { op: Seq, .. }));
            }
            other => panic!("unexpected shape {other:?}"),
        }
    }

    #[test]
    fn mux_arm_legality_checked() {
        // A mux-ack arm with a mutex operator is illegal (mutex needs
        // passive/passive but the mux channel is active).
        let bad = ChExpr::MuxAck {
            name: "m".into(),
            arms: vec![(Mutex, ChExpr::passive("x"))],
        };
        assert!(check_bm_aware(&bad).is_err());
        let good = ChExpr::MuxAck {
            name: "m".into(),
            arms: vec![(EncEarly, ChExpr::active("x"))],
        };
        check_bm_aware(&good).unwrap();
    }
}
