//! Formal verification of Activation Channel Removal (§4.3).
//!
//! Reproduces the paper's AVER experiment: for a pair of CH programs
//! sharing an activation channel, the composition of their trace structures
//! with the activation channel hidden must be conformance-equivalent to the
//! trace structure of the merged (optimized) program. The experiment is run
//! over every legal combination of operators in the activating and
//! activated programs.

use crate::ast::{legal, ChActivity, ChExpr, InterleaveOp};
use crate::opt::acr::{activation_channel_removal, AcrFailure};
use crate::trace_gen::{trace_of, TraceGenError};
use bmbe_trace::TraceError;
use std::fmt;

/// Outcome of verifying one Activation Channel Removal instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AcrVerdict {
    /// The optimized controller is conformance-equivalent to the composed
    /// and hidden originals.
    Equivalent,
    /// The merge itself was (correctly) rejected by the optimizer.
    MergeRejected(String),
    /// Verification found a behavioural difference — an optimizer bug.
    NotEquivalent,
}

impl fmt::Display for AcrVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AcrVerdict::Equivalent => write!(f, "equivalent"),
            AcrVerdict::MergeRejected(r) => write!(f, "merge rejected ({r})"),
            AcrVerdict::NotEquivalent => write!(f, "NOT equivalent"),
        }
    }
}

/// Errors from the verification machinery itself (not verdicts).
#[derive(Debug)]
pub enum VerifyError {
    /// Trace generation failed.
    TraceGen(TraceGenError),
    /// A trace-theory operation failed.
    Trace(TraceError),
    /// The composition of the two original components can fail on its own,
    /// so hiding is unsound; this never happens for activation channels.
    CompositionFails,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::TraceGen(e) => write!(f, "trace generation failed: {e}"),
            VerifyError::Trace(e) => write!(f, "trace operation failed: {e}"),
            VerifyError::CompositionFails => {
                write!(
                    f,
                    "composition of the original components reaches a failure"
                )
            }
        }
    }
}

impl std::error::Error for VerifyError {}

impl From<TraceGenError> for VerifyError {
    fn from(e: TraceGenError) -> Self {
        VerifyError::TraceGen(e)
    }
}

impl From<TraceError> for VerifyError {
    fn from(e: TraceError) -> Self {
        VerifyError::Trace(e)
    }
}

/// Verifies one Activation Channel Removal instance per §4.3:
/// `compose(activating, activated)` with the activation channel hidden must
/// be equivalent to the merged program.
///
/// # Errors
///
/// Returns [`VerifyError`] when the verification machinery cannot run;
/// behavioural mismatches are reported through the [`AcrVerdict`].
pub fn verify_acr(
    activating: &ChExpr,
    activated: &ChExpr,
    channel: &str,
) -> Result<AcrVerdict, VerifyError> {
    let merged = match activation_channel_removal(activating, activated, channel, None) {
        Ok(m) => m,
        Err(e @ (AcrFailure::NotBmAware(_) | AcrFailure::NotSynthesizable(_))) => {
            return Ok(AcrVerdict::MergeRejected(e.to_string()))
        }
        Err(e) => return Ok(AcrVerdict::MergeRejected(e.to_string())),
    };
    let ta = trace_of(activating)?;
    let tb = trace_of(activated)?;
    let composed = ta.compose(&tb)?;
    if composed.failure_reachable {
        return Err(VerifyError::CompositionFails);
    }
    let req = format!("{channel}_r");
    let ack = format!("{channel}_a");
    let hidden = composed.structure.hide(&[req.as_str(), ack.as_str()])?;
    let tm = trace_of(&merged)?;
    if hidden.equivalent_to(&tm)? {
        Ok(AcrVerdict::Equivalent)
    } else {
        Ok(AcrVerdict::NotEquivalent)
    }
}

/// One row of the §4.3 experiment: activating program
/// `rep(op1(passive p, active c))`, activated `rep(op2(passive c, X))`
/// where `X` is an active leaf (plus a `seq` body variant).
#[derive(Debug, Clone)]
pub struct ExperimentRow {
    /// Operator in the activating component.
    pub op_activating: InterleaveOp,
    /// Operator in the activated component.
    pub op_activated: InterleaveOp,
    /// The verdict.
    pub verdict: AcrVerdict,
}

/// Runs the full §4.3 experiment: all combinations of interleaving
/// operators in the activating and activated components that are legal
/// per Table 1 and structurally form an activation (the activated
/// component's operator must be an enclosure).
///
/// # Errors
///
/// Propagates machinery errors; verdicts (including correct rejections)
/// are collected in the rows.
pub fn run_acr_experiment() -> Result<Vec<ExperimentRow>, VerifyError> {
    let enclosures = [
        InterleaveOp::EncEarly,
        InterleaveOp::EncMiddle,
        InterleaveOp::EncLate,
    ];
    let mut rows = Vec::new();
    for op1 in InterleaveOp::ALL {
        // Activating component: rep(op1(passive p, active c)).
        if !legal(op1, ChActivity::Passive, ChActivity::Active) {
            continue;
        }
        let activating = ChExpr::Rep(Box::new(ChExpr::op(
            op1,
            ChExpr::passive("p"),
            ChExpr::active("c"),
        )));
        for op2 in enclosures {
            if !legal(op2, ChActivity::Passive, ChActivity::Active) {
                continue;
            }
            // Activated component: rep(op2(passive c, seq(x, y))).
            let activated = ChExpr::Rep(Box::new(ChExpr::op(
                op2,
                ChExpr::passive("c"),
                ChExpr::op(InterleaveOp::Seq, ChExpr::active("x"), ChExpr::active("y")),
            )));
            let verdict = verify_acr(&activating, &activated, "c")?;
            rows.push(ExperimentRow {
                op_activating: op1,
                op_activated: op2,
                verdict,
            });
        }
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::{decision_wait, sequencer};

    fn names(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn paper_example_verifies() {
        let dw = decision_wait("a1", &names(&["i1", "i2"]), &names(&["o1", "o2"]));
        let seq = sequencer("o2", &names(&["c1", "c2"]));
        let verdict = verify_acr(&dw, &seq, "o2").unwrap();
        assert_eq!(verdict, AcrVerdict::Equivalent);
    }

    #[test]
    fn chained_sequencers_verify() {
        let s1 = sequencer("p", &names(&["x", "m"]));
        let s2 = sequencer("m", &names(&["y", "z"]));
        assert_eq!(verify_acr(&s1, &s2, "m").unwrap(), AcrVerdict::Equivalent);
    }

    #[test]
    fn full_experiment_has_no_inequivalences() {
        let rows = run_acr_experiment().unwrap();
        assert!(!rows.is_empty());
        let bad: Vec<_> = rows
            .iter()
            .filter(|r| r.verdict == AcrVerdict::NotEquivalent)
            .collect();
        assert!(bad.is_empty(), "non-equivalent rows: {bad:?}");
        // At least the all-enc-early row must be an accepted, verified merge.
        assert!(rows.iter().any(|r| {
            r.op_activating == InterleaveOp::EncEarly
                && r.op_activated == InterleaveOp::EncEarly
                && r.verdict == AcrVerdict::Equivalent
        }));
    }
}
