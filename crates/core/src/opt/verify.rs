//! Formal verification of Activation Channel Removal (§4.3).
//!
//! Reproduces the paper's AVER experiment: for a pair of CH programs
//! sharing an activation channel, the composition of their trace structures
//! with the activation channel hidden must be conformance-equivalent to the
//! trace structure of the merged (optimized) program. The experiment is run
//! over every legal combination of operators in the activating and
//! activated programs.
//!
//! The default [`verify_acr`] decides the obligation on the fly: a
//! [`HiddenComposition`] explores the hidden product lazily during the two
//! conformance searches, never materializing the composite automaton, and
//! failures come back with a witness trace. The seed's fully-materializing
//! `compose` + `hide` + `equivalent_to` pipeline is kept as
//! [`verify_acr_materialized`], the oracle the differential tests and
//! [`verify_acr_compared`]'s state accounting run against.

use crate::ast::{legal, ChActivity, ChExpr, InterleaveOp};
use crate::opt::acr::{activation_channel_removal, AcrFailure};
use crate::trace_gen::{trace_of, TraceGenError};
use bmbe_trace::{HiddenComposition, TraceError, TraceStructure};
use std::fmt;

/// Which conformance direction a verification mismatch was found in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MismatchDirection {
    /// The original behaviour (composition with the activation channel
    /// hidden) does not conform to the optimized program: optimization lost
    /// behaviour the environment may rely on.
    OriginalVsOptimized,
    /// The optimized program does not conform to the original behaviour:
    /// optimization introduced behaviour the originals never had.
    OptimizedVsOriginal,
}

impl fmt::Display for MismatchDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MismatchDirection::OriginalVsOptimized => write!(f, "original ⋢ optimized"),
            MismatchDirection::OptimizedVsOriginal => write!(f, "optimized ⋢ original"),
        }
    }
}

/// Outcome of verifying one Activation Channel Removal instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AcrVerdict {
    /// The optimized controller is conformance-equivalent to the composed
    /// and hidden originals.
    Equivalent,
    /// The merge itself was (correctly) rejected by the optimizer.
    MergeRejected(String),
    /// Verification found a behavioural difference — an optimizer bug.
    NotEquivalent {
        /// The conformance direction that failed.
        direction: MismatchDirection,
        /// A shortest trace of channel-wire symbols driving the failing
        /// conformance product into its failure. Empty when the deciding
        /// path cannot produce one (the materialized oracle).
        counterexample: Vec<String>,
    },
}

impl AcrVerdict {
    /// Whether this verdict found the optimization behaviour-preserving.
    pub fn is_equivalent(&self) -> bool {
        matches!(self, AcrVerdict::Equivalent)
    }

    /// Whether this verdict found a behavioural difference.
    pub fn is_mismatch(&self) -> bool {
        matches!(self, AcrVerdict::NotEquivalent { .. })
    }

    /// Whether two verdicts agree, ignoring diagnostic payloads (the
    /// materialized oracle carries no counterexample).
    pub fn same_outcome(&self, other: &AcrVerdict) -> bool {
        match (self, other) {
            (AcrVerdict::Equivalent, AcrVerdict::Equivalent) => true,
            (AcrVerdict::MergeRejected(a), AcrVerdict::MergeRejected(b)) => a == b,
            (AcrVerdict::NotEquivalent { .. }, AcrVerdict::NotEquivalent { .. }) => true,
            _ => false,
        }
    }
}

impl fmt::Display for AcrVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AcrVerdict::Equivalent => write!(f, "equivalent"),
            AcrVerdict::MergeRejected(r) => write!(f, "merge rejected ({r})"),
            AcrVerdict::NotEquivalent {
                direction,
                counterexample,
            } => {
                write!(f, "NOT equivalent ({direction}")?;
                if !counterexample.is_empty() {
                    write!(f, "; after: {}", counterexample.join(" "))?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Errors from the verification machinery itself (not verdicts).
#[derive(Debug)]
pub enum VerifyError {
    /// Trace generation failed.
    TraceGen(TraceGenError),
    /// A trace-theory operation failed.
    Trace(TraceError),
    /// The composition of the two original components can fail on its own,
    /// so hiding is unsound; this never happens for activation channels.
    CompositionFails {
        /// A trace driving the bare composition into its failure (empty if
        /// no witness was reconstructed).
        witness: Vec<String>,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::TraceGen(e) => write!(f, "trace generation failed: {e}"),
            VerifyError::Trace(e) => write!(f, "trace operation failed: {e}"),
            VerifyError::CompositionFails { witness } => {
                write!(
                    f,
                    "composition of the original components reaches a failure"
                )?;
                if !witness.is_empty() {
                    write!(f, " (after: {})", witness.join(" "))?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for VerifyError {}

impl From<TraceGenError> for VerifyError {
    fn from(e: TraceGenError) -> Self {
        VerifyError::TraceGen(e)
    }
}

impl From<TraceError> for VerifyError {
    fn from(e: TraceError) -> Self {
        VerifyError::Trace(e)
    }
}

/// Attempts the merge; `Ok(Err(verdict))` is a (correct) rejection.
fn merge_or_reject(
    activating: &ChExpr,
    activated: &ChExpr,
    channel: &str,
) -> Result<ChExpr, AcrVerdict> {
    match activation_channel_removal(activating, activated, channel, None) {
        Ok(m) => Ok(m),
        Err(e @ (AcrFailure::NotBmAware(_) | AcrFailure::NotSynthesizable(_))) => {
            Err(AcrVerdict::MergeRejected(e.to_string()))
        }
        Err(e) => Err(AcrVerdict::MergeRejected(e.to_string())),
    }
}

/// Verifies one Activation Channel Removal instance per §4.3:
/// `compose(activating, activated)` with the activation channel hidden must
/// be equivalent to the merged program.
///
/// Decided on the fly: conformance is checked in both directions against a
/// lazily determinized [`HiddenComposition`] — the composite automaton is
/// never materialized — and a mismatch carries a shortest counterexample
/// trace. Verdicts agree with [`verify_acr_materialized`] by construction
/// (and by the differential tests).
///
/// # Errors
///
/// Returns [`VerifyError`] when the verification machinery cannot run;
/// behavioural mismatches are reported through the [`AcrVerdict`].
pub fn verify_acr(
    activating: &ChExpr,
    activated: &ChExpr,
    channel: &str,
) -> Result<AcrVerdict, VerifyError> {
    let merged = match merge_or_reject(activating, activated, channel) {
        Ok(m) => m,
        Err(verdict) => return Ok(verdict),
    };
    let ta = trace_of(activating)?;
    let tb = trace_of(activated)?;
    let tm = trace_of(&merged)?;
    Ok(verify_traces_otf(&ta, &tb, &tm, channel)?.0)
}

/// The on-the-fly §4.3 obligation on already-generated trace structures.
/// Returns the verdict plus the total distinct states the searches interned
/// (subset states counted once — they are shared between directions).
///
/// Instrumented: the whole obligation runs under a `verify.otf` span, each
/// conformance direction under its own child span, and the searches feed
/// the `verify.states` counter, the `verify.frontier` histogram (per-search
/// breadth-first high-water mark), and — on a mismatch — a
/// `verify.cex_depth` event carrying the counterexample length.
fn verify_traces_otf(
    ta: &TraceStructure,
    tb: &TraceStructure,
    tm: &TraceStructure,
    channel: &str,
) -> Result<(AcrVerdict, usize), VerifyError> {
    /// Frontier sizes bucketed in powers of four (searches range from a
    /// handful of states to the full composite product).
    static FRONTIER_BUCKETS: [u64; 7] = [4, 16, 64, 256, 1024, 4096, 16384];
    let _obligation = bmbe_obs::span!("verify.otf", "verify");
    let note_search = |outcome: &bmbe_trace::OtfOutcome| {
        bmbe_obs::histogram!("verify.frontier", &FRONTIER_BUCKETS)
            .observe(outcome.peak_frontier as u64);
        if let Some(cex) = &outcome.counterexample {
            bmbe_obs::event!("verify.cex_depth", cex.len() as i64);
        }
    };
    let req = format!("{channel}_r");
    let ack = format!("{channel}_a");
    let mut hc = HiddenComposition::new(ta, tb, &[req.as_str(), ack.as_str()])?;
    let fwd = {
        let _g = bmbe_obs::span!("verify.fwd", "verify");
        hc.conforms_to(tm)?
    };
    note_search(&fwd);
    let bwd = if fwd.ok {
        let _g = bmbe_obs::span!("verify.bwd", "verify");
        let b = hc.conformed_by(tm)?;
        note_search(&b);
        Some(b)
    } else {
        None
    };
    let mut states = hc.subset_states() + fwd.states_visited;
    if let Some(b) = &bwd {
        states += b.states_visited;
    }
    let both_ok = fwd.ok && bwd.as_ref().is_some_and(|b| b.ok);
    if both_ok {
        // Both searches held, so the lazy exploration covered every
        // reachable composite state; any produced-symbol choke it stepped
        // over is exactly `compose`'s failure_reachable flag.
        if hc.composition_failure().is_some() {
            let witness = ta
                .failure_search(tb)?
                .counterexample
                .unwrap_or_default();
            return Err(VerifyError::CompositionFails { witness });
        }
        bmbe_obs::trace_counter!("verify.states", states as u64);
        return Ok((AcrVerdict::Equivalent, states));
    }
    // A mismatch — unless the bare composition can fail on its own, in
    // which case hiding was unsound and the materialized path would have
    // refused before comparing. Run the (early-exiting) composition search
    // to keep the same error priority.
    let comp = ta.failure_search(tb)?;
    states += comp.states_visited;
    if !comp.ok {
        return Err(VerifyError::CompositionFails {
            witness: comp.counterexample.unwrap_or_default(),
        });
    }
    bmbe_obs::trace_counter!("verify.states", states as u64);
    let (direction, outcome) = if fwd.ok {
        (
            MismatchDirection::OptimizedVsOriginal,
            bwd.expect("fwd ok, so bwd ran"),
        )
    } else {
        (MismatchDirection::OriginalVsOptimized, fwd)
    };
    Ok((
        AcrVerdict::NotEquivalent {
            direction,
            counterexample: outcome.counterexample.unwrap_or_default(),
        },
        states,
    ))
}

/// The seed's fully-materializing verification path, kept as the reference
/// oracle: `compose`, refuse on a reachable composite failure, `hide`, then
/// two-way conformance on the materialized automata.
///
/// # Errors
///
/// As [`verify_acr`]; `CompositionFails` carries no witness here.
pub fn verify_acr_materialized(
    activating: &ChExpr,
    activated: &ChExpr,
    channel: &str,
) -> Result<AcrVerdict, VerifyError> {
    let merged = match merge_or_reject(activating, activated, channel) {
        Ok(m) => m,
        Err(verdict) => return Ok(verdict),
    };
    let ta = trace_of(activating)?;
    let tb = trace_of(activated)?;
    let tm = trace_of(&merged)?;
    Ok(verify_traces_materialized(&ta, &tb, &tm, channel)?.0)
}

/// The materialized §4.3 obligation on already-generated trace structures.
/// Returns the verdict plus the total states the pipeline materialized:
/// composite + hidden automaton + each conformance product it built.
fn verify_traces_materialized(
    ta: &TraceStructure,
    tb: &TraceStructure,
    tm: &TraceStructure,
    channel: &str,
) -> Result<(AcrVerdict, usize), VerifyError> {
    let composed = ta.compose(tb)?;
    let mut states = composed.structure.num_states();
    if composed.failure_reachable {
        return Err(VerifyError::CompositionFails {
            witness: Vec::new(),
        });
    }
    let req = format!("{channel}_r");
    let ack = format!("{channel}_a");
    let hidden = composed.structure.hide(&[req.as_str(), ack.as_str()])?;
    states += hidden.num_states();
    // `equivalent_to`, unrolled so each direction's product size is
    // observable (conformance composes with the mirrored right-hand side).
    let fwd = hidden.compose(&tm.mirror())?;
    states += fwd.structure.num_states();
    if fwd.failure_reachable {
        return Ok((
            AcrVerdict::NotEquivalent {
                direction: MismatchDirection::OriginalVsOptimized,
                counterexample: Vec::new(),
            },
            states,
        ));
    }
    let bwd = tm.compose(&hidden.mirror())?;
    states += bwd.structure.num_states();
    if bwd.failure_reachable {
        return Ok((
            AcrVerdict::NotEquivalent {
                direction: MismatchDirection::OptimizedVsOriginal,
                counterexample: Vec::new(),
            },
            states,
        ));
    }
    Ok((AcrVerdict::Equivalent, states))
}

/// Both verification paths run on one obligation, with their state
/// accounting — the basis of the differential tests and `BENCH_sim`'s
/// verifier numbers.
#[derive(Debug, Clone)]
pub struct AcrComparison {
    /// Verdict of the on-the-fly path (the production path).
    pub verdict: AcrVerdict,
    /// Verdict of the materialized oracle.
    pub oracle: AcrVerdict,
    /// Distinct states the on-the-fly path interned (shared subset states
    /// counted once).
    pub otf_states: usize,
    /// States the materialized pipeline built (composite + hidden + each
    /// conformance product).
    pub materialized_states: usize,
}

/// Runs [`verify_acr`]'s on-the-fly decision **and** the materialized
/// oracle on one obligation and reports both verdicts with state counts.
///
/// # Errors
///
/// Returns [`VerifyError`] when either path's machinery cannot run (both
/// paths raise `CompositionFails` on the same obligations).
pub fn verify_acr_compared(
    activating: &ChExpr,
    activated: &ChExpr,
    channel: &str,
) -> Result<AcrComparison, VerifyError> {
    let merged = match merge_or_reject(activating, activated, channel) {
        Ok(m) => m,
        Err(verdict) => {
            return Ok(AcrComparison {
                oracle: verdict.clone(),
                verdict,
                otf_states: 0,
                materialized_states: 0,
            })
        }
    };
    let ta = trace_of(activating)?;
    let tb = trace_of(activated)?;
    let tm = trace_of(&merged)?;
    let (verdict, otf_states) = verify_traces_otf(&ta, &tb, &tm, channel)?;
    let (oracle, materialized_states) = verify_traces_materialized(&ta, &tb, &tm, channel)?;
    Ok(AcrComparison {
        verdict,
        oracle,
        otf_states,
        materialized_states,
    })
}

/// One row of the §4.3 experiment: activating program
/// `rep(op1(passive p, active c))`, activated `rep(op2(passive c, X))`
/// where `X` is an active leaf (plus a `seq` body variant).
#[derive(Debug, Clone)]
pub struct ExperimentRow {
    /// Operator in the activating component.
    pub op_activating: InterleaveOp,
    /// Operator in the activated component.
    pub op_activated: InterleaveOp,
    /// The verdict.
    pub verdict: AcrVerdict,
}

/// Runs the full §4.3 experiment: all combinations of interleaving
/// operators in the activating and activated components that are legal
/// per Table 1 and structurally form an activation (the activated
/// component's operator must be an enclosure).
///
/// # Errors
///
/// Propagates machinery errors; verdicts (including correct rejections)
/// are collected in the rows.
pub fn run_acr_experiment() -> Result<Vec<ExperimentRow>, VerifyError> {
    let enclosures = [
        InterleaveOp::EncEarly,
        InterleaveOp::EncMiddle,
        InterleaveOp::EncLate,
    ];
    let mut rows = Vec::new();
    for op1 in InterleaveOp::ALL {
        // Activating component: rep(op1(passive p, active c)).
        if !legal(op1, ChActivity::Passive, ChActivity::Active) {
            continue;
        }
        let activating = ChExpr::Rep(Box::new(ChExpr::op(
            op1,
            ChExpr::passive("p"),
            ChExpr::active("c"),
        )));
        for op2 in enclosures {
            if !legal(op2, ChActivity::Passive, ChActivity::Active) {
                continue;
            }
            // Activated component: rep(op2(passive c, seq(x, y))).
            let activated = ChExpr::Rep(Box::new(ChExpr::op(
                op2,
                ChExpr::passive("c"),
                ChExpr::op(InterleaveOp::Seq, ChExpr::active("x"), ChExpr::active("y")),
            )));
            let verdict = verify_acr(&activating, &activated, "c")?;
            rows.push(ExperimentRow {
                op_activating: op1,
                op_activated: op2,
                verdict,
            });
        }
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::{decision_wait, sequencer};

    fn names(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn paper_example_verifies() {
        let dw = decision_wait("a1", &names(&["i1", "i2"]), &names(&["o1", "o2"]));
        let seq = sequencer("o2", &names(&["c1", "c2"]));
        let verdict = verify_acr(&dw, &seq, "o2").unwrap();
        assert_eq!(verdict, AcrVerdict::Equivalent);
    }

    #[test]
    fn chained_sequencers_verify() {
        let s1 = sequencer("p", &names(&["x", "m"]));
        let s2 = sequencer("m", &names(&["y", "z"]));
        assert_eq!(verify_acr(&s1, &s2, "m").unwrap(), AcrVerdict::Equivalent);
    }

    #[test]
    fn full_experiment_has_no_inequivalences() {
        let rows = run_acr_experiment().unwrap();
        assert!(!rows.is_empty());
        let bad: Vec<_> = rows.iter().filter(|r| r.verdict.is_mismatch()).collect();
        assert!(bad.is_empty(), "non-equivalent rows: {bad:?}");
        // At least the all-enc-early row must be an accepted, verified merge.
        assert!(rows.iter().any(|r| {
            r.op_activating == InterleaveOp::EncEarly
                && r.op_activated == InterleaveOp::EncEarly
                && r.verdict == AcrVerdict::Equivalent
        }));
    }

    /// Differential: the on-the-fly path must agree with the materialized
    /// oracle on every obligation of the §4.3 experiment while interning
    /// strictly fewer states (it never materializes the composite).
    #[test]
    fn otf_agrees_with_oracle_and_visits_fewer_states() {
        let enclosures = [
            InterleaveOp::EncEarly,
            InterleaveOp::EncMiddle,
            InterleaveOp::EncLate,
        ];
        let mut checked = 0;
        for op1 in InterleaveOp::ALL {
            if !legal(op1, ChActivity::Passive, ChActivity::Active) {
                continue;
            }
            let activating = ChExpr::Rep(Box::new(ChExpr::op(
                op1,
                ChExpr::passive("p"),
                ChExpr::active("c"),
            )));
            for op2 in enclosures {
                if !legal(op2, ChActivity::Passive, ChActivity::Active) {
                    continue;
                }
                let activated = ChExpr::Rep(Box::new(ChExpr::op(
                    op2,
                    ChExpr::passive("c"),
                    ChExpr::op(InterleaveOp::Seq, ChExpr::active("x"), ChExpr::active("y")),
                )));
                let cmp = verify_acr_compared(&activating, &activated, "c").unwrap();
                assert!(
                    cmp.verdict.same_outcome(&cmp.oracle),
                    "{op1:?}/{op2:?}: otf {} vs oracle {}",
                    cmp.verdict,
                    cmp.oracle
                );
                if !matches!(cmp.verdict, AcrVerdict::MergeRejected(_)) {
                    assert!(
                        cmp.otf_states < cmp.materialized_states,
                        "{op1:?}/{op2:?}: otf {} states vs materialized {}",
                        cmp.otf_states,
                        cmp.materialized_states
                    );
                    checked += 1;
                }
            }
        }
        assert!(checked > 0, "experiment produced no verified obligations");
    }

    /// A deliberately wrong "optimization" must be caught with a
    /// counterexample, identically by both paths.
    #[test]
    fn broken_merge_yields_counterexample() {
        let s1 = sequencer("p", &names(&["x", "m"]));
        let s2 = sequencer("m", &names(&["y", "z"]));
        let ta = trace_of(&s1).unwrap();
        let tb = trace_of(&s2).unwrap();
        // Wrong spec: the merged sequencer with two children swapped.
        let wrong = sequencer("p", &names(&["y", "x", "z"]));
        let tw = trace_of(&wrong).unwrap();
        let (verdict, _) = verify_traces_otf(&ta, &tb, &tw, "m").unwrap();
        let (oracle, _) = verify_traces_materialized(&ta, &tb, &tw, "m").unwrap();
        assert!(verdict.is_mismatch(), "otf verdict: {verdict}");
        assert!(verdict.same_outcome(&oracle));
        match verdict {
            AcrVerdict::NotEquivalent {
                counterexample, ..
            } => {
                assert!(
                    !counterexample.is_empty(),
                    "on-the-fly mismatch must carry a witness"
                );
            }
            v => panic!("expected mismatch, got {v}"),
        }
    }
}
