//! Activation Channel Removal (§4.1).
//!
//! The optimization merges an *activating* component (holding the active end
//! of an activation channel) with the *activated* component (whose entire
//! useful behaviour is enclosed by the passive end of that channel). The
//! passive end is hidden (replaced by `void`), and the resulting body is
//! inlined into the activating component in place of the active channel
//! leaf. The merge is accepted only if the result is still Burst-Mode aware
//! and compiles to a valid Burst-Mode specification.

use crate::ast::{check_bm_aware, BmAwareError, ChActivity, ChExpr, InterleaveOp};
use crate::compile::{compile_to_bm, CompileError};
use std::fmt;

/// Reasons an Activation Channel Removal attempt fails. Failure is not an
/// error condition for the clustering algorithms — the channel is simply
/// left in place.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AcrFailure {
    /// The activated component is not of the shape
    /// `rep(enc(passive chan, body))` for the given channel.
    NotAnActivationChannel,
    /// The activating component does not use the channel exactly once as an
    /// active point-to-point leaf.
    NoUniqueActiveUse,
    /// The channel sits in a position (an `enc-middle`/`seq-ov` argument)
    /// where inlining would serialize concurrent behaviour.
    NotContiguous,
    /// The merged expression violates the Burst-Mode aware rules.
    NotBmAware(BmAwareError),
    /// The merged expression does not compile to a valid BM machine.
    NotSynthesizable(CompileError),
    /// The merged machine exceeds the configured state limit.
    TooLarge {
        /// States of the merged machine.
        states: usize,
        /// The configured limit.
        limit: usize,
    },
}

impl fmt::Display for AcrFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AcrFailure::NotAnActivationChannel => {
                write!(f, "channel does not enclose the activated component's body")
            }
            AcrFailure::NoUniqueActiveUse => {
                write!(
                    f,
                    "activating component lacks a unique active use of the channel"
                )
            }
            AcrFailure::NotContiguous => {
                write!(f, "channel position would serialize concurrent behaviour")
            }
            AcrFailure::NotBmAware(e) => write!(f, "merged program is not BM-aware: {e}"),
            AcrFailure::NotSynthesizable(e) => write!(f, "merged program not synthesizable: {e}"),
            AcrFailure::TooLarge { states, limit } => {
                write!(f, "merged machine has {states} states (limit {limit})")
            }
        }
    }
}

impl std::error::Error for AcrFailure {}

/// Extracts the activated component's body for inlining: the program must
/// be `rep(enc(p-to-p passive CHAN, body))`; the result is
/// `enc(void, body)` (the paper's *hide* step, §4.1).
pub fn hide_activation(activated: &ChExpr, channel: &str) -> Result<ChExpr, AcrFailure> {
    let ChExpr::Rep(inner) = activated else {
        return Err(AcrFailure::NotAnActivationChannel);
    };
    let ChExpr::Op { op, a, b } = inner.as_ref() else {
        return Err(AcrFailure::NotAnActivationChannel);
    };
    let is_enclosure = matches!(
        op,
        InterleaveOp::EncEarly | InterleaveOp::EncMiddle | InterleaveOp::EncLate
    );
    if !is_enclosure {
        return Err(AcrFailure::NotAnActivationChannel);
    }
    match a.as_ref() {
        ChExpr::PToP {
            activity: ChActivity::Passive,
            name,
        } if name == channel => Ok(ChExpr::Op {
            op: *op,
            a: Box::new(ChExpr::Void),
            b: b.clone(),
        }),
        _ => Err(AcrFailure::NotAnActivationChannel),
    }
}

/// Replaces the unique `p-to-p active CHAN` leaf of `expr` with `body`.
/// Returns `(replacements, all_positions_contiguous)`.
///
/// **Contiguity precondition.** Inlining substitutes a *degenerate*
/// four-event expression (the body packed into one event) for a channel
/// whose own four events the surrounding operators may interleave with
/// sibling events. The substitution preserves behaviour only where the
/// channel's four events stay *contiguous* in the linearized expansion:
/// both arguments of `seq` and `mutex`, and the second argument of the
/// enclosures. Inside `enc-middle` or `seq-ov` the events of the two sides
/// interleave pairwise, and replacing a leaf there serializes previously
/// concurrent handshakes — a behaviour change the optimizer must refuse
/// (this is checkable with the §4.3 trace machinery).
fn inline_at_channel(
    expr: &mut ChExpr,
    channel: &str,
    body: &ChExpr,
    contiguous: bool,
) -> (usize, bool) {
    match expr {
        ChExpr::PToP {
            activity: ChActivity::Active,
            name,
        } if name == channel => {
            *expr = body.clone();
            (1, contiguous)
        }
        ChExpr::PToP { .. }
        | ChExpr::MultAck { .. }
        | ChExpr::MultReq { .. }
        | ChExpr::Void
        | ChExpr::Verb { .. }
        | ChExpr::Break => (0, true),
        ChExpr::Rep(e) => inline_at_channel(e, channel, body, contiguous),
        ChExpr::Op { op, a, b } => {
            let (ca, cb) = match op {
                InterleaveOp::Seq | InterleaveOp::Mutex => (contiguous, contiguous),
                InterleaveOp::EncEarly | InterleaveOp::EncLate => (false, contiguous),
                InterleaveOp::EncMiddle | InterleaveOp::SeqOv => (false, false),
            };
            let (na, oka) = inline_at_channel(a, channel, body, ca);
            let (nb, okb) = inline_at_channel(b, channel, body, cb);
            (na + nb, oka && okb)
        }
        ChExpr::MuxAck { arms, .. } | ChExpr::MuxReq { arms, .. } => {
            let mut count = 0;
            let mut ok = true;
            for (op, e) in arms {
                let c = match op {
                    InterleaveOp::Seq | InterleaveOp::Mutex => contiguous,
                    InterleaveOp::EncEarly | InterleaveOp::EncLate => contiguous,
                    InterleaveOp::EncMiddle | InterleaveOp::SeqOv => false,
                };
                let (n, o) = inline_at_channel(e, channel, body, c);
                count += n;
                ok &= o;
            }
            (count, ok)
        }
    }
}

/// Performs Activation Channel Removal over channel `channel`, merging
/// `activated` into `activating`.
///
/// # Errors
///
/// Returns the reason the merge cannot be performed; see [`AcrFailure`].
pub fn activation_channel_removal(
    activating: &ChExpr,
    activated: &ChExpr,
    channel: &str,
    state_limit: Option<usize>,
) -> Result<ChExpr, AcrFailure> {
    let body = hide_activation(activated, channel)?;
    let mut merged = activating.clone();
    let (count, contiguous) = inline_at_channel(&mut merged, channel, &body, true);
    if count != 1 {
        return Err(AcrFailure::NoUniqueActiveUse);
    }
    if !contiguous {
        return Err(AcrFailure::NotContiguous);
    }
    check_bm_aware(&merged).map_err(AcrFailure::NotBmAware)?;
    let spec = compile_to_bm("merged", &merged).map_err(AcrFailure::NotSynthesizable)?;
    if let Some(limit) = state_limit {
        if spec.num_states() > limit {
            return Err(AcrFailure::TooLarge {
                states: spec.num_states(),
                limit,
            });
        }
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::{call, decision_wait, sequencer};

    fn names(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn paper_example_dw_plus_sequencer() {
        // §4.1: decision-wait activates a sequencer over channel o2.
        let dw = decision_wait("a1", &names(&["i1", "i2"]), &names(&["o1", "o2"]));
        let seq = sequencer("o2", &names(&["c1", "c2"]));
        let merged = activation_channel_removal(&dw, &seq, "o2", None).unwrap();
        let spec = compile_to_bm("merged", &merged).unwrap();
        // Fig. 4: 11 states; channel o2 is gone.
        assert_eq!(spec.num_states(), 11, "{spec}");
        assert!(!merged.channels().contains_key("o2"));
        assert!(merged.channels().contains_key("c1"));
    }

    #[test]
    fn hide_produces_void_enclosure() {
        let seq = sequencer("act", &names(&["x", "y"]));
        let body = hide_activation(&seq, "act").unwrap();
        match &body {
            ChExpr::Op {
                op: InterleaveOp::EncEarly,
                a,
                ..
            } => {
                assert_eq!(**a, ChExpr::Void);
            }
            other => panic!("unexpected hide result {other:?}"),
        }
    }

    #[test]
    fn wrong_channel_rejected() {
        let seq = sequencer("act", &names(&["x", "y"]));
        assert_eq!(
            hide_activation(&seq, "x").unwrap_err(),
            AcrFailure::NotAnActivationChannel
        );
    }

    #[test]
    fn missing_active_use_rejected() {
        let a = sequencer("p", &names(&["x", "y"]));
        let b = sequencer("z", &names(&["u", "v"]));
        // Channel z is not used by a.
        assert_eq!(
            activation_channel_removal(&a, &b, "z", None).unwrap_err(),
            AcrFailure::NoUniqueActiveUse
        );
    }

    #[test]
    fn state_limit_enforced() {
        let dw = decision_wait("a1", &names(&["i1", "i2"]), &names(&["o1", "o2"]));
        let seq = sequencer("o2", &names(&["c1", "c2"]));
        let err = activation_channel_removal(&dw, &seq, "o2", Some(5)).unwrap_err();
        assert!(matches!(
            err,
            AcrFailure::TooLarge {
                states: 11,
                limit: 5
            }
        ));
    }

    #[test]
    fn chained_sequencers_merge() {
        // seq1 activates seq2 on channel m.
        let s1 = sequencer("p", &names(&["x", "m"]));
        let s2 = sequencer("m", &names(&["y", "z"]));
        let merged = activation_channel_removal(&s1, &s2, "m", None).unwrap();
        let spec = compile_to_bm("merged", &merged).unwrap();
        // The merged controller sequences x, y, z under p: 8 states.
        assert_eq!(spec.num_states(), 8, "{spec}");
        let chans = merged.channels();
        assert!(chans.contains_key("y") && chans.contains_key("z") && !chans.contains_key("m"));
    }

    #[test]
    fn call_body_can_be_activated_component() {
        // A sequencer activating a call fragment (single-arm call).
        let s1 = sequencer("p", &names(&["frag"]));
        let frag = call(&names(&["frag"]), "c");
        // call(frag...) = rep(enc-early(passive frag, active c)): valid
        // activation shape.
        let merged = activation_channel_removal(&s1, &frag, "frag", None).unwrap();
        let spec = compile_to_bm("m", &merged).unwrap();
        spec.validate().unwrap();
    }
}

#[cfg(test)]
mod contiguity_tests {
    use super::*;
    use crate::components::{concur, transferrer};
    use crate::trace_gen::trace_of;

    /// Regression: inlining a transferrer into a concur branch would
    /// serialize the two pulls (found via a slow wagging-register benchmark
    /// whose "optimized" circuit lost its parallelism). The optimizer must
    /// refuse, and the trace machinery confirms the refusal is necessary.
    #[test]
    fn concur_branch_inline_is_refused() {
        let c = concur("act", &["f1".into(), "f2".into()]);
        let t1 = transferrer("f1", "pl1", "ps1");
        let merged = activation_channel_removal(&c, &t1, "f1", None);
        assert_eq!(merged.unwrap_err(), AcrFailure::NotContiguous);
    }

    /// The naive (non-contiguous) merge really is behaviourally different:
    /// in the original system the two transferrers pull concurrently (the
    /// second pull request needs no acknowledgment from the first), while
    /// the hand-built naive merge can only issue `pl2_r` after `pl1`'s
    /// handshake — it has serialized the concur's branches.
    #[test]
    fn naive_concur_merge_changes_behaviour() {
        let c = concur("act", &["f1".into(), "f2".into()]);
        let t1 = transferrer("f1", "pl1", "ps1");
        let t2 = transferrer("f2", "pl2", "ps2");
        // The unmerged transferrer t2 issues pl2_r immediately on f2_r,
        // independent of anything pl1 does.
        let tt2 = trace_of(&t2).expect("traces");
        assert!(tt2.accepts(&["f2_r", "pl2_r"]).expect("alphabet"));
        // Hand-inline BOTH transferrers (what the optimizer refuses).
        let b1 = hide_activation(&t1, "f1").expect("activation shape");
        let b2 = hide_activation(&t2, "f2").expect("activation shape");
        let mut naive = c.clone();
        let _ = inline_at_channel(&mut naive, "f1", &b1, true);
        let _ = inline_at_channel(&mut naive, "f2", &b2, true);
        let tn = trace_of(&naive).expect("traces");
        // The naive merge cannot produce pl2_r before pl1's handshake
        // completes: concurrency lost.
        assert!(!tn.accepts(&["act_r", "pl1_r", "pl2_r"]).expect("alphabet"));
        // The serial order it CAN do: pl2's request only after transferrer
        // 1's complete overlapped cycle.
        assert!(tn
            .accepts(&[
                "act_r", "pl1_r", "pl1_a", "ps1_r", "ps1_a", "pl1_r", "pl1_a", "ps1_r", "ps1_a",
                "pl2_r"
            ])
            .expect("alphabet"));
    }
}
