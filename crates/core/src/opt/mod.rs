//! The clustering optimizations of §4: Activation Channel Removal,
//! Call Distribution, and the `T1`/`T2` netlist algorithms.

pub mod acr;
pub mod cluster;

pub use acr::{activation_channel_removal, hide_activation, AcrFailure};
pub use cluster::{
    split_call, split_call_fragment, CallFragments, ClusterOptions, ClusterReport, CtrlComponent,
    CtrlNetlist, InternalChannel,
};

pub mod verify;

pub use verify::{
    run_acr_experiment, verify_acr, verify_acr_compared, verify_acr_materialized, AcrComparison,
    AcrVerdict, ExperimentRow, MismatchDirection, VerifyError,
};
