//! The clustering algorithms `T1_clustering` and `T2_clustering` (§4.4).
//!
//! A [`CtrlNetlist`] is the control part of a compiled design: a set of
//! named CH programs wired by shared channel names (each internal
//! point-to-point channel appears actively in one program and passively in
//! another). `T1` repeatedly applies Activation Channel Removal across
//! internal channels; `T2` first splits call components into single-arm
//! fragments, runs `T1`, and restores any call whose fragments failed to
//! cluster into the same final controller.

use crate::ast::{ChActivity, ChExpr, InterleaveOp};
use crate::opt::acr::activation_channel_removal;
use std::collections::BTreeMap;
use std::fmt;

/// A named control component with its CH program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CtrlComponent {
    /// Component name (unique).
    pub name: String,
    /// The controller's CH program.
    pub program: ChExpr,
}

/// The control netlist the clustering algorithms operate on.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CtrlNetlist {
    /// The components.
    pub components: Vec<CtrlComponent>,
}

/// Options controlling clustering.
#[derive(Debug, Clone, Copy)]
pub struct ClusterOptions {
    /// Reject merges whose BM machine exceeds this many states. The paper
    /// notes unlimited clustering blows up synthesis run time (refs. 7 and 11 there); the
    /// BM-aware restrictions already bound growth, and this is an extra
    /// guard.
    pub state_limit: Option<usize>,
}

impl Default for ClusterOptions {
    fn default() -> Self {
        ClusterOptions {
            state_limit: Some(40),
        }
    }
}

/// Statistics of a clustering run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClusterReport {
    /// Channels eliminated by successful merges.
    pub eliminated_channels: Vec<String>,
    /// Channels whose merge attempt failed, with the reason.
    pub rejected: Vec<(String, String)>,
    /// Call components distributed by `T2`.
    pub distributed_calls: Vec<String>,
    /// Call components restored because distribution failed.
    pub restored_calls: Vec<String>,
}

impl fmt::Display for ClusterReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} channels eliminated, {} rejected, {} calls distributed, {} restored",
            self.eliminated_channels.len(),
            self.rejected.len(),
            self.distributed_calls.len(),
            self.restored_calls.len()
        )
    }
}

impl CtrlNetlist {
    /// Creates an empty netlist.
    pub fn new() -> Self {
        CtrlNetlist::default()
    }

    /// Adds a component.
    pub fn add(&mut self, name: impl Into<String>, program: ChExpr) {
        self.components.push(CtrlComponent {
            name: name.into(),
            program,
        });
    }

    /// Internal point-to-point channels: channel names appearing in exactly
    /// two components, actively in one and passively in the other.
    pub fn internal_channels(&self) -> Vec<InternalChannel> {
        let mut uses: BTreeMap<String, Vec<(usize, ChActivity)>> = BTreeMap::new();
        for (ci, comp) in self.components.iter().enumerate() {
            for (chan, act) in comp.program.channels() {
                uses.entry(chan).or_default().push((ci, act));
            }
        }
        let mut out = Vec::new();
        for (chan, ends) in uses {
            if ends.len() != 2 {
                continue;
            }
            let (a, b) = (ends[0], ends[1]);
            let (active, passive) = match (a.1, b.1) {
                (ChActivity::Active, ChActivity::Passive) => (a.0, b.0),
                (ChActivity::Passive, ChActivity::Active) => (b.0, a.0),
                _ => continue,
            };
            out.push(InternalChannel {
                name: chan,
                active,
                passive,
            });
        }
        out
    }

    /// `T1_clustering` (§4.4): for every internal point-to-point channel,
    /// attempt Activation Channel Removal; on success replace the two
    /// components by the merged one. Iterates until no channel merges.
    pub fn t1_clustering(&mut self, opts: &ClusterOptions) -> ClusterReport {
        let mut report = ClusterReport::default();
        let mut tried: Vec<String> = Vec::new();
        loop {
            let candidates = self.internal_channels();
            let next = candidates.into_iter().find(|c| !tried.contains(&c.name));
            let Some(chan) = next else { break };
            tried.push(chan.name.clone());
            let activating = &self.components[chan.active].program;
            let activated = &self.components[chan.passive].program;
            match activation_channel_removal(activating, activated, &chan.name, opts.state_limit) {
                Ok(merged) => {
                    let merged_name = format!(
                        "{}+{}",
                        self.components[chan.active].name, self.components[chan.passive].name
                    );
                    let (hi, lo) = (chan.active.max(chan.passive), chan.active.min(chan.passive));
                    self.components.remove(hi);
                    self.components.remove(lo);
                    self.components.push(CtrlComponent {
                        name: merged_name,
                        program: merged,
                    });
                    report.eliminated_channels.push(chan.name);
                }
                Err(e) => {
                    report.rejected.push((chan.name.clone(), e.to_string()));
                }
            }
        }
        report
    }

    /// `T2_clustering` (§4.4): split each call component into single-arm
    /// fragments, cluster with `T1`, and restore the call if its fragments
    /// did not all end up in the same final controller.
    pub fn t2_clustering(&mut self, opts: &ClusterOptions) -> ClusterReport {
        let mut report = self.t1_clustering(opts);
        // Tentatively distribute each remaining call component.
        loop {
            let call_ix = self
                .components
                .iter()
                .position(|c| !c.name.ends_with("!kept") && split_call(&c.program).is_some());
            let Some(ix) = call_ix else { break };
            let name = self.components[ix].name.clone();
            let fragments =
                split_call(&self.components[ix].program).expect("position() checked the shape");
            let shared = fragments.shared_channel.clone();
            let mut trial = self.clone();
            trial.components.remove(ix);
            for (fi, frag) in fragments.fragments.iter().enumerate() {
                trial.add(format!("{name}#frag{fi}"), frag.clone());
            }
            let sub = trial.t1_clustering(opts);
            // Success: no fragment component remains, and the shared active
            // channel lives in exactly one final controller.
            let fragments_left = trial
                .components
                .iter()
                .any(|c| c.name.contains("#frag") && split_call_fragment(&c.program).is_some());
            let active_homes = trial
                .components
                .iter()
                .filter(|c| c.program.channels().get(&shared) == Some(&ChActivity::Active))
                .count();
            if !fragments_left && active_homes <= 1 {
                *self = trial;
                report.eliminated_channels.extend(sub.eliminated_channels);
                report.distributed_calls.push(name);
            } else {
                report.restored_calls.push(name.clone());
                // Leave the original call in place; mark it visited by
                // renaming (a call we keep) so the loop terminates.
                self.components[ix].name = format!("{name}!kept");
                continue;
            }
        }
        // Undo the visit markers.
        for c in &mut self.components {
            if let Some(base) = c.name.strip_suffix("!kept") {
                c.name = base.to_string();
            }
        }
        report
    }
}

/// An internal channel between two components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InternalChannel {
    /// Channel name.
    pub name: String,
    /// Index of the component holding the active end.
    pub active: usize,
    /// Index of the component holding the passive end.
    pub passive: usize,
}

/// The fragments of a split call component (§4.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallFragments {
    /// One `rep(enc-early(passive bi, active c))` per original arm.
    pub fragments: Vec<ChExpr>,
    /// The shared active channel `c`.
    pub shared_channel: String,
}

/// Recognizes an n-way call component
/// `rep(mutex(enc-early(p b1, a c), ... enc-early(p bn, a c)))` and splits
/// it into fragments. Returns `None` if the program is not a call.
pub fn split_call(program: &ChExpr) -> Option<CallFragments> {
    let ChExpr::Rep(inner) = program else {
        return None;
    };
    let mut arms: Vec<&ChExpr> = Vec::new();
    collect_mutex_arms(inner, &mut arms);
    if arms.len() < 2 {
        return None;
    }
    let mut fragments = Vec::new();
    let mut shared: Option<String> = None;
    for arm in arms {
        let (input, out) = call_arm(arm)?;
        match &shared {
            None => shared = Some(out.clone()),
            Some(s) if *s == out => {}
            _ => return None,
        }
        let _ = input;
        fragments.push(ChExpr::Rep(Box::new(arm.clone())));
    }
    Some(CallFragments {
        fragments,
        shared_channel: shared?,
    })
}

/// Recognizes a single call fragment `rep(enc-early(passive b, active c))`.
pub fn split_call_fragment(program: &ChExpr) -> Option<(String, String)> {
    let ChExpr::Rep(inner) = program else {
        return None;
    };
    call_arm(inner)
}

fn collect_mutex_arms<'a>(e: &'a ChExpr, out: &mut Vec<&'a ChExpr>) {
    match e {
        ChExpr::Op {
            op: InterleaveOp::Mutex,
            a,
            b,
        } => {
            collect_mutex_arms(a, out);
            collect_mutex_arms(b, out);
        }
        other => out.push(other),
    }
}

fn call_arm(e: &ChExpr) -> Option<(String, String)> {
    let ChExpr::Op {
        op: InterleaveOp::EncEarly,
        a,
        b,
    } = e
    else {
        return None;
    };
    let ChExpr::PToP {
        activity: ChActivity::Passive,
        name: input,
    } = a.as_ref()
    else {
        return None;
    };
    let ChExpr::PToP {
        activity: ChActivity::Active,
        name: out,
    } = b.as_ref()
    else {
        return None;
    };
    Some((input.clone(), out.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_to_bm;
    use crate::components::{call, decision_wait, sequencer};

    fn names(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn t1_merges_dw_and_sequencer() {
        let mut n = CtrlNetlist::new();
        n.add(
            "dw",
            decision_wait("a1", &names(&["i1", "i2"]), &names(&["o1", "o2"])),
        );
        n.add("seq", sequencer("o2", &names(&["c1", "c2"])));
        let report = n.t1_clustering(&ClusterOptions::default());
        assert_eq!(report.eliminated_channels, vec!["o2".to_string()]);
        assert_eq!(n.components.len(), 1);
        let spec = compile_to_bm("m", &n.components[0].program).unwrap();
        assert_eq!(spec.num_states(), 11);
    }

    #[test]
    fn t1_chains_multiple_merges() {
        // seq1 -> seq2 -> seq3 via activation channels.
        let mut n = CtrlNetlist::new();
        n.add("s1", sequencer("p", &names(&["x", "m1"])));
        n.add("s2", sequencer("m1", &names(&["y", "m2"])));
        n.add("s3", sequencer("m2", &names(&["z", "w"])));
        let report = n.t1_clustering(&ClusterOptions::default());
        assert_eq!(report.eliminated_channels.len(), 2);
        assert_eq!(n.components.len(), 1);
        let chans = n.components[0].program.channels();
        for c in ["p", "x", "y", "z", "w"] {
            assert!(chans.contains_key(c), "missing {c}");
        }
    }

    #[test]
    fn split_call_recognizes_shape() {
        let c = call(&names(&["b1", "b2"]), "c");
        let frags = split_call(&c).unwrap();
        assert_eq!(frags.fragments.len(), 2);
        assert_eq!(frags.shared_channel, "c");
        // Non-call programs are not split.
        assert!(split_call(&sequencer("p", &names(&["a", "b"]))).is_none());
    }

    #[test]
    fn t2_distributes_paper_example() {
        // §4.2: a sequencer whose both branches activate a call module.
        let mut n = CtrlNetlist::new();
        n.add("seq", sequencer("a", &names(&["b1", "b2"])));
        n.add("call", call(&names(&["b1", "b2"]), "c"));
        let report = n.t2_clustering(&ClusterOptions::default());
        assert_eq!(report.distributed_calls, vec!["call".to_string()]);
        assert_eq!(n.components.len(), 1);
        let spec = compile_to_bm("result", &n.components[0].program).unwrap();
        // Fig. 5: 6 states.
        assert_eq!(spec.num_states(), 6, "{spec}");
    }

    #[test]
    fn t2_restores_call_when_fragments_split_homes() {
        // Two *different* sequencers activate the call: fragments would land
        // in different controllers, so the call must be restored.
        let mut n = CtrlNetlist::new();
        n.add("s1", sequencer("p1", &names(&["x1", "b1"])));
        n.add("s2", sequencer("p2", &names(&["x2", "b2"])));
        n.add("call", call(&names(&["b1", "b2"]), "c"));
        let report = n.t2_clustering(&ClusterOptions::default());
        assert!(report.restored_calls.contains(&"call".to_string()));
        // The call survives with its original behaviour.
        let call_comp = n.components.iter().find(|c| c.name == "call").unwrap();
        assert!(split_call(&call_comp.program).is_some());
    }

    #[test]
    fn external_channels_untouched() {
        // A single component has no internal channels.
        let mut n = CtrlNetlist::new();
        n.add("s", sequencer("p", &names(&["a", "b"])));
        assert!(n.internal_channels().is_empty());
        let report = n.t1_clustering(&ClusterOptions::default());
        assert!(report.eliminated_channels.is_empty());
        assert_eq!(n.components.len(), 1);
    }

    #[test]
    fn state_limit_blocks_merge() {
        let mut n = CtrlNetlist::new();
        n.add(
            "dw",
            decision_wait("a1", &names(&["i1", "i2"]), &names(&["o1", "o2"])),
        );
        n.add("seq", sequencer("o2", &names(&["c1", "c2"])));
        let report = n.t1_clustering(&ClusterOptions {
            state_limit: Some(5),
        });
        assert!(report.eliminated_channels.is_empty());
        assert_eq!(report.rejected.len(), 1);
        assert_eq!(n.components.len(), 2);
    }
}
