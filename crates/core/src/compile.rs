//! The CH-to-BMS compiler (§3.6 of the paper).
//!
//! A CH program is first expanded into the linear intermediate form (a list
//! of signal transitions with labels, gotos and choice markers), then
//! translated into a Burst-Mode specification: transitions are scanned in
//! order, accumulating an input burst followed by an output burst; a new
//! input transition after outputs closes the arc and opens a new state; a
//! goto closes the arc into the state bound to its label; a choice forks the
//! scan, compiling each alternative together with the continuation of the
//! program (which is how Fig. 4's merged controller gets its per-branch
//! return arcs).

use crate::ast::ChExpr;
use crate::expand::{expand, ExpandError, Io, Item};
use bmbe_bm::spec::{BmError, BmSpec, SignalDir};
use std::collections::HashMap;
use std::fmt;

/// Errors raised by CH-to-BMS compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// Expansion failed.
    Expand(ExpandError),
    /// An output transition occurred with no triggering input burst.
    OutputWithoutTrigger {
        /// The output wire.
        signal: String,
    },
    /// The same wire appeared twice within one burst.
    SignalTwiceInBurst {
        /// The wire.
        signal: String,
    },
    /// A wire was used both as input and output.
    DirectionConflict {
        /// The wire.
        signal: String,
    },
    /// A goto referenced a label never bound.
    UndefinedLabel {
        /// The label id.
        label: usize,
    },
    /// The produced machine failed Burst-Mode validation.
    Bm(BmError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Expand(e) => write!(f, "expansion failed: {e}"),
            CompileError::OutputWithoutTrigger { signal } => {
                write!(f, "output {signal} has no triggering input burst")
            }
            CompileError::SignalTwiceInBurst { signal } => {
                write!(f, "wire {signal} occurs twice in one burst")
            }
            CompileError::DirectionConflict { signal } => {
                write!(f, "wire {signal} used as both input and output")
            }
            CompileError::UndefinedLabel { label } => write!(f, "undefined label L{label}"),
            CompileError::Bm(e) => write!(f, "produced machine is not a valid BM spec: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<ExpandError> for CompileError {
    fn from(e: ExpandError) -> Self {
        CompileError::Expand(e)
    }
}

impl From<BmError> for CompileError {
    fn from(e: BmError) -> Self {
        CompileError::Bm(e)
    }
}

/// Compiles a CH expression into a validated Burst-Mode specification.
///
/// # Errors
///
/// See [`CompileError`].
///
/// # Examples
///
/// The sequencer of §3.4 compiles to the six-state machine of Fig. 3:
///
/// ```
/// use bmbe_core::ast::{ChExpr, InterleaveOp};
/// use bmbe_core::compile::compile_to_bm;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let seq = ChExpr::Rep(Box::new(ChExpr::op(
///     InterleaveOp::EncEarly,
///     ChExpr::passive("p"),
///     ChExpr::op(InterleaveOp::Seq, ChExpr::active("a1"), ChExpr::active("a2")),
/// )));
/// let spec = compile_to_bm("sequencer", &seq)?;
/// assert_eq!(spec.num_states(), 6);
/// # Ok(())
/// # }
/// ```
pub fn compile_to_bm(name: &str, expr: &ChExpr) -> Result<BmSpec, CompileError> {
    let items = expand(expr)?.linearize();
    compile_items(name, &items)
}

/// Compiles an already-linearized intermediate form.
///
/// # Errors
///
/// See [`CompileError`].
pub fn compile_items(name: &str, items: &[Item]) -> Result<BmSpec, CompileError> {
    let mut b = Builder::new(name);
    let start = b.fresh_state();
    b.walk(
        items,
        Some(Cursor {
            state: start,
            pin: Vec::new(),
            pout: Vec::new(),
        }),
    )?;
    b.resolve_all()?;
    b.finish(start)
}

#[derive(Debug, Clone)]
struct Cursor {
    state: usize,
    pin: Vec<(usize, bool)>,
    pout: Vec<(usize, bool)>,
}

#[derive(Debug, Clone)]
enum ToRef {
    State(usize),
    Label(usize),
}

#[derive(Debug, Clone)]
enum Binding {
    State(usize),
    Continuation(Vec<Item>),
}

struct Builder {
    name: String,
    signal_names: Vec<(String, SignalDir)>,
    signal_ix: HashMap<String, usize>,
    num_states: usize,
    arcs: Vec<(usize, ToRef, Vec<(usize, bool)>, Vec<(usize, bool)>)>,
    labels: HashMap<usize, Binding>,
    /// Outputs that lead a label's continuation (a loop head that re-emits
    /// a request); appended to every arc entering that label.
    label_prefix: HashMap<usize, Vec<(usize, bool)>>,
    merge_parent: Vec<usize>,
}

impl Builder {
    fn new(name: &str) -> Self {
        Builder {
            name: name.to_string(),
            signal_names: Vec::new(),
            signal_ix: HashMap::new(),
            num_states: 0,
            arcs: Vec::new(),
            labels: HashMap::new(),
            label_prefix: HashMap::new(),
            merge_parent: Vec::new(),
        }
    }

    fn fresh_state(&mut self) -> usize {
        self.num_states += 1;
        self.merge_parent.push(self.num_states - 1);
        self.num_states - 1
    }

    fn find(&mut self, s: usize) -> usize {
        if self.merge_parent[s] != s {
            let root = self.find(self.merge_parent[s]);
            self.merge_parent[s] = root;
            root
        } else {
            s
        }
    }

    fn merge(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.merge_parent[ra.max(rb)] = ra.min(rb);
        }
    }

    fn intern(&mut self, name: &str, dir: SignalDir) -> Result<usize, CompileError> {
        if let Some(&i) = self.signal_ix.get(name) {
            if self.signal_names[i].1 != dir {
                return Err(CompileError::DirectionConflict {
                    signal: name.to_string(),
                });
            }
            return Ok(i);
        }
        let i = self.signal_names.len();
        self.signal_names.push((name.to_string(), dir));
        self.signal_ix.insert(name.to_string(), i);
        Ok(i)
    }

    fn walk(&mut self, items: &[Item], mut cur: Option<Cursor>) -> Result<(), CompileError> {
        let mut i = 0;
        while i < items.len() {
            match &items[i] {
                Item::T(t) => {
                    let dir = match t.io {
                        Io::In => SignalDir::Input,
                        Io::Out => SignalDir::Output,
                    };
                    let sig = self.intern(&t.signal, dir)?;
                    if let Some(c) = cur.as_mut() {
                        match t.io {
                            Io::In => {
                                if !c.pout.is_empty() {
                                    // Close the arc into a fresh state.
                                    let next = self.fresh_state();
                                    self.arcs.push((
                                        c.state,
                                        ToRef::State(next),
                                        std::mem::take(&mut c.pin),
                                        std::mem::take(&mut c.pout),
                                    ));
                                    c.state = next;
                                }
                                if c.pin.iter().any(|&(s, _)| s == sig) {
                                    return Err(CompileError::SignalTwiceInBurst {
                                        signal: t.signal.clone(),
                                    });
                                }
                                c.pin.push((sig, t.rising));
                            }
                            Io::Out => {
                                if c.pin.is_empty() {
                                    return Err(CompileError::OutputWithoutTrigger {
                                        signal: t.signal.clone(),
                                    });
                                }
                                if c.pout.iter().any(|&(s, _)| s == sig) {
                                    return Err(CompileError::SignalTwiceInBurst {
                                        signal: t.signal.clone(),
                                    });
                                }
                                c.pout.push((sig, t.rising));
                            }
                        }
                    }
                }
                Item::Label(l) => {
                    if !self.labels.contains_key(l) {
                        let binding = match &cur {
                            Some(c) if c.pin.is_empty() && c.pout.is_empty() => {
                                Binding::State(c.state)
                            }
                            _ => Binding::Continuation(items[i + 1..].to_vec()),
                        };
                        self.labels.insert(*l, binding);
                    }
                }
                Item::Goto(l) | Item::BGoto(l) => {
                    if let Some(c) = cur.take() {
                        if c.pin.is_empty() && c.pout.is_empty() {
                            // At a state boundary: the jump aliases states.
                            match self.labels.get(l) {
                                Some(Binding::State(s)) => {
                                    let s = *s;
                                    self.merge(c.state, s);
                                }
                                _ => {
                                    // Bind the label's eventual state to this
                                    // one by noting an empty-burst arc is not
                                    // representable; defer via alias arc.
                                    self.arcs.push((
                                        c.state,
                                        ToRef::Label(*l),
                                        Vec::new(),
                                        Vec::new(),
                                    ));
                                }
                            }
                        } else {
                            self.arcs.push((c.state, ToRef::Label(*l), c.pin, c.pout));
                        }
                    }
                }
                Item::Choice(arms) => {
                    if let Some(mut c) = cur.take() {
                        // With outputs already emitted the current arc is
                        // committed: close it into one shared state and let
                        // the arms' input bursts resolve the choice there
                        // (the mux-ack case). With only inputs pending the
                        // arms' first inputs join the accumulating burst
                        // per branch (the decision-wait case, Fig. 4).
                        if !c.pout.is_empty() {
                            let next = self.fresh_state();
                            self.arcs.push((
                                c.state,
                                ToRef::State(next),
                                std::mem::take(&mut c.pin),
                                std::mem::take(&mut c.pout),
                            ));
                            c.state = next;
                        }
                        let rest = &items[i + 1..];
                        for arm in arms {
                            let mut stream = arm.clone();
                            stream.extend_from_slice(rest);
                            self.walk(&stream, Some(c.clone()))?;
                        }
                    }
                    return Ok(());
                }
            }
            i += 1;
        }
        // End of stream with pending work: close into a terminal state.
        if let Some(c) = cur {
            if !c.pin.is_empty() || !c.pout.is_empty() {
                let term = self.fresh_state();
                self.arcs.push((c.state, ToRef::State(term), c.pin, c.pout));
            }
        }
        Ok(())
    }

    /// Resolves every label referenced by an arc, compiling label
    /// continuations on demand (this is where loop-head states entered
    /// "fresh" from a goto get their own arcs).
    fn resolve_all(&mut self) -> Result<(), CompileError> {
        loop {
            let unresolved: Option<usize> = self.arcs.iter().find_map(|(_, to, _, _)| match to {
                ToRef::Label(l) if !matches!(self.labels.get(l), Some(Binding::State(_))) => {
                    Some(*l)
                }
                _ => None,
            });
            let Some(l) = unresolved else { break };
            match self.labels.remove(&l) {
                Some(Binding::State(s)) => {
                    self.labels.insert(l, Binding::State(s));
                }
                Some(Binding::Continuation(items)) => {
                    // Leading output transitions of a loop-head continuation
                    // belong to the arcs that *enter* the label.
                    let mut prefix: Vec<(usize, bool)> = Vec::new();
                    let mut rest = items.as_slice();
                    while let Some(Item::T(t)) = rest.first() {
                        if t.io != Io::Out {
                            break;
                        }
                        let sig = self.intern(&t.signal, SignalDir::Output)?;
                        prefix.push((sig, t.rising));
                        rest = &rest[1..];
                    }
                    if !prefix.is_empty() {
                        self.label_prefix.insert(l, prefix);
                    }
                    let s = self.fresh_state();
                    self.labels.insert(l, Binding::State(s));
                    let rest = rest.to_vec();
                    self.walk(
                        &rest,
                        Some(Cursor {
                            state: s,
                            pin: Vec::new(),
                            pout: Vec::new(),
                        }),
                    )?;
                }
                None => return Err(CompileError::UndefinedLabel { label: l }),
            }
        }
        // Apply state aliases created by empty-burst gotos to labels.
        let alias_arcs: Vec<(usize, usize)> = self
            .arcs
            .iter()
            .filter(|(_, _, pin, pout)| pin.is_empty() && pout.is_empty())
            .map(|(from, to, _, _)| {
                let t = match to {
                    ToRef::State(s) => *s,
                    ToRef::Label(l) => match &self.labels[l] {
                        Binding::State(s) => *s,
                        Binding::Continuation(_) => unreachable!("resolved above"),
                    },
                };
                (*from, t)
            })
            .collect();
        for (a, b) in alias_arcs {
            self.merge(a, b);
        }
        self.arcs
            .retain(|(_, _, pin, pout)| !pin.is_empty() || !pout.is_empty());
        Ok(())
    }

    fn finish(mut self, start: usize) -> Result<BmSpec, CompileError> {
        // Remap states through the union-find, compacting to 0..n.
        let mut spec = BmSpec::new(&self.name);
        for (name, dir) in &self.signal_names {
            spec.add_signal(name.clone(), *dir);
        }
        let mut compact: HashMap<usize, usize> = HashMap::new();
        let roots: Vec<usize> = (0..self.num_states).map(|s| self.find(s)).collect();
        // Keep only states that are sources/destinations of arcs (or start).
        let mut used: Vec<usize> = vec![self.find(start)];
        for i in 0..self.arcs.len() {
            let from = self.arcs[i].0;
            used.push(roots[from]);
            let to = match &self.arcs[i].1 {
                ToRef::State(s) => *s,
                ToRef::Label(l) => match &self.labels[l] {
                    Binding::State(s) => *s,
                    Binding::Continuation(_) => {
                        return Err(CompileError::UndefinedLabel { label: *l })
                    }
                },
            };
            used.push(roots[to]);
        }
        used.sort_unstable();
        used.dedup();
        for &s in &used {
            let id = spec.add_state();
            compact.insert(s, id);
        }
        spec.set_initial(compact[&roots[start]]);
        let mut emitted: Vec<(usize, usize, Vec<(usize, bool)>, Vec<(usize, bool)>)> = Vec::new();
        let arcs = std::mem::take(&mut self.arcs);
        for (from, to, pin, mut pout) in arcs {
            let to = match to {
                ToRef::State(s) => s,
                ToRef::Label(l) => {
                    if let Some(prefix) = self.label_prefix.get(&l) {
                        for &(sig, rising) in prefix {
                            if pout.iter().any(|&(s2, _)| s2 == sig) {
                                return Err(CompileError::SignalTwiceInBurst {
                                    signal: self.signal_names[sig].0.clone(),
                                });
                            }
                            pout.push((sig, rising));
                        }
                    }
                    match &self.labels[&l] {
                        Binding::State(s) => *s,
                        Binding::Continuation(_) => unreachable!("resolved"),
                    }
                }
            };
            let f = compact[&roots[from]];
            let t = compact[&roots[to]];
            let mut pin = pin;
            let mut pout = pout;
            pin.sort_unstable();
            pout.sort_unstable();
            if emitted
                .iter()
                .any(|(ef, et, ei, eo)| *ef == f && *et == t && *ei == pin && *eo == pout)
            {
                continue;
            }
            spec.add_arc(f, t, &pin, &pout);
            emitted.push((f, t, pin, pout));
        }
        spec.validate()?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{ChExpr, InterleaveOp::*};

    fn rep(e: ChExpr) -> ChExpr {
        ChExpr::Rep(Box::new(e))
    }

    /// §3.4 sequencer.
    fn sequencer() -> ChExpr {
        rep(ChExpr::op(
            EncEarly,
            ChExpr::passive("p"),
            ChExpr::op(Seq, ChExpr::active("a1"), ChExpr::active("a2")),
        ))
    }

    /// §3.4 call module.
    fn call() -> ChExpr {
        rep(ChExpr::op(
            Mutex,
            ChExpr::op(EncEarly, ChExpr::passive("a1"), ChExpr::active("b")),
            ChExpr::op(EncEarly, ChExpr::passive("a2"), ChExpr::active("b")),
        ))
    }

    /// §3.4 passivator.
    fn passivator() -> ChExpr {
        rep(ChExpr::op(
            EncMiddle,
            ChExpr::passive("a"),
            ChExpr::passive("b"),
        ))
    }

    #[test]
    fn sequencer_matches_fig3() {
        let spec = compile_to_bm("sequencer", &sequencer()).unwrap();
        assert_eq!(spec.num_states(), 6, "{spec}");
        assert_eq!(spec.arcs().len(), 6);
        // First arc: p_r+ / a1_r+.
        let text = spec.to_string();
        assert!(text.contains("p_r+ | a1_r+"), "{text}");
    }

    #[test]
    fn call_matches_fig3() {
        let spec = compile_to_bm("call", &call()).unwrap();
        assert_eq!(spec.num_states(), 7, "{spec}");
        assert_eq!(spec.arcs().len(), 8);
    }

    #[test]
    fn passivator_matches_fig3() {
        let spec = compile_to_bm("passivator", &passivator()).unwrap();
        assert_eq!(spec.num_states(), 2, "{spec}");
        assert_eq!(spec.arcs().len(), 2);
        let text = spec.to_string();
        assert!(text.contains("a_r+ b_r+"), "{text}");
    }

    #[test]
    fn decision_wait_compiles() {
        // §4.1's decision-wait.
        let dw = rep(ChExpr::op(
            EncEarly,
            ChExpr::passive("a1"),
            ChExpr::op(
                Mutex,
                ChExpr::op(EncEarly, ChExpr::passive("i1"), ChExpr::active("o1")),
                ChExpr::op(EncEarly, ChExpr::passive("i2"), ChExpr::active("o2")),
            ),
        ));
        let spec = compile_to_bm("dw", &dw).unwrap();
        // Fig. 4 left: 9 states (0..8).
        assert_eq!(spec.num_states(), 9, "{spec}");
        // Both branch bursts pair the activation with the sampled input.
        let text = spec.to_string();
        assert!(text.contains("a1_r+ i1_r+ | o1_r+"), "{text}");
        assert!(text.contains("a1_r+ i2_r+ | o2_r+"), "{text}");
    }

    #[test]
    fn merged_component_matches_fig4() {
        // §4.1 result: decision-wait with the sequencer inlined over o2.
        let merged = rep(ChExpr::op(
            EncEarly,
            ChExpr::passive("a1"),
            ChExpr::op(
                Mutex,
                ChExpr::op(EncEarly, ChExpr::passive("i1"), ChExpr::active("o1")),
                ChExpr::op(
                    EncEarly,
                    ChExpr::passive("i2"),
                    ChExpr::op(
                        EncEarly,
                        ChExpr::Void,
                        ChExpr::op(Seq, ChExpr::active("c1"), ChExpr::active("c2")),
                    ),
                ),
            ),
        ));
        let spec = compile_to_bm("merged", &merged).unwrap();
        // Fig. 4 right: 11 states (0..10).
        assert_eq!(spec.num_states(), 11, "{spec}");
        let text = spec.to_string();
        assert!(text.contains("a1_r+ i2_r+ | c1_r+"), "{text}");
    }

    #[test]
    fn call_distribution_result_matches_fig5() {
        // §4.2 result: sequencer with both call fragments inlined.
        let merged = rep(ChExpr::op(
            EncEarly,
            ChExpr::passive("a"),
            ChExpr::op(
                Seq,
                ChExpr::op(EncEarly, ChExpr::Void, ChExpr::active("c")),
                ChExpr::op(EncEarly, ChExpr::Void, ChExpr::active("c")),
            ),
        ));
        let spec = compile_to_bm("result", &merged).unwrap();
        // Fig. 5 right: 6 states.
        assert_eq!(spec.num_states(), 6, "{spec}");
        let text = spec.to_string();
        assert!(text.contains("a_r+ | c_r+"), "{text}");
    }

    #[test]
    fn loop_component_first_iteration_differs() {
        // (enc-early (p-to-p passive a) (rep (p-to-p active b))):
        // the Balsa loop. First burst includes a_r+; later iterations don't.
        let lp = ChExpr::op(EncEarly, ChExpr::passive("a"), rep(ChExpr::active("b")));
        let spec = compile_to_bm("loop", &lp).unwrap();
        let text = spec.to_string();
        assert!(text.contains("a_r+ | b_r+"), "{text}");
        // The steady-state loop: b_a- / b_r+ back to the loop head.
        assert!(text.contains("b_a- | b_r+"), "{text}");
        spec.validate().unwrap();
    }

    #[test]
    fn output_without_trigger_rejected() {
        // A bare active channel emits b_r+ with no input trigger.
        let e = rep(ChExpr::active("b"));
        assert!(matches!(
            compile_to_bm("bad", &e),
            Err(CompileError::OutputWithoutTrigger { .. })
        ));
    }

    #[test]
    fn direction_conflict_rejected() {
        // Same channel passive and active in one program.
        let e = rep(ChExpr::op(
            EncEarly,
            ChExpr::passive("x"),
            ChExpr::active("x"),
        ));
        assert!(matches!(
            compile_to_bm("bad", &e),
            Err(CompileError::DirectionConflict { .. })
        ));
    }

    #[test]
    fn mult_ack_passive_compiles() {
        let e = rep(ChExpr::op(
            EncEarly,
            ChExpr::MultAck {
                activity: crate::ast::ChActivity::Passive,
                name: "m".into(),
                n: 2,
            },
            ChExpr::active("b"),
        ));
        let spec = compile_to_bm("fork_like", &e).unwrap();
        spec.validate().unwrap();
        let text = spec.to_string();
        assert!(text.contains("m_a0+ m_a1+"), "{text}");
    }

    #[test]
    fn mux_req_compiles_like_call() {
        // A mux-req with two enc-early arms behaves like a 2-way call.
        let e = rep(ChExpr::MuxReq {
            name: "m".into(),
            arms: vec![
                (EncEarly, ChExpr::active("b")),
                (EncEarly, ChExpr::active("b")),
            ],
        });
        let spec = compile_to_bm("muxreq", &e).unwrap();
        assert_eq!(spec.num_states(), 7, "{spec}");
    }

    #[test]
    fn break_exits_loop() {
        // rep(enc-early p (rep (mutex (enc-early go w) (seq stop break)))):
        // the inner loop serves `go` requests until a full handshake on
        // `stop` breaks out, after which the enclosing handshake on `p`
        // completes.
        let e = rep(ChExpr::op(
            EncEarly,
            ChExpr::passive("p"),
            rep(ChExpr::op(
                Mutex,
                ChExpr::op(EncEarly, ChExpr::passive("go"), ChExpr::active("w")),
                ChExpr::op(Seq, ChExpr::passive("stop"), ChExpr::Break),
            )),
        ));
        let spec = compile_to_bm("breaker", &e).unwrap();
        spec.validate().unwrap();
        let text = spec.to_string();
        // After the stop handshake the machine must produce p_a+ (the
        // post-loop continuation).
        assert!(text.contains("p_a+"), "{text}");
        // The go path must loop: serving w repeatedly.
        assert!(text.contains("go_r+"), "{text}");
    }
}
