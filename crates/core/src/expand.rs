//! Four-phase handshake expansion of CH expressions (§3 and Table 2).
//!
//! Every CH expression denotes an *expansion*: four "higher-level" atomic
//! events, each a list of items — signal transitions, loop labels/gotos, and
//! external-choice branches. Interleaving operators combine the four events
//! of their arguments exactly per Table 2 of the paper; `rep`/`break` insert
//! the label/goto machinery of §3.2; the mux channels insert `choice`.

use crate::ast::{ChActivity, ChExpr, InterleaveOp};
use std::fmt;

/// Direction of a transition relative to the component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Io {
    /// Received from the environment.
    In,
    /// Driven by the component.
    Out,
}

/// A single signal transition, e.g. `(o a_r +)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Trans {
    /// Input or output.
    pub io: Io,
    /// Wire name (e.g. `a_r`).
    pub signal: String,
    /// Rising (`+`) or falling (`-`).
    pub rising: bool,
}

/// One item of an event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Item {
    /// A signal transition.
    T(Trans),
    /// A loop-head (or loop-exit) label.
    Label(usize),
    /// Jump back to a label (loop).
    Goto(usize),
    /// Jump out of the innermost loop (`break`).
    BGoto(usize),
    /// External mutually exclusive choice between linearized alternatives.
    Choice(Vec<Vec<Item>>),
}

/// The four-event expansion of a CH expression.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Expansion {
    /// The four atomic events.
    pub events: [Vec<Item>; 4],
}

impl Expansion {
    fn empty() -> Self {
        Expansion::default()
    }

    /// Concatenates the four events into the linear intermediate form of
    /// §3.6.
    pub fn linearize(self) -> Vec<Item> {
        let [a, b, c, d] = self.events;
        let mut out = a;
        out.extend(b);
        out.extend(c);
        out.extend(d);
        out
    }

    /// The transitions of the expansion in linear order, descending into
    /// choices.
    pub fn transitions(&self) -> Vec<Trans> {
        fn walk(items: &[Item], out: &mut Vec<Trans>) {
            for item in items {
                match item {
                    Item::T(t) => out.push(t.clone()),
                    Item::Choice(arms) => {
                        for arm in arms {
                            walk(arm, out);
                        }
                    }
                    _ => {}
                }
            }
        }
        let mut out = Vec::new();
        for e in &self.events {
            walk(e, &mut out);
        }
        out
    }
}

impl fmt::Display for Expansion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.events {
            write!(f, "[")?;
            let mut first = true;
            for item in e {
                if !first {
                    write!(f, " ")?;
                }
                first = false;
                match item {
                    Item::T(t) => write!(
                        f,
                        "({} {} {})",
                        if t.io == Io::In { "i" } else { "o" },
                        t.signal,
                        if t.rising { "+" } else { "-" }
                    )?,
                    Item::Label(l) => write!(f, "(label L{l})")?,
                    Item::Goto(l) => write!(f, "(goto L{l})")?,
                    Item::BGoto(l) => write!(f, "(bgoto L{l})")?,
                    Item::Choice(arms) => write!(f, "(choice #{} arms)", arms.len())?,
                }
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

/// Errors raised during expansion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExpandError {
    /// `break` used outside any `rep`.
    BreakOutsideLoop,
}

impl fmt::Display for ExpandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExpandError::BreakOutsideLoop => write!(f, "break used outside of a rep loop"),
        }
    }
}

impl std::error::Error for ExpandError {}

/// Expands a CH expression into its four-phase expansion.
///
/// # Errors
///
/// Returns [`ExpandError::BreakOutsideLoop`] when a `break` has no
/// enclosing `rep`.
pub fn expand(expr: &ChExpr) -> Result<Expansion, ExpandError> {
    let mut ctx = Ctx {
        next_label: 0,
        loop_exits: Vec::new(),
    };
    ctx.expand(expr)
}

struct Ctx {
    next_label: usize,
    loop_exits: Vec<usize>,
}

impl Ctx {
    fn fresh_label(&mut self) -> usize {
        self.next_label += 1;
        self.next_label - 1
    }

    fn expand(&mut self, expr: &ChExpr) -> Result<Expansion, ExpandError> {
        match expr {
            ChExpr::PToP { activity, name } => Ok(ptop_expansion(name, *activity)),
            ChExpr::MultAck { activity, name, n } => Ok(mult_ack_expansion(name, *activity, *n)),
            ChExpr::MultReq { activity, name, n } => Ok(mult_req_expansion(name, *activity, *n)),
            ChExpr::Void => Ok(Expansion::empty()),
            ChExpr::Verb { events, .. } => {
                let mut out = Expansion::empty();
                for (i, ev) in events.iter().enumerate() {
                    out.events[i] = ev
                        .iter()
                        .map(|t| {
                            Item::T(Trans {
                                io: if t.out { Io::Out } else { Io::In },
                                signal: t.signal.clone(),
                                rising: t.rising,
                            })
                        })
                        .collect();
                }
                Ok(out)
            }
            ChExpr::Rep(inner) => {
                let head = self.fresh_label();
                let exit = self.fresh_label();
                self.loop_exits.push(exit);
                let body = self.expand(inner)?;
                self.loop_exits.pop();
                let mut e1 = vec![Item::Label(head)];
                e1.extend(body.linearize());
                e1.push(Item::Goto(head));
                e1.push(Item::Label(exit));
                Ok(Expansion {
                    events: [e1, vec![], vec![], vec![]],
                })
            }
            ChExpr::Break => {
                let exit = *self
                    .loop_exits
                    .last()
                    .ok_or(ExpandError::BreakOutsideLoop)?;
                Ok(Expansion {
                    events: [vec![Item::BGoto(exit)], vec![], vec![], vec![]],
                })
            }
            ChExpr::MuxAck { name, arms } => {
                let mut compiled_arms = Vec::with_capacity(arms.len());
                for (i, (op, arg)) in arms.iter().enumerate() {
                    // The virtual channel: ack on wire i, shared return-to-
                    // zero of the request; the r+ is hoisted out in front of
                    // the choice.
                    let vchan = Expansion {
                        events: [
                            vec![],
                            vec![Item::T(Trans {
                                io: Io::In,
                                signal: format!("{name}_a{i}"),
                                rising: true,
                            })],
                            vec![Item::T(Trans {
                                io: Io::Out,
                                signal: format!("{name}_r"),
                                rising: false,
                            })],
                            vec![Item::T(Trans {
                                io: Io::In,
                                signal: format!("{name}_a{i}"),
                                rising: false,
                            })],
                        ],
                    };
                    let arg_exp = self.expand(arg)?;
                    let combined = combine(*op, vchan, ChActivity::Active, arg_exp, arg.activity());
                    compiled_arms.push(combined.linearize());
                }
                let e1 = vec![
                    Item::T(Trans {
                        io: Io::Out,
                        signal: format!("{name}_r"),
                        rising: true,
                    }),
                    Item::Choice(compiled_arms),
                ];
                Ok(Expansion {
                    events: [e1, vec![], vec![], vec![]],
                })
            }
            ChExpr::MuxReq { name, arms } => {
                let mut compiled_arms = Vec::with_capacity(arms.len());
                for (i, (op, arg)) in arms.iter().enumerate() {
                    let vchan = Expansion {
                        events: [
                            vec![Item::T(Trans {
                                io: Io::In,
                                signal: format!("{name}_r{i}"),
                                rising: true,
                            })],
                            vec![Item::T(Trans {
                                io: Io::Out,
                                signal: format!("{name}_a"),
                                rising: true,
                            })],
                            vec![Item::T(Trans {
                                io: Io::In,
                                signal: format!("{name}_r{i}"),
                                rising: false,
                            })],
                            vec![Item::T(Trans {
                                io: Io::Out,
                                signal: format!("{name}_a"),
                                rising: false,
                            })],
                        ],
                    };
                    let arg_exp = self.expand(arg)?;
                    let combined =
                        combine(*op, vchan, ChActivity::Passive, arg_exp, arg.activity());
                    compiled_arms.push(combined.linearize());
                }
                Ok(Expansion {
                    events: [vec![Item::Choice(compiled_arms)], vec![], vec![], vec![]],
                })
            }
            ChExpr::Op { op, a, b } => {
                let ea = self.expand(a)?;
                let eb = self.expand(b)?;
                Ok(combine(*op, ea, a.activity(), eb, b.activity()))
            }
        }
    }
}

fn trans(io: Io, signal: String, rising: bool) -> Item {
    Item::T(Trans { io, signal, rising })
}

fn ptop_expansion(name: &str, activity: ChActivity) -> Expansion {
    let (req_io, ack_io) = match activity {
        ChActivity::Active => (Io::Out, Io::In),
        _ => (Io::In, Io::Out),
    };
    Expansion {
        events: [
            vec![trans(req_io, format!("{name}_r"), true)],
            vec![trans(ack_io, format!("{name}_a"), true)],
            vec![trans(req_io, format!("{name}_r"), false)],
            vec![trans(ack_io, format!("{name}_a"), false)],
        ],
    }
}

fn mult_ack_expansion(name: &str, activity: ChActivity, n: usize) -> Expansion {
    let (req_io, ack_io) = match activity {
        ChActivity::Active => (Io::Out, Io::In),
        _ => (Io::In, Io::Out),
    };
    let acks = |rising: bool| -> Vec<Item> {
        (0..n)
            .map(|i| trans(ack_io, format!("{name}_a{i}"), rising))
            .collect()
    };
    Expansion {
        events: [
            vec![trans(req_io, format!("{name}_r"), true)],
            acks(true),
            vec![trans(req_io, format!("{name}_r"), false)],
            acks(false),
        ],
    }
}

fn mult_req_expansion(name: &str, activity: ChActivity, n: usize) -> Expansion {
    let (req_io, ack_io) = match activity {
        ChActivity::Active => (Io::Out, Io::In),
        _ => (Io::In, Io::Out),
    };
    let reqs = |rising: bool| -> Vec<Item> {
        (0..n)
            .map(|i| trans(req_io, format!("{name}_r{i}"), rising))
            .collect()
    };
    Expansion {
        events: [
            reqs(true),
            vec![trans(ack_io, format!("{name}_a"), true)],
            reqs(false),
            vec![trans(ack_io, format!("{name}_a"), false)],
        ],
    }
}

/// Combines two expansions per Table 2. The activity arguments select the
/// row variant (only `enc-early` differs between active and passive first
/// arguments); `Neither` behaves as passive — its events are empty, so the
/// placement collapses to the other argument's events.
fn combine(
    op: InterleaveOp,
    a: Expansion,
    a_act: ChActivity,
    b: Expansion,
    _b_act: ChActivity,
) -> Expansion {
    let [a1, a2, a3, a4] = a.events;
    let [b1, b2, b3, b4] = b.events;
    let cat = |parts: Vec<Vec<Item>>| -> Vec<Item> { parts.into_iter().flatten().collect() };
    match op {
        InterleaveOp::EncEarly => {
            if a_act == ChActivity::Active {
                // [a1][a2 b1 b2 b3 b4][a3][a4]
                Expansion {
                    events: [a1, cat(vec![a2, b1, b2, b3, b4]), a3, a4],
                }
            } else {
                // [a1 b1 b2 b3 b4][a2][a3][a4]
                Expansion {
                    events: [cat(vec![a1, b1, b2, b3, b4]), a2, a3, a4],
                }
            }
        }
        InterleaveOp::EncLate => {
            // [a1][a2][a3][b1 b2 b3 b4 a4]
            Expansion {
                events: [a1, a2, a3, cat(vec![b1, b2, b3, b4, a4])],
            }
        }
        InterleaveOp::EncMiddle => {
            // [a1 b1][b2 a2][a3 b3][b4 a4]
            Expansion {
                events: [
                    cat(vec![a1, b1]),
                    cat(vec![b2, a2]),
                    cat(vec![a3, b3]),
                    cat(vec![b4, a4]),
                ],
            }
        }
        InterleaveOp::Seq => {
            // [a1 a2 a3 a4 b1][b2][b3][b4]
            Expansion {
                events: [cat(vec![a1, a2, a3, a4, b1]), b2, b3, b4],
            }
        }
        InterleaveOp::SeqOv => {
            // [a1 a2][b1 b2][a3 a4][b3 b4]
            Expansion {
                events: [
                    cat(vec![a1, a2]),
                    cat(vec![b1, b2]),
                    cat(vec![a3, a4]),
                    cat(vec![b3, b4]),
                ],
            }
        }
        InterleaveOp::Mutex => {
            let arm_a = Expansion {
                events: [a1, a2, a3, a4],
            }
            .linearize();
            let arm_b = Expansion {
                events: [b1, b2, b3, b4],
            }
            .linearize();
            Expansion {
                events: [
                    vec![Item::Choice(vec![arm_a, arm_b])],
                    vec![],
                    vec![],
                    vec![],
                ],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ChExpr;
    use InterleaveOp::*;

    fn show(e: &Expansion) -> String {
        e.to_string()
    }

    #[test]
    fn passive_ptop_expansion_matches_paper() {
        let e = expand(&ChExpr::passive("a")).unwrap();
        assert_eq!(show(&e), "[(i a_r +)][(o a_a +)][(i a_r -)][(o a_a -)]");
    }

    #[test]
    fn active_ptop_expansion_matches_paper() {
        let e = expand(&ChExpr::active("b")).unwrap();
        assert_eq!(show(&e), "[(o b_r +)][(i b_a +)][(o b_r -)][(i b_a -)]");
    }

    #[test]
    fn enc_early_passive_active_matches_paper_example() {
        // §3: (enc-early (p-to-p passive A) (p-to-p active B)) =
        // [(i a_r+)(o b_r+)(i b_a+)(o b_r-)(i b_a-)][(o a_a+)][(i a_r-)][(o a_a-)]
        let e = expand(&ChExpr::op(
            EncEarly,
            ChExpr::passive("a"),
            ChExpr::active("b"),
        ))
        .unwrap();
        assert_eq!(
            show(&e),
            "[(i a_r +) (o b_r +) (i b_a +) (o b_r -) (i b_a -)][(o a_a +)][(i a_r -)][(o a_a -)]"
        );
    }

    #[test]
    fn mult_ack_active_matches_paper_example() {
        // (mult-ack active c 2) -> [(o c_r+)][(i c_a0+)(i c_a1+)][(o c_r-)][...]
        let e = expand(&ChExpr::MultAck {
            activity: crate::ast::ChActivity::Active,
            name: "c".into(),
            n: 2,
        })
        .unwrap();
        assert_eq!(
            show(&e),
            "[(o c_r +)][(i c_a0 +) (i c_a1 +)][(o c_r -)][(i c_a0 -) (i c_a1 -)]"
        );
    }

    #[test]
    fn seq_concatenates_first_argument() {
        let e = expand(&ChExpr::op(Seq, ChExpr::active("x"), ChExpr::active("y"))).unwrap();
        assert_eq!(
            show(&e),
            "[(o x_r +) (i x_a +) (o x_r -) (i x_a -) (o y_r +)][(i y_a +)][(o y_r -)][(i y_a -)]"
        );
    }

    #[test]
    fn enc_middle_interleaves_pairwise() {
        let e = expand(&ChExpr::op(
            EncMiddle,
            ChExpr::passive("a"),
            ChExpr::passive("b"),
        ))
        .unwrap();
        assert_eq!(
            show(&e),
            "[(i a_r +) (i b_r +)][(o b_a +) (o a_a +)][(i a_r -) (i b_r -)][(o b_a -) (o a_a -)]"
        );
    }

    #[test]
    fn enc_late_encloses_in_return_phase() {
        let e = expand(&ChExpr::op(
            EncLate,
            ChExpr::passive("a"),
            ChExpr::active("b"),
        ))
        .unwrap();
        assert_eq!(
            show(&e),
            "[(i a_r +)][(o a_a +)][(i a_r -)][(o b_r +) (i b_a +) (o b_r -) (i b_a -) (o a_a -)]"
        );
    }

    #[test]
    fn seq_ov_overlaps() {
        let e = expand(&ChExpr::op(SeqOv, ChExpr::active("a"), ChExpr::active("b"))).unwrap();
        assert_eq!(
            show(&e),
            "[(o a_r +) (i a_a +)][(o b_r +) (i b_a +)][(o a_r -) (i a_a -)][(o b_r -) (i b_a -)]"
        );
    }

    #[test]
    fn rep_wraps_with_label_and_goto() {
        let e = expand(&ChExpr::Rep(Box::new(ChExpr::passive("p")))).unwrap();
        let items = e.linearize();
        assert!(matches!(items[0], Item::Label(_)));
        assert!(matches!(items[items.len() - 1], Item::Label(_)));
        assert!(items.iter().any(|i| matches!(i, Item::Goto(_))));
    }

    #[test]
    fn break_requires_loop() {
        assert_eq!(
            expand(&ChExpr::Break).unwrap_err(),
            ExpandError::BreakOutsideLoop
        );
        let ok = ChExpr::Rep(Box::new(ChExpr::op(
            Seq,
            ChExpr::passive("p"),
            ChExpr::Break,
        )));
        let e = expand(&ok).unwrap();
        assert!(e.linearize().iter().any(|i| matches!(i, Item::BGoto(_))));
    }

    #[test]
    fn mutex_produces_choice() {
        let e = expand(&ChExpr::op(
            Mutex,
            ChExpr::passive("a"),
            ChExpr::passive("b"),
        ))
        .unwrap();
        match &e.events[0][0] {
            Item::Choice(arms) => {
                assert_eq!(arms.len(), 2);
                assert_eq!(arms[0].len(), 4);
            }
            other => panic!("expected choice, got {other:?}"),
        }
    }

    #[test]
    fn void_disappears_under_enclosure() {
        // (enc-early void (seq c1 c2)) linearizes exactly like the seq.
        let seq = ChExpr::op(Seq, ChExpr::active("c1"), ChExpr::active("c2"));
        let enclosed = ChExpr::op(EncEarly, ChExpr::Void, seq.clone());
        let a = expand(&enclosed).unwrap().linearize();
        let b = expand(&seq).unwrap().linearize();
        assert_eq!(a, b);
    }

    #[test]
    fn mux_ack_shape() {
        let e = expand(&ChExpr::MuxAck {
            name: "m".into(),
            arms: vec![
                (EncEarly, ChExpr::active("x")),
                (EncEarly, ChExpr::active("y")),
            ],
        })
        .unwrap();
        // Event 1: m_r+ then the choice; events 2-4 null.
        assert_eq!(e.events[0].len(), 2);
        assert!(e.events[1].is_empty());
        match &e.events[0][1] {
            Item::Choice(arms) => {
                assert_eq!(arms.len(), 2);
                // Arm 0 mentions m_a0 and x wires.
                let names: Vec<&str> = arms[0]
                    .iter()
                    .filter_map(|i| match i {
                        Item::T(t) => Some(t.signal.as_str()),
                        _ => None,
                    })
                    .collect();
                assert!(names.contains(&"m_a0"));
                assert!(names.contains(&"x_r"));
            }
            other => panic!("expected choice, got {other:?}"),
        }
    }

    #[test]
    fn transitions_enumerates_choice_arms() {
        let e = expand(&ChExpr::op(
            Mutex,
            ChExpr::passive("a"),
            ChExpr::passive("b"),
        ))
        .unwrap();
        let ts = e.transitions();
        assert_eq!(ts.len(), 8); // both four-phase handshakes
    }
}
