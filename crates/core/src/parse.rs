//! Concrete CH syntax: the paper's s-expression notation.
//!
//! ```text
//! (rep (enc-early (p-to-p passive P)
//!                 (seq (p-to-p active A1) (p-to-p active A2))))
//! ```
//!
//! `seq` and `mutex` accept more than two arguments (right-nested per
//! §3.3); `mux-ack`/`mux-req` take a channel name followed by
//! `(operator expression)` arms.

use crate::ast::{ChActivity, ChExpr, InterleaveOp};
use std::fmt;

/// A CH parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for ChParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CH parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ChParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Sexp {
    Atom(String, usize),
    List(Vec<Sexp>, usize),
}

fn lex(src: &str) -> Result<Sexp, ChParseError> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let node = parse_sexp(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(ChParseError {
            message: "trailing input".into(),
            offset: pos,
        });
    }
    Ok(node)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() {
        match bytes[*pos] {
            b';' => {
                while *pos < bytes.len() && bytes[*pos] != b'\n' {
                    *pos += 1;
                }
            }
            c if c.is_ascii_whitespace() => *pos += 1,
            _ => break,
        }
    }
}

fn parse_sexp(bytes: &[u8], pos: &mut usize) -> Result<Sexp, ChParseError> {
    skip_ws(bytes, pos);
    let start = *pos;
    match bytes.get(*pos) {
        None => Err(ChParseError {
            message: "unexpected end of input".into(),
            offset: start,
        }),
        Some(b'(') => {
            *pos += 1;
            let mut items = Vec::new();
            loop {
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b')') => {
                        *pos += 1;
                        return Ok(Sexp::List(items, start));
                    }
                    None => {
                        return Err(ChParseError {
                            message: "unclosed parenthesis".into(),
                            offset: start,
                        })
                    }
                    _ => items.push(parse_sexp(bytes, pos)?),
                }
            }
        }
        Some(b')') => Err(ChParseError {
            message: "unexpected `)`".into(),
            offset: start,
        }),
        _ => {
            let begin = *pos;
            while *pos < bytes.len()
                && !bytes[*pos].is_ascii_whitespace()
                && bytes[*pos] != b'('
                && bytes[*pos] != b')'
                && bytes[*pos] != b';'
            {
                *pos += 1;
            }
            Ok(Sexp::Atom(
                String::from_utf8_lossy(&bytes[begin..*pos]).into_owned(),
                begin,
            ))
        }
    }
}

/// Parses a CH program from its s-expression syntax.
///
/// # Errors
///
/// Returns a [`ChParseError`] with the byte offset of the problem.
///
/// # Examples
///
/// ```
/// use bmbe_core::parse::parse_ch;
/// use bmbe_core::compile::compile_to_bm;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let seq = parse_ch(
///     "(rep (enc-early (p-to-p passive p)
///                      (seq (p-to-p active a1) (p-to-p active a2))))",
/// )?;
/// assert_eq!(compile_to_bm("sequencer", &seq)?.num_states(), 6);
/// # Ok(())
/// # }
/// ```
pub fn parse_ch(src: &str) -> Result<ChExpr, ChParseError> {
    let sexp = lex(src)?;
    build(&sexp)
}

fn err<T>(message: impl Into<String>, offset: usize) -> Result<T, ChParseError> {
    Err(ChParseError {
        message: message.into(),
        offset,
    })
}

fn op_of(name: &str) -> Option<InterleaveOp> {
    InterleaveOp::ALL
        .into_iter()
        .find(|op| op.keyword() == name)
}

fn activity_of(name: &str, offset: usize) -> Result<ChActivity, ChParseError> {
    match name {
        "passive" => Ok(ChActivity::Passive),
        "active" => Ok(ChActivity::Active),
        other => err(format!("expected passive/active, got {other}"), offset),
    }
}

fn atom<'a>(s: &'a Sexp, what: &str) -> Result<(&'a str, usize), ChParseError> {
    match s {
        Sexp::Atom(a, o) => Ok((a.as_str(), *o)),
        Sexp::List(_, o) => err(format!("expected {what}, found a list"), *o),
    }
}

fn build(sexp: &Sexp) -> Result<ChExpr, ChParseError> {
    let (items, offset) = match sexp {
        Sexp::List(items, o) => (items.as_slice(), *o),
        Sexp::Atom(a, o) => {
            return match a.as_str() {
                "void" => Ok(ChExpr::Void),
                "break" => Ok(ChExpr::Break),
                other => err(format!("unexpected atom {other}"), *o),
            }
        }
    };
    let Some(head) = items.first() else {
        return err("empty expression", offset);
    };
    let (head, hoff) = atom(head, "a keyword")?;
    match head {
        "p-to-p" => {
            if items.len() != 3 {
                return err("p-to-p takes an activity and a name", offset);
            }
            let (act, aoff) = atom(&items[1], "activity")?;
            let (name, _) = atom(&items[2], "channel name")?;
            Ok(ChExpr::PToP {
                activity: activity_of(act, aoff)?,
                name: name.to_string(),
            })
        }
        "mult-ack" | "mult-req" => {
            if items.len() != 4 {
                return err(format!("{head} takes activity, name and a count"), offset);
            }
            let (act, aoff) = atom(&items[1], "activity")?;
            let (name, _) = atom(&items[2], "channel name")?;
            let (n, noff) = atom(&items[3], "count")?;
            let n: usize = n.parse().map_err(|_| ChParseError {
                message: format!("bad count {n}"),
                offset: noff,
            })?;
            let activity = activity_of(act, aoff)?;
            Ok(if head == "mult-ack" {
                ChExpr::MultAck {
                    activity,
                    name: name.to_string(),
                    n,
                }
            } else {
                ChExpr::MultReq {
                    activity,
                    name: name.to_string(),
                    n,
                }
            })
        }
        "mux-ack" | "mux-req" => {
            if items.len() < 3 {
                return err(format!("{head} takes a name and at least one arm"), offset);
            }
            let (name, _) = atom(&items[1], "channel name")?;
            let mut arms = Vec::new();
            for arm in &items[2..] {
                let Sexp::List(parts, aoff) = arm else {
                    return err("mux arm must be (operator expression)", offset);
                };
                if parts.len() != 2 {
                    return err("mux arm must be (operator expression)", *aoff);
                }
                let (opname, ooff) = atom(&parts[0], "operator")?;
                let Some(op) = op_of(opname) else {
                    return err(format!("unknown operator {opname}"), ooff);
                };
                arms.push((op, build(&parts[1])?));
            }
            Ok(if head == "mux-ack" {
                ChExpr::MuxAck {
                    name: name.to_string(),
                    arms,
                }
            } else {
                ChExpr::MuxReq {
                    name: name.to_string(),
                    arms,
                }
            })
        }
        "rep" => {
            if items.len() != 2 {
                return err("rep takes one argument", offset);
            }
            Ok(ChExpr::Rep(Box::new(build(&items[1])?)))
        }
        "break" => {
            if items.len() != 1 {
                return err("break takes no arguments", offset);
            }
            Ok(ChExpr::Break)
        }
        "void" => Ok(ChExpr::Void),
        "verb" => {
            if items.len() != 6 {
                return err("verb takes a name and four event lists", offset);
            }
            let (name, _) = atom(&items[1], "channel name")?;
            let mut events: [Vec<crate::ast::VerbTrans>; 4] = Default::default();
            for (i, ev) in items[2..6].iter().enumerate() {
                let Sexp::List(parts, eoff) = ev else {
                    return err("verb event must be a list of transitions", offset);
                };
                for t in parts {
                    let Sexp::List(fields, toff) = t else {
                        return err("transition must be (i|o signal +|-)", *eoff);
                    };
                    if fields.len() != 3 {
                        return err("transition must be (i|o signal +|-)", *toff);
                    }
                    let (dir, doff) = atom(&fields[0], "direction")?;
                    let out = match dir {
                        "o" => true,
                        "i" => false,
                        other => return err(format!("expected i or o, got {other}"), doff),
                    };
                    let (signal, _) = atom(&fields[1], "signal")?;
                    let (pol, poff) = atom(&fields[2], "polarity")?;
                    let rising = match pol {
                        "+" => true,
                        "-" => false,
                        other => return err(format!("expected + or -, got {other}"), poff),
                    };
                    events[i].push(crate::ast::VerbTrans {
                        out,
                        signal: signal.to_string(),
                        rising,
                    });
                }
            }
            Ok(ChExpr::Verb {
                name: name.to_string(),
                events,
            })
        }
        _ => {
            let Some(op) = op_of(head) else {
                return err(format!("unknown keyword {head}"), hoff);
            };
            let args: Vec<ChExpr> = items[1..].iter().map(build).collect::<Result<_, _>>()?;
            match (op, args.len()) {
                (_, 0 | 1) => err(format!("{head} needs at least two arguments"), offset),
                (InterleaveOp::Seq, _) => Ok(ChExpr::seq_all(args)),
                (InterleaveOp::Mutex, _) => Ok(ChExpr::mutex_all(args)),
                (_, 2) => {
                    let mut it = args.into_iter();
                    let a = it.next().expect("len 2");
                    let b = it.next().expect("len 2");
                    Ok(ChExpr::op(op, a, b))
                }
                _ => err(format!("{head} takes exactly two arguments"), offset),
            }
        }
    }
}

/// Pretty-prints a CH expression in the paper's s-expression syntax.
pub fn print_ch(expr: &ChExpr) -> String {
    match expr {
        ChExpr::PToP { activity, name } => format!("(p-to-p {activity} {name})"),
        ChExpr::MultAck { activity, name, n } => format!("(mult-ack {activity} {name} {n})"),
        ChExpr::MultReq { activity, name, n } => format!("(mult-req {activity} {name} {n})"),
        ChExpr::MuxAck { name, arms } => {
            let arms: Vec<String> = arms
                .iter()
                .map(|(op, e)| format!("({} {})", op.keyword(), print_ch(e)))
                .collect();
            format!("(mux-ack {name} {})", arms.join(" "))
        }
        ChExpr::MuxReq { name, arms } => {
            let arms: Vec<String> = arms
                .iter()
                .map(|(op, e)| format!("({} {})", op.keyword(), print_ch(e)))
                .collect();
            format!("(mux-req {name} {})", arms.join(" "))
        }
        ChExpr::Void => "void".to_string(),
        ChExpr::Verb { name, events } => {
            let events: Vec<String> = events
                .iter()
                .map(|e| {
                    let items: Vec<String> = e
                        .iter()
                        .map(|t| {
                            format!(
                                "({} {} {})",
                                if t.out { "o" } else { "i" },
                                t.signal,
                                if t.rising { "+" } else { "-" }
                            )
                        })
                        .collect();
                    format!("({})", items.join(" "))
                })
                .collect();
            format!("(verb {name} {})", events.join(" "))
        }
        ChExpr::Break => "(break)".to_string(),
        ChExpr::Rep(e) => format!("(rep {})", print_ch(e)),
        ChExpr::Op { op, a, b } => {
            format!("({} {} {})", op.keyword(), print_ch(a), print_ch(b))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components;

    #[test]
    fn parses_the_papers_sequencer() {
        let e = parse_ch(
            "(rep (enc-early (p-to-p passive P)
                             (seq (p-to-p active A1) (p-to-p active A2))))",
        )
        .unwrap();
        assert_eq!(e, components::sequencer("P", &["A1".into(), "A2".into()]));
    }

    #[test]
    fn parses_the_papers_call() {
        let e = parse_ch(
            "(rep (mutex (enc-early (p-to-p passive A1) (p-to-p active B))
                         (enc-early (p-to-p passive A2) (p-to-p active B))))",
        )
        .unwrap();
        assert_eq!(e, components::call(&["A1".into(), "A2".into()], "B"));
    }

    #[test]
    fn multiway_seq_right_nests() {
        let e = parse_ch("(seq (p-to-p active a) (p-to-p active b) (p-to-p active c))").unwrap();
        assert_eq!(
            e,
            ChExpr::seq_all(vec![
                ChExpr::active("a"),
                ChExpr::active("b"),
                ChExpr::active("c")
            ])
        );
    }

    #[test]
    fn roundtrips_standard_components() {
        for e in [
            components::sequencer("p", &["a".into(), "b".into()]),
            components::call(&["x".into(), "y".into()], "z"),
            components::passivator("a", "b"),
            components::decision_wait("a", &["i".into()], &["o".into()]),
            components::while_loop("a", "g", "b"),
            components::transferrer("a", "p", "q"),
        ] {
            let text = print_ch(&e);
            let back = parse_ch(&text).unwrap_or_else(|err| panic!("{text}: {err}"));
            assert_eq!(back, e, "{text}");
        }
    }

    #[test]
    fn comments_and_whitespace() {
        let e = parse_ch("; the paper's passivator\n(rep (enc-middle (p-to-p passive a) ; A\n (p-to-p passive b)))").unwrap();
        assert_eq!(e, components::passivator("a", "b"));
    }

    #[test]
    fn mux_ack_syntax() {
        let e = parse_ch("(mux-ack m (enc-early (p-to-p active x)) (seq (p-to-p active y)))");
        // Arms with a single-expression operator body: the arm expression is
        // the operator's (implicit-channel) partner.
        let e = e.unwrap();
        match e {
            ChExpr::MuxAck { ref arms, .. } => assert_eq!(arms.len(), 2),
            ref other => panic!("{other:?}"),
        }
    }

    #[test]
    fn error_positions() {
        assert!(parse_ch("(rep").is_err());
        assert!(parse_ch("(p-to-p sideways a)").is_err());
        assert!(parse_ch("(frobnicate a b)").is_err());
        assert!(parse_ch("(rep (p-to-p passive a)) extra").is_err());
        assert!(parse_ch("(enc-early (p-to-p passive a))").is_err());
    }

    #[test]
    fn void_and_break_atoms() {
        let e = parse_ch("(enc-early void (p-to-p active c))").unwrap();
        assert!(matches!(e, ChExpr::Op { .. }));
        let e = parse_ch("(seq (p-to-p passive s) (break))").unwrap();
        assert!(matches!(e, ChExpr::Op { .. }));
    }
}

#[cfg(test)]
mod verb_tests {
    use super::*;
    use crate::ast::ChActivity;
    use crate::compile::compile_to_bm;

    #[test]
    fn verb_parses_and_roundtrips() {
        // A verb channel describing an ordinary passive handshake.
        let text = "(verb v ((i v_r +)) ((o v_a +)) ((i v_r -)) ((o v_a -)))";
        let e = parse_ch(text).unwrap();
        assert_eq!(e.activity(), ChActivity::Passive);
        let printed = print_ch(&e);
        assert_eq!(parse_ch(&printed).unwrap(), e);
    }

    #[test]
    fn verb_compiles_like_its_expansion() {
        // rep of a verb that mirrors a passive p-to-p: same 2-state echo.
        let text = "(rep (verb v ((i v_r +)) ((o v_a +)) ((i v_r -)) ((o v_a -))))";
        let e = parse_ch(text).unwrap();
        let spec = compile_to_bm("verb_echo", &e).unwrap();
        assert_eq!(spec.num_states(), 2);
    }

    #[test]
    fn verb_activity_from_first_transition() {
        let text = "(verb v ((o go +)) ((i done +)) ((o go -)) ((i done -)))";
        let e = parse_ch(text).unwrap();
        assert_eq!(e.activity(), ChActivity::Active);
    }

    #[test]
    fn verb_rejects_bad_syntax() {
        assert!(parse_ch("(verb v ((i a +)))").is_err());
        assert!(parse_ch("(verb v ((x a +)) () () ())").is_err());
        assert!(parse_ch("(verb v ((i a *)) () () ())").is_err());
    }
}
