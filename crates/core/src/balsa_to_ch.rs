//! The Balsa-to-CH translator (Fig. 1 of the paper): turns the control
//! partition of a handshake-component netlist into a [`CtrlNetlist`] of CH
//! programs ready for clustering.
//!
//! Channel names in the CH programs are the netlist's channel names, so two
//! components wired by a channel share the name — which is how the
//! clustering algorithms discover internal channels.
//!
//! Data-carrying select channels (of `case`/`while` components) become
//! mux-ack channels: the select demultiplexer that steers the acknowledge
//! by value is datapath hardware, instantiated by the simulator.

use crate::ast::ChExpr;
use crate::components;
use crate::opt::cluster::CtrlNetlist;
use bmbe_hsnet::{ComponentKind, Netlist};
use std::fmt;

/// Errors raised during translation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TranslateError {
    /// A control component kind without a CH model (none currently).
    Unsupported {
        /// The kind's mnemonic.
        kind: String,
    },
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::Unsupported { kind } => {
                write!(f, "no CH model for component kind {kind}")
            }
        }
    }
}

impl std::error::Error for TranslateError {}

/// Translates the control partition of a netlist into CH programs.
///
/// # Errors
///
/// Returns [`TranslateError`] for control kinds without a CH model.
pub fn balsa_to_ch(netlist: &Netlist) -> Result<CtrlNetlist, TranslateError> {
    let mut out = CtrlNetlist::new();
    for comp in netlist.components() {
        if !comp.kind.is_control() {
            continue;
        }
        let chan = |i: usize| netlist.channel(comp.channels[i]).name.clone();
        let chans = |range: std::ops::Range<usize>| -> Vec<String> {
            range
                .map(|i| netlist.channel(comp.channels[i]).name.clone())
                .collect()
        };
        let program: ChExpr = match &comp.kind {
            ComponentKind::Sequence { branches } => {
                components::sequencer(&chan(0), &chans(1..1 + branches))
            }
            ComponentKind::Concur { branches } => {
                components::concur(&chan(0), &chans(1..1 + branches))
            }
            ComponentKind::Loop => components::loop_forever(&chan(0), &chan(1)),
            ComponentKind::While => components::while_loop(&chan(0), &chan(1), &chan(2)),
            ComponentKind::Call { inputs } => components::call(&chans(0..*inputs), &chan(*inputs)),
            ComponentKind::DecisionWait { pairs } => components::decision_wait(
                &chan(0),
                &chans(1..1 + pairs),
                &chans(1 + pairs..1 + 2 * pairs),
            ),
            ComponentKind::Fork { outputs } => components::fork(&chan(0), &chans(1..1 + outputs)),
            ComponentKind::Sync { inputs } => components::sync(&chans(0..*inputs)),
            ComponentKind::Fetch => components::transferrer(&chan(0), &chan(1), &chan(2)),
            ComponentKind::Case { branches } => {
                components::case(&chan(0), &chan(1), &chans(2..2 + branches))
            }
            ComponentKind::Skip => ChExpr::Rep(Box::new(ChExpr::passive(chan(0)))),
            other => {
                return Err(TranslateError::Unsupported {
                    kind: other.mnemonic().to_string(),
                })
            }
        };
        out.add(format!("{}_{}", comp.kind.mnemonic(), comp.id.0), program);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_to_bm;
    use bmbe_balsa::{compile_procedure, parse};

    fn netlist_of(src: &str) -> Netlist {
        let prog = parse(src).unwrap();
        compile_procedure(&prog.procedures[0]).unwrap().netlist
    }

    #[test]
    fn buffer_control_translates() {
        let n = netlist_of(
            "procedure buf (input i : 8 bits; output o : 8 bits) is\n\
             variable x : 8 bits\n\
             begin loop i -> x ; o <- x end end",
        );
        let ctrl = balsa_to_ch(&n).unwrap();
        // loop + seq + 2 fetches.
        assert_eq!(ctrl.components.len(), 4);
        // Every program compiles to a valid BM spec.
        for c in &ctrl.components {
            compile_to_bm(&c.name, &c.program).unwrap();
        }
        // The loop->seq channel is internal.
        assert!(!ctrl.internal_channels().is_empty());
    }

    #[test]
    fn channel_names_are_shared() {
        let n = netlist_of("procedure t (sync a; sync b) is begin loop sync a ; sync b end end");
        let ctrl = balsa_to_ch(&n).unwrap();
        let internal = ctrl.internal_channels();
        // loop -> seq activation must be discovered as internal.
        assert_eq!(internal.len(), 1);
    }

    #[test]
    fn clustering_runs_on_translated_netlist() {
        use crate::opt::cluster::ClusterOptions;
        let n = netlist_of("procedure t (sync a; sync b) is begin loop sync a ; sync b end end");
        let mut ctrl = balsa_to_ch(&n).unwrap();
        let before = ctrl.components.len();
        let report = ctrl.t1_clustering(&ClusterOptions::default());
        assert!(!report.eliminated_channels.is_empty());
        assert!(ctrl.components.len() < before);
        for c in &ctrl.components {
            compile_to_bm(&c.name, &c.program).unwrap();
        }
    }

    #[test]
    fn case_translates_with_mux_ack() {
        let n = netlist_of(
            "procedure t (input i : 1 bits; sync x) is\n\
             variable v : 1 bits\n\
             begin loop i -> v ; if v then sync x else continue end end end",
        );
        let ctrl = balsa_to_ch(&n).unwrap();
        let case = ctrl
            .components
            .iter()
            .find(|c| c.name.starts_with("case"))
            .unwrap();
        let spec = compile_to_bm("case", &case.program).unwrap();
        spec.validate().unwrap();
    }
}
