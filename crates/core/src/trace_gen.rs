//! Trace-structure generation from CH programs, for the §4.3 verification.
//!
//! The paper verified Activation Channel Removal by translating the CH
//! programs to Petri nets, composing them in the AVER trace-theory verifier,
//! hiding the activation channel, and checking conformance equivalence
//! against the optimized program. Here the CH expansion itself is turned
//! directly into a Dill trace structure: every signal transition is a
//! symbol occurrence (the symbol is the wire name; polarity is implied by
//! position), choices branch, and gotos loop.

use crate::ast::ChExpr;
use crate::expand::{expand, ExpandError, Io, Item};
use bmbe_trace::{Dir, TraceStructure};
use std::collections::HashMap;

/// Errors raised during trace generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceGenError {
    /// Expansion failed.
    Expand(ExpandError),
    /// A goto referenced a label never bound.
    UndefinedLabel {
        /// The label id.
        label: usize,
    },
}

impl std::fmt::Display for TraceGenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceGenError::Expand(e) => write!(f, "expansion failed: {e}"),
            TraceGenError::UndefinedLabel { label } => write!(f, "undefined label L{label}"),
        }
    }
}

impl std::error::Error for TraceGenError {}

impl From<ExpandError> for TraceGenError {
    fn from(e: ExpandError) -> Self {
        TraceGenError::Expand(e)
    }
}

/// Builds the trace structure of a CH program. Input transitions become
/// `Dir::Input` symbols (wire names), output transitions `Dir::Output`.
///
/// # Errors
///
/// See [`TraceGenError`].
pub fn trace_of(expr: &ChExpr) -> Result<TraceStructure, TraceGenError> {
    let items = expand(expr)?.linearize();
    let mut b = TraceBuilder {
        ts: TraceStructure::new(),
        labels: HashMap::new(),
        pending_gotos: Vec::new(),
    };
    let start = b.ts.initial();
    b.walk(&items, Some(start))?;
    b.resolve()?;
    Ok(b.ts)
}

enum LabelBinding {
    State(usize),
    Continuation(Vec<Item>),
}

struct TraceBuilder {
    ts: TraceStructure,
    labels: HashMap<usize, LabelBinding>,
    /// `(from_state, symbol, label)` edges awaiting label resolution —
    /// `symbol == usize::MAX` marks a pure aliasing request handled by
    /// binding the label to `from_state` itself.
    pending_gotos: Vec<(usize, usize, usize)>,
}

impl TraceBuilder {
    fn walk(&mut self, items: &[Item], mut cur: Option<usize>) -> Result<(), TraceGenError> {
        let mut i = 0;
        while i < items.len() {
            match &items[i] {
                Item::T(t) => {
                    let dir = if t.io == Io::In {
                        Dir::Input
                    } else {
                        Dir::Output
                    };
                    let sym = self.ts.add_symbol(t.signal.clone(), dir);
                    if let Some(s) = cur {
                        // Peek: if the very next meaningful item is a goto at
                        // this point we still need a state; always create one.
                        let next = self.ts.add_state();
                        self.ts.add_transition(s, sym, next);
                        cur = Some(next);
                    }
                }
                Item::Label(l) => {
                    if !self.labels.contains_key(l) {
                        let binding = match cur {
                            Some(s) => LabelBinding::State(s),
                            None => LabelBinding::Continuation(items[i + 1..].to_vec()),
                        };
                        self.labels.insert(*l, binding);
                    } else if let (Some(s), Some(LabelBinding::State(t))) =
                        (cur, self.labels.get(l))
                    {
                        // Re-encountered label while live: redirect by alias.
                        let t = *t;
                        if s != t {
                            // Merge by re-walking is avoided: instead alias
                            // via an identity note (pending with MAX symbol).
                            self.pending_gotos.push((s, usize::MAX, *l));
                            let _ = t;
                        }
                    }
                }
                Item::Goto(l) | Item::BGoto(l) => {
                    if let Some(s) = cur.take() {
                        // The state `s` *is* the label's state: since trace
                        // edges are per-transition, a goto simply continues
                        // at the label. Record for later merging.
                        self.pending_gotos.push((s, usize::MAX, *l));
                    }
                }
                Item::Choice(arms) => {
                    if let Some(s) = cur {
                        let rest = &items[i + 1..];
                        for arm in arms {
                            let mut stream = arm.clone();
                            stream.extend_from_slice(rest);
                            self.walk(&stream, Some(s))?;
                        }
                    }
                    return Ok(());
                }
            }
            i += 1;
        }
        Ok(())
    }

    /// Resolves label continuations and merges goto sources with label
    /// states by copying outgoing edges (trace automata tolerate the
    /// duplication; conformance checking is insensitive to it).
    fn resolve(&mut self) -> Result<(), TraceGenError> {
        // First force every referenced label to have a state.
        loop {
            let unresolved =
                self.pending_gotos
                    .iter()
                    .find_map(|(_, _, l)| match self.labels.get(l) {
                        Some(LabelBinding::State(_)) => None,
                        Some(LabelBinding::Continuation(_)) => Some(*l),
                        None => Some(*l),
                    });
            let Some(l) = unresolved else { break };
            match self.labels.remove(&l) {
                Some(LabelBinding::Continuation(items)) => {
                    let s = self.ts.add_state();
                    self.labels.insert(l, LabelBinding::State(s));
                    self.walk(&items, Some(s))?;
                }
                Some(LabelBinding::State(s)) => {
                    self.labels.insert(l, LabelBinding::State(s));
                }
                None => return Err(TraceGenError::UndefinedLabel { label: l }),
            }
        }
        // Merge each goto source with its label state: copy the label
        // state's outgoing edges onto the source, iterating to a fixpoint so
        // chains of gotos settle.
        let pairs: Vec<(usize, usize)> = self
            .pending_gotos
            .iter()
            .map(|(s, _, l)| {
                let t = match &self.labels[l] {
                    LabelBinding::State(t) => *t,
                    LabelBinding::Continuation(_) => unreachable!("resolved above"),
                };
                (*s, t)
            })
            .collect();
        loop {
            let before = self.ts.num_transitions();
            for &(s, t) in &pairs {
                self.ts.copy_outgoing(t, s);
            }
            if self.ts.num_transitions() == before {
                break;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{ChExpr, InterleaveOp::*};
    use crate::components::{call, sequencer};

    fn names(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn ptop_trace_cycles() {
        let e = ChExpr::Rep(Box::new(ChExpr::passive("a")));
        let t = trace_of(&e).unwrap();
        assert!(t.accepts(&["a_r", "a_a", "a_r", "a_a", "a_r"]).unwrap());
        assert!(!t.accepts(&["a_a"]).unwrap());
    }

    #[test]
    fn sequencer_trace_follows_protocol() {
        let t = trace_of(&sequencer("p", &names(&["x", "y"]))).unwrap();
        assert!(t
            .accepts(&[
                "p_r", "x_r", "x_a", "x_r", "x_a", "y_r", "y_a", "y_r", "y_a", "p_a", "p_r", "p_a",
                "p_r"
            ])
            .unwrap());
        // y before x is not a trace.
        assert!(!t.accepts(&["p_r", "y_r"]).unwrap());
    }

    #[test]
    fn call_trace_offers_choice() {
        let t = trace_of(&call(&names(&["a1", "a2"]), "b")).unwrap();
        assert!(t
            .accepts(&["a1_r", "b_r", "b_a", "b_r", "b_a", "a1_a"])
            .unwrap());
        assert!(t
            .accepts(&["a2_r", "b_r", "b_a", "b_r", "b_a", "a2_a"])
            .unwrap());
    }

    #[test]
    fn directions_follow_io() {
        let t = trace_of(&sequencer("p", &names(&["x"]))).unwrap();
        let sym = |n: &str| {
            t.symbols()
                .iter()
                .find(|(name, _)| name == n)
                .map(|(_, d)| *d)
                .unwrap()
        };
        assert_eq!(sym("p_r"), bmbe_trace::Dir::Input);
        assert_eq!(sym("p_a"), bmbe_trace::Dir::Output);
        assert_eq!(sym("x_r"), bmbe_trace::Dir::Output);
        assert_eq!(sym("x_a"), bmbe_trace::Dir::Input);
    }

    #[test]
    fn mutex_trace_has_both_arms() {
        let e = ChExpr::Rep(Box::new(ChExpr::op(
            Mutex,
            ChExpr::passive("a"),
            ChExpr::passive("b"),
        )));
        let t = trace_of(&e).unwrap();
        // Full four-phase handshakes: a then b, and b then a.
        assert!(t
            .accepts(&["a_r", "a_a", "a_r", "a_a", "b_r", "b_a", "b_r", "b_a"])
            .unwrap());
        assert!(t
            .accepts(&["b_r", "b_a", "b_r", "b_a", "a_r", "a_a", "a_r", "a_a"])
            .unwrap());
    }
}
