#![warn(missing_docs)]
//! # bmbe-bm
//!
//! Burst-Mode machine representation and Minimalist-equivalent synthesis:
//! specification data structures with full well-formedness validation
//! ([`spec`]), conservative state minimization ([`statemin`]),
//! critical-race-free state assignment by Tracey-dichotomy covering
//! ([`mod@assign`]), and hazard-free two-level synthesis ([`synth`]) built on
//! the Nowick–Dill minimizer in `bmbe-logic`.
//!
//! # Examples
//!
//! ```
//! use bmbe_bm::spec::{BmSpec, SignalDir};
//! use bmbe_bm::synth::{synthesize, MinimizeMode};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A call-element-free toggle: in+, out+; in-, out-.
//! let mut spec = BmSpec::new("echo");
//! let i = spec.add_signal("in", SignalDir::Input);
//! let o = spec.add_signal("out", SignalDir::Output);
//! let s0 = spec.add_state();
//! let s1 = spec.add_state();
//! spec.add_arc(s0, s1, &[(i, true)], &[(o, true)]);
//! spec.add_arc(s1, s0, &[(i, false)], &[(o, false)]);
//! let ctrl = synthesize(&spec, MinimizeMode::Speed)?;
//! ctrl.verify_ternary().map_err(|e| format!("hazard: {e}"))?;
//! # Ok(())
//! # }
//! ```

pub mod assign;
pub mod spec;
pub mod statemin;
pub mod synth;
pub mod text;

pub use assign::{assign, AssignError, Dichotomy, StateAssignment};
pub use spec::{Arc, BmError, BmSpec, Edge, EntryVectors, Signal, SignalDir};
pub use statemin::{minimize_states, StateMinResult};
pub use synth::{
    intra_budget, synthesize, synthesize_full, synthesize_parallel, Controller, MinimizeMode,
    SynthError,
};
pub use text::{from_bms, to_bms, to_dot, BmsParseError};
