//! Burst-Mode machine specifications.
//!
//! A Burst-Mode (BM) specification [Nowick 1993] is a Mealy-style state
//! graph whose arcs are labelled with an *input burst* (a set of input
//! transitions that may arrive in any order) followed by an *output burst*.
//! Once the complete input burst has arrived the machine fires the output
//! burst and moves to the next state.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::fmt;

/// Direction of a specification signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignalDir {
    /// Driven by the environment.
    Input,
    /// Driven by the machine.
    Output,
}

/// A signal of the specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signal {
    /// Wire name, e.g. `a_r`.
    pub name: String,
    /// Input or output.
    pub dir: SignalDir,
}

/// A single signal transition (`name+` or `name-`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Edge {
    /// Index into the spec's signal table.
    pub signal: usize,
    /// `true` for a rising transition.
    pub rising: bool,
}

/// An arc of the specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Arc {
    /// Source state.
    pub from: usize,
    /// Destination state.
    pub to: usize,
    /// The input burst (non-empty for a well-formed machine).
    pub inputs: BTreeSet<Edge>,
    /// The output burst (may be empty).
    pub outputs: BTreeSet<Edge>,
}

/// Validation failures for a BM specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BmError {
    /// An arc has an empty input burst.
    EmptyInputBurst {
        /// Index of the offending arc.
        arc: usize,
    },
    /// A burst contains a non-input signal in the input position or vice
    /// versa.
    WrongDirection {
        /// Index of the offending arc.
        arc: usize,
        /// The offending signal name.
        signal: String,
    },
    /// From one state, one arc's input burst is a subset of another's
    /// (violates the maximal set property).
    MaximalSetViolation {
        /// The common source state.
        state: usize,
        /// First arc index.
        arc_a: usize,
        /// Second arc index.
        arc_b: usize,
    },
    /// A state was entered with two different signal-value vectors.
    InconsistentEntry {
        /// The state.
        state: usize,
    },
    /// A transition edge does not toggle the signal (e.g. a rising edge on
    /// a signal already at 1).
    PolarityError {
        /// Index of the offending arc.
        arc: usize,
        /// The offending signal name.
        signal: String,
    },
    /// A state is unreachable from the initial state.
    Unreachable {
        /// The state.
        state: usize,
    },
    /// The specification has more than 64 signals.
    TooManySignals,
}

impl fmt::Display for BmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BmError::EmptyInputBurst { arc } => write!(f, "arc {arc} has an empty input burst"),
            BmError::WrongDirection { arc, signal } => {
                write!(f, "arc {arc}: signal {signal} appears in the wrong burst")
            }
            BmError::MaximalSetViolation {
                state,
                arc_a,
                arc_b,
            } => write!(
                f,
                "state {state}: input burst of arc {arc_a} is a subset of arc {arc_b}'s"
            ),
            BmError::InconsistentEntry { state } => {
                write!(f, "state {state} entered with inconsistent signal values")
            }
            BmError::PolarityError { arc, signal } => {
                write!(
                    f,
                    "arc {arc}: transition on {signal} does not toggle its value"
                )
            }
            BmError::Unreachable { state } => write!(f, "state {state} is unreachable"),
            BmError::TooManySignals => write!(f, "more than 64 signals"),
        }
    }
}

impl std::error::Error for BmError {}

/// Entry conditions of each state computed during validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntryVectors {
    /// `entry_in[s]` is the input-signal value vector on entering state `s`
    /// (bit `i` = value of input signal with *input index* `i`).
    pub entry_in: Vec<u64>,
    /// `entry_out[s]` likewise for outputs (bit `i` = output index `i`).
    pub entry_out: Vec<u64>,
}

/// A Burst-Mode specification.
///
/// # Examples
///
/// Build the two-state passivator of Fig. 3 of the paper:
///
/// ```
/// use bmbe_bm::spec::{BmSpec, SignalDir};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut spec = BmSpec::new("passivator");
/// let ar = spec.add_signal("a_r", SignalDir::Input);
/// let br = spec.add_signal("b_r", SignalDir::Input);
/// let aa = spec.add_signal("a_a", SignalDir::Output);
/// let ba = spec.add_signal("b_a", SignalDir::Output);
/// let s0 = spec.add_state();
/// let s1 = spec.add_state();
/// spec.add_arc(s0, s1, &[(ar, true), (br, true)], &[(aa, true), (ba, true)]);
/// spec.add_arc(s1, s0, &[(ar, false), (br, false)], &[(aa, false), (ba, false)]);
/// let entry = spec.validate()?;
/// assert_eq!(entry.entry_in[s0], 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BmSpec {
    name: String,
    signals: Vec<Signal>,
    num_states: usize,
    initial: usize,
    arcs: Vec<Arc>,
}

impl BmSpec {
    /// Creates an empty specification (one initial state, index 0).
    pub fn new(name: impl Into<String>) -> Self {
        BmSpec {
            name: name.into(),
            signals: Vec::new(),
            num_states: 0,
            initial: 0,
            arcs: Vec::new(),
        }
    }

    /// The machine name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a signal; returns its index.
    pub fn add_signal(&mut self, name: impl Into<String>, dir: SignalDir) -> usize {
        self.signals.push(Signal {
            name: name.into(),
            dir,
        });
        self.signals.len() - 1
    }

    /// Adds a state; returns its index.
    pub fn add_state(&mut self) -> usize {
        self.num_states += 1;
        self.num_states - 1
    }

    /// Sets the initial state (defaults to 0).
    pub fn set_initial(&mut self, s: usize) {
        assert!(s < self.num_states);
        self.initial = s;
    }

    /// Adds an arc; bursts are given as `(signal, rising)` pairs.
    pub fn add_arc(
        &mut self,
        from: usize,
        to: usize,
        inputs: &[(usize, bool)],
        outputs: &[(usize, bool)],
    ) -> usize {
        assert!(from < self.num_states && to < self.num_states);
        let arc = Arc {
            from,
            to,
            inputs: inputs
                .iter()
                .map(|&(signal, rising)| Edge { signal, rising })
                .collect(),
            outputs: outputs
                .iter()
                .map(|&(signal, rising)| Edge { signal, rising })
                .collect(),
        };
        self.arcs.push(arc);
        self.arcs.len() - 1
    }

    /// All signals.
    pub fn signals(&self) -> &[Signal] {
        &self.signals
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// The initial state.
    pub fn initial(&self) -> usize {
        self.initial
    }

    /// All arcs.
    pub fn arcs(&self) -> &[Arc] {
        &self.arcs
    }

    /// Indices of the input signals, in signal order.
    pub fn input_signals(&self) -> Vec<usize> {
        (0..self.signals.len())
            .filter(|&i| self.signals[i].dir == SignalDir::Input)
            .collect()
    }

    /// Indices of the output signals, in signal order.
    pub fn output_signals(&self) -> Vec<usize> {
        (0..self.signals.len())
            .filter(|&i| self.signals[i].dir == SignalDir::Output)
            .collect()
    }

    /// Validates the specification and computes the state entry vectors.
    ///
    /// Checks: burst directions, non-empty input bursts, the maximal set
    /// property, polarity (each edge toggles its signal), consistent entry
    /// values, and reachability.
    ///
    /// # Errors
    ///
    /// Returns the first [`BmError`] found.
    pub fn validate(&self) -> Result<EntryVectors, BmError> {
        if self.signals.len() > 64 {
            return Err(BmError::TooManySignals);
        }
        let input_ix = self.input_index_map();
        let output_ix = self.output_index_map();
        // Direction / emptiness checks.
        for (ai, arc) in self.arcs.iter().enumerate() {
            if arc.inputs.is_empty() {
                return Err(BmError::EmptyInputBurst { arc: ai });
            }
            for e in &arc.inputs {
                if self.signals[e.signal].dir != SignalDir::Input {
                    return Err(BmError::WrongDirection {
                        arc: ai,
                        signal: self.signals[e.signal].name.clone(),
                    });
                }
            }
            for e in &arc.outputs {
                if self.signals[e.signal].dir != SignalDir::Output {
                    return Err(BmError::WrongDirection {
                        arc: ai,
                        signal: self.signals[e.signal].name.clone(),
                    });
                }
            }
        }
        // Maximal set property per state.
        let mut by_state: HashMap<usize, Vec<usize>> = HashMap::new();
        for (ai, arc) in self.arcs.iter().enumerate() {
            by_state.entry(arc.from).or_default().push(ai);
        }
        for (&state, arcs) in &by_state {
            for (i, &a) in arcs.iter().enumerate() {
                for &b in &arcs[i + 1..] {
                    let ia = &self.arcs[a].inputs;
                    let ib = &self.arcs[b].inputs;
                    if ia.is_subset(ib) {
                        return Err(BmError::MaximalSetViolation {
                            state,
                            arc_a: a,
                            arc_b: b,
                        });
                    }
                    if ib.is_subset(ia) {
                        return Err(BmError::MaximalSetViolation {
                            state,
                            arc_a: b,
                            arc_b: a,
                        });
                    }
                }
            }
        }
        // Entry-vector propagation (BFS from initial, starting all-zero).
        let mut entry_in: Vec<Option<u64>> = vec![None; self.num_states];
        let mut entry_out: Vec<Option<u64>> = vec![None; self.num_states];
        entry_in[self.initial] = Some(0);
        entry_out[self.initial] = Some(0);
        let mut queue = VecDeque::from([self.initial]);
        let mut seen = vec![false; self.num_states];
        seen[self.initial] = true;
        while let Some(s) = queue.pop_front() {
            let in_vec = entry_in[s].expect("queued states have vectors");
            let out_vec = entry_out[s].expect("queued states have vectors");
            for &ai in by_state.get(&s).map(|v| v.as_slice()).unwrap_or(&[]) {
                let arc = &self.arcs[ai];
                let mut new_in = in_vec;
                for e in &arc.inputs {
                    let bit = 1u64 << input_ix[&e.signal];
                    let cur = new_in & bit != 0;
                    if cur == e.rising {
                        return Err(BmError::PolarityError {
                            arc: ai,
                            signal: self.signals[e.signal].name.clone(),
                        });
                    }
                    new_in ^= bit;
                }
                let mut new_out = out_vec;
                for e in &arc.outputs {
                    let bit = 1u64 << output_ix[&e.signal];
                    let cur = new_out & bit != 0;
                    if cur == e.rising {
                        return Err(BmError::PolarityError {
                            arc: ai,
                            signal: self.signals[e.signal].name.clone(),
                        });
                    }
                    new_out ^= bit;
                }
                match (entry_in[arc.to], entry_out[arc.to]) {
                    (None, None) => {
                        entry_in[arc.to] = Some(new_in);
                        entry_out[arc.to] = Some(new_out);
                    }
                    (Some(i2), Some(o2)) => {
                        if i2 != new_in || o2 != new_out {
                            return Err(BmError::InconsistentEntry { state: arc.to });
                        }
                    }
                    _ => unreachable!("entry vectors set together"),
                }
                if !seen[arc.to] {
                    seen[arc.to] = true;
                    queue.push_back(arc.to);
                }
            }
        }
        if let Some(state) = (0..self.num_states).find(|&s| !seen[s]) {
            return Err(BmError::Unreachable { state });
        }
        Ok(EntryVectors {
            entry_in: entry_in
                .into_iter()
                .map(|v| v.expect("all reachable"))
                .collect(),
            entry_out: entry_out
                .into_iter()
                .map(|v| v.expect("all reachable"))
                .collect(),
        })
    }

    /// Map from signal index to position among the inputs.
    pub fn input_index_map(&self) -> HashMap<usize, usize> {
        self.input_signals()
            .into_iter()
            .enumerate()
            .map(|(i, s)| (s, i))
            .collect()
    }

    /// Map from signal index to position among the outputs.
    pub fn output_index_map(&self) -> HashMap<usize, usize> {
        self.output_signals()
            .into_iter()
            .enumerate()
            .map(|(i, s)| (s, i))
            .collect()
    }

    /// Renders a burst like `a_r+ b_r+`.
    pub fn burst_string(&self, burst: &BTreeSet<Edge>) -> String {
        burst
            .iter()
            .map(|e| {
                format!(
                    "{}{}",
                    self.signals[e.signal].name,
                    if e.rising { "+" } else { "-" }
                )
            })
            .collect::<Vec<_>>()
            .join(" ")
    }
}

impl fmt::Display for BmSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "; Burst-mode machine {}", self.name)?;
        writeln!(
            f,
            "; inputs: {}",
            self.input_signals()
                .iter()
                .map(|&s| self.signals[s].name.clone())
                .collect::<Vec<_>>()
                .join(" ")
        )?;
        writeln!(
            f,
            "; outputs: {}",
            self.output_signals()
                .iter()
                .map(|&s| self.signals[s].name.clone())
                .collect::<Vec<_>>()
                .join(" ")
        )?;
        writeln!(f, "; {} states, initial {}", self.num_states, self.initial)?;
        for arc in &self.arcs {
            writeln!(
                f,
                "{} {} {} | {}",
                arc.from,
                arc.to,
                self.burst_string(&arc.inputs),
                self.burst_string(&arc.outputs)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The sequencer BM spec of Fig. 3 (6 states).
    pub fn sequencer() -> BmSpec {
        let mut s = BmSpec::new("sequencer");
        let pr = s.add_signal("p_r", SignalDir::Input);
        let a1a = s.add_signal("a1_a", SignalDir::Input);
        let a2a = s.add_signal("a2_a", SignalDir::Input);
        let pa = s.add_signal("p_a", SignalDir::Output);
        let a1r = s.add_signal("a1_r", SignalDir::Output);
        let a2r = s.add_signal("a2_r", SignalDir::Output);
        for _ in 0..6 {
            s.add_state();
        }
        s.add_arc(0, 1, &[(pr, true)], &[(a1r, true)]);
        s.add_arc(1, 2, &[(a1a, true)], &[(a1r, false)]);
        s.add_arc(2, 3, &[(a1a, false)], &[(a2r, true)]);
        s.add_arc(3, 4, &[(a2a, true)], &[(a2r, false)]);
        s.add_arc(4, 5, &[(a2a, false)], &[(pa, true)]);
        s.add_arc(5, 0, &[(pr, false)], &[(pa, false)]);
        s
    }

    #[test]
    fn sequencer_validates() {
        let s = sequencer();
        let entry = s.validate().unwrap();
        assert_eq!(entry.entry_in[0], 0);
        assert_eq!(entry.entry_out[0], 0);
        // After p_r+ / a1_r+: input vector has p_r=1; outputs a1_r=1.
        assert_eq!(entry.entry_in[1], 0b001);
        assert_eq!(entry.entry_out[1], 0b010);
    }

    #[test]
    fn empty_input_burst_rejected() {
        let mut s = BmSpec::new("bad");
        let o = s.add_signal("o", SignalDir::Output);
        let s0 = s.add_state();
        s.add_arc(s0, s0, &[], &[(o, true)]);
        assert!(matches!(s.validate(), Err(BmError::EmptyInputBurst { .. })));
    }

    #[test]
    fn wrong_direction_rejected() {
        let mut s = BmSpec::new("bad");
        let i = s.add_signal("i", SignalDir::Input);
        let s0 = s.add_state();
        let s1 = s.add_state();
        s.add_arc(s0, s1, &[(i, true)], &[(i, false)]);
        assert!(matches!(s.validate(), Err(BmError::WrongDirection { .. })));
    }

    #[test]
    fn maximal_set_property_enforced() {
        let mut s = BmSpec::new("bad");
        let a = s.add_signal("a", SignalDir::Input);
        let b = s.add_signal("b", SignalDir::Input);
        let s0 = s.add_state();
        let s1 = s.add_state();
        let s2 = s.add_state();
        // {a+} is a subset of {a+, b+}: the machine could not distinguish.
        s.add_arc(s0, s1, &[(a, true)], &[]);
        s.add_arc(s0, s2, &[(a, true), (b, true)], &[]);
        assert!(matches!(
            s.validate(),
            Err(BmError::MaximalSetViolation { .. })
        ));
    }

    #[test]
    fn distinct_bursts_allowed() {
        let mut s = BmSpec::new("choice");
        let a = s.add_signal("a", SignalDir::Input);
        let b = s.add_signal("b", SignalDir::Input);
        let x = s.add_signal("x", SignalDir::Output);
        let s0 = s.add_state();
        let s1 = s.add_state();
        let s2 = s.add_state();
        s.add_arc(s0, s1, &[(a, true)], &[(x, true)]);
        s.add_arc(s0, s2, &[(b, true)], &[(x, true)]);
        s.add_arc(s1, s0, &[(a, false)], &[(x, false)]);
        s.add_arc(s2, s0, &[(b, false)], &[(x, false)]);
        s.validate().unwrap();
    }

    #[test]
    fn polarity_error_detected() {
        let mut s = BmSpec::new("bad");
        let a = s.add_signal("a", SignalDir::Input);
        let s0 = s.add_state();
        let s1 = s.add_state();
        let s2 = s.add_state();
        s.add_arc(s0, s1, &[(a, true)], &[]);
        s.add_arc(s1, s2, &[(a, true)], &[]); // a is already high
        assert!(matches!(s.validate(), Err(BmError::PolarityError { .. })));
    }

    #[test]
    fn inconsistent_entry_detected() {
        let mut s = BmSpec::new("bad");
        let a = s.add_signal("a", SignalDir::Input);
        let b = s.add_signal("b", SignalDir::Input);
        let s0 = s.add_state();
        let s1 = s.add_state();
        let s2 = s.add_state();
        // Two paths into s2 with different values of b.
        s.add_arc(s0, s1, &[(b, true)], &[]);
        s.add_arc(s0, s2, &[(a, true)], &[]);
        s.add_arc(s1, s2, &[(a, true)], &[]);
        assert!(matches!(
            s.validate(),
            Err(BmError::InconsistentEntry { .. })
        ));
    }

    #[test]
    fn unreachable_state_detected() {
        let mut s = BmSpec::new("bad");
        let a = s.add_signal("a", SignalDir::Input);
        let s0 = s.add_state();
        let s1 = s.add_state();
        let _orphan = s.add_state();
        s.add_arc(s0, s1, &[(a, true)], &[]);
        s.add_arc(s1, s0, &[(a, false)], &[]);
        assert!(matches!(s.validate(), Err(BmError::Unreachable { .. })));
    }

    #[test]
    fn display_contains_bursts() {
        let s = sequencer();
        let text = s.to_string();
        assert!(text.contains("p_r+"));
        assert!(text.contains("a1_r+"));
        assert!(text.contains("6 states"));
    }
}
