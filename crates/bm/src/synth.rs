//! Burst-mode controller synthesis: from a validated specification to
//! hazard-free two-level logic (the Minimalist-equivalent step of the flow).
//!
//! The controller is realized as a Huffman machine: primary inputs plus fed
//! back state variables drive two-level logic computing the primary outputs
//! and the next-state variables. Each specification arc contributes two
//! phases of specified transitions to every function:
//!
//! 1. **input burst** — inputs move from the state's entry vector to the
//!    post-burst vector while the state code is held; outputs and next-state
//!    bits change (monotonically, after the full burst) to their new values;
//! 2. **state race** — the state variables move from `code(s)` to
//!    `code(s')` while inputs are held; every function must hold its new
//!    value throughout the race cube.

use crate::assign::{assign_with, AssignError, Separation, StateAssignment};
use crate::spec::{BmError, BmSpec};
use bmbe_logic::cover::{Cover, Tv};
use bmbe_logic::hfmin::{FunctionSpec, HfminError, MinimizeOptions, MinimizeStats};
use bmbe_par::par_map;
use std::collections::HashMap;
use std::fmt;

/// Minimization mode, mirroring Minimalist's script split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MinimizeMode {
    /// Single-output minimization (Minimalist's speed scripts): each output
    /// minimized independently; duplicates logic, shortens critical paths.
    Speed,
    /// Product terms identical across outputs are shared downstream when
    /// building gates (area-leaning mode).
    Area,
}

/// Errors raised by controller synthesis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthError {
    /// The specification failed validation.
    Spec(BmError),
    /// State assignment failed.
    Assign(AssignError),
    /// Hazard-free minimization failed for a function.
    Hfmin {
        /// The function's name.
        function: String,
        /// The underlying error.
        error: HfminError,
    },
    /// Too many total variables (inputs + state bits) for the cube engine.
    TooManyVariables {
        /// Total variables required.
        needed: usize,
    },
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::Spec(e) => write!(f, "invalid specification: {e}"),
            SynthError::Assign(e) => write!(f, "state assignment failed: {e}"),
            SynthError::Hfmin { function, error } => {
                write!(f, "hazard-free minimization of {function} failed: {error}")
            }
            SynthError::TooManyVariables { needed } => {
                write!(f, "{needed} variables exceed the 64-variable cube space")
            }
        }
    }
}

impl std::error::Error for SynthError {}

impl From<BmError> for SynthError {
    fn from(e: BmError) -> Self {
        SynthError::Spec(e)
    }
}

impl From<AssignError> for SynthError {
    fn from(e: AssignError) -> Self {
        SynthError::Assign(e)
    }
}

/// A synthesized two-level controller.
///
/// Functions are covers over `num_inputs + num_state_bits` variables:
/// variable `i < num_inputs` is primary input `i` (in
/// [`BmSpec::input_signals`] order); variable `num_inputs + j` is state
/// variable `j`, fed back from next-state function `j`.
#[derive(Debug, Clone)]
pub struct Controller {
    /// Machine name.
    pub name: String,
    /// Primary input names.
    pub inputs: Vec<String>,
    /// Primary output names.
    pub outputs: Vec<String>,
    /// Number of state variables.
    pub num_state_bits: usize,
    /// One cover per primary output.
    pub output_covers: Vec<Cover>,
    /// One cover per next-state variable.
    pub next_state_covers: Vec<Cover>,
    /// State codes (indexed by specification state).
    pub assignment: StateAssignment,
    /// Initial primary-input vector (bit `i` = input `i`).
    pub initial_inputs: u64,
    /// Initial primary-output vector.
    pub initial_outputs: u64,
    /// Initial state code.
    pub initial_code: u64,
    /// Whether every covering step was exact.
    pub exact: bool,
    /// Aggregate wall-clock breakdown of the per-function minimizations
    /// (prime generation vs covering), summed across functions; feeds the
    /// flow's per-phase profiler.
    pub minimize_stats: MinimizeStats,
    /// The per-function transition specifications (kept for verification).
    pub function_specs: Vec<FunctionSpec>,
}

impl Controller {
    /// Total number of product terms across all functions.
    pub fn num_products(&self) -> usize {
        self.output_covers
            .iter()
            .chain(&self.next_state_covers)
            .map(Cover::len)
            .sum()
    }

    /// Number of *distinct* product terms (the sharing opportunity counted
    /// by area mode).
    pub fn num_distinct_products(&self) -> usize {
        let mut set = std::collections::HashSet::new();
        for c in self.output_covers.iter().chain(&self.next_state_covers) {
            for cube in c.cubes() {
                set.insert(*cube);
            }
        }
        set.len()
    }

    /// Total literal count.
    pub fn num_literals(&self) -> usize {
        self.output_covers
            .iter()
            .chain(&self.next_state_covers)
            .map(Cover::num_literals)
            .sum()
    }

    /// Total number of logic variables (inputs + state bits).
    pub fn num_vars(&self) -> usize {
        self.inputs.len() + self.num_state_bits
    }

    /// All function covers in order: outputs then next-state bits.
    pub fn all_covers(&self) -> Vec<(&str, &Cover)> {
        let mut v: Vec<(&str, &Cover)> = Vec::new();
        for (name, c) in self.outputs.iter().zip(&self.output_covers) {
            v.push((name.as_str(), c));
        }
        for (j, c) in self.next_state_covers.iter().enumerate() {
            // next-state names are synthesized as y0, y1, ...
            let _ = j;
            v.push(("y", c));
        }
        v
    }

    /// Rewrites every primary input and output name through `f`. Used by
    /// the flow's controller cache to re-instantiate a controller
    /// synthesized under canonical channel names with a component's actual
    /// names; covers, state codes, and function specs are index-based and
    /// untouched.
    pub fn rename_signals<F: Fn(&str) -> String>(&mut self, f: F) {
        for name in self.inputs.iter_mut().chain(self.outputs.iter_mut()) {
            *name = f(name);
        }
    }

    /// Eichelberger-style ternary verification of every specified
    /// transition of every function: during a burst the changing variables
    /// are set to `X`; a static transition must never glitch (never read
    /// `X`), and a dynamic transition must settle at its final value.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn verify_ternary(&self) -> Result<(), String> {
        let n = self.num_vars();
        let covers: Vec<&Cover> = self
            .output_covers
            .iter()
            .chain(&self.next_state_covers)
            .collect();
        for (fi, (spec, cover)) in self.function_specs.iter().zip(&covers).enumerate() {
            for t in spec.transitions() {
                let changing = t.start ^ t.end;
                let mut values: Vec<Tv> = (0..n)
                    .map(|i| {
                        if changing >> i & 1 == 1 {
                            Tv::X
                        } else {
                            Tv::from_bool(t.start >> i & 1 == 1)
                        }
                    })
                    .collect();
                let mid = cover.eval_ternary(&values);
                if t.from == t.to && mid != Tv::from_bool(t.from) {
                    return Err(format!(
                        "function {fi}: static-{} transition {:#x}->{:#x} reads {mid} mid-burst",
                        t.from as u8, t.start, t.end
                    ));
                }
                // Settle at the end point.
                for i in 0..n {
                    values[i] = Tv::from_bool(t.end >> i & 1 == 1);
                }
                let fin = cover.eval_ternary(&values);
                if fin != Tv::from_bool(t.to) {
                    return Err(format!(
                        "function {fi}: transition {:#x}->{:#x} settles at {fin}, expected {}",
                        t.start, t.end, t.to as u8
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Synthesizes a burst-mode specification into a hazard-free two-level
/// controller.
///
/// # Errors
///
/// Fails when the specification is invalid, the state assignment is
/// unsatisfiable, or a function has no hazard-free cover (see
/// [`SynthError`]).
pub fn synthesize(spec: &BmSpec, mode: MinimizeMode) -> Result<Controller, SynthError> {
    synthesize_parallel(spec, mode, 1)
}

/// [`synthesize`] with the per-function minimizations fanned out across up
/// to `threads` workers. The result is bit-identical to the serial path
/// (`threads == 1`): jobs are independent, results are collected in
/// function order, and the first failing function (by index) decides the
/// error.
///
/// # Errors
///
/// See [`synthesize`].
pub fn synthesize_parallel(
    spec: &BmSpec,
    mode: MinimizeMode,
    threads: usize,
) -> Result<Controller, SynthError> {
    synthesize_full(spec, mode, threads, &MinimizeOptions::default())
}

/// [`synthesize_parallel`] with explicit [`MinimizeOptions`]: backend
/// selection and fault injection are taken from `opts` verbatim, while
/// `opts.threads` is *overridden* per function by [`intra_budget`] — the
/// total `threads` budget is split between fanning functions out and
/// fanning the prime-generation worklist of each function across workers,
/// so the two levels never oversubscribe the pool.
///
/// # Errors
///
/// See [`synthesize`]. An injected prime-generation fault propagates as
/// [`SynthError::Hfmin`] without triggering the separation escalation
/// (only genuine [`HfminError::NoHazardFreeCover`] does).
pub fn synthesize_full(
    spec: &BmSpec,
    mode: MinimizeMode,
    threads: usize,
    opts: &MinimizeOptions,
) -> Result<Controller, SynthError> {
    // Try the minimal race-free assignment first; if hazard-free
    // minimization turns out infeasible (the CHASM interaction between
    // encoding and hazard constraints), fall back to the fully separated
    // assignment, which guarantees feasibility.
    match synthesize_with_opts(spec, mode, Separation::Conflicts, threads, opts) {
        Err(SynthError::Hfmin {
            error: HfminError::NoHazardFreeCover { .. },
            ..
        }) => synthesize_with_opts(spec, mode, Separation::AllArcs, threads, opts),
        other => other,
    }
}

/// Synthesizes with an explicit state-separation level (see
/// [`Separation`]); [`synthesize`] escalates automatically.
///
/// # Errors
///
/// See [`SynthError`].
pub fn synthesize_with(
    spec: &BmSpec,
    mode: MinimizeMode,
    separation: Separation,
) -> Result<Controller, SynthError> {
    synthesize_with_threads(spec, mode, separation, 1)
}

/// [`synthesize_with`], fanning per-function minimizations across up to
/// `threads` workers (see [`synthesize_parallel`] for the determinism
/// contract).
///
/// # Errors
///
/// See [`SynthError`].
pub fn synthesize_with_threads(
    spec: &BmSpec,
    mode: MinimizeMode,
    separation: Separation,
    threads: usize,
) -> Result<Controller, SynthError> {
    synthesize_with_opts(spec, mode, separation, threads, &MinimizeOptions::default())
}

/// Splits a worker budget between the two parallelism levels of one
/// controller: `fan` functions minimized concurrently, each allowed
/// `intra` workers for its partitioned prime-generation worklist.
/// `fan * intra <= threads.max(1)` always holds, so composing the levels
/// never oversubscribes the pool; a controller with a single function
/// gets the whole budget *inside* that function.
pub fn intra_budget(threads: usize, num_funcs: usize) -> (usize, usize) {
    let threads = threads.max(1);
    let fan = threads.min(num_funcs.max(1));
    (fan, (threads / fan).max(1))
}

/// [`synthesize_with_threads`] with explicit [`MinimizeOptions`] (see
/// [`synthesize_full`] for how `opts.threads` is overridden).
///
/// # Errors
///
/// See [`SynthError`].
pub fn synthesize_with_opts(
    spec: &BmSpec,
    mode: MinimizeMode,
    separation: Separation,
    threads: usize,
    opts: &MinimizeOptions,
) -> Result<Controller, SynthError> {
    let entry = spec.validate()?;
    let assignment = assign_with(spec, separation)?;
    let input_signals = spec.input_signals();
    let output_signals = spec.output_signals();
    let k = input_signals.len();
    let m = assignment.num_bits;
    let n = k + m;
    if n > 64 {
        return Err(SynthError::TooManyVariables { needed: n });
    }
    let input_ix = spec.input_index_map();
    let output_ix = spec.output_index_map();

    // Build one FunctionSpec per output and per next-state bit.
    let num_funcs = output_signals.len() + m;
    let mut specs: Vec<FunctionSpec> = (0..num_funcs).map(|_| FunctionSpec::new(n)).collect();
    let code = |s: usize| assignment.codes[s] << k;

    // Stability of the initial state at its entry point.
    {
        let a0 = entry.entry_in[spec.initial()] | code(spec.initial());
        for (oi, &sig) in output_signals.iter().enumerate() {
            let v = entry.entry_out[spec.initial()] >> output_ix[&sig] & 1 == 1;
            specs[oi].add_static(a0, a0, v);
        }
        for j in 0..m {
            let v = assignment.codes[spec.initial()] >> j & 1 == 1;
            specs[output_signals.len() + j].add_static(a0, a0, v);
        }
    }

    for arc in spec.arcs() {
        let mut post_in = entry.entry_in[arc.from];
        for e in &arc.inputs {
            post_in ^= 1u64 << input_ix[&e.signal];
        }
        let a = entry.entry_in[arc.from] | code(arc.from);
        let b = post_in | code(arc.from);
        let c = post_in | code(arc.to);
        let out_change: HashMap<usize, ()> = arc.outputs.iter().map(|e| (e.signal, ())).collect();
        for (oi, &sig) in output_signals.iter().enumerate() {
            let old = entry.entry_out[arc.from] >> output_ix[&sig] & 1 == 1;
            let new = old ^ out_change.contains_key(&sig);
            specs[oi].add_transition(bmbe_logic::hfmin::SpecTransition {
                start: a,
                end: b,
                from: old,
                to: new,
            });
            if b != c {
                specs[oi].add_static(b, c, new);
            }
        }
        for j in 0..m {
            let old = assignment.codes[arc.from] >> j & 1 == 1;
            let new = assignment.codes[arc.to] >> j & 1 == 1;
            specs[output_signals.len() + j].add_transition(bmbe_logic::hfmin::SpecTransition {
                start: a,
                end: b,
                from: old,
                to: new,
            });
            if b != c {
                specs[output_signals.len() + j].add_static(b, c, new);
            }
        }
    }

    // Minimize each function, fanning the independent per-output jobs
    // across workers. Results come back in function order and the first
    // failing index wins, so the outcome is bit-identical to a serial loop.
    let function_name = |fi: usize| {
        if fi < output_signals.len() {
            spec.signals()[output_signals[fi]].name.clone()
        } else {
            format!("y{}", fi - output_signals.len())
        }
    };
    let (fan, intra) = intra_budget(threads, num_funcs);
    let job_opts = MinimizeOptions {
        threads: intra,
        ..*opts
    };
    // Workers parent their spans on the dispatching span, so the trace's
    // span tree is independent of the worker-thread count.
    let fanout_parent = bmbe_obs::current_span();
    let results: Vec<Result<bmbe_logic::hfmin::HfminResult, SynthError>> = par_map(
        &specs,
        fan,
        |fi, fspec| {
            let _g = bmbe_obs::span_with_parent!("hfmin.job", "hfmin", fanout_parent);
            let name = function_name(fi);
            let result = fspec
                .minimize_opts(&job_opts)
                .map_err(|error| SynthError::Hfmin {
                    function: name.clone(),
                    error,
                })?;
            if let Err(e) = fspec.verify_cover(&result.cover) {
                panic!(
                "internal: minimizer returned a bad cover for {name}: {e}\n                 spec transitions: {:?}\ncover: {}",
                fspec.transitions(),
                result.cover
            );
            }
            Ok(result)
        },
    );
    let mut covers: Vec<Cover> = Vec::with_capacity(num_funcs);
    let mut exact = true;
    let mut minimize_stats = MinimizeStats::default();
    for result in results {
        let result = result?;
        exact &= result.exact;
        minimize_stats.accumulate(&result.stats);
        covers.push(result.cover);
    }
    // Area mode currently shares identical products downstream; the covers
    // themselves are the same (see DESIGN.md, substitution notes).
    let _ = mode;

    let (output_covers, next_state_covers) = {
        let mut it = covers.into_iter();
        let o: Vec<Cover> = (&mut it).take(output_signals.len()).collect();
        let s: Vec<Cover> = it.collect();
        (o, s)
    };

    let initial_code = assignment.codes[spec.initial()];
    Ok(Controller {
        name: spec.name().to_string(),
        inputs: input_signals
            .iter()
            .map(|&s| spec.signals()[s].name.clone())
            .collect(),
        outputs: output_signals
            .iter()
            .map(|&s| spec.signals()[s].name.clone())
            .collect(),
        num_state_bits: m,
        output_covers,
        next_state_covers,
        assignment,
        initial_inputs: entry.entry_in[spec.initial()],
        initial_outputs: entry.entry_out[spec.initial()],
        initial_code,
        exact,
        minimize_stats,
        function_specs: specs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SignalDir;

    fn sequencer() -> BmSpec {
        let mut s = BmSpec::new("sequencer");
        let pr = s.add_signal("p_r", SignalDir::Input);
        let a1a = s.add_signal("a1_a", SignalDir::Input);
        let a2a = s.add_signal("a2_a", SignalDir::Input);
        let pa = s.add_signal("p_a", SignalDir::Output);
        let a1r = s.add_signal("a1_r", SignalDir::Output);
        let a2r = s.add_signal("a2_r", SignalDir::Output);
        for _ in 0..6 {
            s.add_state();
        }
        s.add_arc(0, 1, &[(pr, true)], &[(a1r, true)]);
        s.add_arc(1, 2, &[(a1a, true)], &[(a1r, false)]);
        s.add_arc(2, 3, &[(a1a, false)], &[(a2r, true)]);
        s.add_arc(3, 4, &[(a2a, true)], &[(a2r, false)]);
        s.add_arc(4, 5, &[(a2a, false)], &[(pa, true)]);
        s.add_arc(5, 0, &[(pr, false)], &[(pa, false)]);
        s
    }

    /// The call module of Fig. 3 (7 states).
    fn call_module() -> BmSpec {
        let mut s = BmSpec::new("call");
        let a1r = s.add_signal("a1_r", SignalDir::Input);
        let a2r = s.add_signal("a2_r", SignalDir::Input);
        let ba = s.add_signal("b_a", SignalDir::Input);
        let a1a = s.add_signal("a1_a", SignalDir::Output);
        let a2a = s.add_signal("a2_a", SignalDir::Output);
        let br = s.add_signal("b_r", SignalDir::Output);
        for _ in 0..7 {
            s.add_state();
        }
        s.add_arc(0, 1, &[(a1r, true)], &[(br, true)]);
        s.add_arc(1, 2, &[(ba, true)], &[(br, false)]);
        s.add_arc(2, 3, &[(ba, false)], &[(a1a, true)]);
        s.add_arc(3, 0, &[(a1r, false)], &[(a1a, false)]);
        s.add_arc(0, 4, &[(a2r, true)], &[(br, true)]);
        s.add_arc(4, 5, &[(ba, true)], &[(br, false)]);
        s.add_arc(5, 6, &[(ba, false)], &[(a2a, true)]);
        s.add_arc(6, 0, &[(a2r, false)], &[(a2a, false)]);
        s
    }

    #[test]
    fn sequencer_synthesizes_hazard_free() {
        let ctrl = synthesize(&sequencer(), MinimizeMode::Speed).unwrap();
        assert_eq!(ctrl.inputs.len(), 3);
        assert_eq!(ctrl.outputs.len(), 3);
        assert!(ctrl.num_state_bits >= 3);
        ctrl.verify_ternary().unwrap();
        assert!(ctrl.num_products() > 0);
    }

    #[test]
    fn call_module_synthesizes_hazard_free() {
        let ctrl = synthesize(&call_module(), MinimizeMode::Speed).unwrap();
        ctrl.verify_ternary().unwrap();
    }

    #[test]
    fn passivator_synthesizes_with_no_state_bits() {
        // Two states -> 1 bit; but the passivator's two states actually need
        // a state variable since inputs alone distinguish them... they do:
        // (a_r, b_r) values differ; state minimization would drop to 1 bit
        // anyway. Just check it synthesizes and simulates.
        let mut s = BmSpec::new("passivator");
        let ar = s.add_signal("a_r", SignalDir::Input);
        let br = s.add_signal("b_r", SignalDir::Input);
        let aa = s.add_signal("a_a", SignalDir::Output);
        let ba = s.add_signal("b_a", SignalDir::Output);
        let s0 = s.add_state();
        let s1 = s.add_state();
        s.add_arc(s0, s1, &[(ar, true), (br, true)], &[(aa, true), (ba, true)]);
        s.add_arc(
            s1,
            s0,
            &[(ar, false), (br, false)],
            &[(aa, false), (ba, false)],
        );
        let ctrl = synthesize(&s, MinimizeMode::Speed).unwrap();
        ctrl.verify_ternary().unwrap();
    }

    #[test]
    fn functional_simulation_follows_spec() {
        // Drive the synthesized sequencer through a complete cycle by
        // two-valued evaluation with state feedback.
        let spec = sequencer();
        let ctrl = synthesize(&spec, MinimizeMode::Speed).unwrap();
        let k = ctrl.inputs.len();
        let eval_all = |inputs: u64, code: u64| -> (u64, u64) {
            let point = inputs | code << k;
            let out = ctrl
                .output_covers
                .iter()
                .enumerate()
                .fold(0u64, |acc, (i, c)| acc | (c.eval(point) as u64) << i);
            let next = ctrl
                .next_state_covers
                .iter()
                .enumerate()
                .fold(0u64, |acc, (i, c)| acc | (c.eval(point) as u64) << i);
            (out, next)
        };
        let mut code = ctrl.initial_code;
        let mut inputs = ctrl.initial_inputs;
        // initial stability
        let (out, next) = eval_all(inputs, code);
        assert_eq!(out, ctrl.initial_outputs);
        assert_eq!(next, code);
        // p_r+ (input 0): expect a1_r+ (output index of a1_r).
        inputs ^= 1 << 0;
        let (out, next) = eval_all(inputs, code);
        let a1r_ix = ctrl.outputs.iter().position(|n| n == "a1_r").unwrap();
        assert_eq!(out >> a1r_ix & 1, 1, "a1_r must rise after p_r+");
        // commit state, then a1_a+ -> a1_r-
        code = next;
        let (out2, next2) = eval_all(inputs, code);
        assert_eq!(out2, out, "outputs stable after state settles");
        assert_eq!(next2, code, "state stable");
        inputs ^= 1 << 1; // a1_a+
        let (out3, _) = eval_all(inputs, code);
        assert_eq!(out3 >> a1r_ix & 1, 0, "a1_r must fall after a1_a+");
    }

    #[test]
    fn intra_budget_never_oversubscribes() {
        for threads in 0..=9 {
            for num_funcs in 0..=9 {
                let (fan, intra) = intra_budget(threads, num_funcs);
                assert!(fan >= 1 && intra >= 1);
                assert!(
                    fan * intra <= threads.max(1),
                    "threads={threads} funcs={num_funcs}: fan={fan} intra={intra}"
                );
            }
        }
        // One huge function gets the whole budget inside the function; many
        // functions get the budget as fan-out.
        assert_eq!(intra_budget(4, 1), (1, 4));
        assert_eq!(intra_budget(4, 6), (4, 1));
        assert_eq!(intra_budget(4, 2), (2, 2));
        assert_eq!(intra_budget(1, 8), (1, 1));
    }

    #[test]
    fn backends_agree_on_small_controllers() {
        use bmbe_logic::hfmin::MinimizeBackend;
        for spec in [sequencer(), call_module()] {
            let exact = synthesize_full(
                &spec,
                MinimizeMode::Speed,
                1,
                &MinimizeOptions {
                    backend: MinimizeBackend::ExactPrimes,
                    ..MinimizeOptions::default()
                },
            )
            .unwrap();
            let cofactor = synthesize_full(
                &spec,
                MinimizeMode::Speed,
                1,
                &MinimizeOptions {
                    backend: MinimizeBackend::CubeCofactor,
                    ..MinimizeOptions::default()
                },
            )
            .unwrap();
            cofactor.verify_ternary().unwrap();
            assert!(!cofactor.exact, "cofactor covers are never provably minimum");
            assert!(
                cofactor.num_products() >= exact.num_products(),
                "{}: cofactor beat the exact minimum",
                spec.name()
            );
            assert!(cofactor.minimize_stats.cofactor_funcs > 0);
            assert_eq!(cofactor.minimize_stats.exact_funcs, 0);
        }
    }

    #[test]
    fn too_many_variables_detected() {
        let mut s = BmSpec::new("wide");
        let mut ins = Vec::new();
        for i in 0..63 {
            ins.push(s.add_signal(format!("i{i}"), SignalDir::Input));
        }
        let o = s.add_signal("o", SignalDir::Output);
        let s0 = s.add_state();
        let s1 = s.add_state();
        // A burst over all 63 inputs; with >=1 state bits the space exceeds
        // 64 variables only if the assignment needs >1 bit; craft 4 states.
        let s2 = s.add_state();
        let s3 = s.add_state();
        s.add_arc(s0, s1, &[(ins[0], true)], &[(o, true)]);
        s.add_arc(s1, s2, &[(ins[0], false)], &[]);
        s.add_arc(s2, s3, &[(ins[1], true)], &[(o, false)]);
        s.add_arc(s3, s0, &[(ins[1], false)], &[]);
        // 63 inputs + >=2 state bits > 64.
        match synthesize(&s, MinimizeMode::Speed) {
            Err(SynthError::TooManyVariables { .. }) => {}
            other => panic!("expected TooManyVariables, got {other:?}"),
        }
    }
}
