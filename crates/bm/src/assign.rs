//! Critical-race-free state assignment for burst-mode machines.
//!
//! Follows the CHASM-style approach of Minimalist: collect Tracey partition
//! constraints (*dichotomies*) and cover them with a small number of state
//! variables. In a burst-mode Huffman machine the state variables race from
//! `code(s)` to `code(s')` while the inputs sit at the post-burst vector, so
//! two transitions with the same post-burst input vector and different
//! destinations must have disjoint state-transition cubes — i.e. some state
//! variable takes value 0 on both endpoint codes of one transition and 1 on
//! both endpoint codes of the other (Tracey's condition). Distinctness of
//! all state codes is enforced with singleton dichotomies.

use crate::spec::{BmError, BmSpec};
use std::collections::BTreeSet;
use std::fmt;

/// A partition constraint: some state bit must separate `zeros` from `ones`
/// (in either orientation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dichotomy {
    /// States that must share one value.
    pub left: BTreeSet<usize>,
    /// States that must all take the other value.
    pub right: BTreeSet<usize>,
}

/// Errors raised by state assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AssignError {
    /// Two conflicting transitions share a state, which makes the Tracey
    /// constraint unsatisfiable; valid burst-mode specs never produce this.
    UnsatisfiableDichotomy {
        /// The overlapping states.
        states: Vec<usize>,
    },
    /// The underlying specification failed validation.
    Spec(BmError),
}

impl fmt::Display for AssignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssignError::UnsatisfiableDichotomy { states } => {
                write!(f, "unsatisfiable dichotomy over states {states:?}")
            }
            AssignError::Spec(e) => write!(f, "invalid specification: {e}"),
        }
    }
}

impl std::error::Error for AssignError {}

impl From<BmError> for AssignError {
    fn from(e: BmError) -> Self {
        AssignError::Spec(e)
    }
}

/// A completed state assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateAssignment {
    /// Number of state variables.
    pub num_bits: usize,
    /// `codes[s]` is the code of state `s`, bit `i` = state variable `i`.
    pub codes: Vec<u64>,
}

impl StateAssignment {
    /// Verifies the Tracey condition against a list of dichotomies.
    pub fn satisfies(&self, d: &Dichotomy) -> bool {
        (0..self.num_bits).any(|bit| {
            let val = |s: usize| self.codes[s] >> bit & 1;
            let l0 = d.left.iter().all(|&s| val(s) == 0);
            let r1 = d.right.iter().all(|&s| val(s) == 1);
            let l1 = d.left.iter().all(|&s| val(s) == 1);
            let r0 = d.right.iter().all(|&s| val(s) == 0);
            (l0 && r1) || (l1 && r0)
        })
    }
}

/// How aggressively state codes separate transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Separation {
    /// Only Tracey-conflicting transition pairs (same post-burst input
    /// vector, different destinations) are separated — minimal codes,
    /// race-free.
    Conflicts,
    /// Every pair of arcs with disjoint state sets is separated. This is
    /// the hazard-aware fallback (CHASM's concern): it guarantees that no
    /// required cube of one arc can illegally intersect a privileged cube
    /// of another, so hazard-free covers always exist.
    AllArcs,
}

/// Collects the Tracey dichotomies of a specification.
///
/// # Errors
///
/// Propagates validation errors and reports unsatisfiable (overlapping)
/// dichotomies.
pub fn dichotomies(spec: &BmSpec) -> Result<Vec<Dichotomy>, AssignError> {
    dichotomies_with(spec, Separation::Conflicts)
}

/// Collects dichotomies at the chosen separation level.
///
/// # Errors
///
/// See [`dichotomies`].
pub fn dichotomies_with(
    spec: &BmSpec,
    separation: Separation,
) -> Result<Vec<Dichotomy>, AssignError> {
    let entry = spec.validate()?;
    let input_ix = spec.input_index_map();
    // Post-burst input vector of each arc.
    let post: Vec<u64> = spec
        .arcs()
        .iter()
        .map(|arc| {
            let mut v = entry.entry_in[arc.from];
            for e in &arc.inputs {
                v ^= 1u64 << input_ix[&e.signal];
            }
            v
        })
        .collect();
    let mut out: Vec<Dichotomy> = Vec::new();
    let arcs = spec.arcs();
    for i in 0..arcs.len() {
        for j in i + 1..arcs.len() {
            let (a, b) = (&arcs[i], &arcs[j]);
            let left: BTreeSet<usize> = [a.from, a.to].into_iter().collect();
            let right: BTreeSet<usize> = [b.from, b.to].into_iter().collect();
            match separation {
                Separation::Conflicts => {
                    if a.to == b.to || post[i] != post[j] {
                        continue;
                    }
                    if !left.is_disjoint(&right) {
                        return Err(AssignError::UnsatisfiableDichotomy {
                            states: left.intersection(&right).copied().collect(),
                        });
                    }
                }
                Separation::AllArcs => {
                    if !left.is_disjoint(&right) {
                        continue;
                    }
                }
            }
            out.push(Dichotomy { left, right });
        }
    }
    // Distinct codes for all state pairs.
    for s in 0..spec.num_states() {
        for t in s + 1..spec.num_states() {
            out.push(Dichotomy {
                left: BTreeSet::from([s]),
                right: BTreeSet::from([t]),
            });
        }
    }
    Ok(out)
}

/// Computes a critical-race-free state assignment by greedy dichotomy
/// covering: each state variable is grown to satisfy as many outstanding
/// dichotomies as it consistently can.
///
/// # Errors
///
/// See [`dichotomies`].
pub fn assign(spec: &BmSpec) -> Result<StateAssignment, AssignError> {
    assign_with(spec, Separation::Conflicts)
}

/// Computes an assignment at the chosen separation level.
///
/// # Errors
///
/// See [`dichotomies`].
pub fn assign_with(spec: &BmSpec, separation: Separation) -> Result<StateAssignment, AssignError> {
    let n = spec.num_states();
    if n <= 1 {
        return Ok(StateAssignment {
            num_bits: 0,
            codes: vec![0; n],
        });
    }
    let all = dichotomies_with(spec, separation)?;
    let mut unsat: Vec<&Dichotomy> = all.iter().collect();
    let mut columns: Vec<Vec<Option<bool>>> = Vec::new();
    while !unsat.is_empty() {
        // Seed a new column with the first outstanding dichotomy.
        let mut col: Vec<Option<bool>> = vec![None; n];
        let seed = unsat[0];
        for &s in &seed.left {
            col[s] = Some(false);
        }
        for &s in &seed.right {
            col[s] = Some(true);
        }
        // Fold in as many other dichotomies as fit.
        let mut satisfied_now: Vec<usize> = vec![0];
        for (di, d) in unsat.iter().enumerate().skip(1) {
            if let Some(newcol) = try_fold(&col, d) {
                col = newcol;
                satisfied_now.push(di);
            }
        }
        // Complete unassigned states with 0.
        let complete: Vec<bool> = col.iter().map(|v| v.unwrap_or(false)).collect();
        columns.push(complete.iter().map(|&b| Some(b)).collect());
        let keep: Vec<&Dichotomy> = unsat
            .iter()
            .enumerate()
            .filter(|(i, _)| !satisfied_now.contains(i))
            .map(|(_, d)| *d)
            .collect();
        unsat = keep;
        // Drop dichotomies now satisfied by the completed column (zero
        // completion may have satisfied extra ones).
        let codes_partial = StateAssignment {
            num_bits: columns.len(),
            codes: (0..n)
                .map(|s| {
                    columns.iter().enumerate().fold(0u64, |acc, (bit, c)| {
                        acc | ((c[s] == Some(true)) as u64) << bit
                    })
                })
                .collect(),
        };
        unsat.retain(|d| !codes_partial.satisfies(d));
    }
    let codes: Vec<u64> = (0..n)
        .map(|s| {
            columns.iter().enumerate().fold(0u64, |acc, (bit, c)| {
                acc | ((c[s] == Some(true)) as u64) << bit
            })
        })
        .collect();
    let assignment = StateAssignment {
        num_bits: columns.len(),
        codes,
    };
    debug_assert!(all.iter().all(|d| assignment.satisfies(d)));
    Ok(assignment)
}

/// Attempts to merge dichotomy `d` into a partial column; returns the
/// extended column on success.
fn try_fold(col: &[Option<bool>], d: &Dichotomy) -> Option<Vec<Option<bool>>> {
    for orientation in [false, true] {
        let mut c = col.to_vec();
        let mut ok = true;
        for &s in &d.left {
            match c[s] {
                None => c[s] = Some(orientation),
                Some(v) if v == orientation => {}
                _ => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            for &s in &d.right {
                match c[s] {
                    None => c[s] = Some(!orientation),
                    Some(v) if v == !orientation => {}
                    _ => {
                        ok = false;
                        break;
                    }
                }
            }
        }
        if ok {
            return Some(c);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SignalDir;

    fn sequencer() -> BmSpec {
        let mut s = BmSpec::new("sequencer");
        let pr = s.add_signal("p_r", SignalDir::Input);
        let a1a = s.add_signal("a1_a", SignalDir::Input);
        let a2a = s.add_signal("a2_a", SignalDir::Input);
        let pa = s.add_signal("p_a", SignalDir::Output);
        let a1r = s.add_signal("a1_r", SignalDir::Output);
        let a2r = s.add_signal("a2_r", SignalDir::Output);
        for _ in 0..6 {
            s.add_state();
        }
        s.add_arc(0, 1, &[(pr, true)], &[(a1r, true)]);
        s.add_arc(1, 2, &[(a1a, true)], &[(a1r, false)]);
        s.add_arc(2, 3, &[(a1a, false)], &[(a2r, true)]);
        s.add_arc(3, 4, &[(a2a, true)], &[(a2r, false)]);
        s.add_arc(4, 5, &[(a2a, false)], &[(pa, true)]);
        s.add_arc(5, 0, &[(pr, false)], &[(pa, false)]);
        s
    }

    #[test]
    fn sequencer_assignment_is_race_free() {
        let spec = sequencer();
        let a = assign(&spec).unwrap();
        assert_eq!(a.codes.len(), 6);
        // all codes distinct
        let mut codes = a.codes.clone();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), 6);
        for d in dichotomies(&spec).unwrap() {
            assert!(a.satisfies(&d));
        }
        // 6 states need at least 3 bits.
        assert!(a.num_bits >= 3);
    }

    #[test]
    fn single_state_machine_needs_no_bits() {
        let mut s = BmSpec::new("one");
        let a = s.add_signal("a", SignalDir::Input);
        let x = s.add_signal("x", SignalDir::Output);
        let s0 = s.add_state();
        let s1 = s.add_state();
        s.add_arc(s0, s1, &[(a, true)], &[(x, true)]);
        s.add_arc(s1, s0, &[(a, false)], &[(x, false)]);
        let asg = assign(&s).unwrap();
        assert_eq!(asg.codes.len(), 2);
        assert_ne!(asg.codes[0], asg.codes[1]);
    }

    #[test]
    fn zero_or_one_state() {
        let mut s = BmSpec::new("trivial");
        s.add_state();
        let asg = assign(&s);
        // one state: no bits at all (validation of an arc-free, 1-state
        // machine passes: the state is initial hence reachable).
        let asg = asg.unwrap();
        assert_eq!(asg.num_bits, 0);
    }

    #[test]
    fn dichotomy_satisfaction_logic() {
        let a = StateAssignment {
            num_bits: 2,
            codes: vec![0b00, 0b01, 0b10, 0b11],
        };
        let d_ok = Dichotomy {
            left: BTreeSet::from([0, 1]),  // bit1 = 0
            right: BTreeSet::from([2, 3]), // bit1 = 1
        };
        assert!(a.satisfies(&d_ok));
        let d_bad = Dichotomy {
            left: BTreeSet::from([0, 3]),
            right: BTreeSet::from([1, 2]),
        };
        assert!(!a.satisfies(&d_bad));
    }

    #[test]
    fn conflicting_transitions_get_separated() {
        // A choice state: from s0, input a+ goes to s1, input b+ goes to s2;
        // both return. Transitions s1->s0 (on a-) and s2->s0 (on b-) have
        // different post-burst vectors, so no transition dichotomy between
        // them; but pairwise distinctness still applies.
        let mut s = BmSpec::new("choice");
        let a = s.add_signal("a", SignalDir::Input);
        let b = s.add_signal("b", SignalDir::Input);
        let x = s.add_signal("x", SignalDir::Output);
        let s0 = s.add_state();
        let s1 = s.add_state();
        let s2 = s.add_state();
        s.add_arc(s0, s1, &[(a, true)], &[(x, true)]);
        s.add_arc(s0, s2, &[(b, true)], &[(x, true)]);
        s.add_arc(s1, s0, &[(a, false)], &[(x, false)]);
        s.add_arc(s2, s0, &[(b, false)], &[(x, false)]);
        let asg = assign(&s).unwrap();
        let mut codes = asg.codes.clone();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), 3);
    }
}
