//! Conservative state minimization for burst-mode specifications.
//!
//! Two states may merge when they enter with identical signal-value vectors
//! and their outgoing arcs never conflict: arcs with equal input bursts must
//! agree on output bursts and lead to states that merge as well (closure),
//! and no arc's input burst may strictly contain another's (that would break
//! the maximal set property of the merged state). This is a safe subset of
//! Minimalist's compatible-based reduction.

use crate::spec::{BmError, BmSpec};
use std::collections::HashMap;

/// Result of a state-minimization run.
#[derive(Debug, Clone)]
pub struct StateMinResult {
    /// The reduced specification.
    pub spec: BmSpec,
    /// Mapping from old state index to new state index.
    pub state_map: Vec<usize>,
}

/// Minimizes the number of states of a validated specification.
///
/// # Errors
///
/// Propagates validation errors from the input specification; the returned
/// specification is re-validated before being returned.
pub fn minimize_states(spec: &BmSpec) -> Result<StateMinResult, BmError> {
    let entry = spec.validate()?;
    let n = spec.num_states();
    // Pairwise compatibility with iterative refinement.
    let mut compatible = vec![vec![true; n]; n];
    for s in 0..n {
        for t in 0..n {
            if entry.entry_in[s] != entry.entry_in[t] || entry.entry_out[s] != entry.entry_out[t] {
                compatible[s][t] = false;
            }
        }
    }
    let arcs_from = |s: usize| spec.arcs().iter().filter(move |a| a.from == s);
    let mut changed = true;
    while changed {
        changed = false;
        for s in 0..n {
            for t in s + 1..n {
                if !compatible[s][t] {
                    continue;
                }
                let mut ok = true;
                'outer: for a in arcs_from(s) {
                    for b in arcs_from(t) {
                        if a.inputs == b.inputs {
                            if a.outputs != b.outputs
                                || !compatible[a.to.min(b.to)][a.to.max(b.to)]
                                || !compatible[a.to.max(b.to)][a.to.min(b.to)]
                            {
                                ok = false;
                                break 'outer;
                            }
                        } else if a.inputs.is_subset(&b.inputs) || b.inputs.is_subset(&a.inputs) {
                            ok = false;
                            break 'outer;
                        }
                    }
                }
                if !ok {
                    compatible[s][t] = false;
                    compatible[t][s] = false;
                    changed = true;
                }
            }
        }
    }
    // Greedy clique merging via class lists: add each state to the first
    // class all of whose members it is compatible with.
    let mut classes: Vec<Vec<usize>> = Vec::new();
    let mut class_of = vec![usize::MAX; n];
    for s in 0..n {
        let mut placed = false;
        for (ci, class) in classes.iter_mut().enumerate() {
            if class
                .iter()
                .all(|&t| compatible[s.min(t)][s.max(t)] && compatible[s.max(t)][s.min(t)])
            {
                class.push(s);
                class_of[s] = ci;
                placed = true;
                break;
            }
        }
        if !placed {
            class_of[s] = classes.len();
            classes.push(vec![s]);
        }
    }
    // Rebuild the specification.
    let mut reduced = BmSpec::new(spec.name());
    for sig in spec.signals() {
        reduced.add_signal(sig.name.clone(), sig.dir);
    }
    for _ in 0..classes.len() {
        reduced.add_state();
    }
    reduced.set_initial(class_of[spec.initial()]);
    let mut seen_arcs: HashMap<(usize, usize, String), ()> = HashMap::new();
    for arc in spec.arcs() {
        let from = class_of[arc.from];
        let to = class_of[arc.to];
        let key = (from, to, format!("{:?}", arc.inputs));
        if seen_arcs.insert(key, ()).is_some() {
            continue; // identical merged arc
        }
        let inputs: Vec<(usize, bool)> = arc.inputs.iter().map(|e| (e.signal, e.rising)).collect();
        let outputs: Vec<(usize, bool)> =
            arc.outputs.iter().map(|e| (e.signal, e.rising)).collect();
        reduced.add_arc(from, to, &inputs, &outputs);
    }
    reduced.validate()?;
    Ok(StateMinResult {
        spec: reduced,
        state_map: class_of,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SignalDir;

    #[test]
    fn duplicate_tail_states_merge() {
        // Two parallel branches with identical suffix behaviour: after the
        // branch-specific burst, both do x+ then return on the same burst.
        let mut s = BmSpec::new("dup");
        let a = s.add_signal("a", SignalDir::Input);
        let x = s.add_signal("x", SignalDir::Output);
        let s0 = s.add_state();
        let s1 = s.add_state();
        let s2 = s.add_state();
        let s3 = s.add_state();
        // s1 and s3 behave identically (entered with a=1, x=1; return on a-).
        s.add_arc(s0, s1, &[(a, true)], &[(x, true)]);
        s.add_arc(s1, s2, &[(a, false)], &[(x, false)]);
        s.add_arc(s2, s3, &[(a, true)], &[(x, true)]);
        s.add_arc(s3, s0, &[(a, false)], &[(x, false)]);
        let result = minimize_states(&s).unwrap();
        // s0 == s2 and s1 == s3 -> 2 states.
        assert_eq!(result.spec.num_states(), 2);
        result.spec.validate().unwrap();
    }

    #[test]
    fn distinct_behaviour_not_merged() {
        let mut s = BmSpec::new("seq2");
        let p = s.add_signal("p", SignalDir::Input);
        let x = s.add_signal("x", SignalDir::Output);
        let y = s.add_signal("y", SignalDir::Output);
        let s0 = s.add_state();
        let s1 = s.add_state();
        let s2 = s.add_state();
        let s3 = s.add_state();
        s.add_arc(s0, s1, &[(p, true)], &[(x, true)]);
        s.add_arc(s1, s2, &[(p, false)], &[(x, false), (y, true)]);
        s.add_arc(s2, s3, &[(p, true)], &[(y, false)]);
        s.add_arc(s3, s0, &[(p, false)], &[]);
        let result = minimize_states(&s).unwrap();
        // Entry vectors all differ in outputs; nothing merges.
        assert_eq!(result.spec.num_states(), 4);
    }

    #[test]
    fn state_map_is_consistent() {
        let mut s = BmSpec::new("loop");
        let a = s.add_signal("a", SignalDir::Input);
        let x = s.add_signal("x", SignalDir::Output);
        let s0 = s.add_state();
        let s1 = s.add_state();
        s.add_arc(s0, s1, &[(a, true)], &[(x, true)]);
        s.add_arc(s1, s0, &[(a, false)], &[(x, false)]);
        let result = minimize_states(&s).unwrap();
        assert_eq!(result.state_map.len(), 2);
        assert_eq!(result.spec.num_states(), 2);
        assert_eq!(result.state_map[s0], result.spec.initial());
        let _ = s1;
    }
}
