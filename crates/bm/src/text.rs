//! Textual interchange for Burst-Mode specifications: a `.bms`-style format
//! (following the Minimalist tool family) and Graphviz output.
//!
//! ```text
//! name sequencer
//! input p_r 0
//! input a1_a 0
//! output a1_r 0
//! 0 1 p_r+ | a1_r+
//! 1 0 a1_a+ | a1_r-
//! ```

use crate::spec::{BmError, BmSpec, SignalDir};
use std::fmt;

/// Errors raised while parsing the text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BmsParseError {
    /// A malformed line, with its (1-based) number.
    BadLine {
        /// Line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The parsed machine failed validation.
    Invalid(BmError),
}

impl fmt::Display for BmsParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BmsParseError::BadLine { line, message } => {
                write!(f, "bms parse error at line {line}: {message}")
            }
            BmsParseError::Invalid(e) => write!(f, "parsed machine is invalid: {e}"),
        }
    }
}

impl std::error::Error for BmsParseError {}

impl From<BmError> for BmsParseError {
    fn from(e: BmError) -> Self {
        BmsParseError::Invalid(e)
    }
}

/// Serializes a specification to the `.bms`-style text format.
pub fn to_bms(spec: &BmSpec) -> String {
    let mut out = String::new();
    out.push_str(&format!("name {}\n", spec.name()));
    for sig in spec.signals() {
        let kind = match sig.dir {
            SignalDir::Input => "input",
            SignalDir::Output => "output",
        };
        out.push_str(&format!("{kind} {} 0\n", sig.name));
    }
    for arc in spec.arcs() {
        out.push_str(&format!(
            "{} {} {} | {}\n",
            arc.from,
            arc.to,
            spec.burst_string(&arc.inputs),
            spec.burst_string(&arc.outputs)
        ));
    }
    out
}

/// Parses the `.bms`-style text format produced by [`to_bms`]; the result
/// is validated.
///
/// # Errors
///
/// See [`BmsParseError`].
pub fn from_bms(text: &str) -> Result<BmSpec, BmsParseError> {
    let mut spec = BmSpec::new("machine");
    let mut max_state = 0usize;
    let mut arcs: Vec<(usize, usize, Vec<(usize, bool)>, Vec<(usize, bool)>)> = Vec::new();
    let mut names: Vec<String> = Vec::new();
    for (ln, raw) in text.lines().enumerate() {
        let line_no = ln + 1;
        let line = raw.split(';').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let head = parts.next().expect("nonempty line");
        match head {
            "name" => {
                let n = parts.next().ok_or_else(|| BmsParseError::BadLine {
                    line: line_no,
                    message: "missing machine name".into(),
                })?;
                spec = BmSpec::new(n);
                // carry over any signals declared before the name line
                for (i, s) in names.iter().enumerate() {
                    let _ = (i, s);
                }
            }
            "input" | "output" => {
                let n = parts.next().ok_or_else(|| BmsParseError::BadLine {
                    line: line_no,
                    message: "missing signal name".into(),
                })?;
                let dir = if head == "input" {
                    SignalDir::Input
                } else {
                    SignalDir::Output
                };
                spec.add_signal(n, dir);
                names.push(n.to_string());
            }
            _ => {
                // arc: FROM TO in-burst | out-burst
                let from: usize = head.parse().map_err(|_| BmsParseError::BadLine {
                    line: line_no,
                    message: format!("bad source state {head}"),
                })?;
                let to_text = parts.next().ok_or_else(|| BmsParseError::BadLine {
                    line: line_no,
                    message: "missing destination state".into(),
                })?;
                let to: usize = to_text.parse().map_err(|_| BmsParseError::BadLine {
                    line: line_no,
                    message: format!("bad destination state {to_text}"),
                })?;
                max_state = max_state.max(from).max(to);
                let rest: Vec<&str> = parts.collect();
                let mut inputs = Vec::new();
                let mut outputs = Vec::new();
                let mut in_out = false;
                for tok in rest {
                    if tok == "|" {
                        in_out = true;
                        continue;
                    }
                    let (name, rising) = if let Some(n) = tok.strip_suffix('+') {
                        (n, true)
                    } else if let Some(n) = tok.strip_suffix('-') {
                        (n, false)
                    } else {
                        return Err(BmsParseError::BadLine {
                            line: line_no,
                            message: format!("transition {tok} must end in + or -"),
                        });
                    };
                    let sig = names.iter().position(|s| s == name).ok_or_else(|| {
                        BmsParseError::BadLine {
                            line: line_no,
                            message: format!("undeclared signal {name}"),
                        }
                    })?;
                    if in_out {
                        outputs.push((sig, rising));
                    } else {
                        inputs.push((sig, rising));
                    }
                }
                arcs.push((from, to, inputs, outputs));
            }
        }
    }
    for _ in 0..=max_state {
        spec.add_state();
    }
    for (from, to, inputs, outputs) in arcs {
        spec.add_arc(from, to, &inputs, &outputs);
    }
    spec.validate()?;
    Ok(spec)
}

/// Renders a specification as a Graphviz digraph (the style of the paper's
/// Fig. 3).
pub fn to_dot(spec: &BmSpec) -> String {
    let mut out = String::new();
    out.push_str(&format!("digraph \"{}\" {{\n", spec.name()));
    out.push_str("  rankdir=TB;\n  node [shape=circle];\n");
    out.push_str(&format!("  {} [penwidth=2];\n", spec.initial()));
    for arc in spec.arcs() {
        out.push_str(&format!(
            "  {} -> {} [label=\"{} /\\n{}\"];\n",
            arc.from,
            arc.to,
            spec.burst_string(&arc.inputs),
            spec.burst_string(&arc.outputs)
        ));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sequencer() -> BmSpec {
        let mut s = BmSpec::new("sequencer");
        let pr = s.add_signal("p_r", SignalDir::Input);
        let a1a = s.add_signal("a1_a", SignalDir::Input);
        let pa = s.add_signal("p_a", SignalDir::Output);
        let a1r = s.add_signal("a1_r", SignalDir::Output);
        for _ in 0..4 {
            s.add_state();
        }
        s.add_arc(0, 1, &[(pr, true)], &[(a1r, true)]);
        s.add_arc(1, 2, &[(a1a, true)], &[(a1r, false)]);
        s.add_arc(2, 3, &[(a1a, false)], &[(pa, true)]);
        s.add_arc(3, 0, &[(pr, false)], &[(pa, false)]);
        s
    }

    #[test]
    fn bms_roundtrip() {
        let s = sequencer();
        let text = to_bms(&s);
        let back = from_bms(&text).unwrap();
        assert_eq!(back.num_states(), s.num_states());
        assert_eq!(back.arcs().len(), s.arcs().len());
        assert_eq!(back.name(), "sequencer");
        assert_eq!(to_bms(&back), text);
    }

    #[test]
    fn bms_rejects_bad_input() {
        assert!(matches!(
            from_bms("0 x p_r+ |"),
            Err(BmsParseError::BadLine { .. })
        ));
        assert!(matches!(
            from_bms("input a 0\n0 1 b+ |"),
            Err(BmsParseError::BadLine { .. })
        ));
        assert!(matches!(
            from_bms("input a 0\n0 1 a |"),
            Err(BmsParseError::BadLine { .. })
        ));
    }

    #[test]
    fn bms_validates_machine() {
        // An arc with an empty input burst must be rejected by validation.
        let text = "name bad\ninput a 0\noutput x 0\n0 1 a+ | x+\n1 0 a- | x- x+\n";
        assert!(matches!(from_bms(text), Err(BmsParseError::Invalid(_))));
    }

    #[test]
    fn dot_mentions_all_arcs() {
        let s = sequencer();
        let dot = to_dot(&s);
        assert!(dot.contains("digraph"));
        assert_eq!(dot.matches("->").count(), 4);
        assert!(dot.contains("p_r+"));
    }

    #[test]
    fn comments_ignored() {
        let text =
            "; a comment\nname t\ninput a 0\noutput x 0\n0 1 a+ | x+ ; trailing\n1 0 a- | x-\n";
        let s = from_bms(text).unwrap();
        assert_eq!(s.num_states(), 2);
    }
}
