//! Lexer and recursive-descent parser for mini-Balsa.
//!
//! Grammar sketch (terminals quoted):
//!
//! ```text
//! program   := procedure+
//! procedure := "procedure" IDENT "(" ports? ")" "is" decl* "begin" cmd "end"
//! ports     := port (";" port)*
//! port      := ("input"|"output"|"sync") IDENT (":" INT "bits")?
//! decl      := "variable" IDENT ":" INT "bits"
//!            | "memory" IDENT ":" INT "words" "of" INT "bits"
//!            | "shared" IDENT "is" "begin" cmd "end"
//! cmd       := par ( ";" par )*
//! par       := atom ( "||" atom )*
//! atom      := "continue" | "sync" IDENT | "loop" cmd "end"
//!            | "while" expr "then" cmd "end"
//!            | "if" expr "then" cmd ("else" cmd)? "end"
//!            | "case" expr "of" arm ("|" arm)* ("else" cmd)? "end"
//!            | IDENT "(" ")"                 (shared call)
//!            | IDENT "[" expr "]" ":=" expr  (memory write)
//!            | IDENT ":=" expr | IDENT "<-" expr | IDENT "->" IDENT
//!            | "(" cmd ")"
//! arm       := INT "then" cmd
//! expr      := cmp (("and"|"or"|"xor") cmp)*
//! cmp       := add (("="|"/="|"<"|"<s") add)?
//! add       := unary (("+"|"-") unary)*
//! unary     := "not" unary | "negative" "(" expr ")" | "zero" "(" expr ")"
//!            | "-" unary | IDENT "[" expr "]" | IDENT | INT | "(" expr ")"
//! ```

use crate::ast::{Cmd, Decl, Expr, Port, PortDir, Procedure, Program};
use bmbe_hsnet::{BinOp, UnOp};
use std::fmt;

/// A parse error with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable message.
    pub message: String,
    /// Line number (1-based).
    pub line: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Num(u64),
    Sym(&'static str),
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn tokens(src: &'a str) -> Result<Vec<(Tok, usize)>, ParseError> {
        let mut lx = Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
        };
        let mut out = Vec::new();
        while let Some(t) = lx.next_token()? {
            out.push(t);
        }
        Ok(out)
    }

    fn peek_ch(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek_ch()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn next_token(&mut self) -> Result<Option<(Tok, usize)>, ParseError> {
        loop {
            match self.peek_ch() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'-') if self.src.get(self.pos + 1) == Some(&b'-') => {
                    // comment to end of line
                    while let Some(c) = self.peek_ch() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
        let line = self.line;
        let Some(c) = self.peek_ch() else {
            return Ok(None);
        };
        let tok = match c {
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = self.pos;
                while let Some(c) = self.peek_ch() {
                    if c.is_ascii_alphanumeric() || c == b'_' {
                        self.bump();
                    } else {
                        break;
                    }
                }
                Tok::Ident(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
            }
            b'0'..=b'9' => {
                let start = self.pos;
                while let Some(c) = self.peek_ch() {
                    if c.is_ascii_alphanumeric() {
                        self.bump();
                    } else {
                        break;
                    }
                }
                let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                let value = if let Some(hex) = text.strip_prefix("0x") {
                    u64::from_str_radix(hex, 16)
                } else {
                    text.parse()
                }
                .map_err(|_| ParseError {
                    message: format!("bad number {text}"),
                    line,
                })?;
                Tok::Num(value)
            }
            _ => {
                self.bump();
                match (c, self.peek_ch()) {
                    (b':', Some(b'=')) => {
                        self.bump();
                        Tok::Sym(":=")
                    }
                    (b'<', Some(b'-')) => {
                        self.bump();
                        Tok::Sym("<-")
                    }
                    (b'>', Some(b'>')) => {
                        self.bump();
                        Tok::Sym(">>")
                    }
                    (b'<', Some(b's')) => {
                        self.bump();
                        Tok::Sym("<s")
                    }
                    (b'-', Some(b'>')) => {
                        self.bump();
                        Tok::Sym("->")
                    }
                    (b'|', Some(b'|')) => {
                        self.bump();
                        Tok::Sym("||")
                    }
                    (b'/', Some(b'=')) => {
                        self.bump();
                        Tok::Sym("/=")
                    }
                    (b'(', _) => Tok::Sym("("),
                    (b')', _) => Tok::Sym(")"),
                    (b'[', _) => Tok::Sym("["),
                    (b']', _) => Tok::Sym("]"),
                    (b';', _) => Tok::Sym(";"),
                    (b':', _) => Tok::Sym(":"),
                    (b',', _) => Tok::Sym(","),
                    (b'|', _) => Tok::Sym("|"),
                    (b'=', _) => Tok::Sym("="),
                    (b'<', _) => Tok::Sym("<"),
                    (b'+', _) => Tok::Sym("+"),
                    (b'-', _) => Tok::Sym("-"),
                    _ => {
                        return Err(ParseError {
                            message: format!("unexpected character {:?}", c as char),
                            line,
                        })
                    }
                }
            }
        };
        Ok(Some((tok, line)))
    }
}

/// Parses a mini-Balsa source file.
///
/// # Errors
///
/// Returns a [`ParseError`] with the offending line.
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let tokens = Lexer::tokens(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut procedures = Vec::new();
    while !p.at_end() {
        procedures.push(p.procedure()?);
    }
    if procedures.is_empty() {
        return Err(ParseError {
            message: "no procedures".into(),
            line: 1,
        });
    }
    Ok(Program { procedures })
}

struct Parser {
    tokens: Vec<(Tok, usize)>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map_or(1, |t| t.1)
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: message.into(),
            line: self.line(),
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|t| &t.0)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.tokens.get(self.pos + 1).map(|t| &t.0)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|t| t.0.clone());
        self.pos += 1;
        t
    }

    fn eat_sym(&mut self, s: &str) -> bool {
        if let Some(Tok::Sym(t)) = self.peek() {
            if *t == s {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Some(Tok::Ident(t)) = self.peek() {
            if t == kw {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_sym(&mut self, s: &str) -> Result<(), ParseError> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            self.err(format!("expected `{s}`, found {:?}", self.peek()))
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(format!("expected `{kw}`, found {:?}", self.peek()))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            other => {
                self.pos -= 1;
                let _ = other;
                self.err("expected identifier")
            }
        }
    }

    fn number(&mut self) -> Result<u64, ParseError> {
        match self.bump() {
            Some(Tok::Num(n)) => Ok(n),
            _ => {
                self.pos -= 1;
                self.err("expected number")
            }
        }
    }

    fn procedure(&mut self) -> Result<Procedure, ParseError> {
        self.expect_kw("procedure")?;
        let name = self.ident()?;
        self.expect_sym("(")?;
        let mut ports = Vec::new();
        while !self.eat_sym(")") {
            if !ports.is_empty() && !(self.eat_sym(";") || self.eat_sym(",")) {
                return self.err("expected `;` between ports");
            }
            let dir = if self.eat_kw("input") {
                PortDir::Input
            } else if self.eat_kw("output") {
                PortDir::Output
            } else if self.eat_kw("sync") {
                PortDir::Sync
            } else {
                return self.err("expected port direction (input/output/sync)");
            };
            let pname = self.ident()?;
            let width = if self.eat_sym(":") {
                let w = self.number()? as u32;
                self.expect_kw("bits")?;
                w
            } else {
                0
            };
            ports.push(Port {
                name: pname,
                dir,
                width,
            });
        }
        self.expect_kw("is")?;
        let mut decls = Vec::new();
        loop {
            if self.eat_kw("variable") {
                let vname = self.ident()?;
                self.expect_sym(":")?;
                let width = self.number()? as u32;
                self.expect_kw("bits")?;
                decls.push(Decl::Variable { name: vname, width });
            } else if self.eat_kw("memory") {
                let mname = self.ident()?;
                self.expect_sym(":")?;
                let words = self.number()? as usize;
                self.expect_kw("words")?;
                self.expect_kw("of")?;
                let width = self.number()? as u32;
                self.expect_kw("bits")?;
                decls.push(Decl::Memory {
                    name: mname,
                    words,
                    width,
                });
            } else if self.eat_kw("shared") {
                let sname = self.ident()?;
                self.expect_kw("is")?;
                self.expect_kw("begin")?;
                let body = self.cmd()?;
                self.expect_kw("end")?;
                decls.push(Decl::Shared { name: sname, body });
            } else {
                break;
            }
        }
        self.expect_kw("begin")?;
        let body = self.cmd()?;
        self.expect_kw("end")?;
        Ok(Procedure {
            name,
            ports,
            decls,
            body,
        })
    }

    fn cmd(&mut self) -> Result<Cmd, ParseError> {
        let mut parts = vec![self.par_cmd()?];
        while self.eat_sym(";") {
            parts.push(self.par_cmd()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one")
        } else {
            Cmd::Seq(parts)
        })
    }

    fn par_cmd(&mut self) -> Result<Cmd, ParseError> {
        let mut parts = vec![self.atom_cmd()?];
        while self.eat_sym("||") {
            parts.push(self.atom_cmd()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one")
        } else {
            Cmd::Par(parts)
        })
    }

    fn atom_cmd(&mut self) -> Result<Cmd, ParseError> {
        if self.eat_kw("continue") {
            return Ok(Cmd::Skip);
        }
        if self.eat_kw("sync") {
            return Ok(Cmd::Sync(self.ident()?));
        }
        if self.eat_kw("loop") {
            let body = self.cmd()?;
            self.expect_kw("end")?;
            return Ok(Cmd::Loop(Box::new(body)));
        }
        if self.eat_kw("while") {
            let guard = self.expr()?;
            self.expect_kw("then")?;
            let body = self.cmd()?;
            self.expect_kw("end")?;
            return Ok(Cmd::While {
                guard,
                body: Box::new(body),
            });
        }
        if self.eat_kw("if") {
            let cond = self.expr()?;
            self.expect_kw("then")?;
            let then_cmd = self.cmd()?;
            let else_cmd = if self.eat_kw("else") {
                Some(Box::new(self.cmd()?))
            } else {
                None
            };
            self.expect_kw("end")?;
            return Ok(Cmd::If {
                cond,
                then_cmd: Box::new(then_cmd),
                else_cmd,
            });
        }
        if self.eat_kw("case") {
            let selector = self.expr()?;
            self.expect_kw("of")?;
            let mut arms = Vec::new();
            loop {
                let label = self.number()?;
                self.expect_kw("then")?;
                let c = self.cmd()?;
                arms.push((label, c));
                if !self.eat_sym("|") {
                    break;
                }
            }
            let default = if self.eat_kw("else") {
                Some(Box::new(self.cmd()?))
            } else {
                None
            };
            self.expect_kw("end")?;
            return Ok(Cmd::Case {
                selector,
                arms,
                default,
            });
        }
        if self.eat_sym("(") {
            let c = self.cmd()?;
            self.expect_sym(")")?;
            return Ok(c);
        }
        // IDENT-led commands.
        let name = self.ident()?;
        if self.eat_sym("(") {
            self.expect_sym(")")?;
            return Ok(Cmd::CallShared(name));
        }
        if self.eat_sym("[") {
            let addr = self.expr()?;
            self.expect_sym("]")?;
            self.expect_sym(":=")?;
            let value = self.expr()?;
            return Ok(Cmd::MemWrite {
                mem: name,
                addr,
                value,
            });
        }
        if self.eat_sym(":=") {
            return Ok(Cmd::Assign {
                var: name,
                expr: self.expr()?,
            });
        }
        if self.eat_sym("<-") {
            return Ok(Cmd::Send {
                chan: name,
                expr: self.expr()?,
            });
        }
        if self.eat_sym("->") {
            return Ok(Cmd::Receive {
                chan: name,
                var: self.ident()?,
            });
        }
        self.err(format!("expected a command after identifier {name}"))
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.cmp_expr()?;
        loop {
            let op = if self.eat_kw("and") {
                BinOp::And
            } else if self.eat_kw("or") {
                BinOp::Or
            } else if self.eat_kw("xor") {
                BinOp::Xor
            } else {
                break;
            };
            let rhs = self.cmp_expr()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.add_expr()?;
        let op = if self.eat_sym("=") {
            BinOp::Eq
        } else if self.eat_sym("/=") {
            let rhs = self.add_expr()?;
            return Ok(Expr::un(UnOp::IsZero, Expr::bin(BinOp::Eq, lhs, rhs)));
        } else if self.eat_sym("<s") {
            BinOp::SLt
        } else if self.eat_sym("<") {
            BinOp::Lt
        } else {
            return Ok(lhs);
        };
        let rhs = self.add_expr()?;
        Ok(Expr::bin(op, lhs, rhs))
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = if self.eat_sym("+") {
                BinOp::Add
            } else if self.eat_sym("-") {
                BinOp::Sub
            } else if self.eat_sym(">>") {
                BinOp::Shr
            } else {
                break;
            };
            let rhs = self.unary_expr()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat_kw("not") {
            return Ok(Expr::un(UnOp::Not, self.unary_expr()?));
        }
        if self.eat_sym("-") {
            return Ok(Expr::un(UnOp::Neg, self.unary_expr()?));
        }
        if self.eat_kw("negative") {
            self.expect_sym("(")?;
            let e = self.expr()?;
            self.expect_sym(")")?;
            return Ok(Expr::un(UnOp::IsNeg, e));
        }
        if self.eat_kw("zero") {
            self.expect_sym("(")?;
            let e = self.expr()?;
            self.expect_sym(")")?;
            return Ok(Expr::un(UnOp::IsZero, e));
        }
        if self.eat_sym("(") {
            let e = self.expr()?;
            self.expect_sym(")")?;
            return Ok(e);
        }
        match self.peek() {
            Some(Tok::Num(_)) => Ok(Expr::Lit(self.number()?)),
            Some(Tok::Ident(_)) => {
                let name = self.ident()?;
                if self.eat_sym("[") {
                    let addr = self.expr()?;
                    self.expect_sym("]")?;
                    Ok(Expr::MemRead {
                        mem: name,
                        addr: Box::new(addr),
                    })
                } else {
                    Ok(Expr::Var(name))
                }
            }
            _ => {
                if self.peek2().is_none() && self.peek().is_none() {
                    self.err("unexpected end of input in expression")
                } else {
                    self.err("expected an expression")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_procedure() {
        let p = parse("procedure t (sync go) is begin loop sync go end end").unwrap();
        assert_eq!(p.procedures.len(), 1);
        assert_eq!(p.procedures[0].name, "t");
        assert!(matches!(p.procedures[0].body, Cmd::Loop(_)));
    }

    #[test]
    fn parses_ports_and_decls() {
        let src = "procedure buf (input i : 8 bits; output o : 8 bits) is\n\
                   variable x : 8 bits\n\
                   begin loop i -> x ; o <- x end end";
        let p = parse(src).unwrap();
        let proc = &p.procedures[0];
        assert_eq!(proc.ports.len(), 2);
        assert_eq!(proc.ports[0].width, 8);
        assert_eq!(proc.decls.len(), 1);
        match &proc.body {
            Cmd::Loop(inner) => match inner.as_ref() {
                Cmd::Seq(parts) => assert_eq!(parts.len(), 2),
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_parallel_and_precedence() {
        let src = "procedure t (sync a; sync b) is begin loop sync a || sync b end end";
        let p = parse(src).unwrap();
        match &p.procedures[0].body {
            Cmd::Loop(inner) => assert!(matches!(inner.as_ref(), Cmd::Par(_))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_if_case_while() {
        let src = "procedure t (input i : 2 bits; sync x) is\n\
                   variable v : 2 bits\n\
                   begin loop i -> v ;\n\
                     if v = 1 then sync x else continue end ;\n\
                     case v of 0 then sync x | 1 then continue else sync x end ;\n\
                     while v < 3 then v := v + 1 end\n\
                   end end";
        let p = parse(src).unwrap();
        assert!(matches!(p.procedures[0].body, Cmd::Loop(_)));
    }

    #[test]
    fn parses_memory_and_shared() {
        let src = "procedure cpu (output o : 8 bits) is\n\
                   memory m : 32 words of 8 bits\n\
                   variable pc : 8 bits\n\
                   shared step is begin pc := pc + 1 end\n\
                   begin loop m[pc] := pc ; step () ; o <- m[pc - 1] end end";
        let p = parse(src).unwrap();
        let proc = &p.procedures[0];
        assert_eq!(proc.decls.len(), 3);
        assert!(matches!(proc.decls[2], Decl::Shared { .. }));
    }

    #[test]
    fn comments_are_skipped() {
        let src = "-- a comment\nprocedure t (sync g) is -- trailing\nbegin sync g end";
        parse(src).unwrap();
    }

    #[test]
    fn error_reports_line() {
        let err = parse("procedure t (sync g) is\nbegin\n???\nend").unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn hex_numbers() {
        let src = "procedure t (output o : 8 bits) is begin o <- 0xff end";
        let p = parse(src).unwrap();
        match &p.procedures[0].body {
            Cmd::Send {
                expr: Expr::Lit(255),
                ..
            } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn expression_precedence() {
        // a + 1 = b  parses as (a+1) = b
        let src = "procedure t (output o : 8 bits) is variable a : 8 bits variable b : 8 bits begin o <- a + 1 = b end";
        let p = parse(src).unwrap();
        match &p.procedures[0].body {
            Cmd::Send {
                expr: Expr::Bin {
                    op: BinOp::Eq, lhs, ..
                },
                ..
            } => {
                assert!(matches!(lhs.as_ref(), Expr::Bin { op: BinOp::Add, .. }));
            }
            other => panic!("{other:?}"),
        }
    }
}
