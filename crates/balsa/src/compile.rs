//! Syntax-directed translation of mini-Balsa into handshake components.
//!
//! Each command compiles to a handshake component with a passive activation
//! channel, exactly as in Balsa/Tangram: `;` becomes a sequencer, `||` a
//! concur, `loop` a loop component, `if`/`case` case components, assignments
//! and channel communications become fetch (transferrer) components over a
//! pull-style expression datapath. Shared procedures and multiply-used sync
//! ports introduce call components; multiply-read input ports introduce
//! pull-muxes and multiply-written ports/variables call-muxes — the shapes
//! the clustering optimizations of the paper feed on.

use crate::ast::{Cmd, Decl, Expr, PortDir, Procedure};
use bmbe_hsnet::{ChannelId, ComponentKind, Netlist, NetlistError};
use std::collections::HashMap;
use std::fmt;

/// Errors raised during translation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BalsaError {
    /// Reference to an undeclared variable.
    UnknownVariable(String),
    /// Reference to an undeclared memory.
    UnknownMemory(String),
    /// Reference to an undeclared port.
    UnknownPort(String),
    /// Reference to an undeclared shared procedure.
    UnknownShared(String),
    /// A port was used against its direction.
    PortDirection {
        /// The port.
        port: String,
        /// What was attempted.
        usage: String,
    },
    /// Case labels must be consecutive starting at 0.
    BadCaseLabels,
    /// Structural error while building the netlist.
    Netlist(NetlistError),
}

impl fmt::Display for BalsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BalsaError::UnknownVariable(n) => write!(f, "unknown variable {n}"),
            BalsaError::UnknownMemory(n) => write!(f, "unknown memory {n}"),
            BalsaError::UnknownPort(n) => write!(f, "unknown port {n}"),
            BalsaError::UnknownShared(n) => write!(f, "unknown shared procedure {n}"),
            BalsaError::PortDirection { port, usage } => {
                write!(f, "port {port} cannot be used for {usage}")
            }
            BalsaError::BadCaseLabels => {
                write!(f, "case labels must be consecutive starting at 0")
            }
            BalsaError::Netlist(e) => write!(f, "netlist error: {e}"),
        }
    }
}

impl std::error::Error for BalsaError {}

impl From<NetlistError> for BalsaError {
    fn from(e: NetlistError) -> Self {
        BalsaError::Netlist(e)
    }
}

/// The result of compiling a procedure.
#[derive(Debug, Clone)]
pub struct CompiledDesign {
    /// The handshake-component netlist.
    pub netlist: Netlist,
    /// The top activation channel (external active side drives the design).
    pub activate: ChannelId,
    /// External port channels by name.
    pub port_channels: HashMap<String, ChannelId>,
}

/// Compiles one procedure of a program into a handshake netlist.
///
/// # Errors
///
/// See [`BalsaError`].
pub fn compile_procedure(proc: &Procedure) -> Result<CompiledDesign, BalsaError> {
    let mut counts = Counts::default();
    for d in &proc.decls {
        if let Decl::Shared { body, .. } = d {
            counts.count_cmd(body);
        }
    }
    counts.count_cmd(&proc.body);

    let mut c = Compiler {
        netlist: Netlist::new(&proc.name),
        vars: HashMap::new(),
        mems: HashMap::new(),
        ports: HashMap::new(),
        shared: HashMap::new(),
        port_channels: HashMap::new(),
    };

    // Ports.
    for port in &proc.ports {
        let ch = c.netlist.add_channel(&port.name, port.width);
        c.port_channels.insert(port.name.clone(), ch);
        let uses = counts.port_uses.get(&port.name).copied().unwrap_or(0);
        let sites = match port.dir {
            PortDir::Input => {
                // Readers pull; many readers share via a pull-mux.
                if uses > 1 {
                    let clients: Vec<ChannelId> = (0..uses)
                        .map(|i| {
                            c.netlist
                                .add_channel(format!("{}_site{i}", port.name), port.width)
                        })
                        .collect();
                    let mut chans = clients.clone();
                    chans.push(ch);
                    c.netlist.add_component(
                        ComponentKind::PullMux {
                            clients: uses,
                            width: port.width,
                        },
                        &chans,
                    )?;
                    clients
                } else {
                    vec![ch]
                }
            }
            PortDir::Output => {
                if uses > 1 {
                    let writers: Vec<ChannelId> = (0..uses)
                        .map(|i| {
                            c.netlist
                                .add_channel(format!("{}_site{i}", port.name), port.width)
                        })
                        .collect();
                    let mut chans = writers.clone();
                    chans.push(ch);
                    c.netlist.add_component(
                        ComponentKind::CallMux {
                            inputs: uses,
                            width: port.width,
                        },
                        &chans,
                    )?;
                    writers
                } else {
                    vec![ch]
                }
            }
            PortDir::Sync => {
                if uses > 1 {
                    let callers: Vec<ChannelId> = (0..uses)
                        .map(|i| c.netlist.add_channel(format!("{}_site{i}", port.name), 0))
                        .collect();
                    let mut chans = callers.clone();
                    chans.push(ch);
                    c.netlist
                        .add_component(ComponentKind::Call { inputs: uses }, &chans)?;
                    callers
                } else {
                    vec![ch]
                }
            }
        };
        c.ports.insert(
            port.name.clone(),
            PortInfo {
                dir: port.dir,
                sites,
                next: 0,
            },
        );
    }

    // Variables and memories.
    for d in &proc.decls {
        match d {
            Decl::Variable { name, width } => {
                let reads = counts.var_reads.get(name).copied().unwrap_or(0);
                let writes = counts.var_writes.get(name).copied().unwrap_or(0).max(1);
                let write_ch = c.netlist.add_channel(format!("{name}_w"), *width);
                let read_chs: Vec<ChannelId> = (0..reads)
                    .map(|i| c.netlist.add_channel(format!("{name}_r{i}"), *width))
                    .collect();
                let mut chans = vec![write_ch];
                chans.extend(&read_chs);
                c.netlist.add_component(
                    ComponentKind::Variable {
                        width: *width,
                        reads,
                    },
                    &chans,
                )?;
                let write_sites = if writes > 1 {
                    let sites: Vec<ChannelId> = (0..writes)
                        .map(|i| c.netlist.add_channel(format!("{name}_wsite{i}"), *width))
                        .collect();
                    let mut mux = sites.clone();
                    mux.push(write_ch);
                    c.netlist.add_component(
                        ComponentKind::CallMux {
                            inputs: writes,
                            width: *width,
                        },
                        &mux,
                    )?;
                    sites
                } else {
                    vec![write_ch]
                };
                c.vars.insert(
                    name.clone(),
                    VarInfo {
                        read_chs,
                        next_read: 0,
                        write_sites,
                        next_write: 0,
                    },
                );
            }
            Decl::Memory { name, words, width } => {
                let reads = counts.mem_reads.get(name).copied().unwrap_or(0).max(1);
                let writes = counts.mem_writes.get(name).copied().unwrap_or(0).max(1);
                let mut chans = Vec::new();
                let mut read_sites = Vec::new();
                let mut write_sites = Vec::new();
                for i in 0..reads {
                    let data = c.netlist.add_channel(format!("{name}_rd{i}"), *width);
                    let addr = c.netlist.add_channel(format!("{name}_ra{i}"), *width);
                    chans.push(data);
                    chans.push(addr);
                    read_sites.push((data, addr));
                }
                for j in 0..writes {
                    let data = c.netlist.add_channel(format!("{name}_wd{j}"), *width);
                    let addr = c.netlist.add_channel(format!("{name}_wa{j}"), *width);
                    chans.push(data);
                    chans.push(addr);
                    write_sites.push((data, addr));
                }
                c.netlist.add_component(
                    ComponentKind::Memory {
                        words: *words,
                        width: *width,
                        reads,
                        writes,
                    },
                    &chans,
                )?;
                c.mems.insert(
                    name.clone(),
                    MemInfo {
                        width: *width,
                        read_sites,
                        next_read: 0,
                        write_sites,
                        next_write: 0,
                    },
                );
            }
            Decl::Shared { .. } => {}
        }
    }

    // Shared procedures: compile bodies, front them with call components.
    for d in &proc.decls {
        if let Decl::Shared { name, body } = d {
            let sites = counts.shared_calls.get(name).copied().unwrap_or(0).max(1);
            let body_act = c.compile_cmd(body)?;
            let site_chs: Vec<ChannelId> = (0..sites)
                .map(|i| c.netlist.add_channel(format!("{name}_call{i}"), 0))
                .collect();
            let mut chans = site_chs.clone();
            chans.push(body_act);
            c.netlist
                .add_component(ComponentKind::Call { inputs: sites }, &chans)?;
            c.shared.insert(
                name.clone(),
                SharedInfo {
                    sites: site_chs,
                    next: 0,
                },
            );
        }
    }

    let activate = c.compile_cmd(&proc.body)?;
    c.netlist.expose(activate);
    let port_channels = c.port_channels.clone();
    for ch in port_channels.values() {
        c.netlist.expose(*ch);
    }
    c.netlist.validate()?;
    Ok(CompiledDesign {
        netlist: c.netlist,
        activate,
        port_channels,
    })
}

#[derive(Default)]
struct Counts {
    var_reads: HashMap<String, usize>,
    var_writes: HashMap<String, usize>,
    mem_reads: HashMap<String, usize>,
    mem_writes: HashMap<String, usize>,
    port_uses: HashMap<String, usize>,
    shared_calls: HashMap<String, usize>,
}

impl Counts {
    fn count_cmd(&mut self, cmd: &Cmd) {
        match cmd {
            Cmd::Skip => {}
            Cmd::Sync(p) => *self.port_uses.entry(p.clone()).or_default() += 1,
            Cmd::Assign { var, expr } => {
                *self.var_writes.entry(var.clone()).or_default() += 1;
                self.count_expr(expr);
            }
            Cmd::MemWrite { mem, addr, value } => {
                *self.mem_writes.entry(mem.clone()).or_default() += 1;
                self.count_expr(addr);
                self.count_expr(value);
            }
            Cmd::Send { chan, expr } => {
                *self.port_uses.entry(chan.clone()).or_default() += 1;
                self.count_expr(expr);
            }
            Cmd::Receive { chan, var } => {
                *self.port_uses.entry(chan.clone()).or_default() += 1;
                *self.var_writes.entry(var.clone()).or_default() += 1;
            }
            Cmd::CallShared(name) => *self.shared_calls.entry(name.clone()).or_default() += 1,
            Cmd::Seq(parts) | Cmd::Par(parts) => {
                for p in parts {
                    self.count_cmd(p);
                }
            }
            Cmd::Loop(b) => self.count_cmd(b),
            Cmd::While { guard, body } => {
                self.count_expr(guard);
                self.count_cmd(body);
            }
            Cmd::If {
                cond,
                then_cmd,
                else_cmd,
            } => {
                self.count_expr(cond);
                self.count_cmd(then_cmd);
                if let Some(e) = else_cmd {
                    self.count_cmd(e);
                }
            }
            Cmd::Case {
                selector,
                arms,
                default,
            } => {
                self.count_expr(selector);
                for (_, a) in arms {
                    self.count_cmd(a);
                }
                if let Some(d) = default {
                    self.count_cmd(d);
                }
            }
        }
    }

    fn count_expr(&mut self, e: &Expr) {
        match e {
            Expr::Var(v) => *self.var_reads.entry(v.clone()).or_default() += 1,
            Expr::Lit(_) => {}
            Expr::MemRead { mem, addr } => {
                *self.mem_reads.entry(mem.clone()).or_default() += 1;
                self.count_expr(addr);
            }
            Expr::Bin { lhs, rhs, .. } => {
                self.count_expr(lhs);
                self.count_expr(rhs);
            }
            Expr::Un { operand, .. } => self.count_expr(operand),
        }
    }
}

struct VarInfo {
    read_chs: Vec<ChannelId>,
    next_read: usize,
    write_sites: Vec<ChannelId>,
    next_write: usize,
}

struct MemInfo {
    width: u32,
    read_sites: Vec<(ChannelId, ChannelId)>,
    next_read: usize,
    write_sites: Vec<(ChannelId, ChannelId)>,
    next_write: usize,
}

struct PortInfo {
    dir: PortDir,
    sites: Vec<ChannelId>,
    next: usize,
}

struct SharedInfo {
    sites: Vec<ChannelId>,
    next: usize,
}

struct Compiler {
    netlist: Netlist,
    vars: HashMap<String, VarInfo>,
    mems: HashMap<String, MemInfo>,
    ports: HashMap<String, PortInfo>,
    shared: HashMap<String, SharedInfo>,
    port_channels: HashMap<String, ChannelId>,
}

impl Compiler {
    /// Compiles an expression; returns the channel whose passive side is the
    /// producer (the consumer connects actively and pulls).
    fn compile_expr(&mut self, e: &Expr) -> Result<ChannelId, BalsaError> {
        match e {
            Expr::Lit(v) => {
                let ch = self.netlist.add_channel("const", 32);
                self.netlist.add_component(
                    ComponentKind::Constant {
                        value: *v,
                        width: 32,
                    },
                    &[ch],
                )?;
                Ok(ch)
            }
            Expr::Var(name) => {
                let info = self
                    .vars
                    .get_mut(name)
                    .ok_or_else(|| BalsaError::UnknownVariable(name.clone()))?;
                let ch = info.read_chs[info.next_read];
                info.next_read += 1;
                Ok(ch)
            }
            Expr::MemRead { mem, addr } => {
                let (data, addr_ch, width) = {
                    let info = self
                        .mems
                        .get_mut(mem)
                        .ok_or_else(|| BalsaError::UnknownMemory(mem.clone()))?;
                    let (d, a) = info.read_sites[info.next_read];
                    info.next_read += 1;
                    (d, a, info.width)
                };
                let _ = width;
                let provider = self.compile_expr(addr)?;
                // The memory's raddr port actively pulls; bridge it to the
                // provider channel by aliasing: connect via a unary identity
                // is unnecessary — the site channel *is* the provider.
                // We instead wire with a pass-through function component.
                self.bridge_pull(addr_ch, provider)?;
                Ok(data)
            }
            Expr::Bin { op, lhs, rhs } => {
                let l = self.compile_expr(lhs)?;
                let r = self.compile_expr(rhs)?;
                let out = self.netlist.add_channel("f", 32);
                self.netlist.add_component(
                    ComponentKind::BinaryFunc { op: *op, width: 32 },
                    &[out, l, r],
                )?;
                Ok(out)
            }
            Expr::Un { op, operand } => {
                let x = self.compile_expr(operand)?;
                let out = self.netlist.add_channel("u", 32);
                self.netlist
                    .add_component(ComponentKind::UnaryFunc { op: *op, width: 32 }, &[out, x])?;
                Ok(out)
            }
        }
    }

    /// Bridges an actively-pulling consumer channel (`consumer`, whose
    /// active side is already taken by a component) to a passive provider
    /// channel using an identity function component.
    fn bridge_pull(&mut self, consumer: ChannelId, provider: ChannelId) -> Result<(), BalsaError> {
        // consumer: passive side free (the puller holds its active side);
        // provider: active side free (the producer holds its passive side).
        self.netlist.add_component(
            ComponentKind::UnaryFunc {
                op: bmbe_hsnet::UnOp::Id,
                width: 0,
            },
            &[consumer, provider],
        )?;
        Ok(())
    }

    fn compile_cmd(&mut self, cmd: &Cmd) -> Result<ChannelId, BalsaError> {
        match cmd {
            Cmd::Skip => {
                let act = self.netlist.add_channel("skip", 0);
                self.netlist.add_component(ComponentKind::Skip, &[act])?;
                Ok(act)
            }
            Cmd::Sync(port) => {
                let info = self
                    .ports
                    .get_mut(port)
                    .ok_or_else(|| BalsaError::UnknownPort(port.clone()))?;
                if info.dir != PortDir::Sync {
                    return Err(BalsaError::PortDirection {
                        port: port.clone(),
                        usage: "sync".into(),
                    });
                }
                let ch = info.sites[info.next];
                info.next += 1;
                Ok(ch)
            }
            Cmd::CallShared(name) => {
                let info = self
                    .shared
                    .get_mut(name)
                    .ok_or_else(|| BalsaError::UnknownShared(name.clone()))?;
                let ch = info.sites[info.next];
                info.next += 1;
                Ok(ch)
            }
            Cmd::Seq(parts) => {
                let children: Vec<ChannelId> = parts
                    .iter()
                    .map(|p| self.compile_cmd(p))
                    .collect::<Result<_, _>>()?;
                let act = self.netlist.add_channel("seq", 0);
                let mut chans = vec![act];
                chans.extend(&children);
                self.netlist.add_component(
                    ComponentKind::Sequence {
                        branches: parts.len(),
                    },
                    &chans,
                )?;
                Ok(act)
            }
            Cmd::Par(parts) => {
                let children: Vec<ChannelId> = parts
                    .iter()
                    .map(|p| self.compile_cmd(p))
                    .collect::<Result<_, _>>()?;
                let act = self.netlist.add_channel("par", 0);
                let mut chans = vec![act];
                chans.extend(&children);
                self.netlist.add_component(
                    ComponentKind::Concur {
                        branches: parts.len(),
                    },
                    &chans,
                )?;
                Ok(act)
            }
            Cmd::Loop(body) => {
                let child = self.compile_cmd(body)?;
                let act = self.netlist.add_channel("loop", 0);
                self.netlist
                    .add_component(ComponentKind::Loop, &[act, child])?;
                Ok(act)
            }
            Cmd::While { guard, body } => {
                let g = self.compile_expr(guard)?;
                let child = self.compile_cmd(body)?;
                let act = self.netlist.add_channel("while", 0);
                self.netlist
                    .add_component(ComponentKind::While, &[act, g, child])?;
                Ok(act)
            }
            Cmd::If {
                cond,
                then_cmd,
                else_cmd,
            } => {
                let sel = self.compile_expr(cond)?;
                let else_act = match else_cmd {
                    Some(e) => self.compile_cmd(e)?,
                    None => self.compile_cmd(&Cmd::Skip)?,
                };
                let then_act = self.compile_cmd(then_cmd)?;
                let act = self.netlist.add_channel("if", 0);
                self.netlist.add_component(
                    ComponentKind::Case { branches: 2 },
                    &[act, sel, else_act, then_act],
                )?;
                Ok(act)
            }
            Cmd::Case {
                selector,
                arms,
                default,
            } => {
                for (i, (label, _)) in arms.iter().enumerate() {
                    if *label != i as u64 {
                        return Err(BalsaError::BadCaseLabels);
                    }
                }
                let sel = self.compile_expr(selector)?;
                let mut branch_acts: Vec<ChannelId> = Vec::new();
                for (_, a) in arms {
                    branch_acts.push(self.compile_cmd(a)?);
                }
                if let Some(d) = default {
                    branch_acts.push(self.compile_cmd(d)?);
                }
                let act = self.netlist.add_channel("case", 0);
                let mut chans = vec![act, sel];
                chans.extend(&branch_acts);
                self.netlist.add_component(
                    ComponentKind::Case {
                        branches: branch_acts.len(),
                    },
                    &chans,
                )?;
                Ok(act)
            }
            Cmd::Assign { var, expr } => {
                let src = self.compile_expr(expr)?;
                let dst = {
                    let info = self
                        .vars
                        .get_mut(var)
                        .ok_or_else(|| BalsaError::UnknownVariable(var.clone()))?;
                    let ch = info.write_sites[info.next_write];
                    info.next_write += 1;
                    ch
                };
                self.fetch(src, dst)
            }
            Cmd::MemWrite { mem, addr, value } => {
                let (data_ch, addr_ch) = {
                    let info = self
                        .mems
                        .get_mut(mem)
                        .ok_or_else(|| BalsaError::UnknownMemory(mem.clone()))?;
                    let site = info.write_sites[info.next_write];
                    info.next_write += 1;
                    site
                };
                let addr_provider = self.compile_expr(addr)?;
                self.bridge_pull(addr_ch, addr_provider)?;
                let src = self.compile_expr(value)?;
                self.fetch(src, data_ch)
            }
            Cmd::Send { chan, expr } => {
                let dst = {
                    let info = self
                        .ports
                        .get_mut(chan)
                        .ok_or_else(|| BalsaError::UnknownPort(chan.clone()))?;
                    if info.dir != PortDir::Output {
                        return Err(BalsaError::PortDirection {
                            port: chan.clone(),
                            usage: "send".into(),
                        });
                    }
                    let ch = info.sites[info.next];
                    info.next += 1;
                    ch
                };
                let src = self.compile_expr(expr)?;
                self.fetch(src, dst)
            }
            Cmd::Receive { chan, var } => {
                let src = {
                    let info = self
                        .ports
                        .get_mut(chan)
                        .ok_or_else(|| BalsaError::UnknownPort(chan.clone()))?;
                    if info.dir != PortDir::Input {
                        return Err(BalsaError::PortDirection {
                            port: chan.clone(),
                            usage: "receive".into(),
                        });
                    }
                    let ch = info.sites[info.next];
                    info.next += 1;
                    ch
                };
                let dst = {
                    let info = self
                        .vars
                        .get_mut(var)
                        .ok_or_else(|| BalsaError::UnknownVariable(var.clone()))?;
                    let ch = info.write_sites[info.next_write];
                    info.next_write += 1;
                    ch
                };
                self.fetch(src, dst)
            }
        }
    }

    /// A fetch component: on activation, pull `src`, push `dst`.
    fn fetch(&mut self, src: ChannelId, dst: ChannelId) -> Result<ChannelId, BalsaError> {
        let act = self.netlist.add_channel("fetch", 0);
        self.netlist
            .add_component(ComponentKind::Fetch, &[act, src, dst])?;
        Ok(act)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn compile_src(src: &str) -> CompiledDesign {
        let prog = parse(src).unwrap();
        compile_procedure(&prog.procedures[0]).unwrap()
    }

    #[test]
    fn buffer_compiles() {
        let d = compile_src(
            "procedure buf (input i : 8 bits; output o : 8 bits) is\n\
             variable x : 8 bits\n\
             begin loop i -> x ; o <- x end end",
        );
        d.netlist.validate().unwrap();
        let p = d.netlist.partition();
        // loop + seq + 2 fetches = 4 control components.
        assert_eq!(p.control.len(), 4);
        // variable = 1 datapath component.
        assert_eq!(p.datapath.len(), 1);
        // internal control channels: loop->seq, seq->fetch1, seq->fetch2.
        assert_eq!(p.internal_control.len(), 3);
    }

    #[test]
    fn sync_ports_and_parallel() {
        let d = compile_src("procedure t (sync a; sync b) is begin loop sync a || sync b end end");
        let p = d.netlist.partition();
        // loop + concur.
        assert_eq!(p.control.len(), 2);
    }

    #[test]
    fn shared_procedure_creates_call() {
        let d = compile_src(
            "procedure t (sync g) is\n\
             shared s is begin sync g end\n\
             begin loop s () ; s () end end",
        );
        let has_call = d
            .netlist
            .components()
            .iter()
            .any(|c| matches!(c.kind, ComponentKind::Call { inputs: 2 }));
        assert!(has_call, "{}", d.netlist);
        // sync g used once inside shared -> no call on the port itself.
    }

    #[test]
    fn repeated_sync_creates_call() {
        let d = compile_src("procedure t (sync g) is begin loop sync g ; sync g end end");
        let has_call = d
            .netlist
            .components()
            .iter()
            .any(|c| matches!(c.kind, ComponentKind::Call { inputs: 2 }));
        assert!(has_call, "{}", d.netlist);
    }

    #[test]
    fn multiple_writes_create_callmux() {
        let d = compile_src(
            "procedure t (input i : 8 bits) is\n\
             variable x : 8 bits\n\
             begin loop i -> x ; x := x + 1 end end",
        );
        let has_mux = d
            .netlist
            .components()
            .iter()
            .any(|c| matches!(c.kind, ComponentKind::CallMux { inputs: 2, .. }));
        assert!(has_mux, "{}", d.netlist);
    }

    #[test]
    fn multiple_input_reads_create_pullmux() {
        let d = compile_src(
            "procedure t (input i : 8 bits) is\n\
             variable a : 8 bits variable b : 8 bits\n\
             begin loop i -> a ; i -> b end end",
        );
        let has_mux = d
            .netlist
            .components()
            .iter()
            .any(|c| matches!(c.kind, ComponentKind::PullMux { clients: 2, .. }));
        assert!(has_mux, "{}", d.netlist);
    }

    #[test]
    fn if_compiles_to_case() {
        let d = compile_src(
            "procedure t (input i : 1 bits; sync x) is\n\
             variable v : 1 bits\n\
             begin loop i -> v ; if v then sync x end end end",
        );
        let has_case = d
            .netlist
            .components()
            .iter()
            .any(|c| matches!(c.kind, ComponentKind::Case { branches: 2 }));
        assert!(has_case);
        // the missing else introduced a skip
        let has_skip = d
            .netlist
            .components()
            .iter()
            .any(|c| matches!(c.kind, ComponentKind::Skip));
        assert!(has_skip);
    }

    #[test]
    fn memory_sites_allocated() {
        let d = compile_src(
            "procedure t (output o : 8 bits) is\n\
             memory m : 16 words of 8 bits\n\
             variable pc : 8 bits\n\
             begin loop m[pc] := pc ; o <- m[pc] ; pc := pc + 1 end end",
        );
        let mem = d
            .netlist
            .components()
            .iter()
            .find(|c| matches!(c.kind, ComponentKind::Memory { .. }))
            .unwrap();
        match &mem.kind {
            ComponentKind::Memory {
                reads: 1,
                writes: 1,
                ..
            } => {}
            other => panic!("{other:?}"),
        }
        d.netlist.validate().unwrap();
    }

    #[test]
    fn unknown_names_rejected() {
        let prog = parse("procedure t (sync g) is begin nope () end").unwrap();
        assert!(matches!(
            compile_procedure(&prog.procedures[0]),
            Err(BalsaError::UnknownShared(_))
        ));
        let prog = parse("procedure t (sync g) is begin x := 1 end").unwrap();
        assert!(matches!(
            compile_procedure(&prog.procedures[0]),
            Err(BalsaError::UnknownVariable(_))
        ));
    }

    #[test]
    fn wrong_port_direction_rejected() {
        let prog = parse("procedure t (input i : 8 bits) is begin i <- 1 end").unwrap();
        assert!(matches!(
            compile_procedure(&prog.procedures[0]),
            Err(BalsaError::PortDirection { .. })
        ));
    }

    #[test]
    fn case_labels_must_be_consecutive() {
        let prog = parse(
            "procedure t (input i : 2 bits; sync x) is variable v : 2 bits begin\n\
             i -> v ; case v of 1 then sync x end end",
        )
        .unwrap();
        assert!(matches!(
            compile_procedure(&prog.procedures[0]),
            Err(BalsaError::BadCaseLabels)
        ));
    }
}
