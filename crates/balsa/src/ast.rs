//! Abstract syntax of mini-Balsa.
//!
//! A faithful subset of the Balsa language [Bardsley & Edwards 1997]
//! sufficient to express the paper's four benchmark designs: procedures
//! with ports, variables and memories, sequential (`;`) and parallel (`||`)
//! composition, `loop`, `while`, `if`, `case`, channel communication, sync
//! channels, and `shared` procedures (which compile to call components).

use bmbe_hsnet::{BinOp, UnOp};

/// A compilation unit: one or more procedures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// The procedures, in source order.
    pub procedures: Vec<Procedure>,
}

/// Direction of a procedure port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortDir {
    /// Data flows in (the design pulls from the environment).
    Input,
    /// Data flows out (the design pushes to the environment).
    Output,
    /// Dataless synchronization port.
    Sync,
}

/// A procedure port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Port {
    /// Port name.
    pub name: String,
    /// Direction.
    pub dir: PortDir,
    /// Data width in bits (0 for sync ports).
    pub width: u32,
}

/// A local declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decl {
    /// A storage variable.
    Variable {
        /// Name.
        name: String,
        /// Bit width.
        width: u32,
    },
    /// A word-addressed memory.
    Memory {
        /// Name.
        name: String,
        /// Number of words.
        words: usize,
        /// Bit width of a word.
        width: u32,
    },
    /// A shared procedure: one body, many call sites, merged by a call
    /// component.
    Shared {
        /// Name.
        name: String,
        /// Body command.
        body: Cmd,
    },
}

/// A command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Cmd {
    /// Do nothing (acknowledge immediately).
    Skip,
    /// Handshake on a sync port.
    Sync(String),
    /// `var := expr`.
    Assign {
        /// Target variable.
        var: String,
        /// Source expression.
        expr: Expr,
    },
    /// `mem[addr] := value`.
    MemWrite {
        /// Target memory.
        mem: String,
        /// Address expression.
        addr: Expr,
        /// Value expression.
        value: Expr,
    },
    /// `chan <- expr`: push on an output port.
    Send {
        /// The output port.
        chan: String,
        /// Value expression.
        expr: Expr,
    },
    /// `chan -> var`: pull from an input port into a variable.
    Receive {
        /// The input port.
        chan: String,
        /// Target variable.
        var: String,
    },
    /// Invoke a shared procedure.
    CallShared(String),
    /// Sequential composition.
    Seq(Vec<Cmd>),
    /// Parallel composition.
    Par(Vec<Cmd>),
    /// Repeat forever.
    Loop(Box<Cmd>),
    /// Guarded loop.
    While {
        /// 1-bit guard expression.
        guard: Expr,
        /// Body.
        body: Box<Cmd>,
    },
    /// Two-way conditional.
    If {
        /// 1-bit condition.
        cond: Expr,
        /// Then branch.
        then_cmd: Box<Cmd>,
        /// Optional else branch.
        else_cmd: Option<Box<Cmd>>,
    },
    /// Multi-way dispatch on an expression value. Arm labels must be
    /// consecutive from 0; values past the last arm take the default.
    Case {
        /// Selector expression.
        selector: Expr,
        /// `(label, command)` arms.
        arms: Vec<(u64, Cmd)>,
        /// Optional default arm.
        default: Option<Box<Cmd>>,
    },
}

/// An expression (pull-style datapath).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Variable read.
    Var(String),
    /// Literal value.
    Lit(u64),
    /// Memory read `mem[addr]`.
    MemRead {
        /// The memory.
        mem: String,
        /// Address expression.
        addr: Box<Expr>,
    },
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Un {
        /// Operator.
        op: UnOp,
        /// Operand.
        operand: Box<Expr>,
    },
}

/// A single procedure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Procedure {
    /// Name.
    pub name: String,
    /// Ports.
    pub ports: Vec<Port>,
    /// Local declarations.
    pub decls: Vec<Decl>,
    /// Body.
    pub body: Cmd,
}

impl Expr {
    /// Convenience: `lhs op rhs`.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Convenience: unary application.
    pub fn un(op: UnOp, operand: Expr) -> Expr {
        Expr::Un {
            op,
            operand: Box::new(operand),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_constructors() {
        let e = Expr::bin(BinOp::Add, Expr::Var("a".into()), Expr::Lit(1));
        match e {
            Expr::Bin { op: BinOp::Add, .. } => {}
            other => panic!("{other:?}"),
        }
        let u = Expr::un(UnOp::Not, Expr::Lit(0));
        assert!(matches!(u, Expr::Un { op: UnOp::Not, .. }));
    }
}
