#![warn(missing_docs)]
//! # bmbe-balsa
//!
//! A mini-Balsa front end: lexer, parser and the syntax-directed
//! translation from a Balsa-style CSP language to a handshake-component
//! netlist (the `balsa-c` equivalent of Fig. 1 of the paper). The subset is
//! rich enough to express the paper's four benchmark designs: ports,
//! variables, memories, `;`/`||`, `loop`/`while`/`if`/`case`, channel
//! communication, sync ports, and `shared` procedures (which compile to
//! call components — the fodder for the paper's Call Distribution
//! optimization).
//!
//! # Examples
//!
//! ```
//! use bmbe_balsa::{parse, compile_procedure};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = "procedure buf (input i : 8 bits; output o : 8 bits) is
//!            variable x : 8 bits
//!            begin loop i -> x ; o <- x end end";
//! let program = parse(src)?;
//! let design = compile_procedure(&program.procedures[0])?;
//! assert!(design.netlist.partition().control.len() >= 3);
//! # Ok(())
//! # }
//! ```

pub mod ast;
pub mod compile;
pub mod parse;

pub use ast::{Cmd, Decl, Expr, Port, PortDir, Procedure, Program};
pub use compile::{compile_procedure, BalsaError, CompiledDesign};
pub use parse::{parse, ParseError};
