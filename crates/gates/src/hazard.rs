//! Hazard analysis of mapped controllers (§5 of the paper).
//!
//! Two independent checks stand in for the paper's "formally analysed for
//! hazard-freedom conditions":
//!
//! 1. **Functional equivalence** of the mapped netlist against the
//!    two-level covers (exhaustive up to 2^20 points, sampled beyond) — the
//!    algebraic transforms used by the mapper must not change the function.
//! 2. **Eichelberger ternary simulation** of every specified
//!    multiple-input-change transition on the mapped gates: changing inputs
//!    are driven to `X`; a static transition that reads `X` at any output
//!    has a potential glitch, and every transition must settle at its
//!    specified final value.

use crate::map::MappedNetlist;
use bmbe_bm::synth::Controller;
use bmbe_logic::Tv;
use std::collections::HashMap;

/// A reported hazard-analysis violation.
#[derive(Debug, Clone, PartialEq)]
pub enum HazardViolation {
    /// The mapped netlist computes a different function.
    NotEquivalent {
        /// Function name.
        function: String,
        /// A witness input point.
        point: u64,
    },
    /// A static transition can glitch (output reads `X` mid-burst).
    StaticGlitch {
        /// Function name.
        function: String,
        /// Transition start point.
        start: u64,
        /// Transition end point.
        end: u64,
    },
    /// A transition does not settle at its specified final value.
    WrongSettle {
        /// Function name.
        function: String,
        /// Transition start point.
        start: u64,
        /// Transition end point.
        end: u64,
    },
}

impl std::fmt::Display for HazardViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HazardViolation::NotEquivalent { function, point } => {
                write!(f, "{function}: mapped netlist differs at {point:#x}")
            }
            HazardViolation::StaticGlitch { function, start, end } => {
                write!(f, "{function}: static transition {start:#x}->{end:#x} can glitch")
            }
            HazardViolation::WrongSettle { function, start, end } => {
                write!(f, "{function}: transition {start:#x}->{end:#x} settles wrong")
            }
        }
    }
}

fn tv_and(a: Tv, b: Tv) -> Tv {
    match (a, b) {
        (Tv::Zero, _) | (_, Tv::Zero) => Tv::Zero,
        (Tv::One, Tv::One) => Tv::One,
        _ => Tv::X,
    }
}

fn tv_or(a: Tv, b: Tv) -> Tv {
    match (a, b) {
        (Tv::One, _) | (_, Tv::One) => Tv::One,
        (Tv::Zero, Tv::Zero) => Tv::Zero,
        _ => Tv::X,
    }
}

fn tv_not(a: Tv) -> Tv {
    match a {
        Tv::Zero => Tv::One,
        Tv::One => Tv::Zero,
        Tv::X => Tv::X,
    }
}

/// Ternary evaluation of a mapped netlist; returns root values in root
/// order.
pub fn eval_ternary(netlist: &MappedNetlist, inputs: &[Tv]) -> Vec<Tv> {
    use crate::cell::CellKind;
    use crate::subject::SubjectNode;
    let mut values: HashMap<usize, Tv> = HashMap::new();
    for (i, &v) in inputs.iter().enumerate() {
        values.insert(i, v);
    }
    for (i, n) in netlist.subject.nodes.iter().enumerate() {
        match n {
            SubjectNode::Zero => {
                values.insert(i, Tv::Zero);
            }
            SubjectNode::One => {
                values.insert(i, Tv::One);
            }
            _ => {}
        }
    }
    for g in &netlist.gates {
        let ins: Vec<Tv> = g.inputs.iter().map(|n| values[n]).collect();
        let out = match g.cell {
            CellKind::Inv => tv_not(ins[0]),
            CellKind::Buf => ins[0],
            CellKind::Nand2 | CellKind::Nand3 | CellKind::Nand4 => {
                tv_not(ins.iter().copied().fold(Tv::One, tv_and))
            }
            CellKind::And2 => tv_and(ins[0], ins[1]),
            CellKind::Or2 => tv_or(ins[0], ins[1]),
            CellKind::Nor2 => tv_not(tv_or(ins[0], ins[1])),
            CellKind::Ao21 => tv_or(tv_and(ins[0], ins[1]), ins[2]),
            CellKind::Ao22 => tv_or(tv_and(ins[0], ins[1]), tv_and(ins[2], ins[3])),
            CellKind::Tie0 => Tv::Zero,
            CellKind::Tie1 => Tv::One,
            CellKind::Celem2 => unreachable!("no C-elements in mapped controllers"),
        };
        values.insert(g.output, out);
    }
    netlist.subject.roots.iter().map(|(_, r)| values[r]).collect()
}

/// Verifies a mapped controller: functional equivalence against the
/// synthesized covers and Eichelberger ternary analysis of every specified
/// transition. Returns all violations found (empty = clean).
pub fn verify_mapped(controller: &Controller, netlist: &MappedNetlist) -> Vec<HazardViolation> {
    let mut out = Vec::new();
    let n = controller.num_vars();
    let covers: Vec<(&str, &bmbe_logic::Cover)> = controller
        .outputs
        .iter()
        .map(|s| s.as_str())
        .chain((0..controller.num_state_bits).map(|_| "y"))
        .zip(
            controller
                .output_covers
                .iter()
                .chain(controller.next_state_covers.iter()),
        )
        .collect();
    // 1. Functional equivalence.
    let points: Vec<u64> = if n <= 14 {
        (0..(1u64 << n)).collect()
    } else {
        // Deterministic sample.
        let mut seed = 0x2545f4914f6cdd1du64;
        (0..1u64 << 12)
            .map(|_| {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                seed & ((1u64 << n) - 1)
            })
            .collect()
    };
    for &p in &points {
        let mapped = netlist.eval(p);
        for (fi, (name, cover)) in covers.iter().enumerate() {
            if mapped[fi] != cover.eval(p) {
                out.push(HazardViolation::NotEquivalent { function: name.to_string(), point: p });
                return out; // one witness suffices
            }
        }
    }
    // 2. Ternary transition analysis.
    for (fi, spec) in controller.function_specs.iter().enumerate() {
        let name = covers[fi].0.to_string();
        for t in spec.transitions() {
            let changing = t.start ^ t.end;
            let mid: Vec<Tv> = (0..n)
                .map(|i| {
                    if changing >> i & 1 == 1 {
                        Tv::X
                    } else {
                        Tv::from_bool(t.start >> i & 1 == 1)
                    }
                })
                .collect();
            let v_mid = eval_ternary(netlist, &mid)[fi];
            if t.from == t.to && v_mid != Tv::from_bool(t.from) {
                out.push(HazardViolation::StaticGlitch {
                    function: name.clone(),
                    start: t.start,
                    end: t.end,
                });
            }
            let fin: Vec<Tv> = (0..n).map(|i| Tv::from_bool(t.end >> i & 1 == 1)).collect();
            let v_fin = eval_ternary(netlist, &fin)[fi];
            if v_fin != Tv::from_bool(t.to) {
                out.push(HazardViolation::WrongSettle {
                    function: name.clone(),
                    start: t.start,
                    end: t.end,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Library;
    use crate::map::{map, MapObjective, MapStyle};
    use crate::subject::SubjectGraph;
    use bmbe_bm::spec::{BmSpec, SignalDir};
    use bmbe_bm::synth::{synthesize, MinimizeMode};
    use bmbe_logic::{Cover, Cube};

    fn sequencer_spec() -> BmSpec {
        let mut s = BmSpec::new("sequencer");
        let pr = s.add_signal("p_r", SignalDir::Input);
        let a1a = s.add_signal("a1_a", SignalDir::Input);
        let a2a = s.add_signal("a2_a", SignalDir::Input);
        let pa = s.add_signal("p_a", SignalDir::Output);
        let a1r = s.add_signal("a1_r", SignalDir::Output);
        let a2r = s.add_signal("a2_r", SignalDir::Output);
        for _ in 0..6 {
            s.add_state();
        }
        s.add_arc(0, 1, &[(pr, true)], &[(a1r, true)]);
        s.add_arc(1, 2, &[(a1a, true)], &[(a1r, false)]);
        s.add_arc(2, 3, &[(a1a, false)], &[(a2r, true)]);
        s.add_arc(3, 4, &[(a2a, true)], &[(a2r, false)]);
        s.add_arc(4, 5, &[(a2a, false)], &[(pa, true)]);
        s.add_arc(5, 0, &[(pr, false)], &[(pa, false)]);
        s
    }

    #[test]
    fn sequencer_maps_hazard_free_in_both_styles() {
        let ctrl = synthesize(&sequencer_spec(), MinimizeMode::Speed).unwrap();
        let functions: Vec<(String, &Cover)> = ctrl
            .outputs
            .iter()
            .cloned()
            .chain((0..ctrl.num_state_bits).map(|j| format!("y{j}")))
            .zip(ctrl.output_covers.iter().chain(ctrl.next_state_covers.iter()))
            .collect();
        let subject = SubjectGraph::from_covers(ctrl.num_vars(), &functions);
        for style in [MapStyle::SplitModules, MapStyle::WholeController] {
            let m = map(&subject, &Library::cmos035(), MapObjective::Delay, style);
            let violations = verify_mapped(&ctrl, &m);
            assert!(violations.is_empty(), "{style:?}: {violations:?}");
        }
    }

    #[test]
    fn ternary_detects_classic_static_hazard() {
        // Hand-build the hazardous 2-product consensus function and check
        // the ternary evaluator sees the X.
        let f: Cover = [Cube::parse("10-").unwrap(), Cube::parse("-11").unwrap()]
            .into_iter()
            .collect();
        let g = SubjectGraph::from_covers(3, &[("f".into(), &f)]);
        let m = map(&g, &Library::cmos035(), MapObjective::Area, MapStyle::WholeController);
        let v = eval_ternary(&m, &[Tv::One, Tv::X, Tv::One]);
        assert_eq!(v[0], Tv::X);
        // With the consensus product the X disappears.
        let f2: Cover = [
            Cube::parse("10-").unwrap(),
            Cube::parse("-11").unwrap(),
            Cube::parse("1-1").unwrap(),
        ]
        .into_iter()
        .collect();
        let g2 = SubjectGraph::from_covers(3, &[("f".into(), &f2)]);
        let m2 = map(&g2, &Library::cmos035(), MapObjective::Area, MapStyle::WholeController);
        let v2 = eval_ternary(&m2, &[Tv::One, Tv::X, Tv::One]);
        assert_eq!(v2[0], Tv::One);
    }
}
