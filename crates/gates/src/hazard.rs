//! Hazard analysis of mapped controllers (§5 of the paper).
//!
//! Two independent checks stand in for the paper's "formally analysed for
//! hazard-freedom conditions":
//!
//! 1. **Functional equivalence** of the mapped netlist against the
//!    two-level covers — the algebraic transforms used by the mapper must
//!    not change the function. Checked cube-algebraically: exact (ON, OFF)
//!    covers are propagated through the mapped gates and compared to the
//!    synthesized covers by two-way containment, with the seed's pointwise
//!    sweep kept as oracle and fallback.
//! 2. **Eichelberger ternary simulation** of every specified
//!    multiple-input-change transition on the mapped gates: changing inputs
//!    are driven to `X`; a static transition that reads `X` at any output
//!    has a potential glitch, and every transition must settle at its
//!    specified final value.

use crate::cell::CellError;
use crate::map::MappedNetlist;
use bmbe_bm::synth::Controller;
use bmbe_logic::{Cover, Cube, Tv};
use std::collections::HashMap;

/// A reported hazard-analysis violation.
#[derive(Debug, Clone, PartialEq)]
pub enum HazardViolation {
    /// The mapped netlist computes a different function.
    NotEquivalent {
        /// Function name.
        function: String,
        /// A witness input point.
        point: u64,
    },
    /// The netlist contains a cell the analysis cannot evaluate (say, a
    /// stateful C-element leaked into a controller netlist); reported as a
    /// violation rather than crashing the analysis.
    Unevaluatable {
        /// Function name (or `"*"` when no single function is implicated).
        function: String,
        /// The underlying cell error.
        detail: String,
    },
    /// A static transition can glitch (output reads `X` mid-burst).
    StaticGlitch {
        /// Function name.
        function: String,
        /// Transition start point.
        start: u64,
        /// Transition end point.
        end: u64,
    },
    /// A transition does not settle at its specified final value.
    WrongSettle {
        /// Function name.
        function: String,
        /// Transition start point.
        start: u64,
        /// Transition end point.
        end: u64,
    },
}

impl std::fmt::Display for HazardViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HazardViolation::NotEquivalent { function, point } => {
                write!(f, "{function}: mapped netlist differs at {point:#x}")
            }
            HazardViolation::Unevaluatable { function, detail } => {
                write!(f, "{function}: netlist not analyzable: {detail}")
            }
            HazardViolation::StaticGlitch {
                function,
                start,
                end,
            } => {
                write!(
                    f,
                    "{function}: static transition {start:#x}->{end:#x} can glitch"
                )
            }
            HazardViolation::WrongSettle {
                function,
                start,
                end,
            } => {
                write!(
                    f,
                    "{function}: transition {start:#x}->{end:#x} settles wrong"
                )
            }
        }
    }
}

fn tv_and(a: Tv, b: Tv) -> Tv {
    match (a, b) {
        (Tv::Zero, _) | (_, Tv::Zero) => Tv::Zero,
        (Tv::One, Tv::One) => Tv::One,
        _ => Tv::X,
    }
}

fn tv_or(a: Tv, b: Tv) -> Tv {
    match (a, b) {
        (Tv::One, _) | (_, Tv::One) => Tv::One,
        (Tv::Zero, Tv::Zero) => Tv::Zero,
        _ => Tv::X,
    }
}

fn tv_not(a: Tv) -> Tv {
    match a {
        Tv::Zero => Tv::One,
        Tv::One => Tv::Zero,
        Tv::X => Tv::X,
    }
}

/// Ternary evaluation of a mapped netlist; returns root values in root
/// order.
///
/// # Panics
///
/// Panics where [`try_eval_ternary`] errors; [`verify_mapped`] uses the
/// fallible form and reports instead.
pub fn eval_ternary(netlist: &MappedNetlist, inputs: &[Tv]) -> Vec<Tv> {
    try_eval_ternary(netlist, inputs).unwrap_or_else(|e| panic!("{e}"))
}

/// Ternary evaluation with a typed error for cells the analysis cannot
/// evaluate (the stateful C-element).
///
/// # Errors
///
/// The first unevaluatable gate, in topological order.
pub fn try_eval_ternary(netlist: &MappedNetlist, inputs: &[Tv]) -> Result<Vec<Tv>, CellError> {
    use crate::cell::CellKind;
    use crate::subject::SubjectNode;
    // Dense value table indexed by subject-node id (gate outputs are
    // subject-node ids too); topological gate order guarantees every read
    // slot was written.
    let mut values = vec![Tv::X; netlist.subject.nodes.len()];
    values[..inputs.len()].copy_from_slice(inputs);
    for (i, n) in netlist.subject.nodes.iter().enumerate() {
        match n {
            SubjectNode::Zero => values[i] = Tv::Zero,
            SubjectNode::One => values[i] = Tv::One,
            _ => {}
        }
    }
    for g in &netlist.gates {
        let ins = &g.inputs;
        let v = |k: usize| values[ins[k]];
        let out = match g.cell {
            CellKind::Inv => tv_not(v(0)),
            CellKind::Buf => v(0),
            CellKind::Nand2 | CellKind::Nand3 | CellKind::Nand4 => {
                tv_not(ins.iter().map(|&n| values[n]).fold(Tv::One, tv_and))
            }
            CellKind::And2 => tv_and(v(0), v(1)),
            CellKind::Or2 => tv_or(v(0), v(1)),
            CellKind::Nor2 => tv_not(tv_or(v(0), v(1))),
            CellKind::Ao21 => tv_or(tv_and(v(0), v(1)), v(2)),
            CellKind::Ao22 => tv_or(tv_and(v(0), v(1)), tv_and(v(2), v(3))),
            CellKind::Tie0 => Tv::Zero,
            CellKind::Tie1 => Tv::One,
            CellKind::Celem2 => return Err(CellError::Stateful(CellKind::Celem2)),
        };
        values[g.output] = out;
    }
    Ok(netlist
        .subject
        .roots
        .iter()
        .map(|(_, r)| values[*r])
        .collect())
}

/// Cube-count ceiling for the algebraic netlist covers; beyond it the
/// checker falls back to the pointwise sweep (deep OR-plane complements can
/// blow up, though mapped two-level controllers stay far below this).
const ALGEBRAIC_CUBE_CAP: usize = 4096;

/// Curbs cover growth during propagation; `None` means the cap was hit.
fn trim(mut c: Cover) -> Option<Cover> {
    if c.len() > 64 {
        c.make_irredundant_single_containment();
    }
    if c.len() > ALGEBRAIC_CUBE_CAP {
        None
    } else {
        Some(c)
    }
}

fn cover_and(a: &Cover, b: &Cover) -> Option<Cover> {
    let mut out = Cover::empty();
    for x in a.cubes() {
        for y in b.cubes() {
            if let Some(ix) = x.intersection(y) {
                out.push(ix);
            }
        }
    }
    trim(out)
}

fn cover_or(a: &Cover, b: &Cover) -> Option<Cover> {
    let mut out = a.clone();
    out.extend(b.cubes().iter().copied());
    trim(out)
}

/// Exact (ON, OFF) covers of every root of the mapped netlist, built by
/// propagating cube covers through the gates — each input starts with the
/// complementary pair `(x_i, !x_i)`, and every supported cell preserves the
/// pair exactly (AND intersects ON covers and unions OFF covers; OR is the
/// dual; inversion swaps). Returns `None` when a cover exceeds
/// [`ALGEBRAIC_CUBE_CAP`].
fn netlist_root_covers(netlist: &MappedNetlist, n: usize) -> Option<Vec<Cover>> {
    use crate::cell::CellKind;
    use crate::subject::SubjectNode;
    let universe = || Cover::from_cubes(vec![Cube::universe(n)]);
    let mut values: HashMap<usize, (Cover, Cover)> = HashMap::new();
    for i in 0..netlist.subject.num_inputs {
        let on = Cover::from_cubes(vec![Cube::universe(n).with_fixed(i, true)]);
        let off = Cover::from_cubes(vec![Cube::universe(n).with_fixed(i, false)]);
        values.insert(i, (on, off));
    }
    for (i, node) in netlist.subject.nodes.iter().enumerate() {
        match node {
            SubjectNode::Zero => {
                values.insert(i, (Cover::empty(), universe()));
            }
            SubjectNode::One => {
                values.insert(i, (universe(), Cover::empty()));
            }
            _ => {}
        }
    }
    let and_all = |ins: &[&(Cover, Cover)]| -> Option<(Cover, Cover)> {
        let mut on = universe();
        let mut off = Cover::empty();
        for (i_on, i_off) in ins {
            on = cover_and(&on, i_on)?;
            off = cover_or(&off, i_off)?;
        }
        Some((on, off))
    };
    for g in &netlist.gates {
        let ins: Vec<&(Cover, Cover)> = g.inputs.iter().map(|n| &values[n]).collect();
        let out = match g.cell {
            CellKind::Inv => (ins[0].1.clone(), ins[0].0.clone()),
            CellKind::Buf => ins[0].clone(),
            CellKind::Nand2 | CellKind::Nand3 | CellKind::Nand4 => {
                let (on, off) = and_all(&ins)?;
                (off, on)
            }
            CellKind::And2 => and_all(&ins)?,
            CellKind::Or2 => (
                cover_or(&ins[0].0, &ins[1].0)?,
                cover_and(&ins[0].1, &ins[1].1)?,
            ),
            CellKind::Nor2 => (
                cover_and(&ins[0].1, &ins[1].1)?,
                cover_or(&ins[0].0, &ins[1].0)?,
            ),
            CellKind::Ao21 => {
                let (and_on, and_off) = and_all(&ins[..2])?;
                (
                    cover_or(&and_on, &ins[2].0)?,
                    cover_and(&and_off, &ins[2].1)?,
                )
            }
            CellKind::Ao22 => {
                let (a_on, a_off) = and_all(&ins[..2])?;
                let (b_on, b_off) = and_all(&ins[2..])?;
                (cover_or(&a_on, &b_on)?, cover_and(&a_off, &b_off)?)
            }
            CellKind::Tie0 => (Cover::empty(), universe()),
            CellKind::Tie1 => (universe(), Cover::empty()),
            // No cube-cover semantics for the stateful C-element; bail to
            // the pointwise fallback, which reports a typed violation.
            CellKind::Celem2 => return None,
        };
        values.insert(g.output, out);
    }
    Some(
        netlist
            .subject
            .roots
            .iter()
            .map(|(_, r)| values[r].0.clone())
            .collect(),
    )
}

/// Pointwise functional-equivalence oracle (the seed's original check):
/// exhaustive `2^n` sweep up to 14 variables, a deterministic 4096-point
/// sample beyond. Kept public as the reference the algebraic check is
/// property-tested and benchmarked against, and as the fallback when the
/// algebraic covers blow past their cube cap.
pub fn verify_equivalence_pointwise(
    controller: &Controller,
    netlist: &MappedNetlist,
) -> Option<HazardViolation> {
    let n = controller.num_vars();
    let covers = named_covers(controller);
    let points: Vec<u64> = if n <= 14 {
        (0..(1u64 << n)).collect()
    } else {
        // Deterministic sample.
        let mut seed = 0x2545f4914f6cdd1du64;
        (0..1u64 << 12)
            .map(|_| {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                seed & ((1u64 << n) - 1)
            })
            .collect()
    };
    for &p in &points {
        let mapped = match netlist.try_eval(p) {
            Ok(values) => values,
            Err(e) => {
                return Some(HazardViolation::Unevaluatable {
                    function: "*".to_string(),
                    detail: e.to_string(),
                })
            }
        };
        for (fi, (name, cover)) in covers.iter().enumerate() {
            if mapped[fi] != cover.eval(p) {
                return Some(HazardViolation::NotEquivalent {
                    function: name.to_string(),
                    point: p,
                });
            }
        }
    }
    None
}

/// Cube-algebraic functional-equivalence check: compares each synthesized
/// cover against the exact ON cover extracted from the mapped gates, in
/// both directions, without enumerating the input space. Returns the first
/// disagreement witness; `None` means proven equivalent. Falls back to
/// [`verify_equivalence_pointwise`] if cover propagation hits its cap.
pub fn verify_equivalence_algebraic(
    controller: &Controller,
    netlist: &MappedNetlist,
) -> Option<HazardViolation> {
    let n = controller.num_vars();
    let Some(roots) = netlist_root_covers(netlist, n) else {
        return verify_equivalence_pointwise(controller, netlist);
    };
    let covers = named_covers(controller);
    debug_assert_eq!(roots.len(), covers.len());
    for (mapped_on, (name, cover)) in roots.iter().zip(&covers) {
        // Mapped ⊆ spec: every mapped ON cube must be covered by the spec.
        for c in mapped_on.cubes() {
            if let Some(p) = cover.uncovered_point(c) {
                return Some(HazardViolation::NotEquivalent {
                    function: name.to_string(),
                    point: p,
                });
            }
        }
        // Spec ⊆ mapped: every spec product must be covered by the netlist.
        for d in cover.cubes() {
            if let Some(p) = mapped_on.uncovered_point(d) {
                return Some(HazardViolation::NotEquivalent {
                    function: name.to_string(),
                    point: p,
                });
            }
        }
    }
    None
}

fn named_covers(controller: &Controller) -> Vec<(&str, &Cover)> {
    controller
        .outputs
        .iter()
        .map(|s| s.as_str())
        .chain((0..controller.num_state_bits).map(|_| "y"))
        .zip(
            controller
                .output_covers
                .iter()
                .chain(controller.next_state_covers.iter()),
        )
        .collect()
}

/// Verifies a mapped controller: functional equivalence against the
/// synthesized covers and Eichelberger ternary analysis of every specified
/// transition. Returns all violations found (empty = clean).
pub fn verify_mapped(controller: &Controller, netlist: &MappedNetlist) -> Vec<HazardViolation> {
    let mut out = Vec::new();
    let n = controller.num_vars();
    let covers = named_covers(controller);
    // 1. Functional equivalence (cube-algebraic; exact for all n, unlike
    //    the sampled pointwise sweep it replaced beyond 14 variables).
    if let Some(v) = verify_equivalence_algebraic(controller, netlist) {
        out.push(v);
        return out; // one witness suffices
    }
    // 2. Ternary transition analysis. The per-function specs share their
    //    (start, end) bursts, and one netlist evaluation yields every root,
    //    so each unique burst is simulated once and each unique settle
    //    point once — not once per function.
    let mut mid_memo: HashMap<(u64, u64), Result<Vec<Tv>, CellError>> = HashMap::new();
    let mut fin_memo: HashMap<u64, Result<Vec<Tv>, CellError>> = HashMap::new();
    for (fi, spec) in controller.function_specs.iter().enumerate() {
        let name = covers[fi].0.to_string();
        for t in spec.transitions() {
            let changing = t.start ^ t.end;
            let mids = mid_memo.entry((t.start, changing)).or_insert_with(|| {
                let mid: Vec<Tv> = (0..n)
                    .map(|i| {
                        if changing >> i & 1 == 1 {
                            Tv::X
                        } else {
                            Tv::from_bool(t.start >> i & 1 == 1)
                        }
                    })
                    .collect();
                try_eval_ternary(netlist, &mid)
            });
            let mids = match mids {
                Ok(values) => values,
                Err(e) => {
                    out.push(HazardViolation::Unevaluatable {
                        function: name,
                        detail: e.to_string(),
                    });
                    return out; // the netlist itself is broken; stop here
                }
            };
            if t.from == t.to && mids[fi] != Tv::from_bool(t.from) {
                out.push(HazardViolation::StaticGlitch {
                    function: name.clone(),
                    start: t.start,
                    end: t.end,
                });
            }
            let fins = fin_memo.entry(t.end).or_insert_with(|| {
                let fin: Vec<Tv> = (0..n).map(|i| Tv::from_bool(t.end >> i & 1 == 1)).collect();
                try_eval_ternary(netlist, &fin)
            });
            let fins = match fins {
                Ok(values) => values,
                Err(e) => {
                    out.push(HazardViolation::Unevaluatable {
                        function: name,
                        detail: e.to_string(),
                    });
                    return out;
                }
            };
            if fins[fi] != Tv::from_bool(t.to) {
                out.push(HazardViolation::WrongSettle {
                    function: name.clone(),
                    start: t.start,
                    end: t.end,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Library;
    use crate::map::{map, MapObjective, MapStyle};
    use crate::subject::SubjectGraph;
    use bmbe_bm::spec::{BmSpec, SignalDir};
    use bmbe_bm::synth::{synthesize, MinimizeMode};
    use bmbe_logic::{Cover, Cube};

    fn sequencer_spec() -> BmSpec {
        let mut s = BmSpec::new("sequencer");
        let pr = s.add_signal("p_r", SignalDir::Input);
        let a1a = s.add_signal("a1_a", SignalDir::Input);
        let a2a = s.add_signal("a2_a", SignalDir::Input);
        let pa = s.add_signal("p_a", SignalDir::Output);
        let a1r = s.add_signal("a1_r", SignalDir::Output);
        let a2r = s.add_signal("a2_r", SignalDir::Output);
        for _ in 0..6 {
            s.add_state();
        }
        s.add_arc(0, 1, &[(pr, true)], &[(a1r, true)]);
        s.add_arc(1, 2, &[(a1a, true)], &[(a1r, false)]);
        s.add_arc(2, 3, &[(a1a, false)], &[(a2r, true)]);
        s.add_arc(3, 4, &[(a2a, true)], &[(a2r, false)]);
        s.add_arc(4, 5, &[(a2a, false)], &[(pa, true)]);
        s.add_arc(5, 0, &[(pr, false)], &[(pa, false)]);
        s
    }

    #[test]
    fn sequencer_maps_hazard_free_in_both_styles() {
        let ctrl = synthesize(&sequencer_spec(), MinimizeMode::Speed).unwrap();
        let functions: Vec<(String, &Cover)> = ctrl
            .outputs
            .iter()
            .cloned()
            .chain((0..ctrl.num_state_bits).map(|j| format!("y{j}")))
            .zip(
                ctrl.output_covers
                    .iter()
                    .chain(ctrl.next_state_covers.iter()),
            )
            .collect();
        let subject = SubjectGraph::from_covers(ctrl.num_vars(), &functions);
        for style in [MapStyle::SplitModules, MapStyle::WholeController] {
            let m = map(&subject, &Library::cmos035(), MapObjective::Delay, style);
            let violations = verify_mapped(&ctrl, &m);
            assert!(violations.is_empty(), "{style:?}: {violations:?}");
        }
    }

    #[test]
    fn stateful_cell_reports_instead_of_crashing() {
        use crate::cell::CellKind;
        let ctrl = synthesize(&sequencer_spec(), MinimizeMode::Speed).unwrap();
        let functions: Vec<(String, &Cover)> = ctrl
            .outputs
            .iter()
            .cloned()
            .chain((0..ctrl.num_state_bits).map(|j| format!("y{j}")))
            .zip(
                ctrl.output_covers
                    .iter()
                    .chain(ctrl.next_state_covers.iter()),
            )
            .collect();
        let subject = SubjectGraph::from_covers(ctrl.num_vars(), &functions);
        let mut m = map(
            &subject,
            &Library::cmos035(),
            MapObjective::Delay,
            MapStyle::SplitModules,
        );
        // Corrupt the netlist: turn a two-input gate into a C-element, as
        // if a datapath cell leaked into the controller.
        let g = m
            .gates
            .iter_mut()
            .find(|g| g.inputs.len() == 2)
            .expect("some two-input gate");
        g.cell = CellKind::Celem2;
        let violations = verify_mapped(&ctrl, &m);
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, HazardViolation::Unevaluatable { .. })),
            "{violations:?}"
        );
    }

    #[test]
    fn ternary_detects_classic_static_hazard() {
        // Hand-build the hazardous 2-product consensus function and check
        // the ternary evaluator sees the X.
        let f: Cover = [Cube::parse("10-").unwrap(), Cube::parse("-11").unwrap()]
            .into_iter()
            .collect();
        let g = SubjectGraph::from_covers(3, &[("f".into(), &f)]);
        let m = map(
            &g,
            &Library::cmos035(),
            MapObjective::Area,
            MapStyle::WholeController,
        );
        let v = eval_ternary(&m, &[Tv::One, Tv::X, Tv::One]);
        assert_eq!(v[0], Tv::X);
        // With the consensus product the X disappears.
        let f2: Cover = [
            Cube::parse("10-").unwrap(),
            Cube::parse("-11").unwrap(),
            Cube::parse("1-1").unwrap(),
        ]
        .into_iter()
        .collect();
        let g2 = SubjectGraph::from_covers(3, &[("f".into(), &f2)]);
        let m2 = map(
            &g2,
            &Library::cmos035(),
            MapObjective::Area,
            MapStyle::WholeController,
        );
        let v2 = eval_ternary(&m2, &[Tv::One, Tv::X, Tv::One]);
        assert_eq!(v2[0], Tv::One);
    }
}
