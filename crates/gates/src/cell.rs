//! The standard-cell library.
//!
//! A synthetic stand-in for the AMS 0.35 µm library the paper mapped to:
//! representative cell areas (µm²) and pin-to-output delays (ns). Absolute
//! values are not calibrated against the real library; they only need to be
//! mutually consistent, since every experiment compares circuits mapped to
//! the *same* library (see DESIGN.md, substitutions).

use std::fmt;

/// The available cell kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// Inverter.
    Inv,
    /// Buffer.
    Buf,
    /// 2-input NAND.
    Nand2,
    /// 3-input NAND.
    Nand3,
    /// 4-input NAND.
    Nand4,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input NOR.
    Nor2,
    /// AND-OR `a·b + c`.
    Ao21,
    /// AND-OR `a·b + c·d`.
    Ao22,
    /// Constant 0.
    Tie0,
    /// Constant 1.
    Tie1,
    /// Two-input Muller C-element (used by handshake datapath templates).
    Celem2,
}

/// A cell cannot be evaluated combinationally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellError {
    /// The cell holds state (the Muller C-element); its output is a
    /// function of its history, so only the event simulator can evaluate
    /// it.
    Stateful(CellKind),
    /// Wrong number of input values for the cell's pin count.
    WrongInputCount {
        /// The cell.
        cell: CellKind,
        /// Pins the cell has.
        expected: usize,
        /// Values supplied.
        got: usize,
    },
}

impl fmt::Display for CellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellError::Stateful(cell) => {
                write!(f, "cell {cell} is stateful and has no combinational value")
            }
            CellError::WrongInputCount {
                cell,
                expected,
                got,
            } => write!(f, "cell {cell} has {expected} inputs, got {got}"),
        }
    }
}

impl std::error::Error for CellError {}

impl CellKind {
    /// Number of input pins.
    pub fn num_inputs(&self) -> usize {
        match self {
            CellKind::Tie0 | CellKind::Tie1 => 0,
            CellKind::Inv | CellKind::Buf => 1,
            CellKind::Nand2
            | CellKind::And2
            | CellKind::Or2
            | CellKind::Nor2
            | CellKind::Celem2 => 2,
            CellKind::Nand3 | CellKind::Ao21 => 3,
            CellKind::Nand4 | CellKind::Ao22 => 4,
        }
    }

    /// Library cell name.
    pub fn name(&self) -> &'static str {
        match self {
            CellKind::Inv => "INV",
            CellKind::Buf => "BUF",
            CellKind::Nand2 => "NAND2",
            CellKind::Nand3 => "NAND3",
            CellKind::Nand4 => "NAND4",
            CellKind::And2 => "AND2",
            CellKind::Or2 => "OR2",
            CellKind::Nor2 => "NOR2",
            CellKind::Ao21 => "AO21",
            CellKind::Ao22 => "AO22",
            CellKind::Tie0 => "TIE0",
            CellKind::Tie1 => "TIE1",
            CellKind::Celem2 => "C2",
        }
    }

    /// Combinational evaluation (the C-element needs state and is evaluated
    /// by the simulator instead).
    ///
    /// # Panics
    ///
    /// Panics where [`CellKind::try_eval`] errors; analysis code that must
    /// not crash on an unexpected cell uses `try_eval` and reports.
    pub fn eval(&self, inputs: &[bool]) -> bool {
        self.try_eval(inputs).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Combinational evaluation with a typed error for the stateful
    /// C-element (whose output depends on history, not just `inputs`) and
    /// for an input-count mismatch.
    ///
    /// # Errors
    ///
    /// See [`CellError`].
    pub fn try_eval(&self, inputs: &[bool]) -> Result<bool, CellError> {
        if inputs.len() != self.num_inputs() {
            return Err(CellError::WrongInputCount {
                cell: *self,
                expected: self.num_inputs(),
                got: inputs.len(),
            });
        }
        Ok(match self {
            CellKind::Inv => !inputs[0],
            CellKind::Buf => inputs[0],
            CellKind::Nand2 | CellKind::Nand3 | CellKind::Nand4 => !inputs.iter().all(|&b| b),
            CellKind::And2 => inputs[0] && inputs[1],
            CellKind::Or2 => inputs[0] || inputs[1],
            CellKind::Nor2 => !(inputs[0] || inputs[1]),
            CellKind::Ao21 => (inputs[0] && inputs[1]) || inputs[2],
            CellKind::Ao22 => (inputs[0] && inputs[1]) || (inputs[2] && inputs[3]),
            CellKind::Tie0 => false,
            CellKind::Tie1 => true,
            CellKind::Celem2 => return Err(CellError::Stateful(*self)),
        })
    }

    /// Bit-parallel combinational evaluation: each input word carries 64
    /// independent scenarios, one per bit lane, and the result word holds
    /// the cell's output for every lane at once. Lane `L` of the output
    /// equals `eval` applied to lane `L` of the inputs — the agreement the
    /// lane-vs-scalar property test pins.
    ///
    /// # Errors
    ///
    /// See [`CellError`]; the stateful C-element needs
    /// [`CellKind::eval_lanes_seq`].
    pub fn eval_lanes(&self, inputs: &[u64]) -> Result<u64, CellError> {
        if inputs.len() != self.num_inputs() {
            return Err(CellError::WrongInputCount {
                cell: *self,
                expected: self.num_inputs(),
                got: inputs.len(),
            });
        }
        Ok(match self {
            CellKind::Inv => !inputs[0],
            CellKind::Buf => inputs[0],
            CellKind::Nand2 => !(inputs[0] & inputs[1]),
            CellKind::Nand3 => !(inputs[0] & inputs[1] & inputs[2]),
            CellKind::Nand4 => !(inputs[0] & inputs[1] & inputs[2] & inputs[3]),
            CellKind::And2 => inputs[0] & inputs[1],
            CellKind::Or2 => inputs[0] | inputs[1],
            CellKind::Nor2 => !(inputs[0] | inputs[1]),
            CellKind::Ao21 => (inputs[0] & inputs[1]) | inputs[2],
            CellKind::Ao22 => (inputs[0] & inputs[1]) | (inputs[2] & inputs[3]),
            CellKind::Tie0 => 0,
            CellKind::Tie1 => !0,
            CellKind::Celem2 => return Err(CellError::Stateful(*self)),
        })
    }

    /// Like [`CellKind::eval_lanes`], but sequential: `prev` is the cell's
    /// previous output word, which resolves the C-element (per lane,
    /// `a·b + prev·(a + b)`: set when both inputs agree high, cleared when
    /// both agree low, held otherwise). Combinational cells ignore `prev`.
    ///
    /// # Errors
    ///
    /// [`CellError::WrongInputCount`] only — every cell kind has a
    /// sequential lane value.
    pub fn eval_lanes_seq(&self, inputs: &[u64], prev: u64) -> Result<u64, CellError> {
        match self {
            CellKind::Celem2 => {
                if inputs.len() != 2 {
                    return Err(CellError::WrongInputCount {
                        cell: *self,
                        expected: 2,
                        got: inputs.len(),
                    });
                }
                Ok((inputs[0] & inputs[1]) | (prev & (inputs[0] | inputs[1])))
            }
            _ => self.eval_lanes(inputs),
        }
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Area and delay figures for the cells.
#[derive(Debug, Clone)]
pub struct Library {
    name: String,
}

impl Library {
    /// The default synthetic 0.35 µm-class library.
    pub fn cmos035() -> Self {
        Library {
            name: "synthetic-0.35um".to_string(),
        }
    }

    /// Library name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Cell area in µm².
    pub fn area(&self, cell: CellKind) -> f64 {
        match cell {
            CellKind::Inv => 27.0,
            CellKind::Buf => 36.0,
            CellKind::Nand2 => 36.0,
            CellKind::Nand3 => 55.0,
            CellKind::Nand4 => 73.0,
            CellKind::And2 => 45.0,
            CellKind::Or2 => 45.0,
            CellKind::Nor2 => 36.0,
            CellKind::Ao21 => 55.0,
            CellKind::Ao22 => 64.0,
            CellKind::Tie0 | CellKind::Tie1 => 18.0,
            CellKind::Celem2 => 73.0,
        }
    }

    /// Worst-case pin-to-output delay in ns.
    pub fn delay(&self, cell: CellKind) -> f64 {
        match cell {
            CellKind::Inv => 0.08,
            CellKind::Buf => 0.12,
            CellKind::Nand2 => 0.12,
            CellKind::Nand3 => 0.16,
            CellKind::Nand4 => 0.21,
            CellKind::And2 => 0.18,
            CellKind::Or2 => 0.20,
            CellKind::Nor2 => 0.15,
            CellKind::Ao21 => 0.20,
            CellKind::Ao22 => 0.23,
            CellKind::Tie0 | CellKind::Tie1 => 0.0,
            CellKind::Celem2 => 0.24,
        }
    }
}

impl Default for Library {
    fn default() -> Self {
        Library::cmos035()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_basics() {
        assert!(CellKind::Inv.eval(&[false]));
        assert!(!CellKind::Nand2.eval(&[true, true]));
        assert!(CellKind::Nand3.eval(&[true, false, true]));
        assert!(CellKind::Ao21.eval(&[true, true, false]));
        assert!(!CellKind::Ao21.eval(&[true, false, false]));
        assert!(CellKind::Ao22.eval(&[false, true, true, true]));
        assert!(CellKind::Tie1.eval(&[]));
    }

    #[test]
    fn complex_cells_are_cheaper_than_composition() {
        let lib = Library::cmos035();
        // AO21 must beat NAND2 + NAND2 + INV for area and delay, otherwise
        // the mapper would never pick it.
        assert!(
            lib.area(CellKind::Ao21) < 2.0 * lib.area(CellKind::Nand2) + lib.area(CellKind::Inv)
        );
        assert!(
            lib.delay(CellKind::Ao21) < 2.0 * lib.delay(CellKind::Nand2) + lib.delay(CellKind::Inv)
        );
    }

    #[test]
    fn input_counts() {
        assert_eq!(CellKind::Nand4.num_inputs(), 4);
        assert_eq!(CellKind::Tie0.num_inputs(), 0);
        assert_eq!(CellKind::Ao21.num_inputs(), 3);
    }

    #[test]
    fn lanes_agree_with_scalar_eval_on_every_cell() {
        // Deterministic pseudo-random lane words (splitmix64).
        fn mix(mut x: u64) -> u64 {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        let cells = [
            CellKind::Inv,
            CellKind::Buf,
            CellKind::Nand2,
            CellKind::Nand3,
            CellKind::Nand4,
            CellKind::And2,
            CellKind::Or2,
            CellKind::Nor2,
            CellKind::Ao21,
            CellKind::Ao22,
            CellKind::Tie0,
            CellKind::Tie1,
        ];
        for (ci, cell) in cells.iter().enumerate() {
            let n = cell.num_inputs();
            let words: Vec<u64> = (0..n).map(|i| mix((ci * 7 + i) as u64)).collect();
            let out = cell.eval_lanes(&words).unwrap();
            for lane in 0..64 {
                let scalar: Vec<bool> = words.iter().map(|w| w >> lane & 1 == 1).collect();
                assert_eq!(
                    out >> lane & 1 == 1,
                    cell.eval(&scalar),
                    "{cell} lane {lane}"
                );
            }
            assert_eq!(cell.eval_lanes_seq(&words, mix(99)).unwrap(), out);
        }
    }

    #[test]
    fn celem_lanes_follow_the_set_hold_clear_rule() {
        let a = 0b1100u64;
        let b = 0b1010u64;
        let prev = 0b0110u64;
        // lane0: a=0,b=0 -> clear; lane1: a=0,b=1,prev=1 -> hold 1;
        // lane2: a=1,b=0,prev=1 -> hold 1; lane3: a=1,b=1 -> set.
        assert_eq!(
            CellKind::Celem2.eval_lanes_seq(&[a, b], prev).unwrap(),
            0b1110
        );
        assert_eq!(
            CellKind::Celem2.eval_lanes(&[a, b]),
            Err(CellError::Stateful(CellKind::Celem2))
        );
        assert_eq!(
            CellKind::Celem2.eval_lanes_seq(&[a], prev),
            Err(CellError::WrongInputCount {
                cell: CellKind::Celem2,
                expected: 2,
                got: 1
            })
        );
    }

    #[test]
    fn try_eval_reports_instead_of_panicking() {
        assert_eq!(
            CellKind::Celem2.try_eval(&[true, true]),
            Err(CellError::Stateful(CellKind::Celem2))
        );
        assert_eq!(
            CellKind::And2.try_eval(&[true]),
            Err(CellError::WrongInputCount {
                cell: CellKind::And2,
                expected: 2,
                got: 1
            })
        );
        assert_eq!(CellKind::And2.try_eval(&[true, false]), Ok(false));
    }
}
