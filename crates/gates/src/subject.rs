//! The generic two-level netlist and its NAND2/INV subject graph.
//!
//! Mirrors the paper's §5: each synthesized controller's two-level
//! nand-nand implementation is modelled structurally in three modules — one
//! per logic level plus a top module — before technology mapping. The
//! subject graph decomposes everything into 2-input NANDs and inverters,
//! the canonical base for tree-covering technology mapping.

use bmbe_logic::{Cover, Cube};
use std::collections::HashMap;
use std::fmt;

/// Module tag matching the paper's three-Verilog-module split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Module {
    /// First logic level: input inverters and product NANDs.
    Level1,
    /// Second logic level: output NANDs.
    Level2,
}

/// A node of the subject graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubjectNode {
    /// Primary input `i` of the controller logic (including state bits).
    Input(usize),
    /// Constant 0 (for empty covers).
    Zero,
    /// Constant 1.
    One,
    /// Inverter over a node.
    Inv(usize),
    /// 2-input NAND over two nodes.
    Nand2(usize, usize),
}

/// The subject graph of one controller: a DAG of [`SubjectNode`]s with one
/// root per logic function.
#[derive(Debug, Clone)]
pub struct SubjectGraph {
    /// The nodes; `Input` nodes come first.
    pub nodes: Vec<SubjectNode>,
    /// Module tag per node (inputs tagged `Level1`; tags drive the split-
    /// module mapping restriction).
    pub modules: Vec<Module>,
    /// Root node of each function, with its name.
    pub roots: Vec<(String, usize)>,
    /// Number of primary inputs.
    pub num_inputs: usize,
    /// Fanout count per node.
    pub fanout: Vec<usize>,
}

impl SubjectGraph {
    /// Builds the subject graph of a set of single-output covers over a
    /// common input space (the paper's nand-nand two-level form), with each
    /// function's products private (Minimalist's single-output *speed*
    /// mode).
    ///
    /// # Panics
    ///
    /// Panics if a cover references more variables than `num_inputs`.
    pub fn from_covers(num_inputs: usize, functions: &[(String, &Cover)]) -> Self {
        Self::build(num_inputs, functions, false)
    }

    /// Like [`SubjectGraph::from_covers`], but identical product terms are
    /// shared across functions (the *area* mode: one NAND drives every
    /// second-level gate that uses the product).
    pub fn from_covers_shared(num_inputs: usize, functions: &[(String, &Cover)]) -> Self {
        Self::build(num_inputs, functions, true)
    }

    fn build(num_inputs: usize, functions: &[(String, &Cover)], share: bool) -> Self {
        let mut g = Builder {
            nodes: (0..num_inputs).map(SubjectNode::Input).collect(),
            modules: vec![Module::Level1; num_inputs],
            inv_cache: HashMap::new(),
            product_cache: if share { Some(HashMap::new()) } else { None },
        };
        let mut roots = Vec::new();
        for (name, cover) in functions {
            let root = g.build_function(num_inputs, cover);
            roots.push((name.clone(), root));
        }
        let mut fanout = vec![0usize; g.nodes.len()];
        for node in &g.nodes {
            match node {
                SubjectNode::Inv(a) => fanout[*a] += 1,
                SubjectNode::Nand2(a, b) => {
                    fanout[*a] += 1;
                    fanout[*b] += 1;
                }
                _ => {}
            }
        }
        for (_, r) in &roots {
            fanout[*r] += 1; // roots are observed
        }
        SubjectGraph {
            num_inputs,
            nodes: g.nodes,
            modules: g.modules,
            roots,
            fanout,
        }
    }

    /// Two-valued evaluation of every node for an input assignment packed
    /// into a `u64`.
    pub fn eval(&self, inputs: u64) -> Vec<bool> {
        let mut values = vec![false; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            values[i] = match node {
                SubjectNode::Input(k) => inputs >> k & 1 == 1,
                SubjectNode::Zero => false,
                SubjectNode::One => true,
                SubjectNode::Inv(a) => !values[*a],
                SubjectNode::Nand2(a, b) => !(values[*a] && values[*b]),
            };
        }
        values
    }

    /// Number of NAND2/INV primitives (generic-netlist size).
    pub fn num_primitives(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, SubjectNode::Inv(_) | SubjectNode::Nand2(..)))
            .count()
    }
}

impl fmt::Display for SubjectGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "subject graph: {} nodes, {} roots",
            self.nodes.len(),
            self.roots.len()
        )?;
        for (name, r) in &self.roots {
            writeln!(f, "  {name} <- n{r}")?;
        }
        Ok(())
    }
}

struct Builder {
    nodes: Vec<SubjectNode>,
    modules: Vec<Module>,
    inv_cache: HashMap<usize, usize>,
    /// When sharing, maps each product cube to its level-1 NAND node.
    product_cache: Option<HashMap<Cube, usize>>,
}

impl Builder {
    fn push(&mut self, node: SubjectNode, module: Module) -> usize {
        self.nodes.push(node);
        self.modules.push(module);
        self.nodes.len() - 1
    }

    /// A (cached) inverter over a node: input inverters are shared, as in a
    /// real two-level structure.
    fn inv(&mut self, a: usize, module: Module) -> usize {
        if let Some(&n) = self.inv_cache.get(&a) {
            return n;
        }
        let n = self.push(SubjectNode::Inv(a), module);
        self.inv_cache.insert(a, n);
        n
    }

    /// k-input NAND as a balanced tree: AND subtrees (NAND2+INV pairs)
    /// joined by a root NAND2 (a single INV for k = 1), giving logarithmic
    /// logic depth as a real wide-gate decomposition would.
    fn nand_chain(&mut self, ins: Vec<usize>, module: Module) -> usize {
        match ins.len() {
            0 => self.push(SubjectNode::Zero, module),
            1 => self.push(SubjectNode::Inv(ins[0]), module),
            _ => {
                let mid = ins.len() / 2;
                let left = self.and_tree(&ins[..mid], module);
                let right = self.and_tree(&ins[mid..], module);
                self.push(SubjectNode::Nand2(left, right), module)
            }
        }
    }

    /// Balanced AND tree over the inputs.
    fn and_tree(&mut self, ins: &[usize], module: Module) -> usize {
        match ins.len() {
            1 => ins[0],
            _ => {
                let mid = ins.len() / 2;
                let left = self.and_tree(&ins[..mid], module);
                let right = self.and_tree(&ins[mid..], module);
                let nand = self.push(SubjectNode::Nand2(left, right), module);
                self.push(SubjectNode::Inv(nand), module)
            }
        }
    }

    fn build_function(&mut self, num_inputs: usize, cover: &Cover) -> usize {
        if cover.is_empty() {
            return self.push(SubjectNode::Zero, Module::Level2);
        }
        // Level 1: one NAND per product (active-low product terms); in
        // sharing mode identical products across functions reuse one gate.
        let mut product_nets = Vec::new();
        for cube in cover.cubes() {
            if let Some(cache) = &self.product_cache {
                if let Some(&node) = cache.get(cube) {
                    product_nets.push(node);
                    continue;
                }
            }
            let mut lits = Vec::new();
            for i in 0..num_inputs {
                match cube.var_value(i) {
                    Some(true) => lits.push(i),
                    Some(false) => {
                        let inv = self.inv(i, Module::Level1);
                        lits.push(inv);
                    }
                    None => {}
                }
            }
            if lits.is_empty() {
                // The constant-1 product: function is a tautology.
                return self.push(SubjectNode::One, Module::Level2);
            }
            let node = self.nand_chain(lits, Module::Level1);
            if let Some(cache) = &mut self.product_cache {
                cache.insert(*cube, node);
            }
            product_nets.push(node);
        }
        // Level 2: NAND of the product terms.
        self.nand_chain(product_nets, Module::Level2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmbe_logic::Cube;

    fn cover(strs: &[&str]) -> Cover {
        strs.iter().map(|s| Cube::parse(s).unwrap()).collect()
    }

    #[test]
    fn two_level_function_evaluates() {
        // f = x0 x1' + x2
        let f = cover(&["10-", "--1"]);
        let g = SubjectGraph::from_covers(3, &[("f".into(), &f)]);
        let root = g.roots[0].1;
        for point in 0..8u64 {
            let expect = f.eval(point);
            assert_eq!(g.eval(point)[root], expect, "point {point:#b}");
        }
    }

    #[test]
    fn empty_cover_is_constant_zero() {
        let f = Cover::empty();
        let g = SubjectGraph::from_covers(2, &[("f".into(), &f)]);
        assert!(!g.eval(0b00)[g.roots[0].1]);
        assert!(!g.eval(0b11)[g.roots[0].1]);
    }

    #[test]
    fn single_product_is_and() {
        let f = cover(&["11"]);
        let g = SubjectGraph::from_covers(2, &[("f".into(), &f)]);
        let root = g.roots[0].1;
        assert!(g.eval(0b11)[root]);
        assert!(!g.eval(0b01)[root]);
    }

    #[test]
    fn input_inverters_are_shared() {
        // Two products both using x0': one INV node.
        let f = cover(&["01", "0-"]);
        let g = SubjectGraph::from_covers(2, &[("f".into(), &f)]);
        let inv_count = g
            .nodes
            .iter()
            .filter(|n| matches!(n, SubjectNode::Inv(a) if *a < 2))
            .count();
        assert_eq!(inv_count, 1);
    }

    #[test]
    fn multiple_functions_share_inputs() {
        let f = cover(&["1-"]);
        let h = cover(&["-1"]);
        let g = SubjectGraph::from_covers(2, &[("f".into(), &f), ("h".into(), &h)]);
        assert_eq!(g.roots.len(), 2);
        let vals = g.eval(0b01);
        assert!(vals[g.roots[0].1]);
        assert!(!vals[g.roots[1].1]);
    }

    #[test]
    fn wide_products_decompose() {
        let f = cover(&["11111"]);
        let g = SubjectGraph::from_covers(5, &[("f".into(), &f)]);
        let root = g.roots[0].1;
        assert!(g.eval(0b11111)[root]);
        assert!(!g.eval(0b11110)[root]);
        assert!(g.num_primitives() > 3);
    }
}

#[cfg(test)]
mod sharing_tests {
    use super::*;
    use bmbe_logic::{Cover, Cube};

    #[test]
    fn shared_products_reduce_gate_count() {
        // Two functions sharing the product x0 x1.
        let f: Cover = [Cube::parse("11-").unwrap(), Cube::parse("--1").unwrap()]
            .into_iter()
            .collect();
        let h: Cover = [Cube::parse("11-").unwrap()].into_iter().collect();
        let fs = vec![("f".to_string(), &f), ("h".to_string(), &h)];
        let private = SubjectGraph::from_covers(3, &fs);
        let shared = SubjectGraph::from_covers_shared(3, &fs);
        assert!(shared.num_primitives() < private.num_primitives());
        // Functionality unchanged.
        for p in 0..8u64 {
            assert_eq!(
                private.eval(p)[private.roots[0].1],
                shared.eval(p)[shared.roots[0].1]
            );
            assert_eq!(
                private.eval(p)[private.roots[1].1],
                shared.eval(p)[shared.roots[1].1]
            );
        }
    }
}
