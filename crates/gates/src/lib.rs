#![warn(missing_docs)]
//! # bmbe-gates
//!
//! Gate-level substrate of the burst-mode back-end: a synthetic
//! standard-cell [`cell::Library`] (the AMS 0.35 µm stand-in), the generic
//! NAND-NAND two-level structure and its NAND2/INV [`subject::SubjectGraph`],
//! dynamic-programming tree-covering technology [`mod@map`]ping restricted to
//! hazard-non-increasing patterns, and the post-mapping [`hazard`] analysis
//! (functional equivalence + Eichelberger ternary simulation).
//!
//! # Examples
//!
//! ```
//! use bmbe_gates::{Library, MapObjective, MapStyle, SubjectGraph, map};
//! use bmbe_logic::{Cover, Cube};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let f: Cover = [Cube::parse("11--").ok_or("cube")?,
//!                 Cube::parse("--11").ok_or("cube")?].into_iter().collect();
//! let subject = SubjectGraph::from_covers(4, &[("f".into(), &f)]);
//! let mapped = map(&subject, &Library::cmos035(), MapObjective::Area,
//!                  MapStyle::WholeController);
//! assert!(mapped.area > 0.0);
//! # Ok(())
//! # }
//! ```

pub mod cell;
pub mod hazard;
pub mod map;
pub mod subject;

pub use cell::{CellError, CellKind, Library};
pub use hazard::{
    eval_ternary, try_eval_ternary, verify_equivalence_algebraic, verify_equivalence_pointwise,
    verify_mapped, HazardViolation,
};
pub use map::{map, MapObjective, MapStyle, MappedGate, MappedNetlist};
pub use subject::{Module, SubjectGraph, SubjectNode};
