//! Technology mapping by dynamic-programming tree covering.
//!
//! The subject graph is split into trees at multi-fanout nodes (and, in the
//! paper's split-module mode, at module boundaries — the reason the paper's
//! flow "prohibits the Design Compiler from finding an optimal
//! implementation across the two levels of logic", §6). Each tree is
//! covered by library patterns with minimum area or minimum delay.
//!
//! All patterns are compositions of NAND2/INV — DeMorgan-style regroupings
//! only — so the mapping is *hazard-non-increasing* in the sense of
//! [Kung 1992]: it never introduces logic hazards absent from the two-level
//! form.

use crate::cell::{CellKind, Library};
use crate::subject::{SubjectGraph, SubjectNode};
use std::collections::HashMap;
use std::fmt;

/// Mapping objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MapObjective {
    /// Minimize total cell area.
    Area,
    /// Minimize worst output arrival time.
    Delay,
}

/// Mapping style: whether pattern matching may cross the two logic levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MapStyle {
    /// The paper's flow: the three Verilog modules are mapped separately, so
    /// no pattern crosses a module boundary.
    SplitModules,
    /// Whole-controller mapping (the ablation of §6's area discussion).
    WholeController,
}

/// One mapped gate.
#[derive(Debug, Clone)]
pub struct MappedGate {
    /// The chosen cell.
    pub cell: CellKind,
    /// Input subject-node ids (the nets).
    pub inputs: Vec<usize>,
    /// Output subject-node id.
    pub output: usize,
}

/// A technology-mapped controller netlist.
#[derive(Debug, Clone)]
pub struct MappedNetlist {
    /// The gates, in topological order.
    pub gates: Vec<MappedGate>,
    /// Total area (µm²).
    pub area: f64,
    /// Arrival time (ns) per function root, keyed by function name.
    pub output_delays: HashMap<String, f64>,
    /// The subject graph the mapping covers (kept for verification).
    pub subject: SubjectGraph,
}

impl MappedNetlist {
    /// Worst output arrival time (ns).
    pub fn critical_delay(&self) -> f64 {
        self.output_delays.values().fold(0.0, |a, &b| a.max(b))
    }

    /// Number of mapped cells.
    pub fn num_cells(&self) -> usize {
        self.gates.len()
    }

    /// Rewrites every function-root name through `f` (delay table keys and
    /// subject-graph roots). Used by the flow's controller cache to
    /// re-instantiate an artifact mapped under canonical channel names with
    /// a component's actual names; the netlist structure, areas, and delays
    /// are untouched.
    pub fn rename_roots<F: Fn(&str) -> String>(&mut self, f: F) {
        self.output_delays = self
            .output_delays
            .drain()
            .map(|(name, delay)| (f(&name), delay))
            .collect();
        for (name, _) in &mut self.subject.roots {
            *name = f(name);
        }
    }

    /// Evaluates the mapped netlist at an input point, returning the value
    /// of each function root (in root order).
    ///
    /// # Panics
    ///
    /// Panics where [`MappedNetlist::try_eval`] errors (a stateful cell in
    /// the netlist); verification code uses `try_eval` and reports.
    pub fn eval(&self, inputs: u64) -> Vec<bool> {
        self.try_eval(inputs).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Evaluates the mapped netlist at an input point with a typed error
    /// for cells that have no combinational value (see
    /// [`crate::cell::CellError`]).
    ///
    /// # Errors
    ///
    /// The first unevaluatable gate, in topological order.
    pub fn try_eval(&self, inputs: u64) -> Result<Vec<bool>, crate::cell::CellError> {
        let mut values = vec![false; self.subject.nodes.len()];
        for i in 0..self.subject.num_inputs {
            values[i] = inputs >> i & 1 == 1;
        }
        for (i, n) in self.subject.nodes.iter().enumerate() {
            if matches!(n, SubjectNode::One) {
                values[i] = true;
            }
        }
        let mut ins = Vec::with_capacity(4);
        for g in &self.gates {
            ins.clear();
            ins.extend(g.inputs.iter().map(|n| values[*n]));
            values[g.output] = g.cell.try_eval(&ins)?;
        }
        Ok(self.subject.roots.iter().map(|(_, r)| values[*r]).collect())
    }
}

impl fmt::Display for MappedNetlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "mapped: {} cells, {:.1} um^2, {:.3} ns critical",
            self.num_cells(),
            self.area,
            self.critical_delay()
        )?;
        for g in &self.gates {
            writeln!(f, "  {} n{} <- {:?}", g.cell, g.output, g.inputs)?;
        }
        Ok(())
    }
}

/// A pattern: a cell plus its NAND2/INV tree template. Leaves bind the
/// pattern inputs in order.
#[derive(Debug, Clone)]
enum Shape {
    Leaf,
    Inv(Box<Shape>),
    Nand2(Box<Shape>, Box<Shape>),
}

fn patterns() -> Vec<(CellKind, Shape)> {
    use Shape::{Inv, Leaf, Nand2};
    let leaf = || Box::new(Leaf);
    vec![
        (CellKind::Inv, Inv(leaf())),
        (CellKind::Nand2, Nand2(leaf(), leaf())),
        // NAND3 = NAND2(INV(NAND2(a,b)), c)   (the chain decomposition)
        (
            CellKind::Nand3,
            Nand2(Box::new(Inv(Box::new(Nand2(leaf(), leaf())))), leaf()),
        ),
        // NAND4 = NAND2(INV(NAND2(a,b)), INV(NAND2(c,d))) (balanced form)
        (
            CellKind::Nand4,
            Nand2(
                Box::new(Inv(Box::new(Nand2(leaf(), leaf())))),
                Box::new(Inv(Box::new(Nand2(leaf(), leaf())))),
            ),
        ),
        // AND2 = INV(NAND2(a,b))
        (CellKind::And2, Inv(Box::new(Nand2(leaf(), leaf())))),
        // OR2 = NAND2(INV(a), INV(b))
        (
            CellKind::Or2,
            Nand2(Box::new(Inv(leaf())), Box::new(Inv(leaf()))),
        ),
        // NOR2 = INV(OR2)
        (
            CellKind::Nor2,
            Inv(Box::new(Nand2(
                Box::new(Inv(leaf())),
                Box::new(Inv(leaf())),
            ))),
        ),
        // AO21: a·b + c = NAND2(NAND2(a,b), INV(c))
        (
            CellKind::Ao21,
            Nand2(Box::new(Nand2(leaf(), leaf())), Box::new(Inv(leaf()))),
        ),
        // AO22: a·b + c·d = NAND2(NAND2(a,b), NAND2(c,d))
        (
            CellKind::Ao22,
            Nand2(
                Box::new(Nand2(leaf(), leaf())),
                Box::new(Nand2(leaf(), leaf())),
            ),
        ),
    ]
}

/// Maps a subject graph onto the library.
pub fn map(
    subject: &SubjectGraph,
    library: &Library,
    objective: MapObjective,
    style: MapStyle,
) -> MappedNetlist {
    let pats = patterns();
    // Tree roots: multi-fanout nodes, function roots, and (in split mode)
    // any node whose consumer lives in a different module. A node is a
    // "net" (potential pattern leaf / tree boundary) if it is an input,
    // constant, multi-fanout, or module boundary.
    let is_boundary = |n: usize| -> bool {
        match subject.nodes[n] {
            SubjectNode::Input(_) | SubjectNode::Zero | SubjectNode::One => true,
            _ => {
                if subject.fanout[n] > 1 {
                    return true;
                }
                if style == MapStyle::SplitModules {
                    // Does any consumer live in another module?
                    let my_module = subject.modules[n];
                    for (i, node) in subject.nodes.iter().enumerate() {
                        let feeds = match node {
                            SubjectNode::Inv(a) => *a == n,
                            SubjectNode::Nand2(a, b) => *a == n || *b == n,
                            _ => false,
                        };
                        if feeds && subject.modules[i] != my_module {
                            return true;
                        }
                    }
                }
                false
            }
        }
    };
    let boundary: Vec<bool> = (0..subject.nodes.len()).map(is_boundary).collect();

    // DP over nodes in topological (index) order: best (cost, arrival,
    // chosen pattern with leaf bindings) to realize each node as a gate
    // output.
    #[derive(Clone)]
    struct Best {
        cost: f64,
        arrival: f64,
        cell: CellKind,
        leaves: Vec<usize>,
    }
    let mut best: Vec<Option<Best>> = vec![None; subject.nodes.len()];
    // arrival/cost of a node when used as a pattern leaf.
    let leaf_arrival = |n: usize, best: &Vec<Option<Best>>| -> f64 {
        match subject.nodes[n] {
            SubjectNode::Input(_) | SubjectNode::Zero | SubjectNode::One => 0.0,
            _ => best[n].as_ref().map_or(f64::INFINITY, |b| b.arrival),
        }
    };
    let leaf_cost = |n: usize, best: &Vec<Option<Best>>| -> f64 {
        match subject.nodes[n] {
            SubjectNode::Input(_) | SubjectNode::Zero | SubjectNode::One => 0.0,
            _ if boundary[n] => 0.0, // counted once where the tree is built
            _ => best[n].as_ref().map_or(f64::INFINITY, |b| b.cost),
        }
    };

    for n in 0..subject.nodes.len() {
        if matches!(
            subject.nodes[n],
            SubjectNode::Input(_) | SubjectNode::Zero | SubjectNode::One
        ) {
            continue;
        }
        let mut candidate: Option<Best> = None;
        for (cell, shape) in &pats {
            let mut leaves = Vec::new();
            if match_shape(subject, &boundary, n, shape, true, &mut leaves) {
                let mut cost = library.area(*cell);
                let mut arrival = 0.0f64;
                for &l in &leaves {
                    cost += leaf_cost(l, &best);
                    arrival = arrival.max(leaf_arrival(l, &best));
                }
                arrival += library.delay(*cell);
                let better = match (&candidate, objective) {
                    (None, _) => true,
                    (Some(c), MapObjective::Area) => {
                        cost < c.cost || (cost == c.cost && arrival < c.arrival)
                    }
                    (Some(c), MapObjective::Delay) => {
                        arrival < c.arrival || (arrival == c.arrival && cost < c.cost)
                    }
                };
                if better && cost.is_finite() {
                    candidate = Some(Best {
                        cost,
                        arrival,
                        cell: *cell,
                        leaves,
                    });
                }
            }
        }
        best[n] = candidate;
    }

    // Emit gates for every "live" tree root: function roots + boundary
    // nodes reachable from them.
    let mut gates: Vec<MappedGate> = Vec::new();
    let mut emitted: Vec<bool> = vec![false; subject.nodes.len()];
    let mut area = 0.0;
    let mut stack: Vec<usize> = subject.roots.iter().map(|(_, r)| *r).collect();
    let mut order: Vec<usize> = Vec::new();
    while let Some(n) = stack.pop() {
        if emitted[n]
            || matches!(
                subject.nodes[n],
                SubjectNode::Input(_) | SubjectNode::Zero | SubjectNode::One
            )
        {
            continue;
        }
        emitted[n] = true;
        order.push(n);
        // Emit this node's pattern and recurse into interior + leaves.
        let b = best[n].as_ref().expect("every NAND/INV node is coverable");
        for &l in &b.leaves {
            stack.push(l);
        }
        // Interior nodes are covered by the pattern; their own best is not
        // emitted. We must also walk interior single-fanout nodes' leaves —
        // already included in b.leaves by construction.
    }
    // Topological: emit in increasing node order (indices are topological).
    order.sort_unstable();
    for n in order {
        let b = best[n].as_ref().expect("coverable");
        area += library.area(b.cell);
        gates.push(MappedGate {
            cell: b.cell,
            inputs: b.leaves.clone(),
            output: n,
        });
    }
    // Arrival per root via the DP values.
    let mut output_delays = HashMap::new();
    for (name, r) in &subject.roots {
        let d = match subject.nodes[*r] {
            SubjectNode::Input(_) | SubjectNode::Zero | SubjectNode::One => 0.0,
            _ => best[*r].as_ref().map_or(0.0, |b| b.arrival),
        };
        output_delays.insert(name.clone(), d);
    }
    MappedNetlist {
        gates,
        area,
        output_delays,
        subject: subject.clone(),
    }
}

/// Tries to match `shape` rooted at node `n`; collects leaf node ids.
/// Interior pattern nodes must be single-fanout non-boundary nodes (except
/// the root itself).
fn match_shape(
    subject: &SubjectGraph,
    boundary: &[bool],
    n: usize,
    shape: &Shape,
    is_root: bool,
    leaves: &mut Vec<usize>,
) -> bool {
    if !is_root && boundary[n] {
        // Can't absorb a boundary node into a pattern interior — but it can
        // be a leaf, handled by the caller passing Shape::Leaf.
        return matches!(shape, Shape::Leaf) && {
            leaves.push(n);
            true
        };
    }
    match shape {
        Shape::Leaf => {
            leaves.push(n);
            true
        }
        Shape::Inv(inner) => match subject.nodes[n] {
            SubjectNode::Inv(a) => match_shape(subject, boundary, a, inner, false, leaves),
            _ => false,
        },
        Shape::Nand2(l, r) => match subject.nodes[n] {
            SubjectNode::Nand2(a, b) => {
                let mark = leaves.len();
                if match_shape(subject, boundary, a, l, false, leaves)
                    && match_shape(subject, boundary, b, r, false, leaves)
                {
                    return true;
                }
                leaves.truncate(mark);
                // Try the commuted orientation.
                match_shape(subject, boundary, b, l, false, leaves)
                    && match_shape(subject, boundary, a, r, false, leaves)
            }
            _ => false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmbe_logic::{Cover, Cube};

    fn cover(strs: &[&str]) -> Cover {
        strs.iter().map(|s| Cube::parse(s).unwrap()).collect()
    }

    fn map_fn(strs: &[&str], n: usize, obj: MapObjective, style: MapStyle) -> MappedNetlist {
        let f = cover(strs);
        let g = SubjectGraph::from_covers(n, &[("f".into(), &f)]);
        map(&g, &Library::cmos035(), obj, style)
    }

    #[test]
    fn mapped_netlist_is_functionally_correct() {
        for style in [MapStyle::SplitModules, MapStyle::WholeController] {
            for obj in [MapObjective::Area, MapObjective::Delay] {
                let f = cover(&["10-", "-11", "1-1"]);
                let g = SubjectGraph::from_covers(3, &[("f".into(), &f)]);
                let m = map(&g, &Library::cmos035(), obj, style);
                for point in 0..8u64 {
                    assert_eq!(
                        m.eval(point)[0],
                        f.eval(point),
                        "{style:?} {obj:?} {point:#b}"
                    );
                }
            }
        }
    }

    #[test]
    fn whole_mapping_no_worse_than_split() {
        // Crossing the level boundary can only help.
        let split = map_fn(
            &["11-", "--1"],
            3,
            MapObjective::Area,
            MapStyle::SplitModules,
        );
        let whole = map_fn(
            &["11-", "--1"],
            3,
            MapObjective::Area,
            MapStyle::WholeController,
        );
        assert!(
            whole.area <= split.area,
            "whole {} vs split {}",
            whole.area,
            split.area
        );
    }

    #[test]
    fn ao_cells_picked_for_two_level_shapes() {
        // f = ab + cd maps to a single AO22 in whole-controller mode.
        let m = map_fn(
            &["11--", "--11"],
            4,
            MapObjective::Area,
            MapStyle::WholeController,
        );
        assert!(m.gates.iter().any(|g| g.cell == CellKind::Ao22), "{m}");
    }

    #[test]
    fn split_mode_cannot_cross_levels() {
        // In split mode the same f = ab + cd keeps its NAND-NAND structure.
        let m = map_fn(
            &["11--", "--11"],
            4,
            MapObjective::Area,
            MapStyle::SplitModules,
        );
        assert!(m.gates.iter().all(|g| g.cell != CellKind::Ao22), "{m}");
    }

    #[test]
    fn delay_objective_not_slower_than_area() {
        let fast = map_fn(
            &["1111", "0000"],
            4,
            MapObjective::Delay,
            MapStyle::WholeController,
        );
        let small = map_fn(
            &["1111", "0000"],
            4,
            MapObjective::Area,
            MapStyle::WholeController,
        );
        assert!(fast.critical_delay() <= small.critical_delay() + 1e-9);
    }

    #[test]
    fn multi_output_netlist_maps() {
        let f = cover(&["1-"]);
        let h = cover(&["01"]);
        let g = SubjectGraph::from_covers(2, &[("f".into(), &f), ("h".into(), &h)]);
        let m = map(
            &g,
            &Library::cmos035(),
            MapObjective::Area,
            MapStyle::SplitModules,
        );
        assert_eq!(m.output_delays.len(), 2);
        for point in 0..4u64 {
            let vals = m.eval(point);
            assert_eq!(vals[0], f.eval(point));
            assert_eq!(vals[1], h.eval(point));
        }
    }

    #[test]
    fn constant_function_maps_to_nothing() {
        let m = map_fn(&[], 2, MapObjective::Area, MapStyle::SplitModules);
        assert_eq!(m.num_cells(), 0);
        assert!(!m.eval(0)[0]);
    }
}
