//! Property tests of the cube-algebraic equivalence checker against the
//! pointwise 2^n oracle: on randomly generated covers (mapped through the
//! real technology mapper) the two checks must agree exactly — both clean
//! when the netlist matches its covers, both failing when the claimed
//! covers are perturbed, and any algebraic witness must be a genuine
//! disagreement point.

use bmbe_bm::{Controller, StateAssignment};
use bmbe_gates::{
    map, verify_equivalence_algebraic, verify_equivalence_pointwise, Library, MapObjective,
    MapStyle, SubjectGraph,
};
use bmbe_logic::{Cover, Cube};
use proptest::prelude::*;

fn build_covers(n: usize, raw: &[Vec<(u64, u64)>]) -> Vec<Cover> {
    raw.iter()
        .map(|cubes| {
            cubes
                .iter()
                .map(|&(care, value)| Cube::from_masks(n, care, value))
                .collect()
        })
        .collect()
}

/// Wraps plain covers in a state-free controller so the equivalence
/// checkers (which take a [`Controller`]) can run on them.
fn controller_of(n: usize, covers: &[Cover]) -> Controller {
    Controller {
        name: "prop".into(),
        inputs: (0..n).map(|i| format!("x{i}")).collect(),
        outputs: (0..covers.len()).map(|i| format!("f{i}")).collect(),
        num_state_bits: 0,
        output_covers: covers.to_vec(),
        next_state_covers: Vec::new(),
        assignment: StateAssignment {
            num_bits: 0,
            codes: Vec::new(),
        },
        initial_inputs: 0,
        initial_outputs: 0,
        initial_code: 0,
        exact: true,
        minimize_stats: Default::default(),
        function_specs: Vec::new(),
    }
}

fn arb_raw_covers() -> impl Strategy<Value = Vec<Vec<(u64, u64)>>> {
    proptest::collection::vec(
        proptest::collection::vec((any::<u64>(), any::<u64>()), 1..6),
        1..4,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn algebraic_check_agrees_with_pointwise_oracle(
        n in 3usize..9,
        raw in arb_raw_covers(),
        area in any::<bool>(),
        split in any::<bool>(),
    ) {
        let covers = build_covers(n, &raw);
        let functions: Vec<(String, &Cover)> =
            covers.iter().enumerate().map(|(i, c)| (format!("f{i}"), c)).collect();
        let subject = SubjectGraph::from_covers(n, &functions);
        let objective = if area { MapObjective::Area } else { MapObjective::Delay };
        let style = if split { MapStyle::SplitModules } else { MapStyle::WholeController };
        let netlist = map(&subject, &Library::cmos035(), objective, style);
        let ctrl = controller_of(n, &covers);

        // The mapper preserves functions, so both checks must come back
        // clean on the true covers.
        prop_assert_eq!(verify_equivalence_pointwise(&ctrl, &netlist), None);
        prop_assert_eq!(verify_equivalence_algebraic(&ctrl, &netlist), None);
    }

    #[test]
    fn algebraic_check_detects_perturbed_covers(
        n in 3usize..9,
        raw in arb_raw_covers(),
        extra_care in any::<u64>(),
        extra_value in any::<u64>(),
        target in any::<u64>(),
    ) {
        let covers = build_covers(n, &raw);
        let functions: Vec<(String, &Cover)> =
            covers.iter().enumerate().map(|(i, c)| (format!("f{i}"), c)).collect();
        let subject = SubjectGraph::from_covers(n, &functions);
        let netlist =
            map(&subject, &Library::cmos035(), MapObjective::Area, MapStyle::WholeController);

        // Claim a perturbed cover for one function; the perturbation may be
        // a no-op (the added cube can be redundant), so the oracle decides
        // the expected verdict and the algebraic check must match it.
        let mut claimed = covers.clone();
        let ti = (target as usize) % claimed.len();
        claimed[ti].push(Cube::from_masks(n, extra_care, extra_value));
        let ctrl = controller_of(n, &claimed);

        let oracle = verify_equivalence_pointwise(&ctrl, &netlist);
        let algebraic = verify_equivalence_algebraic(&ctrl, &netlist);
        prop_assert_eq!(oracle.is_some(), algebraic.is_some());
        if let Some(bmbe_gates::HazardViolation::NotEquivalent { function, point }) = algebraic {
            let fi = ctrl.outputs.iter().position(|o| *o == function).expect("known function");
            prop_assert!(
                netlist.eval(point)[fi] != claimed[fi].eval(point),
                "witness {:#x} must be a real disagreement for {}", point, function
            );
        }
    }
}
