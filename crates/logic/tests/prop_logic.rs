//! Property-based tests of the cube algebra and the hazard-free minimizer.

use bmbe_logic::cube::Cube;
use bmbe_logic::hfmin::FunctionSpec;
use proptest::prelude::*;

const N: usize = 6;

fn arb_cube() -> impl Strategy<Value = Cube> {
    (any::<u64>(), any::<u64>()).prop_map(|(care, value)| Cube::from_masks(N, care, value))
}

fn arb_point() -> impl Strategy<Value = u64> {
    0u64..(1 << N)
}

proptest! {
    #[test]
    fn display_parse_roundtrip(c in arb_cube()) {
        let text = c.to_string();
        let back = Cube::parse(&text).expect("display emits valid syntax");
        prop_assert_eq!(back, c);
    }

    #[test]
    fn containment_is_pointwise(c in arb_cube(), d in arb_cube()) {
        if c.contains_cube(&d) {
            for p in d.points() {
                prop_assert!(c.contains_point(p));
            }
        }
    }

    #[test]
    fn intersection_agrees_with_points(c in arb_cube(), d in arb_cube()) {
        match c.intersection(&d) {
            Some(ix) => {
                // Every point of the intersection is in both.
                for p in ix.points() {
                    prop_assert!(c.contains_point(p) && d.contains_point(p));
                }
                prop_assert!(c.intersects(&d));
            }
            None => {
                for p in c.points() {
                    prop_assert!(!d.contains_point(p));
                }
                prop_assert!(!c.intersects(&d));
            }
        }
    }

    #[test]
    fn supercube_contains_both(c in arb_cube(), d in arb_cube()) {
        let s = c.supercube(&d);
        prop_assert!(s.contains_cube(&c));
        prop_assert!(s.contains_cube(&d));
    }

    #[test]
    fn spanning_cube_is_minimal(a in arb_point(), b in arb_point()) {
        let t = Cube::spanning(N, a, b);
        prop_assert!(t.contains_point(a));
        prop_assert!(t.contains_point(b));
        prop_assert_eq!(t.num_literals(), N - (a ^ b).count_ones() as usize);
    }

    #[test]
    fn point_count_matches_enumeration(c in arb_cube()) {
        let listed = c.points().count() as u64;
        prop_assert_eq!(listed, c.num_points());
    }
}

/// A burst-mode-like random function: a cycle of transitions alternating
/// the function value, mimicking how the synthesizer specifies outputs.
fn arb_spec() -> impl Strategy<Value = FunctionSpec> {
    arb_spec_n(N)
}

/// Same walk, parameterized on the variable count (the kernel equivalence
/// properties are exercised up to 10 variables).
fn arb_spec_n(n: usize) -> impl Strategy<Value = FunctionSpec> {
    proptest::collection::vec((0u64..(1 << n), any::<bool>()), 2..8).prop_map(move |steps| {
        let mut spec = FunctionSpec::new(n);
        let mut cur = 0u64;
        let mut val = false;
        // Walk a path of transitions; each step moves to a new point and
        // may flip the function. Conflicts are avoided by the caller check.
        for (target, flip) in steps {
            let to_val = val ^ flip;
            if target == cur && flip {
                continue; // degenerate dynamic transition
            }
            spec.add_transition(bmbe_logic::hfmin::SpecTransition {
                start: cur,
                end: target,
                from: val,
                to: to_val,
            });
            cur = target;
            val = to_val;
        }
        spec
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn minimizer_output_is_always_hazard_free(spec in arb_spec()) {
        // Random walks can assign conflicting values to shared points;
        // those are legitimately rejected. For consistent specs, the
        // minimizer's cover must pass the independent structural check.
        if spec.check_consistency().is_err() {
            return Ok(());
        }
        match spec.minimize() {
            Ok(result) => {
                prop_assert!(spec.verify_cover(&result.cover).is_ok());
            }
            Err(bmbe_logic::hfmin::HfminError::NoHazardFreeCover { .. }) => {
                // Theoretically possible for adversarial specs.
            }
            Err(other) => prop_assert!(false, "unexpected error {other}"),
        }
    }

    #[test]
    fn canonical_ascent_primes_match_reference(spec in arb_spec()) {
        if spec.check_consistency().is_err() {
            return Ok(());
        }
        match (spec.dhf_primes(), spec.dhf_primes_reference()) {
            (Ok(fast), Ok(slow)) => prop_assert_eq!(fast, slow),
            (Err(_), Err(_)) => {}
            (fast, slow) => prop_assert!(
                false,
                "disagree on feasibility: fast={:?} slow={:?}",
                fast.is_ok(),
                slow.is_ok()
            ),
        }
    }

    #[test]
    fn on_off_sets_never_overlap_for_consistent_specs(spec in arb_spec()) {
        if spec.check_consistency().is_err() {
            return Ok(());
        }
        let on = spec.on_set();
        let off = spec.off_set();
        for p in 0u64..(1 << N) {
            prop_assert!(!(on.eval(p) && off.eval(p)), "point {:#b}", p);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn canonical_ascent_primes_match_reference_wide(spec in arb_spec_n(10)) {
        if spec.check_consistency().is_err() {
            return Ok(());
        }
        match (spec.dhf_primes(), spec.dhf_primes_reference()) {
            (Ok(fast), Ok(slow)) => prop_assert_eq!(fast, slow),
            (Err(_), Err(_)) => {}
            (fast, slow) => prop_assert!(
                false,
                "disagree on feasibility: fast={:?} slow={:?}",
                fast.is_ok(),
                slow.is_ok()
            ),
        }
    }
}
