//! Property-based tests of the cube algebra and the hazard-free minimizer.

use bmbe_logic::cube::Cube;
use bmbe_logic::hfmin::{FunctionSpec, MinimizeBackend, MinimizeOptions, SpecTransition};
use proptest::prelude::*;

const N: usize = 6;

fn arb_cube() -> impl Strategy<Value = Cube> {
    (any::<u64>(), any::<u64>()).prop_map(|(care, value)| Cube::from_masks(N, care, value))
}

fn arb_point() -> impl Strategy<Value = u64> {
    0u64..(1 << N)
}

proptest! {
    #[test]
    fn display_parse_roundtrip(c in arb_cube()) {
        let text = c.to_string();
        let back = Cube::parse(&text).expect("display emits valid syntax");
        prop_assert_eq!(back, c);
    }

    #[test]
    fn containment_is_pointwise(c in arb_cube(), d in arb_cube()) {
        if c.contains_cube(&d) {
            for p in d.points() {
                prop_assert!(c.contains_point(p));
            }
        }
    }

    #[test]
    fn intersection_agrees_with_points(c in arb_cube(), d in arb_cube()) {
        match c.intersection(&d) {
            Some(ix) => {
                // Every point of the intersection is in both.
                for p in ix.points() {
                    prop_assert!(c.contains_point(p) && d.contains_point(p));
                }
                prop_assert!(c.intersects(&d));
            }
            None => {
                for p in c.points() {
                    prop_assert!(!d.contains_point(p));
                }
                prop_assert!(!c.intersects(&d));
            }
        }
    }

    #[test]
    fn supercube_contains_both(c in arb_cube(), d in arb_cube()) {
        let s = c.supercube(&d);
        prop_assert!(s.contains_cube(&c));
        prop_assert!(s.contains_cube(&d));
    }

    #[test]
    fn spanning_cube_is_minimal(a in arb_point(), b in arb_point()) {
        let t = Cube::spanning(N, a, b);
        prop_assert!(t.contains_point(a));
        prop_assert!(t.contains_point(b));
        prop_assert_eq!(t.num_literals(), N - (a ^ b).count_ones() as usize);
    }

    #[test]
    fn point_count_matches_enumeration(c in arb_cube()) {
        let listed = c.points().count() as u64;
        prop_assert_eq!(listed, c.num_points());
    }
}

/// A burst-mode-like random function: a cycle of transitions alternating
/// the function value, mimicking how the synthesizer specifies outputs.
fn arb_spec() -> impl Strategy<Value = FunctionSpec> {
    arb_spec_n(N)
}

/// Same walk, parameterized on the variable count (the kernel equivalence
/// properties are exercised up to 10 variables).
fn arb_spec_n(n: usize) -> impl Strategy<Value = FunctionSpec> {
    proptest::collection::vec((0u64..(1 << n), any::<bool>()), 2..8).prop_map(move |steps| {
        let mut spec = FunctionSpec::new(n);
        let mut cur = 0u64;
        let mut val = false;
        // Walk a path of transitions; each step moves to a new point and
        // may flip the function. Conflicts are avoided by the caller check.
        for (target, flip) in steps {
            let to_val = val ^ flip;
            if target == cur && flip {
                continue; // degenerate dynamic transition
            }
            spec.add_transition(bmbe_logic::hfmin::SpecTransition {
                start: cur,
                end: target,
                from: val,
                to: to_val,
            });
            cur = target;
            val = to_val;
        }
        spec
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn minimizer_output_is_always_hazard_free(spec in arb_spec()) {
        // Random walks can assign conflicting values to shared points;
        // those are legitimately rejected. For consistent specs, the
        // minimizer's cover must pass the independent structural check.
        if spec.check_consistency().is_err() {
            return Ok(());
        }
        match spec.minimize() {
            Ok(result) => {
                prop_assert!(spec.verify_cover(&result.cover).is_ok());
            }
            Err(bmbe_logic::hfmin::HfminError::NoHazardFreeCover { .. }) => {
                // Theoretically possible for adversarial specs.
            }
            Err(other) => prop_assert!(false, "unexpected error {other}"),
        }
    }

    #[test]
    fn canonical_ascent_primes_match_reference(spec in arb_spec()) {
        if spec.check_consistency().is_err() {
            return Ok(());
        }
        match (spec.dhf_primes(), spec.dhf_primes_reference()) {
            (Ok(fast), Ok(slow)) => prop_assert_eq!(fast, slow),
            (Err(_), Err(_)) => {}
            (fast, slow) => prop_assert!(
                false,
                "disagree on feasibility: fast={:?} slow={:?}",
                fast.is_ok(),
                slow.is_ok()
            ),
        }
    }

    #[test]
    fn on_off_sets_never_overlap_for_consistent_specs(spec in arb_spec()) {
        if spec.check_consistency().is_err() {
            return Ok(());
        }
        let on = spec.on_set();
        let off = spec.off_set();
        for p in 0u64..(1 << N) {
            prop_assert!(!(on.eval(p) && off.eval(p)), "point {:#b}", p);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn canonical_ascent_primes_match_reference_wide(spec in arb_spec_n(10)) {
        if spec.check_consistency().is_err() {
            return Ok(());
        }
        match (spec.dhf_primes(), spec.dhf_primes_reference()) {
            (Ok(fast), Ok(slow)) => prop_assert_eq!(fast, slow),
            (Err(_), Err(_)) => {}
            (fast, slow) => prop_assert!(
                false,
                "disagree on feasibility: fast={:?} slow={:?}",
                fast.is_ok(),
                slow.is_ok()
            ),
        }
    }
}

fn backend_opts(backend: MinimizeBackend) -> MinimizeOptions {
    MinimizeOptions {
        backend,
        ..MinimizeOptions::default()
    }
}

/// The exact backend is the oracle: the cube-cofactor cover must be valid
/// and hazard-free whenever the oracle finds a cover, never smaller than
/// the oracle's minimum, and never larger than one product per required
/// cube (EXPAND picks at most one cube per seed).
fn check_cofactor_against_oracle(spec: &FunctionSpec) -> Result<(), TestCaseError> {
    let exact = spec.minimize_opts(&backend_opts(MinimizeBackend::ExactPrimes));
    let cofactor = spec.minimize_opts(&backend_opts(MinimizeBackend::CubeCofactor));
    let required = spec.required_cubes().len();
    if required == 0 {
        // Trivial spec: both backends short-circuit to the empty cover
        // before dispatch, so there is nothing backend-specific to check.
        return Ok(());
    }
    match (exact, cofactor) {
        (Ok(e), Ok(c)) => {
            prop_assert!(
                spec.verify_cover(&c.cover).is_ok(),
                "cofactor cover fails the structural hazard check"
            );
            prop_assert!(!c.exact, "heuristic backend must not claim exactness");
            prop_assert!(
                c.cover.len() >= e.cover.len(),
                "cofactor cover ({}) beat the exact minimum ({})",
                c.cover.len(),
                e.cover.len()
            );
            prop_assert!(
                c.cover.len() <= required,
                "cofactor cover ({}) exceeds one product per required cube ({required})",
                c.cover.len()
            );
            prop_assert_eq!(c.stats.cofactor_funcs, 1);
            prop_assert_eq!(c.stats.exact_funcs, 0);
        }
        (Err(_), Err(_)) => {} // both reject: infeasible spec
        (e, c) => prop_assert!(
            false,
            "backends disagree on feasibility: exact={:?} cofactor={:?}",
            e.is_ok(),
            c.is_ok()
        ),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn cofactor_backend_matches_the_oracle(spec in arb_spec()) {
        if spec.check_consistency().is_err() {
            return Ok(());
        }
        check_cofactor_against_oracle(&spec)?;
    }

    #[test]
    fn auto_backend_is_exact_below_the_width_threshold(spec in arb_spec()) {
        // N = 6 <= AUTO_EXACT_VARS, so Auto must route to the exact engine
        // and reproduce its covers bit for bit.
        if spec.check_consistency().is_err() {
            return Ok(());
        }
        let nontrivial = !spec.required_cubes().is_empty();
        let auto = spec.minimize_opts(&backend_opts(MinimizeBackend::Auto));
        let exact = spec.minimize_opts(&backend_opts(MinimizeBackend::ExactPrimes));
        match (auto, exact) {
            (Ok(a), Ok(e)) => {
                prop_assert_eq!(a.cover, e.cover);
                prop_assert_eq!(a.exact, e.exact);
                if nontrivial {
                    prop_assert_eq!(a.stats.exact_funcs, 1);
                    prop_assert_eq!(a.stats.cofactor_funcs, 0);
                }
            }
            (Err(_), Err(_)) => {}
            (a, e) => prop_assert!(
                false,
                "Auto disagrees with ExactPrimes on feasibility: auto={:?} exact={:?}",
                a.is_ok(),
                e.is_ok()
            ),
        }
    }

    #[test]
    fn partitioned_worklist_is_bit_identical(spec in arb_spec_n(10)) {
        // The level-synchronous partitioned canonical ascent must return
        // the same primes in the same order whatever the worker count,
        // and both must agree with the brute-force reference expansion.
        if spec.check_consistency().is_err() {
            return Ok(());
        }
        match (spec.dhf_primes_par(1), spec.dhf_primes_par(4)) {
            (Ok((serial, _)), Ok((fanned, _))) => {
                prop_assert_eq!(&serial, &fanned);
                let reference = spec.dhf_primes_reference()
                    .expect("reference agrees on feasibility");
                prop_assert_eq!(serial, reference);
            }
            (Err(_), Err(_)) => {}
            (serial, fanned) => prop_assert!(
                false,
                "worker count changes feasibility: 1t={:?} 4t={:?}",
                serial.is_ok(),
                fanned.is_ok()
            ),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn cofactor_backend_matches_the_oracle_wide(spec in arb_spec_n(10)) {
        if spec.check_consistency().is_err() {
            return Ok(());
        }
        check_cofactor_against_oracle(&spec)?;
    }
}

/// A deterministic wide spec whose canonical-ascent frontier exceeds
/// `PAR_FRONTIER_MIN` (16) and whose privileged implications exempt
/// enough variables from the canonical order that different chunks
/// rediscover the same cubes: the partitioned path must actually engage,
/// drop those cross-chunk duplicates at the merge barrier, and still
/// return bit-identical primes.
#[test]
fn partitioned_worklist_engages_and_merges_on_a_wide_frontier() {
    let n = 10;
    // A burst-mode walk (found by deterministic search) whose 4-way
    // partitioned expansion reports a nonzero duplicate-drop count.
    let walk: [(u64, bool); 7] = [
        (601, false),
        (793, false),
        (310, false),
        (240, false),
        (200, true),
        (207, false),
        (387, true),
    ];
    let mut spec = FunctionSpec::new(n);
    let mut cur = 0u64;
    let mut val = false;
    for (target, flip) in walk {
        let to_val = val ^ flip;
        spec.add_transition(SpecTransition {
            start: cur,
            end: target,
            from: val,
            to: to_val,
        });
        cur = target;
        val = to_val;
    }
    spec.check_consistency().expect("hand-built spec is consistent");
    let (serial, _) = spec.dhf_primes_par(1).expect("serial primes");
    let (fanned, merges) = spec.dhf_primes_par(4).expect("fanned primes");
    assert_eq!(serial, fanned, "worker count changed the prime set");
    assert_eq!(
        serial,
        spec.dhf_primes_reference().expect("reference primes"),
        "partitioned ascent disagrees with the reference expansion"
    );
    assert!(
        merges > 0,
        "no merge barrier ever dropped a duplicate: the partitioned path never engaged"
    );
}
