//! Covers: sums of product terms, with two- and three-valued evaluation.

use crate::cube::{Cube, Point};
use std::fmt;

/// A three-valued (Kleene) logic value used by hazard analysis.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Tv {
    /// Definitely 0.
    Zero,
    /// Definitely 1.
    One,
    /// Unknown / in transition.
    X,
}

impl Tv {
    /// Lifts a Boolean into a ternary value.
    pub fn from_bool(b: bool) -> Tv {
        if b {
            Tv::One
        } else {
            Tv::Zero
        }
    }
}

impl fmt::Display for Tv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tv::Zero => write!(f, "0"),
            Tv::One => write!(f, "1"),
            Tv::X => write!(f, "X"),
        }
    }
}

/// A sum-of-products cover over a fixed Boolean space.
///
/// # Examples
///
/// ```
/// use bmbe_logic::cover::Cover;
/// use bmbe_logic::cube::Cube;
/// let f = Cover::from_cubes(vec![
///     Cube::parse("1-").unwrap(),
///     Cube::parse("-1").unwrap(),
/// ]); // f = x0 + x1
/// assert!(f.eval(0b01));
/// assert!(!f.eval(0b00));
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Cover {
    cubes: Vec<Cube>,
}

impl Cover {
    /// The empty cover (constant 0).
    pub fn empty() -> Self {
        Cover { cubes: Vec::new() }
    }

    /// Builds a cover from product terms.
    pub fn from_cubes(cubes: Vec<Cube>) -> Self {
        Cover { cubes }
    }

    /// The product terms of the cover.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Adds a product term.
    pub fn push(&mut self, cube: Cube) {
        self.cubes.push(cube);
    }

    /// Whether the cover has no product terms.
    pub fn is_empty(&self) -> bool {
        self.cubes.is_empty()
    }

    /// Number of product terms.
    pub fn len(&self) -> usize {
        self.cubes.len()
    }

    /// Total number of literals over all products.
    pub fn num_literals(&self) -> usize {
        self.cubes.iter().map(Cube::num_literals).sum()
    }

    /// Two-valued evaluation at a point.
    pub fn eval(&self, point: Point) -> bool {
        self.cubes.iter().any(|c| c.contains_point(point))
    }

    /// Whether some product term contains `point`.
    pub fn contains_point(&self, point: Point) -> bool {
        self.eval(point)
    }

    /// Whether some single product term entirely contains `cube`.
    pub fn some_cube_contains(&self, cube: &Cube) -> bool {
        self.cubes.iter().any(|c| c.contains_cube(cube))
    }

    /// Whether any product term intersects `cube`.
    pub fn intersects(&self, cube: &Cube) -> bool {
        self.cubes.iter().any(|c| c.intersects(cube))
    }

    /// Whether the union of products covers every point of `cube`.
    ///
    /// Implemented by recursive Shannon splitting, so it is exact but
    /// intended for the small spaces used in controller synthesis.
    pub fn covers_cube(&self, cube: &Cube) -> bool {
        // Fast paths.
        if self.some_cube_contains(cube) {
            return true;
        }
        let relevant: Vec<&Cube> = self.cubes.iter().filter(|c| c.intersects(cube)).collect();
        if relevant.is_empty() {
            return false;
        }
        // Split on a variable that is free in `cube` but fixed in some
        // relevant product.
        for i in 0..cube.num_vars() {
            if cube.is_fixed(i) {
                continue;
            }
            if relevant.iter().any(|c| c.is_fixed(i)) {
                return self.covers_cube(&cube.with_fixed(i, false))
                    && self.covers_cube(&cube.with_fixed(i, true));
            }
        }
        // Every relevant product is free on all of cube's free variables,
        // and none contains the cube: then none fixes anything cube doesn't,
        // contradiction with the fast path -- so at least one contains it.
        // (Reaching here means a relevant product contains `cube`.)
        true
    }

    /// A point of `cube` the union of products does *not* cover, if any —
    /// the witness-producing variant of [`Cover::covers_cube`], used by the
    /// algebraic hazard checker to report a concrete disagreement point.
    pub fn uncovered_point(&self, cube: &Cube) -> Option<Point> {
        if self.some_cube_contains(cube) {
            return None;
        }
        let relevant: Vec<&Cube> = self.cubes.iter().filter(|c| c.intersects(cube)).collect();
        if relevant.is_empty() {
            return Some(cube.value_mask());
        }
        for i in 0..cube.num_vars() {
            if cube.is_fixed(i) {
                continue;
            }
            if relevant.iter().any(|c| c.is_fixed(i)) {
                return self
                    .uncovered_point(&cube.with_fixed(i, false))
                    .or_else(|| self.uncovered_point(&cube.with_fixed(i, true)));
            }
        }
        // As in covers_cube: some relevant product must contain the cube.
        None
    }

    /// Three-valued evaluation. `values[i]` is the value of variable `i`.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the space dimension of the
    /// first product term (an empty cover accepts anything and returns 0).
    pub fn eval_ternary(&self, values: &[Tv]) -> Tv {
        let mut saw_x = false;
        for cube in &self.cubes {
            assert_eq!(
                values.len(),
                cube.num_vars(),
                "ternary vector dimension mismatch"
            );
            match eval_cube_ternary(cube, values) {
                Tv::One => return Tv::One,
                Tv::X => saw_x = true,
                Tv::Zero => {}
            }
        }
        if saw_x {
            Tv::X
        } else {
            Tv::Zero
        }
    }

    /// Removes product terms contained in other product terms.
    pub fn make_irredundant_single_containment(&mut self) {
        let mut keep = vec![true; self.cubes.len()];
        for i in 0..self.cubes.len() {
            if !keep[i] {
                continue;
            }
            for j in 0..self.cubes.len() {
                if i != j && keep[j] && self.cubes[j].contains_cube(&self.cubes[i]) {
                    // cubes[i] inside cubes[j]
                    if self.cubes[i] == self.cubes[j] && i < j {
                        continue; // keep the first of equal cubes
                    }
                    keep[i] = false;
                    break;
                }
            }
        }
        let mut idx = 0;
        self.cubes.retain(|_| {
            let k = keep[idx];
            idx += 1;
            k
        });
    }
}

fn eval_cube_ternary(cube: &Cube, values: &[Tv]) -> Tv {
    let mut saw_x = false;
    for i in 0..cube.num_vars() {
        if let Some(v) = cube.var_value(i) {
            match (values[i], v) {
                (Tv::One, true) | (Tv::Zero, false) => {}
                (Tv::X, _) => saw_x = true,
                _ => return Tv::Zero,
            }
        }
    }
    if saw_x {
        Tv::X
    } else {
        Tv::One
    }
}

impl fmt::Display for Cover {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cubes.is_empty() {
            return write!(f, "0");
        }
        for (i, c) in self.cubes.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Cover {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cover[{self}]")
    }
}

impl FromIterator<Cube> for Cover {
    fn from_iter<I: IntoIterator<Item = Cube>>(iter: I) -> Self {
        Cover {
            cubes: iter.into_iter().collect(),
        }
    }
}

impl Extend<Cube> for Cover {
    fn extend<I: IntoIterator<Item = Cube>>(&mut self, iter: I) {
        self.cubes.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover(strs: &[&str]) -> Cover {
        strs.iter().map(|s| Cube::parse(s).unwrap()).collect()
    }

    #[test]
    fn eval_or_of_products() {
        let f = cover(&["1-", "-1"]);
        assert!(f.eval(0b01));
        assert!(f.eval(0b10));
        assert!(f.eval(0b11));
        assert!(!f.eval(0b00));
    }

    #[test]
    fn covers_cube_requires_union() {
        // x0 + !x0 covers the universe though no single cube does.
        let f = cover(&["1-", "0-"]);
        let u = Cube::universe(2);
        assert!(!f.some_cube_contains(&u));
        assert!(f.covers_cube(&u));
    }

    #[test]
    fn covers_cube_detects_hole() {
        let f = cover(&["11", "00"]);
        assert!(!f.covers_cube(&Cube::universe(2)));
        assert!(f.covers_cube(&Cube::parse("11").unwrap()));
    }

    #[test]
    fn ternary_static_hazard_visible() {
        // f = x0 x1' + x1 x2 has a static-1 hazard at x0=x2=1 when x1 changes:
        // with x1 = X both products go X.
        let f = cover(&["10-", "-11"]);
        let v = [Tv::One, Tv::X, Tv::One];
        assert_eq!(f.eval_ternary(&v), Tv::X);
        // Adding the consensus product x0 x2 removes the hazard.
        let g = cover(&["10-", "-11", "1-1"]);
        assert_eq!(g.eval_ternary(&v), Tv::One);
    }

    #[test]
    fn ternary_constant_zero() {
        let f = Cover::empty();
        assert_eq!(f.eval_ternary(&[]), Tv::Zero);
    }

    #[test]
    fn irredundant_removes_contained() {
        let mut f = cover(&["1-", "11", "0-"]);
        f.make_irredundant_single_containment();
        assert_eq!(f.len(), 2);
        assert!(f.covers_cube(&Cube::universe(2)));
    }

    #[test]
    fn literal_count() {
        let f = cover(&["10-", "-11"]);
        assert_eq!(f.num_literals(), 4);
    }
}
