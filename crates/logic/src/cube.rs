//! Single-cube algebra over a Boolean space of up to 64 variables.
//!
//! A [`Cube`] is a product term: each variable is either fixed to a value or
//! free (a "don't care" position, printed as `-`). Points of the space are
//! packed into a `u64`, bit `i` holding the value of variable `i`.

use std::fmt;

/// A point of the Boolean space: bit `i` is the value of variable `i`.
pub type Point = u64;

/// A product term (cube) over `n` Boolean variables.
///
/// Internally a pair of bit masks: `care` marks the fixed variables and
/// `value` holds their values (zero outside `care`).
///
/// # Examples
///
/// ```
/// use bmbe_logic::cube::Cube;
/// let c = Cube::parse("1-0").unwrap(); // x0=1, x1 free, x2=0
/// assert!(c.contains_point(0b001));
/// assert!(c.contains_point(0b011));
/// assert!(!c.contains_point(0b101));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cube {
    n: u8,
    care: u64,
    value: u64,
}

impl Cube {
    /// The full universe over `n` variables (every variable free).
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    pub fn universe(n: usize) -> Self {
        assert!(n <= 64, "cube space limited to 64 variables");
        Cube {
            n: n as u8,
            care: 0,
            value: 0,
        }
    }

    /// A minterm cube fixing every variable to the bits of `point`.
    pub fn minterm(n: usize, point: Point) -> Self {
        let mask = Self::space_mask(n);
        Cube {
            n: n as u8,
            care: mask,
            value: point & mask,
        }
    }

    /// Builds a cube from raw `care` and `value` masks.
    ///
    /// Bits of `value` outside `care` are cleared.
    pub fn from_masks(n: usize, care: u64, value: u64) -> Self {
        let mask = Self::space_mask(n);
        let care = care & mask;
        Cube {
            n: n as u8,
            care,
            value: value & care,
        }
    }

    /// The smallest cube containing the two points `a` and `b`
    /// (their transition cube).
    pub fn spanning(n: usize, a: Point, b: Point) -> Self {
        let mask = Self::space_mask(n);
        let care = !(a ^ b) & mask;
        Cube {
            n: n as u8,
            care,
            value: a & care,
        }
    }

    fn space_mask(n: usize) -> u64 {
        assert!(n <= 64, "cube space limited to 64 variables");
        if n == 64 {
            u64::MAX
        } else {
            (1u64 << n) - 1
        }
    }

    /// Number of variables of the space this cube lives in.
    pub fn num_vars(&self) -> usize {
        self.n as usize
    }

    /// Mask of the fixed (cared-for) variables.
    pub fn care_mask(&self) -> u64 {
        self.care
    }

    /// Values of the fixed variables (zero outside the care mask).
    pub fn value_mask(&self) -> u64 {
        self.value
    }

    /// Number of literals (fixed variables) in the cube.
    pub fn num_literals(&self) -> usize {
        self.care.count_ones() as usize
    }

    /// Number of free variables.
    pub fn num_free(&self) -> usize {
        self.num_vars() - self.num_literals()
    }

    /// Whether `point` lies inside the cube.
    pub fn contains_point(&self, point: Point) -> bool {
        (point & self.care) == self.value
    }

    /// Whether `other` is entirely contained in `self`.
    pub fn contains_cube(&self, other: &Cube) -> bool {
        debug_assert_eq!(self.n, other.n);
        (other.care & self.care) == self.care && (other.value & self.care) == self.value
    }

    /// Whether the two cubes share at least one point.
    pub fn intersects(&self, other: &Cube) -> bool {
        debug_assert_eq!(self.n, other.n);
        (self.value ^ other.value) & (self.care & other.care) == 0
    }

    /// The intersection cube, if non-empty.
    pub fn intersection(&self, other: &Cube) -> Option<Cube> {
        if !self.intersects(other) {
            return None;
        }
        Some(Cube {
            n: self.n,
            care: self.care | other.care,
            value: self.value | other.value,
        })
    }

    /// The smallest cube containing both cubes.
    pub fn supercube(&self, other: &Cube) -> Cube {
        debug_assert_eq!(self.n, other.n);
        let care = self.care & other.care & !(self.value ^ other.value);
        Cube {
            n: self.n,
            care,
            value: self.value & care,
        }
    }

    /// Whether variable `i` is fixed in this cube.
    pub fn is_fixed(&self, i: usize) -> bool {
        self.care >> i & 1 == 1
    }

    /// The value of variable `i`, if fixed.
    pub fn var_value(&self, i: usize) -> Option<bool> {
        if self.is_fixed(i) {
            Some(self.value >> i & 1 == 1)
        } else {
            None
        }
    }

    /// A copy of the cube with variable `i` freed.
    pub fn with_free(&self, i: usize) -> Cube {
        let bit = 1u64 << i;
        Cube {
            n: self.n,
            care: self.care & !bit,
            value: self.value & !bit,
        }
    }

    /// A copy of the cube with variable `i` fixed to `v`.
    pub fn with_fixed(&self, i: usize, v: bool) -> Cube {
        let bit = 1u64 << i;
        Cube {
            n: self.n,
            care: self.care | bit,
            value: if v {
                self.value | bit
            } else {
                self.value & !bit
            },
        }
    }

    /// Number of points in the cube (`2^num_free`); saturates at `u64::MAX`.
    pub fn num_points(&self) -> u64 {
        let free = self.num_free();
        if free >= 64 {
            u64::MAX
        } else {
            1u64 << free
        }
    }

    /// Iterates over every point of the cube.
    ///
    /// Intended for small cubes; cost is `2^num_free`.
    pub fn points(&self) -> Points {
        let free_mask = !self.care & Self::space_mask(self.num_vars());
        Points {
            base: self.value,
            free_mask,
            sub: 0,
            done: false,
        }
    }

    /// Parses a cube from a string of `0`, `1` and `-` characters,
    /// variable 0 first.
    ///
    /// # Errors
    ///
    /// Returns `None` on an invalid character or a length over 64.
    pub fn parse(s: &str) -> Option<Cube> {
        if s.len() > 64 {
            return None;
        }
        let mut care = 0u64;
        let mut value = 0u64;
        for (i, ch) in s.chars().enumerate() {
            match ch {
                '0' => care |= 1 << i,
                '1' => {
                    care |= 1 << i;
                    value |= 1 << i;
                }
                '-' => {}
                _ => return None,
            }
        }
        Some(Cube {
            n: s.len() as u8,
            care,
            value,
        })
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.num_vars() {
            let ch = match self.var_value(i) {
                Some(true) => '1',
                Some(false) => '0',
                None => '-',
            };
            write!(f, "{ch}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cube({self})")
    }
}

/// Iterator over the points of a [`Cube`], produced by [`Cube::points`].
#[derive(Debug, Clone)]
pub struct Points {
    base: u64,
    free_mask: u64,
    sub: u64,
    done: bool,
}

impl Iterator for Points {
    type Item = Point;

    fn next(&mut self) -> Option<Point> {
        if self.done {
            return None;
        }
        let p = self.base | self.sub;
        // Enumerate submasks of free_mask in increasing order via the
        // standard (sub - mask) & mask trick run in reverse.
        if self.sub == self.free_mask {
            self.done = true;
        } else {
            self.sub = (self.sub.wrapping_sub(self.free_mask)) & self.free_mask;
        }
        Some(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["1-0", "---", "0101", "1"] {
            let c = Cube::parse(s).unwrap();
            assert_eq!(c.to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(Cube::parse("10x").is_none());
    }

    #[test]
    fn containment_basics() {
        let u = Cube::universe(3);
        let c = Cube::parse("1-0").unwrap();
        let m = Cube::minterm(3, 0b001);
        assert!(u.contains_cube(&c));
        assert!(c.contains_cube(&m));
        assert!(!m.contains_cube(&c));
        assert!(c.contains_cube(&c));
    }

    #[test]
    fn intersection_and_supercube() {
        let a = Cube::parse("1--").unwrap();
        let b = Cube::parse("-0-").unwrap();
        let i = a.intersection(&b).unwrap();
        assert_eq!(i.to_string(), "10-");
        let s = Cube::parse("100")
            .unwrap()
            .supercube(&Cube::parse("111").unwrap());
        assert_eq!(s.to_string(), "1--");
    }

    #[test]
    fn disjoint_cubes_do_not_intersect() {
        let a = Cube::parse("1--").unwrap();
        let b = Cube::parse("0--").unwrap();
        assert!(!a.intersects(&b));
        assert!(a.intersection(&b).is_none());
    }

    #[test]
    fn spanning_cube_is_transition_cube() {
        let t = Cube::spanning(4, 0b0011, 0b0110);
        // bits 0,2 differ -> free; bits 1,3 fixed to a's values.
        assert_eq!(t.to_string(), "-1-0");
        assert!(t.contains_point(0b0011));
        assert!(t.contains_point(0b0110));
    }

    #[test]
    fn point_enumeration_covers_cube() {
        let c = Cube::parse("1--0").unwrap();
        let pts: Vec<_> = c.points().collect();
        assert_eq!(pts.len(), 4);
        for p in &pts {
            assert!(c.contains_point(*p));
        }
        // all distinct
        let mut sorted = pts.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
    }

    #[test]
    fn literal_counts() {
        let c = Cube::parse("1-0-").unwrap();
        assert_eq!(c.num_literals(), 2);
        assert_eq!(c.num_free(), 2);
        assert_eq!(c.num_points(), 4);
    }

    #[test]
    fn free_and_fix() {
        let c = Cube::parse("10-").unwrap();
        assert_eq!(c.with_free(0).to_string(), "-0-");
        assert_eq!(c.with_fixed(2, true).to_string(), "101");
        assert_eq!(c.var_value(1), Some(false));
        assert_eq!(c.var_value(2), None);
    }

    #[test]
    fn sixty_four_variable_space() {
        let u = Cube::universe(64);
        assert_eq!(u.num_free(), 64);
        let m = Cube::minterm(64, u64::MAX);
        assert!(u.contains_cube(&m));
    }
}
