//! Hazard-free two-level minimization for multiple-input-change transitions.
//!
//! This is the engine behind the Minimalist-equivalent synthesizer: the exact
//! hazard-free minimization theory of Nowick and Dill. A Boolean function is
//! specified *only* through a set of multiple-input-change (MIC)
//! [`SpecTransition`]s; everything outside the transition cubes is a don't
//! care. The minimizer returns a sum-of-products cover that is free of logic
//! hazards for every specified transition:
//!
//! * every **required cube** (1→1 transition cubes; the maximal start-point ON
//!   subcubes of 1→0 transitions; the end point of 0→1 transitions) is
//!   contained in a *single* product, and
//! * no product **illegally intersects** a *privileged cube* (the transition
//!   cube of a dynamic transition) — a product touching a 1→0 cube must
//!   contain its start point, and one touching a 0→1 cube must contain its
//!   end point.

use crate::cover::Cover;
use crate::covering::CoveringProblem;
use crate::cube::{Cube, Point};
use std::collections::HashSet;
use std::fmt;
use std::time::{Duration, Instant};

/// Variable-count ceiling for exhaustive DHF-prime enumeration; larger
/// functions use greedy expansion orders (see [`FunctionSpec::dhf_primes`]).
pub const EXACT_PRIME_VARS: usize = 14;

/// Variable-count ceiling up to which [`MinimizeBackend::Auto`] stays on the
/// exact prime-enumerating engine; larger functions are routed to the
/// espresso-style cube-cofactor backend. Matches the widest specs the
/// property suite cross-checks against the exactness oracle.
pub const AUTO_EXACT_VARS: usize = 10;

/// Minimum worklist-level width before [`FunctionSpec::expand_canonical`]
/// fans a level across the `bmbe-par` pool; narrower levels are expanded
/// inline (the chunking overhead would dominate). Low enough that the
/// determinism suite exercises real parallel merges on test-sized specs.
pub(crate) const PAR_FRONTIER_MIN: usize = 16;

/// Which engine [`FunctionSpec::minimize_opts`] uses to build the cover.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MinimizeBackend {
    /// Enumerate all DHF primes via the canonical-ascent worklist (exact up
    /// to [`EXACT_PRIME_VARS`] variables, greedy orders beyond), then solve
    /// the covering problem over the full prime set. The exactness oracle.
    ExactPrimes,
    /// Espresso-style recursive cube-cofactor minimizer
    /// ([`crate::espresso`]): expand each required cube to one good DHF
    /// prime without enumerating the rest, then drop redundant products.
    /// Valid and hazard-free by construction; not guaranteed minimum.
    CubeCofactor,
    /// Per function: [`MinimizeBackend::ExactPrimes`] up to
    /// [`AUTO_EXACT_VARS`] variables, [`MinimizeBackend::CubeCofactor`]
    /// beyond — small controllers keep their exact covers while the big
    /// cluster functions skip prime enumeration entirely.
    #[default]
    Auto,
}

/// How an injected prime-generation fault manifests (the logic-crate end of
/// the flow's `BMBE_FAULT=prime_gen:...` plans).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrimeGenFault {
    /// Panic at the start of prime generation.
    Panic,
    /// Return [`HfminError::Injected`] instead.
    Error,
}

/// Knobs of one minimization run.
#[derive(Debug, Clone, Copy)]
pub struct MinimizeOptions {
    /// Engine selection.
    pub backend: MinimizeBackend,
    /// Worker budget for the partitioned canonical-ascent worklist (the
    /// exact path); `1` keeps prime generation on the calling thread. The
    /// result is bit-identical whatever the value.
    pub threads: usize,
    /// Deterministic fault injection into prime generation (tests only).
    pub fault: Option<PrimeGenFault>,
}

impl Default for MinimizeOptions {
    fn default() -> Self {
        MinimizeOptions {
            backend: MinimizeBackend::default(),
            threads: 1,
            fault: None,
        }
    }
}

/// Trips an armed prime-generation fault (no-op when unarmed).
pub(crate) fn trip_prime_gen_fault(fault: Option<PrimeGenFault>) -> Result<(), HfminError> {
    match fault {
        None => Ok(()),
        Some(PrimeGenFault::Error) => Err(HfminError::Injected),
        Some(PrimeGenFault::Panic) => panic!("injected fault: panic at phase prime_gen"),
    }
}

/// One specified multiple-input-change transition of a single-output
/// function: the inputs move monotonically from `start` to `end` (each
/// variable changing at most once), and the function moves from `from`
/// to `to`. In burst-mode synthesis the function change happens only once
/// the full input burst has arrived, i.e. at `end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpecTransition {
    /// Input vector at the start of the transition.
    pub start: Point,
    /// Input vector once every changing input has arrived.
    pub end: Point,
    /// Function value at `start` (and throughout the cube except `end`,
    /// when `from != to`).
    pub from: bool,
    /// Function value at `end`.
    pub to: bool,
}

impl SpecTransition {
    /// The transition cube spanned by the start and end points.
    pub fn cube(&self, n: usize) -> Cube {
        Cube::spanning(n, self.start, self.end)
    }

    /// Whether the function value changes across this transition.
    pub fn is_dynamic(&self) -> bool {
        self.from != self.to
    }
}

/// A single-output function specified by MIC transitions over `n` variables.
#[derive(Debug, Clone)]
pub struct FunctionSpec {
    n: usize,
    transitions: Vec<SpecTransition>,
}

/// A dynamic transition cube together with its privileged point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PrivilegedCube {
    /// The transition cube no product may illegally intersect.
    pub cube: Cube,
    /// The point a product intersecting `cube` must contain.
    pub point: Point,
}

/// Errors produced by the hazard-free minimizer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HfminError {
    /// Two transitions assign contradictory values to a common point.
    ConflictingSpec {
        /// A point receiving both values.
        point: Point,
    },
    /// A required cube is not a hazard-free implicant, so no hazard-free
    /// cover exists (Nowick–Dill infeasibility condition).
    NoHazardFreeCover {
        /// The offending required cube.
        required: Cube,
    },
    /// A transition's start equals its end but `from != to`.
    DegenerateDynamic {
        /// The offending transition.
        transition: SpecTransition,
    },
    /// Prime generation was aborted by an injected fault (see
    /// [`PrimeGenFault`]); only producible under fault injection.
    Injected,
}

impl fmt::Display for HfminError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HfminError::ConflictingSpec { point } => {
                write!(
                    f,
                    "conflicting function values specified at point {point:#b}"
                )
            }
            HfminError::NoHazardFreeCover { required } => {
                write!(
                    f,
                    "no hazard-free cover exists: required cube {required} is not a dhf-implicant"
                )
            }
            HfminError::DegenerateDynamic { transition } => {
                write!(
                    f,
                    "dynamic transition with no changing inputs at {:#b}",
                    transition.start
                )
            }
            HfminError::Injected => {
                write!(f, "prime generation aborted by an injected fault")
            }
        }
    }
}

impl std::error::Error for HfminError {}

/// Wall-clock breakdown of one minimization run, used by the flow's
/// per-phase profiler.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinimizeStats {
    /// Time spent generating DHF implicants (all primes on the exact path;
    /// the cube-cofactor EXPAND pass on the espresso-style path).
    pub prime_gen: Duration,
    /// Time spent selecting products (the unate-covering solver on the
    /// exact path; the IRREDUNDANT pass on the espresso-style path).
    pub covering: Duration,
    /// Functions minimized through the exact prime-enumerating engine.
    pub exact_funcs: usize,
    /// Functions minimized through the cube-cofactor backend.
    pub cofactor_funcs: usize,
    /// Deepest cube-cofactor recursion observed (0 on the exact path).
    pub cofactor_depth: usize,
    /// Duplicate cubes dropped at the partitioned worklist's deterministic
    /// merge barriers (0 when prime generation ran serially).
    pub worklist_merges: usize,
}

impl MinimizeStats {
    /// Sums another run's stats into this one (`cofactor_depth` takes the
    /// maximum; everything else adds).
    pub fn accumulate(&mut self, other: &MinimizeStats) {
        self.prime_gen += other.prime_gen;
        self.covering += other.covering;
        self.exact_funcs += other.exact_funcs;
        self.cofactor_funcs += other.cofactor_funcs;
        self.cofactor_depth = self.cofactor_depth.max(other.cofactor_depth);
        self.worklist_merges += other.worklist_merges;
    }
}

/// Result of a minimization run.
#[derive(Debug, Clone)]
pub struct HfminResult {
    /// The selected hazard-free cover.
    pub cover: Cover,
    /// Whether the covering step was solved exactly.
    pub exact: bool,
    /// Number of DHF-prime implicants generated.
    pub num_primes: usize,
    /// Per-phase timing of this run.
    pub stats: MinimizeStats,
}

impl FunctionSpec {
    /// Creates an empty specification over `n` variables.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    pub fn new(n: usize) -> Self {
        assert!(n <= 64);
        FunctionSpec {
            n,
            transitions: Vec::new(),
        }
    }

    /// Number of input variables.
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// The specified transitions.
    pub fn transitions(&self) -> &[SpecTransition] {
        &self.transitions
    }

    /// Adds a specified transition.
    pub fn add_transition(&mut self, t: SpecTransition) {
        self.transitions.push(t);
    }

    /// Convenience: add a static transition holding value `v` across the
    /// cube spanned by `start`/`end`.
    pub fn add_static(&mut self, start: Point, end: Point, v: bool) {
        self.add_transition(SpecTransition {
            start,
            end,
            from: v,
            to: v,
        });
    }

    /// Convenience: add a dynamic transition.
    pub fn add_dynamic(&mut self, start: Point, end: Point, from: bool) {
        self.add_transition(SpecTransition {
            start,
            end,
            from,
            to: !from,
        });
    }

    /// The ON-set as a cover (union of the points where the function is 1).
    pub fn on_set(&self) -> Cover {
        let mut on = Cover::empty();
        for t in &self.transitions {
            let cube = t.cube(self.n);
            match (t.from, t.to) {
                (true, true) => on.push(cube),
                (false, false) => {}
                (false, true) => on.push(Cube::minterm(self.n, t.end)),
                (true, false) => on.extend(self.cube_minus_end(t)),
            }
        }
        on
    }

    /// The OFF-set as a cover.
    pub fn off_set(&self) -> Cover {
        let mut off = Cover::empty();
        for t in &self.transitions {
            let cube = t.cube(self.n);
            match (t.from, t.to) {
                (true, true) => {}
                (false, false) => off.push(cube),
                (false, true) => off.extend(self.cube_minus_end(t)),
                (true, false) => off.push(Cube::minterm(self.n, t.end)),
            }
        }
        off
    }

    /// The transition cube with the end point removed, expressed as the
    /// union of the maximal subcubes that fix one changing variable at its
    /// start value. Empty when the transition is degenerate.
    fn cube_minus_end(&self, t: &SpecTransition) -> Vec<Cube> {
        let cube = t.cube(self.n);
        let changing = t.start ^ t.end;
        let mut out = Vec::new();
        for i in 0..self.n {
            if changing >> i & 1 == 1 {
                out.push(cube.with_fixed(i, t.start >> i & 1 == 1));
            }
        }
        out
    }

    /// Required cubes per the Nowick–Dill conditions.
    pub fn required_cubes(&self) -> Vec<Cube> {
        let mut req = Vec::new();
        for t in &self.transitions {
            let cube = t.cube(self.n);
            match (t.from, t.to) {
                (true, true) => req.push(cube),
                (false, false) => {}
                // Rising transition: only its end point is ON; it must lie in
                // a product (which the privileged condition then forces to be
                // on for the remainder of the burst).
                (false, true) => req.push(Cube::minterm(self.n, t.end)),
                // Falling transition: each maximal ON subcube containing the
                // start point must be held by a single product.
                (true, false) => req.extend(self.cube_minus_end(t)),
            }
        }
        // Dedup while preserving order.
        let mut seen = HashSet::new();
        req.retain(|c| seen.insert(*c));
        req
    }

    /// Privileged cubes of the dynamic transitions.
    pub fn privileged_cubes(&self) -> Vec<PrivilegedCube> {
        let mut priv_cubes = Vec::new();
        for t in &self.transitions {
            if !t.is_dynamic() {
                continue;
            }
            let cube = t.cube(self.n);
            let point = if t.from { t.start } else { t.end };
            priv_cubes.push(PrivilegedCube { cube, point });
        }
        let mut seen = HashSet::new();
        priv_cubes.retain(|p| seen.insert((p.cube, p.point)));
        priv_cubes
    }

    /// Checks that no point is assigned both 0 and 1.
    ///
    /// # Errors
    ///
    /// Returns [`HfminError::ConflictingSpec`] on contradiction and
    /// [`HfminError::DegenerateDynamic`] for a dynamic transition whose
    /// start equals its end.
    pub fn check_consistency(&self) -> Result<(), HfminError> {
        for t in &self.transitions {
            if t.is_dynamic() && t.start == t.end {
                return Err(HfminError::DegenerateDynamic { transition: *t });
            }
        }
        let on = self.on_set();
        let off = self.off_set();
        for c_on in on.cubes() {
            for c_off in off.cubes() {
                if let Some(ix) = c_on.intersection(c_off) {
                    let point = ix.points().next().expect("nonempty intersection");
                    return Err(HfminError::ConflictingSpec { point });
                }
            }
        }
        Ok(())
    }

    /// Whether `cube` is a DHF-implicant: an implicant (no OFF point) with no
    /// illegal privileged-cube intersection.
    pub fn is_dhf_implicant(
        &self,
        cube: &Cube,
        off: &Cover,
        privileged: &[PrivilegedCube],
    ) -> bool {
        if off.intersects(cube) {
            return false;
        }
        privileged
            .iter()
            .all(|p| !cube.intersects(&p.cube) || cube.contains_point(p.point))
    }

    /// Generates DHF-prime implicants containing at least one required cube
    /// (sufficient for covering, since the ON-set is the union of the
    /// required cubes).
    ///
    /// Up to [`EXACT_PRIME_VARS`] variables the enumeration is exhaustive
    /// (exact minimization, as in Minimalist), via the canonical-ascent
    /// worklist of [`FunctionSpec::expand_canonical`]; beyond that a set of
    /// greedy expansion orders is used per required cube — still hazard-free
    /// by construction, possibly not minimum (this is the synthesis run-time
    /// pressure the paper's §4.4 size restrictions exist to contain).
    pub fn dhf_primes(&self) -> Result<Vec<Cube>, HfminError> {
        self.dhf_primes_par(1).map(|(primes, _)| primes)
    }

    /// [`FunctionSpec::dhf_primes`] with the canonical-ascent worklist
    /// partitioned across up to `threads` workers (see
    /// [`FunctionSpec::expand_canonical`]): each worklist level is split
    /// into contiguous chunks, workers expand their chunks with private
    /// dedup sets, and the per-chunk discoveries are merged back into the
    /// shared visited/prime sets in chunk order at a serial barrier — so
    /// the returned prime set is bit-identical whatever the thread count.
    /// Also returns the number of duplicate cubes the merge barriers
    /// dropped (0 on a serial run).
    ///
    /// # Errors
    ///
    /// Returns [`HfminError::NoHazardFreeCover`] when some required cube is
    /// not a DHF implicant.
    pub fn dhf_primes_par(&self, threads: usize) -> Result<(Vec<Cube>, usize), HfminError> {
        let off = self.off_set_ordered();
        let privileged = self.privileged_cubes();
        let required = self.required_cubes();
        let mut primes: HashSet<Cube> = HashSet::new();
        let exact = self.n <= EXACT_PRIME_VARS;
        let mut visited: HashSet<Cube> = HashSet::new();
        let mut merges = 0usize;
        for r in &required {
            if !self.is_dhf_implicant(r, &off, &privileged) {
                return Err(HfminError::NoHazardFreeCover { required: *r });
            }
            if exact {
                merges += self.expand_canonical(
                    *r,
                    &off,
                    &privileged,
                    &mut visited,
                    &mut primes,
                    threads,
                );
            } else {
                self.expand_heuristic(*r, &off, &privileged, &mut primes);
            }
        }
        Ok((Self::maximal_sorted(primes), merges))
    }

    /// Reference implementation of [`FunctionSpec::dhf_primes`]: the seed's
    /// exhaustive per-cube recursion. Kept as the oracle the canonical-ascent
    /// worklist is property-tested (and benchmarked) against; the two return
    /// exactly the same prime set.
    pub fn dhf_primes_reference(&self) -> Result<Vec<Cube>, HfminError> {
        let off = self.off_set();
        let privileged = self.privileged_cubes();
        let required = self.required_cubes();
        let mut primes: HashSet<Cube> = HashSet::new();
        let exact = self.n <= EXACT_PRIME_VARS;
        let mut visited: HashSet<Cube> = HashSet::new();
        for r in &required {
            if !self.is_dhf_implicant(r, &off, &privileged) {
                return Err(HfminError::NoHazardFreeCover { required: *r });
            }
            if exact {
                self.expand_to_primes(*r, &off, &privileged, &mut visited, &mut primes);
            } else {
                self.expand_heuristic(*r, &off, &privileged, &mut primes);
            }
        }
        Ok(Self::maximal_sorted(primes))
    }

    /// The OFF-set with its cubes ordered largest (fewest literals) first,
    /// so [`FunctionSpec::is_dhf_implicant`] hits the likeliest blocker
    /// early. Same set, same results, faster rejection.
    pub(crate) fn off_set_ordered(&self) -> Cover {
        let mut cubes = self.off_set().cubes().to_vec();
        cubes.sort_by_key(Cube::num_literals);
        Cover::from_cubes(cubes)
    }

    /// Keeps only maximal cubes, in a deterministic order.
    fn maximal_sorted(primes: HashSet<Cube>) -> Vec<Cube> {
        let mut out: Vec<Cube> = primes.into_iter().collect();
        out.sort_by_key(|c| c.num_literals());
        let mut maximal: Vec<Cube> = Vec::new();
        for c in out {
            if !maximal.iter().any(|m| m.contains_cube(&c) && *m != c) {
                maximal.push(c);
            }
        }
        maximal.sort_unstable();
        maximal
    }

    /// Greedy maximal expansion under several variable orders.
    fn expand_heuristic(
        &self,
        seed: Cube,
        off: &Cover,
        privileged: &[PrivilegedCube],
        primes: &mut HashSet<Cube>,
    ) {
        let n = self.n;
        let starts: Vec<usize> = (0..n).step_by((n / 8).max(1)).collect();
        for (pass, &start) in starts.iter().enumerate() {
            let mut cube = seed;
            for k in 0..n {
                let i = if pass % 2 == 0 {
                    (start + k) % n
                } else {
                    (start + n - k) % n
                };
                if !cube.is_fixed(i) {
                    continue;
                }
                let bigger = cube.with_free(i);
                if self.is_dhf_implicant(&bigger, off, privileged) {
                    cube = bigger;
                }
            }
            primes.insert(cube);
        }
    }

    /// Canonical-ascent worklist expansion of one required cube to the DHF
    /// primes above it. Produces exactly the set [`expand_to_primes`] would
    /// (same reachable cubes, same primes), but:
    ///
    /// * the DHF-implicant test is compiled, per seed, into bit-mask
    ///   constraints over the set `S` of freed variables — an OFF cube `o`
    ///   blocks the expansion `S` iff its disagreement mask `D_o` (variables
    ///   where the seed and `o` disagree) is contained in `S`, and an active
    ///   privileged cube contributes the implication `D_q ⊆ S → A_q ⊆ S`
    ///   (`A_q` = variables where the seed differs from the privileged
    ///   point) — so each candidate check is a handful of word operations;
    /// * variables not mentioned by any privileged constraint are *ordered*:
    ///   they may only be freed in ascending index, which collapses the
    ///   factorially many freeing orders the plain recursion wades through
    ///   into one canonical chain per cube. Privileged-constrained variables
    ///   stay unordered because their freeing order can decide whether an
    ///   intermediate cube is hazard-free at all.
    ///
    /// The worklist is processed level-synchronously (a breadth-first
    /// sweep over the sets `S` by size): when a level is wide enough and
    /// `threads > 1`, it is split into contiguous chunks fanned across the
    /// `bmbe-par` pool, each worker deduplicating its own discoveries in a
    /// private set; the chunks' results are then merged into the shared
    /// `visited`/`primes` sets serially, **in chunk order**, at a barrier.
    /// The set of reachable cubes is traversal-order independent (the
    /// visited set only prevents re-expansion), so the primes produced are
    /// bit-identical whatever the thread count or chunk split. Returns the
    /// number of duplicate cubes dropped at merge barriers.
    ///
    /// [`expand_to_primes`]: FunctionSpec::expand_to_primes
    fn expand_canonical(
        &self,
        seed: Cube,
        off: &Cover,
        privileged: &[PrivilegedCube],
        visited: &mut HashSet<Cube>,
        primes: &mut HashSet<Cube>,
        threads: usize,
    ) -> usize {
        let freeable = seed.care_mask();
        let seed_value = seed.value_mask();
        // OFF obstacles as disagreement masks, biggest cubes first (small
        // masks are the likeliest to be contained in S).
        let mut off_masks: Vec<u64> = off
            .cubes()
            .iter()
            .map(|o| (seed_value ^ o.value_mask()) & (freeable & o.care_mask()))
            .collect();
        debug_assert!(
            off_masks.iter().all(|&d| d != 0),
            "seed must be an implicant"
        );
        off_masks.sort_unstable_by_key(|d| d.count_ones());
        // Active privileged constraints: cubes disjoint from the seed.
        let mut priv_masks: Vec<(u64, u64)> = Vec::new();
        let mut ordered_exempt = 0u64;
        for p in privileged {
            let d = (seed_value ^ p.cube.value_mask()) & (freeable & p.cube.care_mask());
            if d == 0 {
                // The seed intersects this privileged cube; as a DHF
                // implicant it contains the privileged point, and so does
                // every expansion — the constraint can never bite.
                debug_assert_eq!((p.point ^ seed_value) & freeable, 0);
                continue;
            }
            let a = (p.point ^ seed_value) & freeable;
            debug_assert_eq!(d & !a, 0, "D_q is a subset of A_q");
            if a == d {
                continue; // D ⊆ S → A ⊆ S holds trivially
            }
            ordered_exempt |= a;
            priv_masks.push((d, a));
        }
        let ordered = freeable & !ordered_exempt;
        let ok = |s: u64| -> bool {
            for &d in &off_masks {
                if d & !s == 0 {
                    return false;
                }
            }
            for &(d, a) in &priv_masks {
                if d & !s == 0 && a & !s != 0 {
                    return false;
                }
            }
            true
        };
        let cube_of = |s: u64| Cube::from_masks(self.n, freeable & !s, seed_value);
        if !visited.insert(seed) {
            return 0; // region already explored from an earlier seed
        }
        // Expands one set: feasible successors worth exploring (canonical
        // order), plus whether the set is a prime (no feasible growth at
        // all, canonical or not).
        let step = |s: u64, explore: &mut Vec<u64>| -> bool {
            // Ordered variables may only ascend past the highest one freed
            // so far (a property of the *set* S, not of the path to it).
            let freed_ordered = s & ordered;
            let ascend = if freed_ordered == 0 {
                ordered
            } else {
                ordered & !(u64::MAX >> freed_ordered.leading_zeros())
            };
            let expandable = ordered_exempt | ascend;
            let mut grew = false;
            let mut rest = freeable & !s;
            while rest != 0 {
                let i = rest.trailing_zeros();
                rest &= rest - 1;
                let s2 = s | 1u64 << i;
                if ok(s2) {
                    // Primality considers every variable; the canonical
                    // order only restricts which successors are *explored*.
                    grew = true;
                    if expandable >> i & 1 == 1 {
                        explore.push(s2);
                    }
                }
            }
            grew
        };
        let mut merged_dups = 0usize;
        let mut frontier: Vec<u64> = vec![0];
        while !frontier.is_empty() {
            // (discovered-to-explore, primes-found) for one chunk, both
            // deduplicated against the worker's private set only.
            let expand_chunk = |chunk: &[u64]| -> (Vec<u64>, Vec<u64>) {
                let mut local_seen: HashSet<u64> = HashSet::new();
                let mut explore = Vec::new();
                let mut found = Vec::new();
                let mut succ = Vec::new();
                for &s in chunk {
                    succ.clear();
                    if !step(s, &mut succ) {
                        found.push(s);
                    }
                    explore.extend(succ.iter().copied().filter(|&s2| local_seen.insert(s2)));
                }
                bmbe_obs::trace_counter!("hfmin.worklist.chunk_cubes", explore.len() as u64);
                (explore, found)
            };
            let results: Vec<(Vec<u64>, Vec<u64>)> =
                if threads > 1 && frontier.len() >= PAR_FRONTIER_MIN {
                    let chunk = frontier.len().div_ceil(threads);
                    let chunks: Vec<&[u64]> = frontier.chunks(chunk).collect();
                    bmbe_par::par_map(&chunks, threads, |_, c| expand_chunk(c))
                } else {
                    vec![expand_chunk(&frontier)]
                };
            // Serial merge barrier, in chunk order: the shared visited set
            // is the only cross-chunk state, and it is only appended to
            // here, deterministically.
            let mut next = Vec::new();
            for (explore, found) in results {
                for s2 in explore {
                    if visited.insert(cube_of(s2)) {
                        next.push(s2);
                    } else {
                        merged_dups += 1;
                    }
                }
                for s in found {
                    primes.insert(cube_of(s));
                }
            }
            frontier = next;
        }
        if merged_dups > 0 {
            bmbe_obs::trace_counter!("hfmin.worklist.merged", merged_dups as u64);
        }
        merged_dups
    }

    fn expand_to_primes(
        &self,
        cube: Cube,
        off: &Cover,
        privileged: &[PrivilegedCube],
        visited: &mut HashSet<Cube>,
        primes: &mut HashSet<Cube>,
    ) {
        if !visited.insert(cube) {
            return;
        }
        let mut grew = false;
        for i in 0..self.n {
            if !cube.is_fixed(i) {
                continue;
            }
            let bigger = cube.with_free(i);
            if self.is_dhf_implicant(&bigger, off, privileged) {
                grew = true;
                self.expand_to_primes(bigger, off, privileged, visited, primes);
            }
        }
        if !grew {
            primes.insert(cube);
        }
    }

    /// Runs the complete hazard-free minimization with the default knobs
    /// ([`MinimizeBackend::Auto`], serial prime generation, no faults).
    ///
    /// # Errors
    ///
    /// Propagates specification inconsistencies and hazard-free
    /// infeasibility; see [`HfminError`].
    pub fn minimize(&self) -> Result<HfminResult, HfminError> {
        self.minimize_opts(&MinimizeOptions::default())
    }

    /// [`FunctionSpec::minimize`] with explicit [`MinimizeOptions`]: backend
    /// selection, a worker budget for the partitioned prime-generation
    /// worklist, and deterministic fault injection.
    ///
    /// # Errors
    ///
    /// Propagates specification inconsistencies and hazard-free
    /// infeasibility; see [`HfminError`]. Returns [`HfminError::Injected`]
    /// when `opts.fault` is armed with [`PrimeGenFault::Error`].
    pub fn minimize_opts(&self, opts: &MinimizeOptions) -> Result<HfminResult, HfminError> {
        self.check_consistency()?;
        let required = self.required_cubes();
        if required.is_empty() {
            return Ok(HfminResult {
                cover: Cover::empty(),
                exact: true,
                num_primes: 0,
                stats: MinimizeStats::default(),
            });
        }
        let use_cofactor = match opts.backend {
            MinimizeBackend::ExactPrimes => false,
            MinimizeBackend::CubeCofactor => true,
            MinimizeBackend::Auto => self.n > AUTO_EXACT_VARS,
        };
        if use_cofactor {
            return crate::espresso::minimize_cofactor(self, &required, opts);
        }
        trip_prime_gen_fault(opts.fault)?;
        let _span = bmbe_obs::span!("hfmin.prime_gen", "hfmin");
        let t_primes = Instant::now();
        let (primes, worklist_merges) = self.dhf_primes_par(opts.threads.max(1))?;
        let prime_gen = t_primes.elapsed();
        drop(_span);
        let _span = bmbe_obs::span!("hfmin.covering", "hfmin");
        let mut problem = CoveringProblem::new(required.len());
        for p in &primes {
            let rows: Vec<usize> = required
                .iter()
                .enumerate()
                .filter(|(_, r)| p.contains_cube(r))
                .map(|(i, _)| i)
                .collect();
            problem.add_column(rows, 1, p.num_literals() as u64);
        }
        let t_cover = Instant::now();
        let solution = problem
            .solve(200_000)
            .expect("every required cube is a dhf-implicant contained in some prime");
        let covering = t_cover.elapsed();
        let cover: Cover = solution.columns.iter().map(|&c| primes[c]).collect();
        if let Some(bad) = required.iter().find(|r| !cover.some_cube_contains(r)) {
            let holders = primes.iter().filter(|p| p.contains_cube(bad)).count();
            panic!(
                "DEBUG: required {bad} uncovered; {holders} primes contain it;                  exact={}, rows={}, cols={}",
                solution.exact,
                required.len(),
                primes.len()
            );
        }
        Ok(HfminResult {
            cover,
            exact: solution.exact,
            num_primes: primes.len(),
            stats: MinimizeStats {
                prime_gen,
                covering,
                exact_funcs: 1,
                worklist_merges,
                ..MinimizeStats::default()
            },
        })
    }

    /// Verifies structurally that `cover` is a hazard-free cover of this
    /// specification; returns a description of the first violation.
    pub fn verify_cover(&self, cover: &Cover) -> Result<(), String> {
        let off = self.off_set();
        for c in cover.cubes() {
            if off.intersects(c) {
                return Err(format!("product {c} intersects the OFF-set"));
            }
        }
        for r in self.required_cubes() {
            if !cover.some_cube_contains(&r) {
                return Err(format!(
                    "required cube {r} not contained in a single product"
                ));
            }
        }
        for p in self.privileged_cubes() {
            for c in cover.cubes() {
                if c.intersects(&p.cube) && !c.contains_point(p.point) {
                    return Err(format!(
                        "product {c} illegally intersects privileged cube {} (point {:#b})",
                        p.cube, p.point
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover::Tv;

    /// The classic hazard example: f = x0 x1' + x1 x2 with a 1->1 transition
    /// across x1 requires the consensus term.
    fn consensus_spec() -> FunctionSpec {
        let mut spec = FunctionSpec::new(3);
        // The textbook f = x0 x1' + x1 x2 with its full ON/OFF sets.
        spec.add_static(0b001, 0b101, true); // x0 x1' (x2 free)
        spec.add_static(0b110, 0b111, true); // x1 x2 (x0 free)
        spec.add_static(0b101, 0b111, true); // 1 -> 1 while x1 rises
        for off in [0b000u64, 0b010, 0b011, 0b100] {
            spec.add_static(off, off, false);
        }
        spec
    }

    #[test]
    fn static11_requires_single_product() {
        let spec = consensus_spec();
        let result = spec.minimize().unwrap();
        // Transition cube 1-1 must be inside one product; with the full
        // OFF-set the only such implicant is the consensus term itself, so
        // the hazard-free minimum has three products (vs two for QM).
        let t = Cube::parse("1-1").unwrap();
        assert!(
            result.cover.some_cube_contains(&t),
            "cover: {}",
            result.cover
        );
        assert_eq!(result.cover.len(), 3, "cover: {}", result.cover);
        spec.verify_cover(&result.cover).unwrap();
        // And a ternary check agrees: with x1 = X, output stays 1.
        assert_eq!(
            result.cover.eval_ternary(&[Tv::One, Tv::X, Tv::One]),
            Tv::One
        );
    }

    #[test]
    fn conflicting_spec_detected() {
        let mut spec = FunctionSpec::new(2);
        spec.add_static(0b00, 0b00, true);
        spec.add_static(0b00, 0b00, false);
        assert!(matches!(
            spec.check_consistency(),
            Err(HfminError::ConflictingSpec { .. })
        ));
    }

    #[test]
    fn degenerate_dynamic_detected() {
        let mut spec = FunctionSpec::new(2);
        spec.add_dynamic(0b00, 0b00, false);
        assert!(matches!(
            spec.check_consistency(),
            Err(HfminError::DegenerateDynamic { .. })
        ));
    }

    #[test]
    fn rising_transition_privilege() {
        // 0 -> 1 transition from 00 to 11; function 1 only at 11.
        let mut spec = FunctionSpec::new(2);
        spec.add_dynamic(0b00, 0b11, false);
        let privileged = spec.privileged_cubes();
        assert_eq!(privileged.len(), 1);
        assert_eq!(privileged[0].point, 0b11);
        let result = spec.minimize().unwrap();
        spec.verify_cover(&result.cover).unwrap();
        // The single product must contain 11 and avoid 00,01,10 (OFF).
        assert!(result.cover.eval(0b11));
        assert!(!result.cover.eval(0b00));
        assert!(!result.cover.eval(0b01));
        assert!(!result.cover.eval(0b10));
    }

    #[test]
    fn falling_transition_required_cubes() {
        // 1 -> 0 from 00 to 11: ON at 00, 01, 10; OFF at 11.
        let mut spec = FunctionSpec::new(2);
        spec.add_dynamic(0b00, 0b11, true);
        let req = spec.required_cubes();
        // maximal ON subcubes containing start 00: 0- and -0.
        assert_eq!(req.len(), 2);
        let result = spec.minimize().unwrap();
        spec.verify_cover(&result.cover).unwrap();
        assert_eq!(result.cover.len(), 2);
        assert!(result.cover.eval(0b00));
        assert!(!result.cover.eval(0b11));
    }

    #[test]
    fn privileged_blocks_merging() {
        // Two functions of 3 vars. A falling transition [A=000,B=011]
        // (cube 0--) is privileged with point 000; an unrelated stable ON
        // region x0=1 (1--). A naive minimizer could merge ON points of the
        // fall tail with the 1-- region; the dhf condition prevents covers
        // whose products dip into the privileged cube without containing 000.
        let mut spec = FunctionSpec::new(3);
        spec.add_dynamic(0b000, 0b110, true); // changing vars 1,2 (bits1,2)
        spec.add_static(0b001, 0b111, true); // x0=1 region all ON
        let result = spec.minimize().unwrap();
        spec.verify_cover(&result.cover).unwrap();
        for c in result.cover.cubes() {
            let pcube = Cube::spanning(3, 0b000, 0b110);
            assert!(
                !c.intersects(&pcube) || c.contains_point(0b000),
                "bad product {c}"
            );
        }
    }

    #[test]
    fn empty_spec_gives_empty_cover() {
        let spec = FunctionSpec::new(4);
        let result = spec.minimize().unwrap();
        assert!(result.cover.is_empty());
    }

    #[test]
    fn verify_rejects_bad_cover() {
        let spec = consensus_spec();
        // Cover without consensus term violates the required cube.
        let bad: Cover = [Cube::parse("10-").unwrap(), Cube::parse("-11").unwrap()]
            .into_iter()
            .collect();
        assert!(spec.verify_cover(&bad).is_err());
    }

    #[test]
    fn off_and_on_sets_partition_transition_cubes() {
        let mut spec = FunctionSpec::new(3);
        spec.add_dynamic(0b000, 0b101, false);
        let on = spec.on_set();
        let off = spec.off_set();
        let cube = Cube::spanning(3, 0b000, 0b101);
        for p in cube.points() {
            let in_on = on.eval(p);
            let in_off = off.eval(p);
            assert!(in_on ^ in_off, "point {p:#b} must be exactly one of ON/OFF");
        }
        assert!(on.eval(0b101));
    }
}
