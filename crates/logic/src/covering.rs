//! Unate covering: choose a minimum-cost subset of columns covering all rows.
//!
//! Used by the two-level minimizers to select prime implicants. Provides an
//! exact branch-and-bound solver with essential-column and dominance
//! reductions over bit-set rows/columns, pruned by a greedy independent-set
//! lower bound, falling back to a greedy heuristic above a size threshold.

/// A unate covering problem instance.
///
/// Rows are numbered `0..num_rows`; each column lists the rows it covers and
/// carries an integer cost (with an optional secondary cost used to break
/// ties, e.g. literal counts).
#[derive(Debug, Clone)]
pub struct CoveringProblem {
    num_rows: usize,
    columns: Vec<Column>,
}

#[derive(Debug, Clone)]
struct Column {
    rows: Vec<usize>,
    cost: u64,
    tiebreak: u64,
}

/// Outcome of solving a covering problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoveringSolution {
    /// Indices of the selected columns (ascending).
    pub columns: Vec<usize>,
    /// Total primary cost of the selection.
    pub cost: u64,
    /// Whether the solution is provably minimum (exact search completed).
    pub exact: bool,
}

impl CoveringProblem {
    /// Creates a problem with `num_rows` rows and no columns yet.
    pub fn new(num_rows: usize) -> Self {
        CoveringProblem {
            num_rows,
            columns: Vec::new(),
        }
    }

    /// Adds a column covering `rows` with the given costs; returns its index.
    ///
    /// # Panics
    ///
    /// Panics if any row index is out of range.
    pub fn add_column(&mut self, mut rows: Vec<usize>, cost: u64, tiebreak: u64) -> usize {
        rows.sort_unstable();
        rows.dedup();
        for &r in &rows {
            assert!(r < self.num_rows, "row {r} out of range");
        }
        self.columns.push(Column {
            rows,
            cost,
            tiebreak,
        });
        self.columns.len() - 1
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Solves the problem.
    ///
    /// Returns `None` when some row is covered by no column (infeasible).
    /// The search is exact while the reduced problem stays within
    /// `effort_limit` branch-and-bound nodes; afterwards the best solution
    /// found so far (completed greedily) is returned with `exact == false`.
    pub fn solve(&self, effort_limit: u64) -> Option<CoveringSolution> {
        let mut col_rows: Vec<Bits> = Vec::with_capacity(self.columns.len());
        for col in &self.columns {
            let mut b = Bits::new(self.num_rows);
            for &r in &col.rows {
                b.set(r);
            }
            col_rows.push(b);
        }
        let mut row_cols: Vec<Bits> = vec![Bits::new(self.columns.len()); self.num_rows];
        for (ci, col) in self.columns.iter().enumerate() {
            for &r in &col.rows {
                row_cols[r].set(ci);
            }
        }
        if row_cols.iter().any(Bits::is_empty) && self.num_rows > 0 {
            return None;
        }
        let mut solver = Solver {
            problem: self,
            col_rows,
            row_cols,
            best: None,
            nodes: 0,
            limit: effort_limit,
            truncated: false,
        };
        let greedy = solver.greedy(&(0..self.num_rows).collect::<Vec<_>>(), &[]);
        solver.best = Some(greedy);
        let mut alive_rows = Bits::new(self.num_rows);
        for r in 0..self.num_rows {
            alive_rows.set(r);
        }
        let mut alive_cols = Bits::new(self.columns.len());
        for c in 0..self.columns.len() {
            alive_cols.set(c);
        }
        solver.search(alive_rows, alive_cols, Vec::new(), 0, 0);
        let (sel, cost, tb) = solver.best.expect("greedy always yields a solution");
        let _ = tb;
        let mut columns = sel;
        columns.sort_unstable();
        columns.dedup();
        Some(CoveringSolution {
            columns,
            cost,
            exact: !solver.truncated,
        })
    }
}

/// A fixed-capacity bit set; rows and columns of the covering matrix are
/// manipulated as machine words so containment/intersection tests cost a
/// few ANDs instead of nested `Vec` scans.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Bits {
    words: Vec<u64>,
}

impl Bits {
    fn new(len: usize) -> Self {
        Bits {
            words: vec![0; len.div_ceil(64)],
        }
    }

    fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    fn remove(&mut self, i: usize) {
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    fn and_count(&self, other: &Bits) -> usize {
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    fn intersects(&self, other: &Bits) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    fn is_subset(&self, other: &Bits) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    fn and_assign(&mut self, other: &Bits) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    fn or_assign(&mut self, other: &Bits) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    fn subtract(&mut self, other: &Bits) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    fn and(&self, other: &Bits) -> Bits {
        let mut out = self.clone();
        out.and_assign(other);
        out
    }

    /// Set bits in ascending order (matching the ascending `Vec` scans the
    /// previous solver used, so essential/branch selection is unchanged).
    fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let i = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(wi * 64 + i)
            })
        })
    }

    fn first(&self) -> Option<usize> {
        self.iter().next()
    }
}

struct Solver<'a> {
    problem: &'a CoveringProblem,
    /// Per column: the rows it covers.
    col_rows: Vec<Bits>,
    /// Per row: the columns covering it.
    row_cols: Vec<Bits>,
    best: Option<(Vec<usize>, u64, u64)>,
    nodes: u64,
    limit: u64,
    truncated: bool,
}

impl<'a> Solver<'a> {
    fn better(&self, cost: u64, tiebreak: u64) -> bool {
        match &self.best {
            None => true,
            Some((_, bc, bt)) => cost < *bc || (cost == *bc && tiebreak < *bt),
        }
    }

    /// Independent-set lower bound: rows whose alive-column sets are
    /// pairwise disjoint must each be covered by a distinct column, so the
    /// sum of their cheapest alive columns bounds any completion from
    /// below. Greedy ascending-row selection keeps it deterministic.
    fn lower_bound(&self, rows: &Bits, cols: &Bits) -> u64 {
        let mut used = Bits::new(self.problem.columns.len());
        let mut lb = 0u64;
        for r in rows.iter() {
            let alive = self.row_cols[r].and(cols);
            if alive.intersects(&used) {
                continue;
            }
            let cheapest = alive
                .iter()
                .map(|c| self.problem.columns[c].cost)
                .min()
                .unwrap_or(0);
            lb += cheapest;
            used.or_assign(&alive);
        }
        lb
    }

    /// Greedy completion: repeatedly pick the column covering the most
    /// uncovered rows per unit cost.
    fn greedy(&self, rows: &[usize], chosen: &[usize]) -> (Vec<usize>, u64, u64) {
        let mut uncovered: Vec<usize> = rows.to_vec();
        let mut sel = chosen.to_vec();
        let mut cost: u64 = sel.iter().map(|&c| self.problem.columns[c].cost).sum();
        let mut tb: u64 = sel.iter().map(|&c| self.problem.columns[c].tiebreak).sum();
        while !uncovered.is_empty() {
            let mut best_col = usize::MAX;
            let mut best_score = f64::NEG_INFINITY;
            for (ci, col) in self.problem.columns.iter().enumerate() {
                let covered = col.rows.iter().filter(|r| uncovered.contains(r)).count();
                if covered == 0 {
                    continue;
                }
                let score = covered as f64 / (col.cost.max(1)) as f64;
                if score > best_score {
                    best_score = score;
                    best_col = ci;
                }
            }
            debug_assert_ne!(best_col, usize::MAX, "feasibility checked by caller");
            sel.push(best_col);
            cost += self.problem.columns[best_col].cost;
            tb += self.problem.columns[best_col].tiebreak;
            uncovered.retain(|r| !self.problem.columns[best_col].rows.contains(r));
        }
        (sel, cost, tb)
    }

    fn search(
        &mut self,
        mut rows: Bits,
        mut cols: Bits,
        mut chosen: Vec<usize>,
        mut cost: u64,
        mut tiebreak: u64,
    ) {
        self.nodes += 1;
        if self.nodes > self.limit {
            self.truncated = true;
            return;
        }
        // Reduction loop: essentials + dominance.
        loop {
            if rows.is_empty() {
                if self.better(cost, tiebreak) {
                    self.best = Some((chosen.clone(), cost, tiebreak));
                }
                return;
            }
            if !self.better(cost, tiebreak) {
                return; // bound
            }
            // Essential columns: a row covered by exactly one alive column.
            let mut essential = None;
            for r in rows.iter() {
                let alive = self.row_cols[r].and(&cols);
                match alive.count() {
                    0 => return, // infeasible branch
                    1 => {
                        essential = alive.first();
                        break;
                    }
                    _ => {}
                }
            }
            if let Some(ci) = essential {
                chosen.push(ci);
                cost += self.problem.columns[ci].cost;
                tiebreak += self.problem.columns[ci].tiebreak;
                rows.subtract(&self.col_rows[ci]);
                cols.remove(ci);
                continue;
            }
            // Column dominance: drop c1 if some c2 covers a superset of the
            // alive rows of c1 at <= cost.
            let mut removed_col = false;
            let cols_snapshot = cols.clone();
            for c1 in cols_snapshot.iter() {
                let alive1 = self.col_rows[c1].and(&rows);
                if alive1.is_empty() {
                    cols.remove(c1);
                    removed_col = true;
                    continue;
                }
                // A strict preference order prevents mutual domination.
                let prefer = |c2: usize, c1: usize| {
                    let (a, b) = (&self.problem.columns[c2], &self.problem.columns[c1]);
                    (a.cost, a.tiebreak, c2) < (b.cost, b.tiebreak, c1)
                };
                let dominated = cols_snapshot
                    .iter()
                    .any(|c2| c2 != c1 && prefer(c2, c1) && alive1.is_subset(&self.col_rows[c2]));
                if dominated {
                    cols.remove(c1);
                    removed_col = true;
                }
            }
            if removed_col {
                continue;
            }
            // Row dominance: if the alive columns of r1 are a subset of
            // r2's, covering r1 forces covering r2, so drop r2. The strict
            // preference (proper subset, or equal sets with lower index)
            // prevents cyclic mutual domination.
            let alive_sets: Vec<(usize, Bits, usize)> = rows
                .iter()
                .map(|r| {
                    let a = self.row_cols[r].and(&cols);
                    let n = a.count();
                    (r, a, n)
                })
                .collect();
            let mut removed_row = false;
            for (r2, a2, n2) in &alive_sets {
                let dominated = alive_sets
                    .iter()
                    .any(|(r1, a1, n1)| r1 != r2 && a1.is_subset(a2) && (n1 < n2 || r1 < r2));
                if dominated {
                    rows.remove(*r2);
                    removed_row = true;
                }
            }
            if removed_row {
                continue;
            }
            break;
        }
        // Independent-set bound: prune only on a strict excess so equal-cost
        // solutions still compete on the tiebreak, exactly as before.
        if let Some((_, best_cost, _)) = &self.best {
            if cost + self.lower_bound(&rows, &cols) > *best_cost {
                return;
            }
        }
        // Branch on the hardest row (fewest alive columns).
        let branch_row = rows
            .iter()
            .min_by_key(|&r| self.row_cols[r].and_count(&cols))
            .expect("rows nonempty");
        let choices = self.row_cols[branch_row].and(&cols);
        for ci in choices.iter() {
            let mut nrows = rows.clone();
            nrows.subtract(&self.col_rows[ci]);
            let mut ncols = cols.clone();
            ncols.remove(ci);
            let mut nchosen = chosen.clone();
            nchosen.push(ci);
            self.search(
                nrows,
                ncols,
                nchosen,
                cost + self.problem.columns[ci].cost,
                tiebreak + self.problem.columns[ci].tiebreak,
            );
            if self.truncated {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_single_column() {
        let mut p = CoveringProblem::new(2);
        p.add_column(vec![0, 1], 1, 0);
        let s = p.solve(10_000).unwrap();
        assert_eq!(s.columns, vec![0]);
        assert_eq!(s.cost, 1);
        assert!(s.exact);
    }

    #[test]
    fn infeasible_returns_none() {
        let mut p = CoveringProblem::new(2);
        p.add_column(vec![0], 1, 0);
        assert!(p.solve(10_000).is_none());
    }

    #[test]
    fn prefers_cheaper_cover() {
        // Rows 0,1,2. Either {col0} covering all at cost 3, or
        // {col1,col2} at cost 1 each.
        let mut p = CoveringProblem::new(3);
        p.add_column(vec![0, 1, 2], 3, 0);
        p.add_column(vec![0, 1], 1, 0);
        p.add_column(vec![2], 1, 0);
        let s = p.solve(10_000).unwrap();
        assert_eq!(s.cost, 2);
        assert_eq!(s.columns, vec![1, 2]);
    }

    #[test]
    fn essential_column_is_forced() {
        let mut p = CoveringProblem::new(3);
        p.add_column(vec![0], 5, 0); // only cover of row 0
        p.add_column(vec![1, 2], 1, 0);
        p.add_column(vec![1], 1, 0);
        let s = p.solve(10_000).unwrap();
        assert!(s.columns.contains(&0));
        assert_eq!(s.cost, 6);
    }

    #[test]
    fn exact_beats_greedy_trap() {
        // Classic greedy trap: greedy takes the big column then needs two
        // more; optimum is two disjoint columns.
        let mut p = CoveringProblem::new(4);
        p.add_column(vec![0, 1, 2], 1, 0); // greedy bait
        p.add_column(vec![0, 1], 1, 0);
        p.add_column(vec![2, 3], 1, 0);
        let s = p.solve(100_000).unwrap();
        assert_eq!(s.cost, 2);
        assert!(s.exact);
    }

    #[test]
    fn zero_rows_selects_nothing() {
        let mut p = CoveringProblem::new(0);
        p.add_column(vec![], 1, 0);
        let s = p.solve(100).unwrap();
        assert!(s.columns.is_empty());
        assert_eq!(s.cost, 0);
    }

    #[test]
    fn tiebreak_prefers_fewer_literals() {
        let mut p = CoveringProblem::new(1);
        p.add_column(vec![0], 1, 5);
        p.add_column(vec![0], 1, 2);
        let s = p.solve(10_000).unwrap();
        assert_eq!(s.columns, vec![1]);
    }

    #[test]
    fn large_random_instance_is_feasible() {
        // 40 rows, 120 random columns; greedy or exact, must cover.
        let mut p = CoveringProblem::new(40);
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for r in 0..40 {
            p.add_column(vec![r], 3, 1); // guarantee feasibility
        }
        for _ in 0..80 {
            let rows: Vec<usize> = (0..40).filter(|_| next() % 3 == 0).collect();
            if !rows.is_empty() {
                p.add_column(rows, 2, 1);
            }
        }
        let s = p.solve(5_000).unwrap();
        let mut covered = vec![false; 40];
        for &c in &s.columns {
            // reconstruct coverage through the public API by re-solving rows
            for r in 0..40 {
                if pcol_covers(&p, c, r) {
                    covered[r] = true;
                }
            }
        }
        assert!(covered.iter().all(|&b| b));
    }

    fn pcol_covers(p: &CoveringProblem, c: usize, r: usize) -> bool {
        p.columns[c].rows.contains(&r)
    }
}

#[cfg(test)]
mod fuzz_tests {
    use super::*;

    /// Randomized validity check: every returned solution must cover all
    /// rows (regression test for a cyclic-domination bug found during
    /// development).
    #[test]
    fn random_instances_yield_valid_covers() {
        let mut seed = 12345u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for iter in 0..400 {
            let nrows = (next() % 40 + 2) as usize;
            let ncols = (next() % 60 + 2) as usize;
            let mut p = CoveringProblem::new(nrows);
            let mut colrows: Vec<Vec<usize>> = Vec::new();
            let mut coverable = vec![false; nrows];
            for _ in 0..ncols {
                let rows: Vec<usize> = (0..nrows).filter(|_| next() % 4 == 0).collect();
                for &r in &rows {
                    coverable[r] = true;
                }
                p.add_column(rows.clone(), 1, next() % 20);
                colrows.push(rows);
            }
            let sol = p.solve(50_000);
            if !coverable.iter().all(|&b| b) {
                assert!(sol.is_none(), "iter {iter}: expected infeasible");
                continue;
            }
            let sol = sol.expect("feasible instance");
            let mut covered = vec![false; nrows];
            for &c in &sol.columns {
                for &r in &colrows[c] {
                    covered[r] = true;
                }
            }
            assert!(
                covered.iter().all(|&b| b),
                "iter {iter}: invalid solution {sol:?}"
            );
        }
    }
}
