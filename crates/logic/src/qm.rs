//! A classic (hazard-oblivious) two-level minimizer, Quine–McCluskey style.
//!
//! Used as the baseline in the hazard ablation: minimizing the same
//! burst-mode functions without the Nowick–Dill conditions produces smaller
//! covers that ternary simulation then catches glitching.

use crate::cover::Cover;
use crate::covering::CoveringProblem;
use crate::cube::Cube;
use std::collections::HashSet;

/// Minimizes a function given by ON-set and DC-set covers, ignoring hazards.
///
/// Generates all prime implicants of `on + dc` reachable by expanding the
/// ON cubes, then solves the prime covering problem over the ON cubes.
///
/// Returns `None` if the ON-set and OFF-set (the complement of `on + dc`)
/// cannot be separated, which cannot happen for well-formed inputs.
pub fn minimize(n: usize, on: &Cover, dc: &Cover) -> Option<Cover> {
    if on.is_empty() {
        return Some(Cover::empty());
    }
    let is_implicant = |c: &Cube| -> bool {
        // c must be inside on + dc.
        let mut union = on.clone();
        union.extend(dc.cubes().iter().copied());
        union.covers_cube(c)
    };
    // Expand each ON cube to all maximal implicants.
    let mut primes: HashSet<Cube> = HashSet::new();
    let mut visited: HashSet<Cube> = HashSet::new();
    for &c in on.cubes() {
        expand(n, c, &is_implicant, &mut visited, &mut primes);
    }
    let primes: Vec<Cube> = {
        let mut v: Vec<Cube> = primes.into_iter().collect();
        v.sort_by_key(|c| c.num_literals());
        let mut maximal: Vec<Cube> = Vec::new();
        for c in v {
            if !maximal.iter().any(|m| m.contains_cube(&c) && *m != c) {
                maximal.push(c);
            }
        }
        maximal.sort_unstable();
        maximal
    };
    // Covering: each ON cube must be covered by the union of the selection.
    // To keep the problem unate we require single-cube containment of each
    // ON cube after splitting ON cubes against the primes; simplest correct
    // approach for the small controller functions: cover ON minterms.
    let mut rows: Vec<u64> = Vec::new();
    for c in on.cubes() {
        if c.num_free() > 20 {
            return None; // guard against blowup; not hit by controllers
        }
        rows.extend(c.points());
    }
    rows.sort_unstable();
    rows.dedup();
    let mut problem = CoveringProblem::new(rows.len());
    for p in &primes {
        let covered: Vec<usize> = rows
            .iter()
            .enumerate()
            .filter(|(_, &m)| p.contains_point(m))
            .map(|(i, _)| i)
            .collect();
        problem.add_column(covered, 1, p.num_literals() as u64);
    }
    let solution = problem.solve(200_000)?;
    Some(solution.columns.iter().map(|&c| primes[c]).collect())
}

fn expand(
    n: usize,
    cube: Cube,
    is_implicant: &dyn Fn(&Cube) -> bool,
    visited: &mut HashSet<Cube>,
    primes: &mut HashSet<Cube>,
) {
    if !visited.insert(cube) {
        return;
    }
    let mut grew = false;
    for i in 0..n {
        if !cube.is_fixed(i) {
            continue;
        }
        let bigger = cube.with_free(i);
        if is_implicant(&bigger) {
            grew = true;
            expand(n, bigger, is_implicant, visited, primes);
        }
    }
    if !grew {
        primes.insert(cube);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover(strs: &[&str]) -> Cover {
        strs.iter().map(|s| Cube::parse(s).unwrap()).collect()
    }

    #[test]
    fn minimizes_xor_like_function() {
        // ON = {01, 10}; OFF = {00, 11}: XOR has no merging; 2 products.
        let on = cover(&["10", "01"]);
        let result = minimize(2, &on, &Cover::empty()).unwrap();
        assert_eq!(result.len(), 2);
        assert!(result.eval(0b01));
        assert!(result.eval(0b10));
        assert!(!result.eval(0b00));
        assert!(!result.eval(0b11));
    }

    #[test]
    fn merges_adjacent_minterms() {
        let on = cover(&["00", "10"]); // x1'=ON -> single cube -0
        let result = minimize(2, &on, &Cover::empty()).unwrap();
        assert_eq!(result.len(), 1);
        assert_eq!(result.cubes()[0].to_string(), "-0");
    }

    #[test]
    fn uses_dont_cares() {
        // ON = {11}; DC = {01, 10}: minimal cover can be x0 or x1 (1 literal).
        let on = cover(&["11"]);
        let dc = cover(&["01", "10"]);
        let result = minimize(2, &on, &dc).unwrap();
        assert_eq!(result.len(), 1);
        assert_eq!(result.cubes()[0].num_literals(), 1);
        assert!(result.eval(0b11));
        assert!(!result.eval(0b00));
    }

    #[test]
    fn empty_on_set() {
        let result = minimize(3, &Cover::empty(), &Cover::empty()).unwrap();
        assert!(result.is_empty());
    }

    #[test]
    fn classic_consensus_function_needs_two_products_without_hazard_care() {
        // f = x0 x1' + x1 x2 (ON minterms): hazard-oblivious minimum is 2
        // products; the hazard-free version needs 3.
        let on = cover(&["10-", "-11"]);
        let result = minimize(3, &on, &Cover::empty()).unwrap();
        assert_eq!(result.len(), 2);
    }
}
