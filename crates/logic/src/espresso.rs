//! Espresso-style cube-cofactor minimization for DHF covers.
//!
//! The exact engine in [`crate::hfmin`] enumerates *every* DHF-prime
//! implicant before solving a covering problem — the right oracle, but its
//! worklist is exponential in the variable count and dominates the flow's
//! `prime_gen` phase on large cluster functions. This module is the
//! incremental alternative, structured like espresso's EXPAND/IRREDUNDANT
//! loop but adapted to the hazard-free constraint system of Nowick and
//! Dill:
//!
//! * **EXPAND** — each required cube is grown to *one* good DHF prime by a
//!   recursive cube-cofactor search. The per-seed constraint compilation is
//!   shared with the canonical-ascent worklist: an OFF cube blocks the set
//!   `S` of freed variables iff its disagreement mask is contained in `S`,
//!   and an active privileged cube contributes the implication
//!   `D_q ⊆ S → A_q ⊆ S`. Those implications are exactly the *binate*
//!   part of the search space, so the recursion branches on them — commit
//!   to the consequence (`S ∪ A_q`) or veto the trigger (block a variable
//!   of `D_q`) — and the remaining *unate* leaf is completed greedily:
//!   first absorbing other required cubes whose gain masks fit, then a
//!   single-variable maximality pass over the full feasibility predicate,
//!   which guarantees the leaf is a true DHF prime.
//! * **IRREDUNDANT** — the per-seed picks then go through the same
//!   unate-covering solver as the exact path, which drops every product
//!   the remaining ones already cover.
//!
//! The result is valid and hazard-free by construction (each required cube
//! is inside its own pick, and every pick passes the full DHF-implicant
//! predicate), costs at most one product per required cube, but is not
//! guaranteed minimum — [`FunctionSpec::dhf_primes`] stays the exactness
//! oracle the property suite compares against, exactly as the reference
//! engines of earlier layers do.

use crate::cover::Cover;
use crate::covering::CoveringProblem;
use crate::cube::Cube;
use crate::hfmin::{
    trip_prime_gen_fault, FunctionSpec, HfminError, HfminResult, MinimizeOptions, MinimizeStats,
    PrivilegedCube,
};
use std::time::Instant;

/// Leaf budget of one seed's EXPAND recursion: once this many cofactor
/// leaves have been completed the remaining binate branches collapse into
/// greedy completions. Bounds the per-seed work at a small constant while
/// leaving room to explore genuinely different privileged resolutions.
const LEAF_BUDGET: usize = 64;

/// Branch-and-bound effort for the IRREDUNDANT covering pass. The column
/// set here is at most one product per required cube, far smaller than the
/// full prime set of the exact path, so a modest budget is almost always
/// exact in practice.
const IRREDUNDANT_EFFORT: u64 = 50_000;

/// One seed's compiled constraint system over the set `S` of freed
/// variables (bit `i` of `s` set ⇔ variable `i` freed).
struct SeedExpansion {
    /// Variables fixed in the seed, i.e. the ones expansion may free.
    freeable: u64,
    /// Disagreement mask of each OFF cube; `d ⊆ S` blocks the expansion.
    off_masks: Vec<u64>,
    /// Active privileged implications `(d, a)`: `d ⊆ S → a ⊆ S`.
    priv_masks: Vec<(u64, u64)>,
    /// Gain mask of every *other* required cube `r'`: the variables that
    /// must be freed for `r'` to fall inside the expanded cube.
    gains: Vec<u64>,
    /// Remaining leaf budget.
    leaves_left: usize,
    /// Deepest recursion reached (for the flow's observability counters).
    max_depth: usize,
}

impl SeedExpansion {
    /// The full DHF-implicant feasibility predicate over `S`.
    fn ok(&self, s: u64) -> bool {
        for &d in &self.off_masks {
            if d & !s == 0 {
                return false;
            }
        }
        for &(d, a) in &self.priv_masks {
            if d & !s == 0 && a & !s != 0 {
                return false;
            }
        }
        true
    }

    /// Recursive cube-cofactor expansion. `s` is the feasible set built so
    /// far (`ok(s)` holds), `b` the variables vetoed by earlier branches.
    /// Branches on the first still-undecided privileged implication; when
    /// none is left (a unate leaf) or the leaf budget is spent, completes
    /// `s` greedily and records the leaf.
    fn expand(&mut self, s: u64, b: u64, depth: usize, leaves: &mut Vec<u64>) {
        self.max_depth = self.max_depth.max(depth);
        if self.leaves_left > 1 {
            for k in 0..self.priv_masks.len() {
                let (d, a) = self.priv_masks[k];
                if d & b != 0 {
                    continue; // trigger vetoed: the implication never fires
                }
                if a & !s == 0 {
                    continue; // consequence already raised: always satisfied
                }
                debug_assert!(d & !s != 0, "d ⊆ s with a ⊄ s contradicts ok(s)");
                // Binate branch. A: commit to the consequence, making the
                // trigger region reachable. B: veto the trigger by blocking
                // its lowest unfreed variable.
                let sa = s | a;
                let veto = 1u64 << (d & !s).trailing_zeros();
                if self.ok(sa) {
                    self.expand(sa, b, depth + 1, leaves);
                    self.expand(s, b | veto, depth + 1, leaves);
                } else {
                    self.expand(s, b | veto, depth + 1, leaves);
                }
                return;
            }
        }
        self.leaves_left = self.leaves_left.saturating_sub(1);
        leaves.push(self.complete(s, b));
    }

    /// Greedy unate-leaf completion: absorb whole gain sets (cheapest
    /// first) while feasible, then run a single-variable maximality pass
    /// under the full predicate until fixpoint — so the returned set is a
    /// true DHF prime (no single variable can still be freed).
    fn complete(&self, mut s: u64, b: u64) -> u64 {
        loop {
            let mut best: Option<(u32, u64)> = None;
            for &g in &self.gains {
                let missing = g & !s;
                if missing == 0 || missing & b != 0 || !self.ok(s | missing) {
                    continue;
                }
                let cost = missing.count_ones();
                if best.map_or(true, |(c, m)| (cost, missing) < (c, m)) {
                    best = Some((cost, missing));
                }
            }
            match best {
                Some((_, missing)) => s |= missing,
                None => break,
            }
        }
        // Freeing one variable can satisfy a privileged consequence and
        // thereby unlock others, so iterate to fixpoint. Vetoes no longer
        // apply: they steered the branching, not primality.
        loop {
            let mut grew = false;
            let mut rest = self.freeable & !s;
            while rest != 0 {
                let i = rest.trailing_zeros();
                rest &= rest - 1;
                let s2 = s | 1u64 << i;
                if self.ok(s2) {
                    s = s2;
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        s
    }
}

/// Expands one required cube to its chosen DHF prime. Returns the pick,
/// the deepest recursion level, and the number of leaves completed.
fn expand_seed(
    spec: &FunctionSpec,
    seed: Cube,
    required: &[Cube],
    off: &Cover,
    privileged: &[PrivilegedCube],
) -> (Cube, usize, usize) {
    let freeable = seed.care_mask();
    let seed_value = seed.value_mask();
    let mut off_masks: Vec<u64> = off
        .cubes()
        .iter()
        .map(|o| (seed_value ^ o.value_mask()) & (freeable & o.care_mask()))
        .collect();
    debug_assert!(
        off_masks.iter().all(|&d| d != 0),
        "seed must be an implicant"
    );
    off_masks.sort_unstable_by_key(|d| d.count_ones());
    let mut priv_masks: Vec<(u64, u64)> = Vec::new();
    for p in privileged {
        let d = (seed_value ^ p.cube.value_mask()) & (freeable & p.cube.care_mask());
        if d == 0 {
            // The seed already intersects this privileged cube; as a DHF
            // implicant it contains the privileged point, and so does every
            // expansion — the constraint can never bite.
            continue;
        }
        let a = (p.point ^ seed_value) & freeable;
        if a == d {
            continue; // D ⊆ S → A ⊆ S holds trivially
        }
        priv_masks.push((d, a));
    }
    // r' ⊆ expanded cube ⇔ its gain mask ⊆ S: every variable the expanded
    // cube still fixes must be fixed to the same value in r'.
    let gains: Vec<u64> = required
        .iter()
        .filter(|r| **r != seed)
        .map(|r| freeable & !(r.care_mask() & !(r.value_mask() ^ seed_value)))
        .collect();
    let mut exp = SeedExpansion {
        freeable,
        off_masks,
        priv_masks,
        gains,
        leaves_left: LEAF_BUDGET,
        max_depth: 0,
    };
    let mut leaves: Vec<u64> = Vec::new();
    exp.expand(0, 0, 0, &mut leaves);
    // Deterministic pick: most other required cubes absorbed, then the
    // biggest cube (fewest literals), then the numerically smallest set.
    let mut best: Option<(usize, u32, u64)> = None;
    for &s in &leaves {
        let absorbed = exp.gains.iter().filter(|&&g| g & !s == 0).count();
        let key = (absorbed, s.count_ones(), s);
        let better = match best {
            None => true,
            Some((ba, bp, bs)) => (absorbed, s.count_ones()) > (ba, bp)
                || ((absorbed, s.count_ones()) == (ba, bp) && s < bs),
        };
        if better {
            best = Some(key);
        }
    }
    let (_, _, s) = best.expect("expansion always completes at least one leaf");
    let pick = Cube::from_masks(spec.num_vars(), freeable & !s, seed_value);
    debug_assert!(spec.is_dhf_implicant(&pick, off, privileged));
    debug_assert!(pick.contains_cube(&seed));
    (pick, exp.max_depth, leaves.len())
}

/// Runs the full cube-cofactor minimization: per-seed EXPAND (fanned
/// across `opts.threads` workers — seeds are independent, and the
/// order-preserving map keeps the result bit-identical to a serial run),
/// then the IRREDUNDANT covering pass over the picks.
///
/// # Errors
///
/// Returns [`HfminError::NoHazardFreeCover`] when some required cube is
/// not a DHF implicant, and [`HfminError::Injected`] when `opts.fault` is
/// armed with an error-kind fault.
pub(crate) fn minimize_cofactor(
    spec: &FunctionSpec,
    required: &[Cube],
    opts: &MinimizeOptions,
) -> Result<HfminResult, HfminError> {
    trip_prime_gen_fault(opts.fault)?;
    let expand_span = bmbe_obs::span!("hfmin.expand", "hfmin");
    let t_expand = Instant::now();
    let off = spec.off_set_ordered();
    let privileged = spec.privileged_cubes();
    // Every required cube must be feasible up front: a cube that a later
    // pick happens to cover can still be a non-implicant, which makes the
    // whole specification infeasible, not redundant.
    for r in required {
        if !spec.is_dhf_implicant(r, &off, &privileged) {
            return Err(HfminError::NoHazardFreeCover { required: *r });
        }
    }
    let threads = opts.threads.max(1);
    let picks: Vec<(Cube, usize, usize)> = bmbe_par::par_map(required, threads, |_, r| {
        expand_seed(spec, *r, required, &off, &privileged)
    });
    let mut implicants: Vec<Cube> = Vec::new();
    let mut cofactor_depth = 0usize;
    let mut leaves_total = 0usize;
    for (pick, depth, leaves) in picks {
        cofactor_depth = cofactor_depth.max(depth);
        leaves_total += leaves;
        if !implicants.contains(&pick) {
            implicants.push(pick);
        }
    }
    bmbe_obs::trace_counter!("hfmin.cofactor.seeds", required.len() as u64);
    bmbe_obs::trace_counter!("hfmin.cofactor.leaves", leaves_total as u64);
    bmbe_obs::trace_counter!("hfmin.cofactor.depth", cofactor_depth as u64);
    let prime_gen = t_expand.elapsed();
    drop(expand_span);
    let _irr_span = bmbe_obs::span!("hfmin.irredundant", "hfmin");
    let t_cover = Instant::now();
    let mut problem = CoveringProblem::new(required.len());
    for p in &implicants {
        let rows: Vec<usize> = required
            .iter()
            .enumerate()
            .filter(|(_, r)| p.contains_cube(r))
            .map(|(i, _)| i)
            .collect();
        problem.add_column(rows, 1, p.num_literals() as u64);
    }
    let solution = problem
        .solve(IRREDUNDANT_EFFORT)
        .expect("every required cube is contained in its own seed's pick");
    let covering = t_cover.elapsed();
    let cover: Cover = solution.columns.iter().map(|&c| implicants[c]).collect();
    debug_assert!(spec.verify_cover(&cover).is_ok());
    Ok(HfminResult {
        cover,
        // The covering step may be exact over the picks, but the picks are
        // not the full prime set, so the cover is never provably minimum.
        exact: false,
        num_primes: implicants.len(),
        stats: MinimizeStats {
            prime_gen,
            covering,
            cofactor_funcs: 1,
            cofactor_depth,
            ..MinimizeStats::default()
        },
    })
}
