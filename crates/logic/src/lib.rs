#![warn(missing_docs)]
//! # bmbe-logic
//!
//! Two-level Boolean logic substrate for the burst-mode back-end: cube
//! algebra, sum-of-products covers with ternary (hazard) evaluation, a unate
//! covering solver, the Nowick–Dill **hazard-free two-level minimizer** (the
//! core of the Minimalist-equivalent synthesizer), and a hazard-oblivious
//! Quine–McCluskey baseline used for ablation experiments.
//!
//! # Examples
//!
//! Minimize a function with a static-1 multiple-input-change transition —
//! the classic case where hazard-free synthesis must add a consensus term:
//!
//! ```
//! use bmbe_logic::hfmin::FunctionSpec;
//! use bmbe_logic::cover::Tv;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut spec = FunctionSpec::new(3);
//! spec.add_static(0b001, 0b101, true); // x0 x1'
//! spec.add_static(0b110, 0b111, true); // x1 x2
//! spec.add_static(0b101, 0b111, true); // 1 -> 1 while x1 rises
//! for off in [0b000u64, 0b010, 0b011, 0b100] { spec.add_static(off, off, false); }
//! let result = spec.minimize()?;
//! // The cover holds 1 even while x1 is mid-flight:
//! assert_eq!(result.cover.eval_ternary(&[Tv::One, Tv::X, Tv::One]), Tv::One);
//! # Ok(())
//! # }
//! ```

pub mod cover;
pub mod covering;
pub mod cube;
pub mod espresso;
pub mod hfmin;
pub mod qm;

pub use cover::{Cover, Tv};
pub use covering::{CoveringProblem, CoveringSolution};
pub use cube::{Cube, Point};
pub use hfmin::{
    FunctionSpec, HfminError, HfminResult, MinimizeBackend, MinimizeOptions, MinimizeStats,
    PrimeGenFault, PrivilegedCube, SpecTransition, AUTO_EXACT_VARS,
};
