//! Test-runner configuration and failure type.

use std::fmt;

/// Configuration of a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for TestCaseError {}
