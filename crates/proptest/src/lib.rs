//! Offline stand-in for the `proptest` crate.
//!
//! The workspace builds in environments with no network access and no crate
//! registry, so the real `proptest` cannot be fetched. This crate implements
//! the (small) subset of the proptest 1.x API the workspace's property tests
//! use — [`Strategy`], `prop_map`, `boxed`, tuple/range/`any` strategies,
//! [`collection::vec`], `prop_oneof!`, and the `proptest!` test macro — on
//! top of a deterministic splitmix64 generator. There is no shrinking: a
//! failing case reports its seed so it can be replayed by rerunning the
//! test (generation is a pure function of the test name and case index).

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Deterministic pseudo-random generator (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "below(0)");
        self.next_u64() % n
    }

    /// Uniform boolean.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// FNV-1a hash of a string, used to derive per-test seeds.
pub fn seed_of(name: &str, case: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^ case.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

/// The property-test macro: runs each `#[test] fn name(pat in strategy, ...)`
/// body for `cases` deterministic random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run $cfg; $($rest)*);
    };
    (@run $cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..u64::from(config.cases) {
                    let seed = $crate::seed_of(stringify!($name), case);
                    let mut rng = $crate::TestRng::new(seed);
                    $(let $pat = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body; ::std::result::Result::Ok(()) })();
                    if let Err(e) = outcome {
                        panic!(
                            "property {} failed at case {case}/{} (seed {seed:#x}): {}",
                            stringify!($name),
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Fails the current property when the condition does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current property when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Uniform choice between several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
