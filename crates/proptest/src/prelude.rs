//! The conventional `use proptest::prelude::*` import surface.

pub use crate::collection;
pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
pub use crate::test_runner::{ProptestConfig, TestCaseError};
pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
