//! Value-generation strategies (the proptest `Strategy` subset).

use crate::TestRng;
use std::ops::Range;

/// Generates random values of an associated type from a [`TestRng`].
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Strategy that always yields a clone of a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed alternatives (the `prop_oneof!` backend).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics on an empty option list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! of nothing");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen_bool()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

/// Strategy for any value of an [`Arbitrary`] type.
pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl Strategy for Range<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

impl Strategy for Range<usize> {
    type Value = usize;
    fn generate(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl Strategy for Range<u32> {
    type Value = u32;
    fn generate(&self, rng: &mut TestRng) -> u32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below(u64::from(self.end - self.start)) as u32
    }
}

impl Strategy for Range<i64> {
    type Value = i64;
    fn generate(&self, rng: &mut TestRng) -> i64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below((self.end - self.start) as u64) as i64
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
