//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::TestRng;
use std::ops::Range;

/// Length specification for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    start: usize,
    end: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            start: r.start,
            end: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            start: n,
            end: n + 1,
        }
    }
}

/// Strategy producing vectors of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Vector of `size` values drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
