//! Deterministic fault injection for the flow's recovery paths.
//!
//! A [`FaultPlan`] names one synthesis job (by its deterministic fan-out
//! index) and one per-shape phase, and forces either a worker panic or a
//! typed error exactly there. Because the target is the job *index* — not
//! a dynamic "nth job to start" counter — the same plan fires at the same
//! job whatever the worker-thread count, which is what lets the
//! fault-injection tests assert that 1-thread and 4-thread runs report the
//! identical failure.
//!
//! The bench binaries pick a plan up from the environment
//! (`BMBE_FAULT=<phase>:<nth>` or `BMBE_FAULT=<phase>:<nth>:err`, see
//! [`FaultPlan::from_env`]); library callers set
//! [`crate::FlowOptions::fault`] directly.

use std::fmt;

/// The per-shape synthesis phase a fault targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPhase {
    /// CH-to-BMS compilation.
    Compile,
    /// State minimization.
    Statemin,
    /// Hazard-free two-level synthesis.
    Synth,
    /// DHF prime/implicant generation inside synthesis (the logic crate's
    /// minimizer backends; see `bmbe_logic::hfmin::PrimeGenFault`).
    PrimeGen,
    /// Ternary / post-mapping verification.
    Verify,
    /// Technology mapping.
    Map,
    /// Controller-tape compilation for the bit-parallel simulation backend
    /// (per-controller, in fan-out index order; see `crate::csim`).
    SimCompile,
    /// Disk-cache I/O (`crate::cache::disk::DiskCache`). Unlike the other
    /// phases, `nth` counts *disk operations* on one cache handle (reads
    /// and writes share the counter), not fan-out job indices — there is
    /// no deterministic job order across the I/O a persistent cache sees.
    CacheIo,
}

impl FaultPhase {
    /// The phase's name, as used in the `BMBE_FAULT` grammar and in error
    /// reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultPhase::Compile => "compile",
            FaultPhase::Statemin => "statemin",
            FaultPhase::Synth => "synth",
            FaultPhase::PrimeGen => "prime_gen",
            FaultPhase::Verify => "verify",
            FaultPhase::Map => "map",
            FaultPhase::SimCompile => "sim_compile",
            FaultPhase::CacheIo => "cache_io",
        }
    }

    fn parse(s: &str) -> Option<FaultPhase> {
        Some(match s {
            "compile" => FaultPhase::Compile,
            "statemin" => FaultPhase::Statemin,
            "synth" => FaultPhase::Synth,
            "prime_gen" => FaultPhase::PrimeGen,
            "verify" => FaultPhase::Verify,
            "map" => FaultPhase::Map,
            "sim_compile" => FaultPhase::SimCompile,
            "cache_io" => FaultPhase::CacheIo,
            _ => return None,
        })
    }
}

impl fmt::Display for FaultPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How an injected fault manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The job panics (exercises `catch_unwind` isolation and poison
    /// recovery).
    Panic,
    /// The job returns a typed error (exercises the `Err` propagation
    /// path without unwinding).
    Error,
}

/// A deterministic fault: force `kind` at the start of `phase` in
/// synthesis job number `nth` (the job's index in the flow's fan-out
/// order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// The targeted per-shape phase.
    pub phase: FaultPhase,
    /// The targeted job index within the flow run's synthesis fan-out.
    pub nth: usize,
    /// Panic or typed error.
    pub kind: FaultKind,
}

/// A malformed fault specification (the `BMBE_FAULT` grammar is
/// `<phase>:<nth>[:err]` with `<phase>` one of `compile`, `statemin`,
/// `synth`, `prime_gen`, `verify`, `map`, `sim_compile`, `cache_io`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultParseError {
    /// The rejected specification text.
    pub spec: String,
}

impl fmt::Display for FaultParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid fault spec {:?}: expected <phase>:<nth>[:err] with <phase> one of \
             compile|statemin|synth|prime_gen|verify|map|sim_compile|cache_io",
            self.spec
        )
    }
}

impl std::error::Error for FaultParseError {}

impl FaultPlan {
    /// Parses the `BMBE_FAULT` grammar: `<phase>:<nth>` injects a panic,
    /// `<phase>:<nth>:err` a typed error.
    ///
    /// # Errors
    ///
    /// Rejects anything outside the grammar.
    pub fn parse(spec: &str) -> Result<FaultPlan, FaultParseError> {
        let err = || FaultParseError {
            spec: spec.to_string(),
        };
        let mut parts = spec.trim().split(':');
        let phase = parts
            .next()
            .and_then(FaultPhase::parse)
            .ok_or_else(err)?;
        let nth = parts
            .next()
            .and_then(|n| n.parse::<usize>().ok())
            .ok_or_else(err)?;
        let kind = match parts.next() {
            None => FaultKind::Panic,
            Some("err") => FaultKind::Error,
            Some(_) => return Err(err()),
        };
        if parts.next().is_some() {
            return Err(err());
        }
        Ok(FaultPlan { phase, nth, kind })
    }

    /// Reads `BMBE_FAULT` from the environment. Unset or empty means no
    /// fault; a malformed value is reported on stderr and ignored (a typo
    /// must not silently disable the injection *and* must not crash the
    /// tool it was aimed at).
    pub fn from_env() -> Option<FaultPlan> {
        let spec = std::env::var("BMBE_FAULT").ok()?;
        if spec.trim().is_empty() {
            return None;
        }
        match FaultPlan::parse(&spec) {
            Ok(plan) => Some(plan),
            Err(e) => {
                bmbe_obs::vlog!(0, "bmbe-flow: ignoring BMBE_FAULT: {e}");
                None
            }
        }
    }

    /// Whether this plan targets fan-out job `index`.
    pub fn targets_job(&self, index: usize) -> bool {
        self.nth == index
    }

    /// Fires the fault if `phase` is the targeted phase: panics for
    /// [`FaultKind::Panic`], returns `Err(())` for [`FaultKind::Error`],
    /// and is a no-op for every other phase. Callers hold this only for
    /// the targeted job (see [`FaultPlan::targets_job`]).
    pub(crate) fn trip(&self, phase: FaultPhase) -> Result<(), FaultPhase> {
        if self.phase != phase {
            return Ok(());
        }
        // A firing fault is exactly what the flight recorder exists for:
        // leave a breadcrumb before the panic/error unwinds the job.
        bmbe_obs::recorder::note("fault.fired", || {
            format!("phase {} of job {} ({:?})", self.phase, self.nth, self.kind)
        });
        match self.kind {
            FaultKind::Panic => panic!(
                "injected fault: panic at phase {} of job {}",
                self.phase, self.nth
            ),
            FaultKind::Error => Err(self.phase),
        }
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}{}",
            self.phase,
            self.nth,
            match self.kind {
                FaultKind::Panic => "",
                FaultKind::Error => ":err",
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_grammar() {
        assert_eq!(
            FaultPlan::parse("synth:0").unwrap(),
            FaultPlan {
                phase: FaultPhase::Synth,
                nth: 0,
                kind: FaultKind::Panic
            }
        );
        assert_eq!(
            FaultPlan::parse("map:7:err").unwrap(),
            FaultPlan {
                phase: FaultPhase::Map,
                nth: 7,
                kind: FaultKind::Error
            }
        );
        assert_eq!(
            FaultPlan::parse("prime_gen:2:err").unwrap(),
            FaultPlan {
                phase: FaultPhase::PrimeGen,
                nth: 2,
                kind: FaultKind::Error
            }
        );
        assert_eq!(
            FaultPlan::parse("sim_compile:1:err").unwrap(),
            FaultPlan {
                phase: FaultPhase::SimCompile,
                nth: 1,
                kind: FaultKind::Error
            }
        );
        assert_eq!(
            FaultPlan::parse("cache_io:0:err").unwrap(),
            FaultPlan {
                phase: FaultPhase::CacheIo,
                nth: 0,
                kind: FaultKind::Error
            }
        );
        for bad in ["", "synth", "synth:", "synth:x", "bogus:1", "synth:1:boom", "synth:1:err:x"] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn display_round_trips() {
        for spec in ["compile:3", "verify:12:err", "statemin:0"] {
            let plan = FaultPlan::parse(spec).unwrap();
            assert_eq!(plan.to_string(), spec);
            assert_eq!(FaultPlan::parse(&plan.to_string()).unwrap(), plan);
        }
    }

    #[test]
    fn error_kind_trips_only_its_phase() {
        let plan = FaultPlan::parse("verify:0:err").unwrap();
        assert!(plan.trip(FaultPhase::Compile).is_ok());
        assert!(plan.trip(FaultPhase::Synth).is_ok());
        assert_eq!(plan.trip(FaultPhase::Verify), Err(FaultPhase::Verify));
    }
}
