//! Hand-optimized template models for the standard control components.
//!
//! The paper's *unoptimized* baseline is stock Balsa output, whose control
//! components "are manually designed and they have highly-optimized
//! implementations" (§6). This module models those templates: per-kind cell
//! area and input-to-output latency derived from the classic gate-level
//! implementations (S-element sequencers, C-element concurs and
//! decision-waits, merge-gate calls), costed in the synthetic library's
//! units. The *behaviour* of a baseline component in simulation still comes
//! from its synthesized covers — provably protocol-equivalent — only the
//! area/delay annotations use the template figures.

use bmbe_hsnet::{ComponentKind, Netlist};
use std::collections::HashMap;

/// Template area (µm²) and latency (ns) of one control component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Template {
    /// Cell area of the hand-optimized implementation.
    pub area: f64,
    /// Typical input-edge to output-edge latency.
    pub delay_ns: f64,
}

/// The template model of a control component kind, if it has one.
pub fn template_of(kind: &ComponentKind) -> Option<Template> {
    let t = match kind {
        // An S-element per sequenced branch.
        ComponentKind::Sequence { branches } => Template {
            area: 36.0 + 85.0 * (*branches as f64),
            delay_ns: 0.26,
        },
        // A C-element completion tree plus request forks.
        ComponentKind::Concur { branches } => Template {
            area: 36.0 + 73.0 * (*branches as f64 - 1.0),
            delay_ns: 0.30,
        },
        ComponentKind::Loop => Template {
            area: 80.0,
            delay_ns: 0.16,
        },
        ComponentKind::While => Template {
            area: 250.0,
            delay_ns: 0.42,
        },
        // Merge gates and a latch per caller.
        ComponentKind::Call { inputs } => Template {
            area: 40.0 + 90.0 * (*inputs as f64),
            delay_ns: 0.30,
        },
        // A C-element per pair plus completion logic.
        ComponentKind::DecisionWait { pairs } => Template {
            area: 50.0 + 73.0 * (*pairs as f64),
            delay_ns: 0.34,
        },
        ComponentKind::Fork { outputs } => Template {
            area: 36.0 + 73.0 * (*outputs as f64 - 1.0),
            delay_ns: 0.30,
        },
        ComponentKind::Sync { inputs } => Template {
            area: 73.0 * (*inputs as f64 - 1.0).max(1.0),
            delay_ns: 0.30,
        },
        ComponentKind::Fetch => Template {
            area: 75.0,
            delay_ns: 0.20,
        },
        ComponentKind::Case { branches } => Template {
            area: 120.0 + 60.0 * (*branches as f64),
            delay_ns: 0.45,
        },
        ComponentKind::Skip => Template {
            area: 10.0,
            delay_ns: 0.06,
        },
        _ => return None,
    };
    Some(t)
}

/// Builds the template table for every control component of a netlist,
/// keyed by the component names the Balsa-to-CH translator produces
/// (`<mnemonic>_<id>`).
pub fn template_table(netlist: &Netlist) -> HashMap<String, Template> {
    netlist
        .components()
        .iter()
        .filter(|c| c.kind.is_control())
        .filter_map(|c| {
            template_of(&c.kind).map(|t| (format!("{}_{}", c.kind.mnemonic(), c.id.0), t))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_kinds_have_templates() {
        assert!(template_of(&ComponentKind::Sequence { branches: 2 }).is_some());
        assert!(template_of(&ComponentKind::Fetch).is_some());
        assert!(template_of(&ComponentKind::Variable { width: 8, reads: 1 }).is_none());
    }

    #[test]
    fn templates_are_far_smaller_than_synthesized_controllers() {
        // A 2-branch sequencer template ~ 200 um^2; its BM synthesis runs
        // to several hundred. The baseline must be the lean one.
        let t = template_of(&ComponentKind::Sequence { branches: 2 }).expect("template");
        assert!(t.area < 300.0);
        assert!(t.delay_ns < 0.5);
    }

    #[test]
    fn wider_components_cost_more() {
        let s2 = template_of(&ComponentKind::Sequence { branches: 2 })
            .expect("t")
            .area;
        let s8 = template_of(&ComponentKind::Sequence { branches: 8 })
            .expect("t")
            .area;
        assert!(s8 > s2);
    }
}
