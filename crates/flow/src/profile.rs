//! Lightweight per-phase wall-clock profiling of the synthesis chain.
//!
//! Every cache miss runs the full per-shape chain (CH→BMS compile, state
//! minimization, hazard-free synthesis, verification, technology mapping);
//! [`PhaseProfile`] records how long each phase took, and a flow run sums
//! the profiles of the shapes it actually synthesized (cache hits cost
//! nothing and contribute nothing). `perf_report` surfaces the aggregate as
//! the `phases` section of `BENCH_flow.json`, which is what pointed this
//! PR's kernel work at prime generation and covering in the first place.

use std::time::Duration;

/// Wall-clock breakdown of one shape's synthesis chain (or the sum over
/// all shapes a flow run synthesized).
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseProfile {
    /// CH → BMS compilation.
    pub compile: Duration,
    /// Conservative state minimization.
    pub statemin: Duration,
    /// Hazard-free two-level synthesis in total (state assignment, spec
    /// construction, minimization of every function).
    pub synth: Duration,
    /// Of `synth`: DHF-prime generation inside the minimizer.
    pub prime_gen: Duration,
    /// Of `synth`: the unate-covering solver.
    pub covering: Duration,
    /// Hazard verification (ternary simulation of the two-level covers plus
    /// post-mapping equivalence and ternary analysis).
    pub verify: Duration,
    /// Technology mapping (subject-graph construction and tree covering).
    pub map: Duration,
    /// Number of shape syntheses summed into this profile.
    pub shapes: usize,
}

impl PhaseProfile {
    /// Sums another profile into this one.
    pub fn accumulate(&mut self, other: &PhaseProfile) {
        self.compile += other.compile;
        self.statemin += other.statemin;
        self.synth += other.synth;
        self.prime_gen += other.prime_gen;
        self.covering += other.covering;
        self.verify += other.verify;
        self.map += other.map;
        self.shapes += other.shapes;
    }

    /// Total profiled time (compile + statemin + synth + verify + map; the
    /// prime-generation and covering components are already inside
    /// `synth`).
    pub fn total(&self) -> Duration {
        self.compile + self.statemin + self.synth + self.verify + self.map
    }

    /// Debug-build sanity check: `prime_gen` and `covering` are measured
    /// *inside* the synthesis phase, so their sum cannot exceed `synth` —
    /// except that they are CPU-time sums over the inner worker fan-out
    /// while `synth` is wall time, so the bound scales with the worker
    /// budget `threads` (plus a small slack for timer granularity).
    pub fn debug_check_subphases(&self, threads: usize) {
        debug_assert!(
            self.prime_gen + self.covering
                <= self.synth * threads.max(1) as u32 + Duration::from_millis(5),
            "sub-phases exceed synth: prime_gen {:?} + covering {:?} > synth {:?} x {} threads",
            self.prime_gen,
            self.covering,
            self.synth,
            threads.max(1),
        );
    }
}
