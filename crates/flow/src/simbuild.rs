//! Builds a simulation of a complete design: the synthesized controllers
//! plus behavioural datapath and a scripted environment.

use crate::pipeline::FlowResult;
use bmbe_balsa::CompiledDesign;
use bmbe_hsnet::{ComponentKind, Netlist, UnOp};
use bmbe_sim::prims::{
    ActivationDriverEnv, BinFuncPrim, CallMuxPrim, ConstantPrim, ControllerPrim, DataCh, Delays,
    FetchDataPrim, MemSite, MemoryPrim, PullMuxPrim, PullProviderEnv, PushConsumerEnv,
    SelectAdapterPrim, SyncResponderEnv, UnFuncPrim, VariablePrim,
};
use bmbe_sim::{NodeId, PrimId, SchedulerKind, Sim, SimBackend, Time};
use std::collections::HashMap;
use std::fmt;
use std::time::Instant;

/// When a benchmark run is considered complete.
#[derive(Debug, Clone)]
pub enum Done {
    /// The top activation completed this many handshakes.
    Activations(usize),
    /// An output port delivered this many values.
    Outputs {
        /// The port.
        port: String,
        /// Number of values.
        count: usize,
    },
    /// A sync port completed this many handshakes.
    Syncs {
        /// The port.
        port: String,
        /// Number of handshakes.
        count: usize,
    },
}

/// A benchmark scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Handshakes the environment performs on the activation channel.
    pub activation_cycles: usize,
    /// Scripted values per input port (cycled when exhausted).
    pub input_values: HashMap<String, Vec<u64>>,
    /// Initial memory contents by memory name (zero-filled to size).
    pub memory_init: HashMap<String, Vec<u64>>,
    /// Completion condition.
    pub done: Done,
    /// Simulation time limit (ps).
    pub max_time: Time,
}

impl Scenario {
    /// A scenario that just runs the activation `n` times.
    pub fn activations(n: usize) -> Self {
        Scenario {
            activation_cycles: n,
            input_values: HashMap::new(),
            memory_init: HashMap::new(),
            done: Done::Activations(n),
            max_time: 50_000_000,
        }
    }
}

/// Scheduler-side statistics of one simulation run — diagnostics, excluded
/// from [`SimOutcome::same_result`] (wall time varies run to run; the
/// simulated behaviour must not).
#[derive(Debug, Clone)]
pub struct SimStats {
    /// The backend the run used.
    pub backend: SimBackend,
    /// The scheduler the run used (meaningful only on the event backend;
    /// the compiled backend has no event queue).
    pub scheduler: SchedulerKind,
    /// Scenario lanes sharing the run (1 on the event backend, up to 64 on
    /// the compiled backend — every outcome of a batch reports the batch's
    /// lane count and wall time).
    pub lanes: usize,
    /// Settle waves the compiled backend executed (0 on the event
    /// backend).
    pub waves: u64,
    /// Largest number of simultaneously pending events.
    pub peak_queue_depth: usize,
    /// Host wall-clock seconds spent inside the event loop.
    pub wall_s: f64,
    /// Events that overflowed the wheel horizon into the far heap (zero on
    /// the heap oracle).
    pub far_heap_hits: u64,
    /// Wheel rebases (bucket-width refits; zero on the heap oracle).
    pub refits: u64,
    /// Processed events per host wall-clock second.
    pub events_per_s: f64,
}

/// Result of a simulation run.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Whether the completion condition was met in time.
    pub completed: bool,
    /// Completion (or cutoff) time in nanoseconds.
    pub time_ns: f64,
    /// Processed simulation events.
    pub events: u64,
    /// Values delivered on each output port.
    pub outputs: HashMap<String, Vec<u64>>,
    /// Handshakes completed per sync port.
    pub sync_counts: HashMap<String, usize>,
    /// Final memory contents by memory name.
    pub memories: HashMap<String, Vec<u64>>,
    /// Scheduler statistics (not part of the simulated behaviour).
    pub stats: SimStats,
}

impl SimOutcome {
    /// Whether two runs simulated identical behaviour: same completion,
    /// simulated time, event count, port data, and memory contents. Stats
    /// (wall time, queue depth, scheduler) are ignored — this is the
    /// equality the wheel-vs-heap differential checks assert.
    pub fn same_result(&self, other: &SimOutcome) -> bool {
        self.completed == other.completed
            && self.time_ns == other.time_ns
            && self.events == other.events
            && self.outputs == other.outputs
            && self.sync_counts == other.sync_counts
            && self.memories == other.memories
    }

    /// Whether two runs simulated identical *behaviour*: same completion,
    /// port data, sync counts, and memory contents — ignoring simulated
    /// time and event counts on top of what [`SimOutcome::same_result`]
    /// already ignores. This is the equality the compiled-vs-event
    /// differential checks assert: the compiled backend is untimed, so
    /// `time_ns` cannot match, and its "events" are applied wire changes
    /// rather than scheduled events.
    pub fn same_behaviour(&self, other: &SimOutcome) -> bool {
        self.completed == other.completed
            && self.outputs == other.outputs
            && self.sync_counts == other.sync_counts
            && self.memories == other.memories
    }
}

/// Errors raised while building the simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimBuildError {
    /// The scenario's done condition references an unknown port.
    UnknownPort(String),
    /// A simulation job panicked; the panic was caught and its sibling
    /// jobs completed.
    Panic(String),
    /// A controller could not be compiled into a bit-parallel tape (see
    /// `crate::csim`).
    Compile {
        /// The controller.
        controller: String,
        /// What went wrong.
        detail: String,
    },
    /// A scenario batch is malformed for the compiled backend (mismatched
    /// input-port sets across lanes).
    BatchShape(String),
}

impl fmt::Display for SimBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimBuildError::UnknownPort(p) => {
                write!(f, "done condition references unknown port {p}")
            }
            SimBuildError::Panic(payload) => {
                write!(f, "simulation job panicked: {payload}")
            }
            SimBuildError::Compile { controller, detail } => {
                write!(f, "compiling controller {controller} for simulation: {detail}")
            }
            SimBuildError::BatchShape(detail) => {
                write!(f, "malformed scenario batch: {detail}")
            }
        }
    }
}

impl std::error::Error for SimBuildError {}

struct ChannelTable {
    chans: HashMap<String, DataCh>,
}

impl ChannelTable {
    fn get(&mut self, sim: &mut Sim, name: &str) -> DataCh {
        if let Some(&c) = self.chans.get(name) {
            return c;
        }
        let c = DataCh {
            req: sim.node(&format!("{name}_r")),
            ack: sim.node(&format!("{name}_a")),
            slot: sim.slot(),
        };
        self.chans.insert(name.to_string(), c);
        c
    }
}

/// Channels pulled through a select adapter (case/while selectors) use a
/// renamed provider side.
pub(crate) fn provider_name(name: &str) -> String {
    format!("{name}$p")
}

/// One independent simulation job for [`simulate_all`].
pub struct SimJob<'a> {
    /// The compiled design.
    pub design: &'a CompiledDesign,
    /// Its synthesized flow artifacts.
    pub flow: &'a FlowResult,
    /// The scenario to run.
    pub scenario: &'a Scenario,
    /// The scheduler to run it on.
    pub scheduler: SchedulerKind,
}

/// Runs independent simulation scenarios across worker threads; results
/// come back in job order, each identical to a serial [`simulate_with`]
/// call (simulations share nothing, so parallelism cannot change them).
pub fn simulate_all(
    jobs: &[SimJob<'_>],
    delays: &Delays,
    threads: usize,
) -> Vec<Result<SimOutcome, SimBuildError>> {
    bmbe_par::par_try_map(
        jobs,
        threads,
        |i, job| format!("sim job {i} ({})", job.design.netlist.name()),
        |_, job| simulate_with(job.design, job.flow, job.scenario, delays, job.scheduler),
    )
    .into_iter()
    .map(|slot| slot.unwrap_or_else(|job| Err(SimBuildError::Panic(job.payload))))
    .collect()
}

/// Simulates a design with its synthesized controllers, on the production
/// event-wheel scheduler.
///
/// # Errors
///
/// See [`SimBuildError`].
pub fn simulate(
    design: &CompiledDesign,
    flow: &FlowResult,
    scenario: &Scenario,
    delays: &Delays,
) -> Result<SimOutcome, SimBuildError> {
    simulate_with(design, flow, scenario, delays, SchedulerKind::default())
}

/// Simulates a design on a chosen scheduler. [`SchedulerKind::Heap`] is the
/// seed engine, kept for before/after benchmarks and the differential
/// tests; both schedulers produce [`SimOutcome::same_result`] outcomes.
///
/// # Errors
///
/// See [`SimBuildError`].
pub fn simulate_with(
    design: &CompiledDesign,
    flow: &FlowResult,
    scenario: &Scenario,
    delays: &Delays,
    scheduler: SchedulerKind,
) -> Result<SimOutcome, SimBuildError> {
    let _sim_span = bmbe_obs::span!("sim.build", "sim");
    let netlist = &design.netlist;
    // `Auto` picks the scheduler by design size (handshake components plus
    // synthesized controllers ~ primitive count).
    let scheduler = scheduler.resolve(flow.controllers.len() + netlist.components().len());
    let mut sim = Sim::with_scheduler(scheduler);
    let mut table = ChannelTable {
        chans: HashMap::new(),
    };

    // Select channels needing an adapter, with branch counts.
    let mut adapted: HashMap<String, usize> = HashMap::new();
    for comp in netlist.components() {
        match &comp.kind {
            ComponentKind::Case { branches } => {
                let name = netlist.channel(comp.channels[1]).name.clone();
                adapted.insert(name, *branches);
            }
            ComponentKind::While => {
                let name = netlist.channel(comp.channels[1]).name.clone();
                adapted.insert(name, 2);
            }
            _ => {}
        }
    }

    // Controllers.
    for art in &flow.controllers {
        let inputs: Vec<NodeId> = art.controller.inputs.iter().map(|n| sim.node(n)).collect();
        let outputs: Vec<NodeId> = art.controller.outputs.iter().map(|n| sim.node(n)).collect();
        let output_delays: Vec<Time> = art
            .controller
            .outputs
            .iter()
            .map(|n| {
                let ns = match art.template {
                    Some(t) => t.delay_ns,
                    None => art.mapped.output_delays.get(n).copied().unwrap_or(0.1),
                };
                (ns * 1000.0) as Time + delays.wire
            })
            .collect();
        let prim = ControllerPrim::new(
            inputs.clone(),
            outputs,
            art.controller.output_covers.clone(),
            art.controller.next_state_covers.clone(),
            art.controller.initial_code,
            output_delays,
        );
        sim.add_prim(Box::new(prim), &inputs);
    }

    // Select adapters.
    for (chan, branches) in &adapted {
        let sel_req = sim.node(&format!("{chan}_r"));
        let sel_acks: Vec<NodeId> = (0..*branches)
            .map(|i| sim.node(&format!("{chan}_a{i}")))
            .collect();
        let provider = table.get(&mut sim, &provider_name(chan));
        let watch: Vec<NodeId> = [sel_req, provider.ack].into();
        sim.add_prim(
            Box::new(SelectAdapterPrim::new(
                sel_req,
                sel_acks,
                provider,
                delays.select,
            )),
            &watch,
        );
    }

    // Datapath components.
    let chan_name = |netlist: &Netlist, comp: &bmbe_hsnet::Component, port: usize| -> String {
        let raw = netlist.channel(comp.channels[port]).name.clone();
        if adapted.contains_key(&raw) {
            provider_name(&raw)
        } else {
            raw
        }
    };
    let mut mem_prims: Vec<(String, PrimId)> = Vec::new();
    for comp in netlist.components() {
        match &comp.kind {
            ComponentKind::Variable { reads, .. } => {
                let write = table.get(&mut sim, &chan_name(netlist, comp, 0));
                let read_chs: Vec<DataCh> = (0..*reads)
                    .map(|i| {
                        let name = chan_name(netlist, comp, 1 + i);
                        table.get(&mut sim, &name)
                    })
                    .collect();
                let mut watch = vec![write.req];
                watch.extend(read_chs.iter().map(|c| c.req));
                sim.add_prim(
                    Box::new(VariablePrim {
                        value: 0,
                        write,
                        reads: read_chs,
                        wdelay: delays.var_write,
                        rdelay: delays.var_read,
                    }),
                    &watch,
                );
            }
            ComponentKind::Constant { value, .. } => {
                let ch = table.get(&mut sim, &chan_name(netlist, comp, 0));
                sim.add_prim(
                    Box::new(ConstantPrim {
                        ch,
                        value: *value,
                        delay: delays.constant,
                    }),
                    &[ch.req],
                );
            }
            ComponentKind::BinaryFunc { op, .. } => {
                let out = table.get(&mut sim, &chan_name(netlist, comp, 0));
                let lhs = table.get(&mut sim, &chan_name(netlist, comp, 1));
                let rhs = table.get(&mut sim, &chan_name(netlist, comp, 2));
                sim.add_prim(
                    Box::new(BinFuncPrim {
                        op: *op,
                        out,
                        lhs,
                        rhs,
                        delay: delays.binop(*op),
                    }),
                    &[out.req, lhs.ack, rhs.ack],
                );
            }
            ComponentKind::UnaryFunc { op, .. } => {
                let out = table.get(&mut sim, &chan_name(netlist, comp, 0));
                let operand = table.get(&mut sim, &chan_name(netlist, comp, 1));
                let delay = if *op == UnOp::Id { 1 } else { delays.unary };
                sim.add_prim(
                    Box::new(UnFuncPrim {
                        op: *op,
                        out,
                        operand,
                        delay,
                    }),
                    &[out.req, operand.ack],
                );
            }
            ComponentKind::CallMux { inputs, .. } => {
                let ins: Vec<DataCh> = (0..*inputs)
                    .map(|i| {
                        let name = chan_name(netlist, comp, i);
                        table.get(&mut sim, &name)
                    })
                    .collect();
                let out = table.get(&mut sim, &chan_name(netlist, comp, *inputs));
                let mut watch: Vec<NodeId> = ins.iter().map(|c| c.req).collect();
                watch.push(out.ack);
                sim.add_prim(Box::new(CallMuxPrim::new(ins, out, delays.mux)), &watch);
            }
            ComponentKind::PullMux { clients, .. } => {
                let cl: Vec<DataCh> = (0..*clients)
                    .map(|i| {
                        let name = chan_name(netlist, comp, i);
                        table.get(&mut sim, &name)
                    })
                    .collect();
                let source = table.get(&mut sim, &chan_name(netlist, comp, *clients));
                let mut watch: Vec<NodeId> = cl.iter().map(|c| c.req).collect();
                watch.push(source.ack);
                sim.add_prim(Box::new(PullMuxPrim::new(cl, source, delays.mux)), &watch);
            }
            ComponentKind::Memory {
                words,
                reads,
                writes,
                ..
            } => {
                // The memory's declared name is the first channel's prefix
                // ("m_rd0" -> "m").
                let mem_name = netlist
                    .channel(comp.channels[0])
                    .name
                    .strip_suffix("_rd0")
                    .unwrap_or("mem")
                    .to_string();
                let mut port = 0;
                let mut rsites = Vec::new();
                for _ in 0..*reads {
                    let data = table.get(&mut sim, &chan_name(netlist, comp, port));
                    let addr = table.get(&mut sim, &chan_name(netlist, comp, port + 1));
                    rsites.push(MemSite { data, addr });
                    port += 2;
                }
                let mut wsites = Vec::new();
                for _ in 0..*writes {
                    let data = table.get(&mut sim, &chan_name(netlist, comp, port));
                    let addr = table.get(&mut sim, &chan_name(netlist, comp, port + 1));
                    wsites.push(MemSite { data, addr });
                    port += 2;
                }
                let mut watch = Vec::new();
                for s in rsites.iter().chain(&wsites) {
                    watch.push(s.data.req);
                    watch.push(s.addr.ack);
                }
                let mut prim = MemoryPrim::new(*words, rsites, wsites, delays.memory);
                if let Some(init) = scenario.memory_init.get(&mem_name) {
                    for (i, v) in init.iter().enumerate().take(prim.words.len()) {
                        prim.words[i] = *v;
                    }
                }
                let id = sim.add_prim(Box::new(prim), &watch);
                mem_prims.push((mem_name, id));
            }
            ComponentKind::Fetch => {
                // The control is synthesized; add the bundled-data copy.
                let pull = table.get(&mut sim, &chan_name(netlist, comp, 1));
                let push = table.get(&mut sim, &chan_name(netlist, comp, 2));
                sim.add_prim(Box::new(FetchDataPrim { pull, push }), &[pull.ack]);
            }
            _ => {}
        }
    }

    // Environment: activation driver.
    let act_name = netlist.channel(design.activate).name.clone();
    let act_req = sim.node(&format!("{act_name}_r"));
    let act_ack = sim.node(&format!("{act_name}_a"));
    let driver = sim.add_prim(
        Box::new(ActivationDriverEnv {
            req: act_req,
            ack: act_ack,
            cycles: scenario.activation_cycles,
            completions: 0,
            done_time: None,
            delay: delays.env,
        }),
        &[act_ack],
    );

    // Environment: ports.
    let mut sync_env: HashMap<String, PrimId> = HashMap::new();
    let mut out_env: HashMap<String, PrimId> = HashMap::new();
    for (name, &chid) in &design.port_channels {
        let channel = netlist.channel(chid);
        if channel.width == 0 {
            // sync port: design is active, environment passive.
            let req = sim.node(&format!("{name}_r"));
            let ack = sim.node(&format!("{name}_a"));
            let id = sim.add_prim(
                Box::new(SyncResponderEnv {
                    req,
                    ack,
                    delay: delays.env,
                    count: 0,
                }),
                &[req],
            );
            sync_env.insert(name.clone(), id);
        } else {
            // Determine direction: if the external side is the passive end,
            // the design pulls (input port) or pushes (output port)?
            // Input ports: design pulls -> env passive provider.
            // Output ports: design pushes -> env passive consumer.
            // Distinguish by which side is external: both are passive-
            // external in our compilation; use scripted inputs to decide.
            let ch = table.get(&mut sim, name);
            if scenario.input_values.contains_key(name) {
                let values = scenario.input_values[name].clone();
                sim.add_prim(
                    Box::new(PullProviderEnv {
                        ch,
                        values,
                        ix: 0,
                        delay: delays.env,
                    }),
                    &[ch.req],
                );
            } else {
                let id = sim.add_prim(
                    Box::new(PushConsumerEnv {
                        ch,
                        received: Vec::new(),
                        delay: delays.env,
                    }),
                    &[ch.req],
                );
                out_env.insert(name.clone(), id);
            }
        }
    }

    // Done condition, with the port name resolved to its primitive up
    // front: the closure runs once per event, so it must not re-hash the
    // port string every time.
    enum DoneCheck {
        Activations { driver: PrimId, n: usize },
        Outputs { id: PrimId, count: usize },
        Syncs { id: PrimId, count: usize },
    }
    let check = match &scenario.done {
        Done::Activations(n) => DoneCheck::Activations { driver, n: *n },
        Done::Outputs { port, count } => DoneCheck::Outputs {
            id: *out_env
                .get(port)
                .ok_or_else(|| SimBuildError::UnknownPort(port.clone()))?,
            count: *count,
        },
        Done::Syncs { port, count } => DoneCheck::Syncs {
            id: *sync_env
                .get(port)
                .ok_or_else(|| SimBuildError::UnknownPort(port.clone()))?,
            count: *count,
        },
    };
    if std::env::var("BMBE_SIM_TRACE").is_ok() {
        sim.trace = true;
        // The wire-change log goes through `vlog!` at level 1; asking for a
        // sim trace implies asking for that verbosity.
        bmbe_obs::ensure_verbosity(1);
    }
    sim.init();
    drop(_sim_span);
    let run_span = bmbe_obs::span!("sim.run", "sim");
    let loop_start = Instant::now();
    let completed = sim.run_until(
        |s| match check {
            DoneCheck::Activations { driver, n } => s
                .prim::<ActivationDriverEnv>(driver)
                .is_some_and(|d| d.completions >= n),
            DoneCheck::Outputs { id, count } => s
                .prim::<PushConsumerEnv>(id)
                .is_some_and(|c| c.received.len() >= count),
            DoneCheck::Syncs { id, count } => s
                .prim::<SyncResponderEnv>(id)
                .is_some_and(|c| c.count >= count),
        },
        scenario.max_time,
    );
    let wall_s = loop_start.elapsed().as_secs_f64();
    drop(run_span);
    let events_per_s = if wall_s > 0.0 {
        sim.events_processed as f64 / wall_s
    } else {
        0.0
    };
    bmbe_obs::trace_counter!("sim.events", sim.events_processed);
    bmbe_obs::trace_counter!("sim.far_heap_hits", sim.far_heap_hits());
    bmbe_obs::trace_counter!("sim.refits", sim.refit_count());
    bmbe_obs::gauge!("sim.events_per_s").set(events_per_s as i64);
    let outputs: HashMap<String, Vec<u64>> = out_env
        .iter()
        .map(|(name, &id)| {
            (
                name.clone(),
                sim.prim::<PushConsumerEnv>(id)
                    .map(|c| c.received.clone())
                    .unwrap_or_default(),
            )
        })
        .collect();
    let sync_counts: HashMap<String, usize> = sync_env
        .iter()
        .map(|(name, &id)| {
            (
                name.clone(),
                sim.prim::<SyncResponderEnv>(id)
                    .map(|c| c.count)
                    .unwrap_or(0),
            )
        })
        .collect();
    let memories: HashMap<String, Vec<u64>> = mem_prims
        .iter()
        .map(|(name, id)| {
            (
                name.clone(),
                sim.prim::<MemoryPrim>(*id)
                    .map(|m| m.words.clone())
                    .unwrap_or_default(),
            )
        })
        .collect();
    Ok(SimOutcome {
        completed,
        time_ns: sim.now() as f64 / 1000.0,
        events: sim.events_processed,
        outputs,
        sync_counts,
        memories,
        stats: SimStats {
            backend: SimBackend::EventWheel,
            scheduler,
            lanes: 1,
            waves: 0,
            peak_queue_depth: sim.peak_queue_depth(),
            wall_s,
            far_heap_hits: sim.far_heap_hits(),
            refits: sim.refit_count(),
            events_per_s,
        },
    })
}
