//! The differential gauntlet: every corpus design through flow → sim →
//! trace-verifier, each stage checked against an independent in-tree
//! oracle (ROADMAP item 4).
//!
//! Five oracle pairs, all production-path-vs-reference:
//!
//! | pair | production | oracle | equality |
//! |------|-----------|--------|----------|
//! | `heap_vs_wheel` | calendar-queue wheel | seed `BinaryHeap` scheduler | [`SimOutcome::same_result`] |
//! | `compiled_vs_wheel` | bit-parallel compiled tapes | event wheel | [`SimOutcome::same_behaviour`] |
//! | `otf_vs_materialized` | on-the-fly ACR verification | materialized composition | verdict equality |
//! | `serial_vs_parallel` | parallel cached flow + 4-thread sim | serial uncached flow + 1-thread sim | digest equality |
//! | `fault_vs_clean` | flow with an injected `synth:0:err` | clean flow | typed failure + clean digest |
//!
//! Designs route through the batch [`ShapeRegistry`] over the shared
//! [`ControllerCache`] (and the disk layer when `BMBE_CACHE_DIR` is set),
//! so a gauntlet run exercises exactly the singleflight + persistent-cache
//! path the fleet uses — with the realistic shape-hit distribution
//! hundreds of distinct designs produce.
//!
//! A divergence never aborts the run: it becomes a structured [`Finding`]
//! carrying the design's family, canonical parameters, and generator seed,
//! so each line of a report is a one-command reproduction
//! (`bmbe gauntlet --seed S --designs N --only NAME`).

use crate::batch::{flow_through_registry, ShapeRegistry};
use crate::cache::ControllerCache;
use crate::pipeline::{run_control_flow_with, FlowOptions, FlowResult};
use crate::simbuild::{simulate_with, SimOutcome};
use crate::csim::simulate_scenarios;
use crate::fault::FaultPlan;
use crate::table3::{check_outcome, to_flow_scenario};
use bmbe_core::balsa_to_ch::balsa_to_ch;
use bmbe_core::opt::verify_acr_compared;
use bmbe_designs::corpus::{generate_corpus, CorpusSpec, GeneratedDesign};
use bmbe_designs::{derive_seed, variants_of};
use bmbe_gates::Library;
use bmbe_sim::prims::Delays;
use bmbe_sim::{SchedulerKind, SimBackend};
use std::time::Instant;

/// What to run: a gauntlet is a pure function of this configuration (plus
/// the cache environment, which only affects speed, never findings).
#[derive(Debug, Clone)]
pub struct GauntletConfig {
    /// Corpus seed; together with `designs` this names the exact design
    /// set (corpus slices are prefix-stable).
    pub seed: u64,
    /// Number of corpus designs to run.
    pub designs: usize,
    /// Worker threads fanning designs across the pool (0 = default).
    pub threads: usize,
    /// Cap on verification obligations (internal channels) checked per
    /// design through the otf-vs-materialized pair.
    pub verify_channels: usize,
    /// Scenario variants per design for the 1-thread-vs-4-thread compiled
    /// sim comparison.
    pub sim_variants: usize,
    /// Inject an artificial divergence into the design at this corpus
    /// index (perturbs its compiled-backend outputs before comparison), to
    /// prove the detection and reporting path end to end.
    pub inject: Option<usize>,
    /// Run only the design with this exact name (replay mode).
    pub only: Option<String>,
}

impl Default for GauntletConfig {
    fn default() -> Self {
        GauntletConfig {
            seed: 1,
            designs: 200,
            threads: 0,
            verify_channels: 2,
            sim_variants: 8,
            inject: None,
            only: None,
        }
    }
}

/// One divergence: which design, which oracle pair, and everything needed
/// to reproduce it with one command.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Design name (e.g. `pipe_n4_w8`, `rnd_1f2e3d4c`).
    pub design: String,
    /// Corpus family (`pipeline`, `calltree`, `ring`, `wagging`, `rnd`).
    pub family: String,
    /// Canonical family parameters (e.g. `n=4,w=8`).
    pub params: String,
    /// The generator seed that produced the design.
    pub seed: u64,
    /// The oracle pair that diverged (table in the module docs), or
    /// `flow` / `check` / `panic` for stage failures.
    pub oracle: &'static str,
    /// Human-readable mismatch description.
    pub detail: String,
}

/// Comparisons executed per oracle pair (all designs summed); every
/// counter being positive is what "through all five pairs" means.
#[derive(Debug, Clone, Copy, Default)]
pub struct OracleCounts {
    /// Event-engine scheduler pair comparisons.
    pub heap_vs_wheel: usize,
    /// Backend pair comparisons (includes the 1-vs-4-thread lanes).
    pub compiled_vs_wheel: usize,
    /// Verification obligations compared.
    pub otf_vs_materialized: usize,
    /// Serial-uncached flow digests + sim thread-split lanes compared.
    pub serial_vs_parallel: usize,
    /// Faulted flows checked for typed failure + clean-rerun digests.
    pub fault_vs_clean: usize,
}

impl OracleCounts {
    fn merge(&mut self, o: &OracleCounts) {
        self.heap_vs_wheel += o.heap_vs_wheel;
        self.compiled_vs_wheel += o.compiled_vs_wheel;
        self.otf_vs_materialized += o.otf_vs_materialized;
        self.serial_vs_parallel += o.serial_vs_parallel;
        self.fault_vs_clean += o.fault_vs_clean;
    }

    /// Whether every oracle pair ran at least once.
    pub fn all_exercised(&self) -> bool {
        self.heap_vs_wheel > 0
            && self.compiled_vs_wheel > 0
            && self.otf_vs_materialized > 0
            && self.serial_vs_parallel > 0
            && self.fault_vs_clean > 0
    }
}

/// The gauntlet's result: counts, findings, and cache behaviour.
#[derive(Debug)]
pub struct GauntletReport {
    /// The corpus seed that was run.
    pub seed: u64,
    /// Designs actually run.
    pub designs: usize,
    /// Comparisons per oracle pair.
    pub checks: OracleCounts,
    /// All divergences (empty on a clean run).
    pub findings: Vec<Finding>,
    /// Shape cache hits across the run (memory or disk).
    pub cache_hits: usize,
    /// Shapes synthesized across the run.
    pub synthesized: usize,
    /// Singleflight shares across the run.
    pub shared: usize,
    /// Wall-clock seconds.
    pub wall_s: f64,
}

impl GauntletReport {
    /// A clean run: every oracle pair exercised, zero findings.
    pub fn clean(&self) -> bool {
        self.findings.is_empty() && self.checks.all_exercised()
    }
}

struct DesignVerdict {
    checks: OracleCounts,
    findings: Vec<Finding>,
    cache_hits: usize,
    synthesized: usize,
    shared: usize,
}

fn finding(d: &GeneratedDesign, oracle: &'static str, detail: String) -> Finding {
    Finding {
        design: d.name.clone(),
        family: d.family.to_string(),
        params: d.params.clone(),
        seed: d.seed,
        oracle,
        detail,
    }
}

fn describe(o: &SimOutcome) -> String {
    format!(
        "completed={} time_ns={} events={} outputs={:?} syncs={:?}",
        o.completed, o.time_ns, o.events, o.outputs, o.sync_counts
    )
}

/// Runs all five oracle pairs over one design. Never panics on a
/// divergence — every mismatch becomes a finding.
fn run_design(
    d: &GeneratedDesign,
    registry: &ShapeRegistry<'_>,
    library: &Library,
    cfg: &GauntletConfig,
    inject_here: bool,
) -> DesignVerdict {
    let mut v = DesignVerdict {
        checks: OracleCounts::default(),
        findings: Vec::new(),
        cache_hits: 0,
        synthesized: 0,
        shared: 0,
    };
    let delays = Delays::default();

    // Production flow, through the singleflight registry + shared cache.
    let (flow, stats) =
        match flow_through_registry(&d.name, &d.compiled, &FlowOptions::optimized(), registry, 1) {
            Ok(ok) => ok,
            Err(e) => {
                v.findings.push(finding(d, "flow", e.to_string()));
                return v;
            }
        };
    v.cache_hits = stats.hits;
    v.synthesized = stats.synthesized;
    v.shared = stats.shared;

    let scenario = to_flow_scenario(&d.scenario);

    // Pair 1: calendar-queue wheel vs the seed's binary-heap scheduler.
    let wheel = simulate_with(&d.compiled, &flow, &scenario, &delays, SchedulerKind::Wheel);
    let heap = simulate_with(&d.compiled, &flow, &scenario, &delays, SchedulerKind::Heap);
    v.checks.heap_vs_wheel += 1;
    let wheel = match (wheel, heap) {
        (Ok(w), Ok(h)) => {
            if !w.same_result(&h) {
                v.findings.push(finding(
                    d,
                    "heap_vs_wheel",
                    format!("wheel: {} | heap: {}", describe(&w), describe(&h)),
                ));
            }
            Some(w)
        }
        (w, h) => {
            let detail = [("wheel", &w), ("heap", &h)]
                .iter()
                .filter_map(|(k, r)| r.as_ref().err().map(|e| format!("{k}: {e}")))
                .collect::<Vec<_>>()
                .join(" | ");
            v.findings.push(finding(d, "heap_vs_wheel", detail));
            w.ok()
        }
    };

    if let Some(wheel) = &wheel {
        // The family's modelled expectation, where one exists.
        if wheel.completed {
            if let Err(detail) = check_outcome(&d.scenario.check, wheel) {
                v.findings.push(finding(d, "check", detail));
            }
        } else {
            v.findings.push(finding(
                d,
                "check",
                format!("wheel run did not complete: {}", describe(wheel)),
            ));
        }

        // Pair 2: compiled tapes vs the wheel (untimed equality). The
        // injected-divergence smoke perturbs the compiled outcome here, so
        // a finding proves the *real* detection + reporting path.
        let compiled = simulate_scenarios(
            &d.compiled,
            &flow,
            std::slice::from_ref(&scenario),
            &delays,
            SimBackend::Compiled,
            1,
            None,
        );
        v.checks.compiled_vs_wheel += 1;
        match compiled.into_iter().next() {
            Some(Ok(mut c)) => {
                if inject_here {
                    for vals in c.outputs.values_mut() {
                        vals.push(0xdead_beef);
                    }
                    c.completed = !c.completed;
                }
                if !c.same_behaviour(wheel) {
                    v.findings.push(finding(
                        d,
                        "compiled_vs_wheel",
                        format!("compiled: {} | wheel: {}", describe(&c), describe(wheel)),
                    ));
                }
            }
            Some(Err(e)) => v.findings.push(finding(d, "compiled_vs_wheel", e.to_string())),
            None => v.findings.push(finding(
                d,
                "compiled_vs_wheel",
                "compiled backend returned no outcome".into(),
            )),
        }
    }

    // Pair 3: on-the-fly vs materialized trace verification, over the
    // design's first few internal-channel obligations.
    match balsa_to_ch(&d.compiled.netlist) {
        Ok(ctrl) => {
            for ch in ctrl.internal_channels().into_iter().take(cfg.verify_channels) {
                v.checks.otf_vs_materialized += 1;
                match verify_acr_compared(
                    &ctrl.components[ch.active].program,
                    &ctrl.components[ch.passive].program,
                    &ch.name,
                ) {
                    Ok(cmp) => {
                        if cmp.verdict != cmp.oracle {
                            v.findings.push(finding(
                                d,
                                "otf_vs_materialized",
                                format!(
                                    "channel {}: otf {:?} vs materialized {:?}",
                                    ch.name, cmp.verdict, cmp.oracle
                                ),
                            ));
                        }
                    }
                    Err(e) => v.findings.push(finding(
                        d,
                        "otf_vs_materialized",
                        format!("channel {}: {e}", ch.name),
                    )),
                }
            }
        }
        Err(e) => v
            .findings
            .push(finding(d, "otf_vs_materialized", e.to_string())),
    }

    // Pair 4a: compiled sim, 1 thread vs 4, over seeded scenario variants —
    // per-lane bit-identical.
    if cfg.sim_variants > 0 {
        let variant_seed = derive_seed(cfg.seed, &d.name, &d.params, 0);
        let variants: Vec<_> = variants_of(&d.scenario, cfg.sim_variants, variant_seed)
            .iter()
            .map(to_flow_scenario)
            .collect();
        let one = simulate_scenarios(
            &d.compiled, &flow, &variants, &delays, SimBackend::Compiled, 1, None,
        );
        let four = simulate_scenarios(
            &d.compiled, &flow, &variants, &delays, SimBackend::Compiled, 4, None,
        );
        for (lane, (a, b)) in one.iter().zip(&four).enumerate() {
            v.checks.serial_vs_parallel += 1;
            let same = match (a, b) {
                (Ok(a), Ok(b)) => a.same_result(b),
                (Err(a), Err(b)) => a == b,
                _ => false,
            };
            if !same {
                v.findings.push(finding(
                    d,
                    "serial_vs_parallel",
                    format!("compiled lane {lane} differs between 1 and 4 sim threads"),
                ));
            }
        }
    }

    // Pair 4b + pair 5: a serial, uncached re-flow must match the
    // parallel cached one digest-for-digest, and the same flow with an
    // injected synthesis fault must fail with a typed error, never a
    // panic or a silent success.
    let serial_opts = FlowOptions::optimized().serial_uncached();
    let clean_cache = ControllerCache::new();
    v.checks.serial_vs_parallel += 1;
    match run_control_flow_with(&d.compiled, &serial_opts, library, &clean_cache) {
        Ok(serial) => {
            if let Some(diff) = digest_diff(&flow, &serial) {
                v.findings.push(finding(d, "serial_vs_parallel", diff));
            }
        }
        Err(e) => v.findings.push(finding(
            d,
            "serial_vs_parallel",
            format!("serial uncached flow failed: {e}"),
        )),
    }

    let mut fault_opts = FlowOptions::optimized().serial_uncached();
    fault_opts.fault = Some(FaultPlan::parse("synth:0:err").expect("static fault spec"));
    let fault_cache = ControllerCache::new();
    v.checks.fault_vs_clean += 1;
    match run_control_flow_with(&d.compiled, &fault_opts, library, &fault_cache) {
        Err(_typed) => {} // the fault surfaced as a typed error: correct
        Ok(_) => v.findings.push(finding(
            d,
            "fault_vs_clean",
            "injected synth:0:err fault produced a successful flow".into(),
        )),
    }

    v
}

/// Returns a description of the first digest difference between two flow
/// results, or `None` when they are bit-identical (the determinism
/// equality the repo's 1-vs-4-thread tests pin).
fn digest_diff(a: &FlowResult, b: &FlowResult) -> Option<String> {
    if a.controllers.len() != b.controllers.len() {
        return Some(format!(
            "controller count {} vs {}",
            a.controllers.len(),
            b.controllers.len()
        ));
    }
    if a.total_products() != b.total_products() {
        return Some(format!(
            "total products {} vs {}",
            a.total_products(),
            b.total_products()
        ));
    }
    if a.control_area.to_bits() != b.control_area.to_bits() {
        return Some(format!(
            "control area {} vs {}",
            a.control_area, b.control_area
        ));
    }
    for (x, y) in a.controllers.iter().zip(&b.controllers) {
        if x.name != y.name
            || x.bm_states != y.bm_states
            || x.controller.num_products() != y.controller.num_products()
            || x.area().to_bits() != y.area().to_bits()
        {
            return Some(format!("controller {} digests differ", x.name));
        }
    }
    None
}

/// Runs the gauntlet: generates the corpus slice, fans designs across the
/// worker pool through one shared registry, and collects every divergence
/// as a structured finding.
///
/// # Errors
///
/// Returns `Err` only when corpus *generation* fails (a generator bug —
/// the round-trip property tests pin this); divergences and per-design
/// panics are findings, not errors.
pub fn run_gauntlet(
    cfg: &GauntletConfig,
    library: &Library,
    cache: &ControllerCache,
) -> Result<GauntletReport, bmbe_designs::scenarios::DesignError> {
    let start = Instant::now();
    let span = bmbe_obs::span!("gauntlet.run", "batch");
    let _root = span.id();
    let mut corpus = generate_corpus(&CorpusSpec {
        seed: cfg.seed,
        designs: cfg.designs,
    })?;
    if let Some(only) = &cfg.only {
        corpus.retain(|d| &d.name == only);
    }
    let threads = if cfg.threads == 0 {
        bmbe_par::default_threads()
    } else {
        cfg.threads
    };
    let registry = ShapeRegistry::new(cache, library);

    let verdicts = bmbe_par::par_try_map(
        &corpus,
        threads,
        |i, d: &GeneratedDesign| format!("gauntlet design {i} ({})", d.name),
        |i, d| run_design(d, &registry, library, cfg, cfg.inject == Some(i)),
    );

    let mut checks = OracleCounts::default();
    let mut findings = Vec::new();
    let (mut cache_hits, mut synthesized, mut shared) = (0, 0, 0);
    for (d, verdict) in corpus.iter().zip(verdicts) {
        match verdict {
            Ok(v) => {
                checks.merge(&v.checks);
                findings.extend(v.findings);
                cache_hits += v.cache_hits;
                synthesized += v.synthesized;
                shared += v.shared;
            }
            // A panicking design is itself a finding — the gauntlet's
            // contract is that nothing crashes the run.
            Err(e) => findings.push(finding(d, "panic", e.to_string())),
        }
    }

    bmbe_obs::counter!("gauntlet.designs").add(corpus.len() as u64);
    bmbe_obs::counter!("gauntlet.findings").add(findings.len() as u64);
    Ok(GauntletReport {
        seed: cfg.seed,
        designs: corpus.len(),
        checks,
        findings,
        cache_hits,
        synthesized,
        shared,
        wall_s: start.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(designs: usize) -> GauntletConfig {
        GauntletConfig {
            seed: 5,
            designs,
            threads: 2,
            verify_channels: 1,
            sim_variants: 4,
            inject: None,
            only: None,
        }
    }

    #[test]
    fn small_slice_is_clean() {
        let library = Library::cmos035();
        let cache = ControllerCache::new();
        let report = run_gauntlet(&small(12), &library, &cache).unwrap();
        assert_eq!(report.designs, 12);
        for f in &report.findings {
            panic!(
                "unexpected finding: {} {} ({} {}, seed {:#x}): {}",
                f.oracle, f.design, f.family, f.params, f.seed, f.detail
            );
        }
        assert!(report.checks.all_exercised(), "{:?}", report.checks);
    }

    #[test]
    fn injected_divergence_is_caught_with_replay_seed() {
        let library = Library::cmos035();
        let cache = ControllerCache::new();
        let mut cfg = small(6);
        cfg.inject = Some(3);
        let report = run_gauntlet(&cfg, &library, &cache).unwrap();
        let hit: Vec<_> = report
            .findings
            .iter()
            .filter(|f| f.oracle == "compiled_vs_wheel")
            .collect();
        assert_eq!(hit.len(), 1, "findings: {:?}", report.findings);
        assert!(!hit[0].family.is_empty());
        assert!(!hit[0].detail.is_empty());
        // Everything else stayed clean: the perturbation is confined to
        // the injected design's compiled lane.
        assert_eq!(report.findings.len(), 1);
    }

    #[test]
    fn only_filter_replays_one_design() {
        let library = Library::cmos035();
        let cache = ControllerCache::new();
        let corpus = generate_corpus(&CorpusSpec { seed: 5, designs: 6 }).unwrap();
        let mut cfg = small(6);
        cfg.only = Some(corpus[2].name.clone());
        let report = run_gauntlet(&cfg, &library, &cache).unwrap();
        assert_eq!(report.designs, 1);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }
}
