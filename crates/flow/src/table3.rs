//! The Table 3 harness: runs the four benchmark designs through the
//! unoptimized and optimized flows and checks functional results.

use crate::cache::ControllerCache;
use crate::experiment::{compare_with, Comparison, ExperimentError};
use crate::simbuild::{Done, Scenario, SimOutcome};
use bmbe_designs::scenarios::{Check, Design, DesignScenario};
use bmbe_gates::Library;
use bmbe_sim::prims::Delays;
use std::fmt;

/// Converts a design scenario into a flow scenario.
pub fn to_flow_scenario(s: &DesignScenario) -> Scenario {
    let done = match s.done.0.as_str() {
        "sync" => Done::Syncs {
            port: s.done.1.clone(),
            count: s.done.2,
        },
        "output" => Done::Outputs {
            port: s.done.1.clone(),
            count: s.done.2,
        },
        _ => Done::Activations(s.done.2),
    };
    Scenario {
        activation_cycles: s.activation_cycles,
        input_values: s.input_values.clone(),
        memory_init: s.memory_init.clone(),
        done,
        max_time: s.max_time,
    }
}

/// A functional-check failure.
#[derive(Debug, Clone)]
pub struct CheckFailure {
    /// Which side failed.
    pub side: &'static str,
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for CheckFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} run failed its functional check: {}",
            self.side, self.detail
        )
    }
}

impl std::error::Error for CheckFailure {}

/// Verifies a run outcome against the design's check.
///
/// # Errors
///
/// Describes the first mismatch.
pub fn check_outcome(check: &Check, outcome: &SimOutcome) -> Result<(), String> {
    match check {
        Check::None => Ok(()),
        Check::OutputEquals { port, values } => {
            let got = outcome.outputs.get(port).cloned().unwrap_or_default();
            if got == *values {
                Ok(())
            } else {
                Err(format!("port {port}: expected {values:?}, got {got:?}"))
            }
        }
        Check::MemoryEquals { memory, cells } => {
            let mem = outcome
                .memories
                .get(memory)
                .ok_or_else(|| format!("memory {memory} not found"))?;
            for (addr, value) in cells {
                if mem.get(*addr) != Some(value) {
                    return Err(format!(
                        "memory {memory}[{addr}]: expected {value}, got {:?}",
                        mem.get(*addr)
                    ));
                }
            }
            Ok(())
        }
    }
}

/// Errors from a full benchmark run.
#[derive(Debug)]
pub enum BenchError {
    /// The underlying experiment failed.
    Experiment(ExperimentError),
    /// A functional check failed.
    Check(CheckFailure),
    /// A whole-design benchmark job panicked; the panic was caught and the
    /// other designs completed.
    Panic(String),
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::Experiment(e) => write!(f, "{e}"),
            BenchError::Check(e) => write!(f, "{e}"),
            BenchError::Panic(payload) => write!(f, "benchmark job panicked: {payload}"),
        }
    }
}

impl std::error::Error for BenchError {}

impl From<ExperimentError> for BenchError {
    fn from(e: ExperimentError) -> Self {
        BenchError::Experiment(e)
    }
}

/// Runs one design both ways, enforcing the functional check on both runs.
///
/// # Errors
///
/// See [`BenchError`].
pub fn run_design(
    design: &Design,
    library: &Library,
    delays: &Delays,
) -> Result<Comparison, BenchError> {
    run_design_with(design, library, delays, &ControllerCache::new())
}

/// [`run_design`] with a caller-supplied controller cache; the paper-table
/// drivers share one cache across all four benchmark designs so each
/// controller shape is synthesized once per table, not once per design.
///
/// # Errors
///
/// See [`BenchError`].
pub fn run_design_with(
    design: &Design,
    library: &Library,
    delays: &Delays,
    cache: &ControllerCache,
) -> Result<Comparison, BenchError> {
    let scenario = to_flow_scenario(&design.scenario);
    let comparison = compare_with(&design.compiled, &scenario, library, delays, cache)?;
    check_outcome(&design.scenario.check, &comparison.unopt_run).map_err(|detail| {
        BenchError::Check(CheckFailure {
            side: "unoptimized",
            detail,
        })
    })?;
    check_outcome(&design.scenario.check, &comparison.opt_run).map_err(|detail| {
        BenchError::Check(CheckFailure {
            side: "optimized",
            detail,
        })
    })?;
    Ok(comparison)
}

/// Runs every design across worker threads, sharing one controller cache,
/// and returns each design's comparison in input order. The per-design
/// results (artifacts, outcomes, first error) are identical to calling
/// [`run_design_with`] serially — only wall-clock time changes.
pub fn run_designs_with(
    designs: &[Design],
    library: &Library,
    delays: &Delays,
    cache: &ControllerCache,
    threads: usize,
) -> Vec<Result<Comparison, BenchError>> {
    bmbe_par::par_try_map(
        designs,
        threads,
        |i, design| format!("design job {i} ({})", design.compiled.netlist.name()),
        |_, design| run_design_with(design, library, delays, cache),
    )
    .into_iter()
    .map(|slot| slot.unwrap_or_else(|job| Err(BenchError::Panic(job.payload))))
    .collect()
}
