//! The long-running batch front-end: many design jobs sharing one
//! controller cache and one fleet-wide singleflight registry, so each
//! distinct controller shape is synthesized **exactly once** per fleet no
//! matter how many jobs need it or how they interleave.
//!
//! The per-job pipeline mirrors [`crate::pipeline::run_control_flow_with`]
//! — translate, cluster, key — but resolves every unique shape through a
//! [`ShapeRegistry`] instead of synthesizing its own misses. The registry
//! layers on top of the shared [`ControllerCache`] (and through it the
//! persistent [`crate::DiskCache`], when configured):
//!
//! * **hit** — the shape is already in the cache (memory or disk);
//! * **synthesized** — this job claimed the in-flight slot and ran the
//!   per-shape chain, storing the artifact write-through;
//! * **shared** — another job is synthesizing the same digest right now;
//!   the caller blocks on the slot's condvar and reuses the owner's result
//!   (successes *and* failures — a failed flight is not retried, which is
//!   what keeps synthesis exactly-once).
//!
//! Jobs fan out across the `bmbe-par` worker pool with per-job panic
//! isolation: a panicking job becomes a [`JobFailure`] with phase `panic`
//! while its siblings complete. Observability: the
//! `batch.shapes.{synthesized,shared,hits}` and
//! `batch.jobs.{completed,failed}` counters, the
//! `batch.singleflight_wait_us` histogram (how long waiters blocked on
//! in-flight shapes), and the `batch.jobs.pending` queue-depth gauge.

use crate::cache::{
    synthesize_shape_with_fault, CacheKey, ControllerCache, KeyedProgram, ShapeError, SynthArtifact,
};
use crate::csim::simulate_scenarios;
use crate::fault::FaultPhase;
use crate::pipeline::{instantiate, ControllerArtifact, FlowOptions, FlowResult};
use crate::profile::PhaseProfile;
use crate::table3::{check_outcome, to_flow_scenario};
use crate::templates::template_table;
use bmbe_balsa::CompiledDesign;
use bmbe_core::balsa_to_ch::balsa_to_ch;
use bmbe_designs::scenarios::DesignScenario;
use bmbe_designs::variants_of;
use bmbe_gates::Library;
use bmbe_sim::prims::Delays;
use bmbe_sim::SimBackend;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Histogram bounds for singleflight waits, in microseconds: sub-100µs
/// waits are scheduling noise, millisecond waits are real shape synthesis,
/// and the top buckets catch a fleet stacked behind one long pole.
static WAIT_BUCKETS: [u64; 6] = [100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000];

/// One design job in a batch: a compiled design plus its flow options and
/// an optional simulation stage.
pub struct BatchJob {
    /// Job label (reported back verbatim; need not be unique).
    pub label: String,
    /// The compiled design to run.
    pub design: CompiledDesign,
    /// Flow configuration. The options participate in the cache key, so
    /// jobs with different options never share shapes by accident.
    pub options: FlowOptions,
    /// Benchmark scenario for the simulation stage; `None` skips
    /// simulation.
    pub scenario: Option<DesignScenario>,
    /// Number of scenario variants to simulate through the compiled
    /// batch backend (see [`bmbe_designs::variants_of`]); `0` skips
    /// simulation even when a scenario is present.
    pub sim_batch: usize,
    /// Seed for the scenario variants.
    pub seed: u64,
}

impl BatchJob {
    /// A job over a design with the optimized flow and no simulation.
    pub fn new(label: impl Into<String>, design: CompiledDesign) -> Self {
        BatchJob {
            label: label.into(),
            design,
            options: FlowOptions::optimized(),
            scenario: None,
            sim_batch: 0,
            seed: 0,
        }
    }
}

/// How a shape was resolved for one requesting job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// Served from the shared cache (memory or disk).
    Hit,
    /// Synthesized by the requesting job (it claimed the flight).
    Synthesized,
    /// Reused from another job's in-flight synthesis of the same digest.
    Shared,
}

/// A singleflight slot: one in-flight (or finished) synthesis of a shape.
struct Slot {
    state: Mutex<SlotState>,
    ready: Condvar,
}

enum SlotState {
    Running,
    Done(Result<Arc<SynthArtifact>, Arc<ShapeError>>),
}

impl Slot {
    fn new() -> Self {
        Slot {
            state: Mutex::new(SlotState::Running),
            ready: Condvar::new(),
        }
    }
}

/// Recovers a poisoned guard: slot state transitions are single
/// assignments, valid even when the poisoning panic happened elsewhere.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The fleet-wide shape resolver: cache read-through plus singleflight on
/// in-flight digests. Shared (by reference) across every job of a batch.
pub struct ShapeRegistry<'a> {
    cache: &'a ControllerCache,
    library: &'a Library,
    slots: Mutex<HashMap<CacheKey, Arc<Slot>>>,
    seen: Mutex<HashSet<CacheKey>>,
    claims: AtomicUsize,
    synthesized: AtomicUsize,
    shared: AtomicUsize,
    hits: AtomicUsize,
}

impl<'a> ShapeRegistry<'a> {
    /// A registry resolving through `cache` and mapping onto `library`.
    pub fn new(cache: &'a ControllerCache, library: &'a Library) -> Self {
        ShapeRegistry {
            cache,
            library,
            slots: Mutex::new(HashMap::new()),
            seen: Mutex::new(HashSet::new()),
            claims: AtomicUsize::new(0),
            synthesized: AtomicUsize::new(0),
            shared: AtomicUsize::new(0),
            hits: AtomicUsize::new(0),
        }
    }

    /// Distinct shape digests resolved so far (hit, synthesized, or
    /// shared — every key any job asked for).
    pub fn distinct_shapes(&self) -> usize {
        lock(&self.seen).len()
    }

    /// Shapes synthesized by this fleet (claimed flights that ran the
    /// per-shape chain). With an empty starting cache this equals
    /// [`Self::distinct_shapes`] minus failed flights — the exactly-once
    /// guarantee.
    pub fn synthesized(&self) -> usize {
        self.synthesized.load(Ordering::Relaxed)
    }

    /// Resolutions that blocked on another job's in-flight synthesis.
    pub fn shared_waits(&self) -> usize {
        self.shared.load(Ordering::Relaxed)
    }

    /// Resolutions served straight from the shared cache.
    pub fn cache_hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Resolves one keyed shape: cache peek, then claim-or-wait on the
    /// in-flight slot. The owner synthesizes on the canonical program
    /// (panic-isolated) with `inner` worker threads and stores the result
    /// write-through; waiters block until the flight lands and reuse its
    /// result.
    ///
    /// # Errors
    ///
    /// The owning flight's error, shared by every waiter on the same
    /// digest. Failed flights stay failed (the slot is not retried) so a
    /// poisoned shape is synthesized at most once per fleet.
    pub fn resolve(
        &self,
        keyed: &KeyedProgram,
        options: &FlowOptions,
        inner: usize,
    ) -> Result<(Arc<SynthArtifact>, Resolution), Arc<ShapeError>> {
        lock(&self.seen).insert(keyed.key.clone());
        if let Some(artifact) = self.cache.peek(&keyed.key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            bmbe_obs::trace_counter!("batch.shapes.hits", 1);
            return Ok((artifact, Resolution::Hit));
        }
        let (slot, owner) = {
            let mut slots = lock(&self.slots);
            match slots.entry(keyed.key.clone()) {
                std::collections::hash_map::Entry::Occupied(e) => (e.get().clone(), false),
                std::collections::hash_map::Entry::Vacant(v) => {
                    (v.insert(Arc::new(Slot::new())).clone(), true)
                }
            }
        };
        let digest = keyed.key.digest();
        if owner {
            // The claim span carries the shape digest so the fleet
            // analyzer can attribute waiters' blocked time to this
            // synthesis (and to its hottest phase below).
            let _claim_span = bmbe_obs::span!("batch.claim", "batch");
            bmbe_obs::annotate_num!("shape.digest", digest as i64);
            bmbe_obs::recorder::note("batch.claim", || format!("digest {digest:016x} claimed"));
            // Claim index across the fleet, for deterministic fault
            // targeting: `BMBE_FAULT=<phase>:<n>` hits the n-th shape any
            // job claims (cache_io plans are handled by the disk layer and
            // skipped here).
            let claim = self.claims.fetch_add(1, Ordering::Relaxed);
            let fault = options
                .fault
                .as_ref()
                .filter(|f| f.phase != FaultPhase::CacheIo && f.targets_job(claim));
            let result = bmbe_par::catch_job(|| {
                synthesize_shape_with_fault(
                    "shape",
                    &keyed.canonical,
                    options.minimize_mode,
                    options.minimize_backend,
                    options.map_objective,
                    options.map_style,
                    self.library,
                    inner,
                    fault,
                )
            })
            .unwrap_or_else(|payload| Err(ShapeError::Panic(payload)));
            let done = match result {
                Ok(artifact) => {
                    let artifact = Arc::new(artifact);
                    self.cache.store(keyed.key.clone(), artifact.clone());
                    self.synthesized.fetch_add(1, Ordering::Relaxed);
                    bmbe_obs::trace_counter!("batch.shapes.synthesized", 1);
                    Ok(artifact)
                }
                Err(e) => {
                    bmbe_obs::trace_counter!("batch.shapes.failed", 1);
                    bmbe_obs::recorder::note("batch.claim.failed", || {
                        format!("digest {digest:016x}: {e}")
                    });
                    Err(Arc::new(e))
                }
            };
            let mut state = lock(&slot.state);
            *state = SlotState::Done(done.clone());
            self.ready_all(&slot);
            done.map(|a| (a, Resolution::Synthesized))
        } else {
            // The wait span records the *same* microsecond value that goes
            // into the `batch.singleflight_wait_us` histogram, so the
            // analyzer's per-shape attribution sums to the histogram total
            // exactly.
            let _wait_span = bmbe_obs::span!("batch.wait", "batch");
            bmbe_obs::annotate_num!("shape.digest", digest as i64);
            let start = Instant::now();
            let mut state = lock(&slot.state);
            while matches!(*state, SlotState::Running) {
                state = slot
                    .ready
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            let waited = start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
            bmbe_obs::histogram!("batch.singleflight_wait_us", &WAIT_BUCKETS).observe(waited);
            bmbe_obs::annotate_num!("wait.us", waited as i64);
            self.shared.fetch_add(1, Ordering::Relaxed);
            bmbe_obs::trace_counter!("batch.shapes.shared", 1);
            match &*state {
                SlotState::Done(Ok(artifact)) => Ok((artifact.clone(), Resolution::Shared)),
                SlotState::Done(Err(e)) => Err(e.clone()),
                SlotState::Running => unreachable!("condvar loop exits only on Done"),
            }
        }
    }

    fn ready_all(&self, slot: &Slot) {
        slot.ready.notify_all();
    }
}

/// One job's structured result.
#[derive(Debug)]
pub struct JobReport {
    /// The job's label, verbatim.
    pub label: String,
    /// Design name (from the netlist).
    pub design: String,
    /// Control components before clustering.
    pub components_before: usize,
    /// Controllers after clustering.
    pub controllers: usize,
    /// Total two-level products across controllers.
    pub products: usize,
    /// Total control cell area (µm²).
    pub control_area: f64,
    /// Distinct shapes this job needed.
    pub distinct_shapes: usize,
    /// Shapes served from the shared cache.
    pub cache_hits: usize,
    /// Shapes this job synthesized (flights it claimed).
    pub synthesized: usize,
    /// Shapes reused from another job's in-flight synthesis.
    pub shared: usize,
    /// Simulated scenario lanes (0 when the sim stage was skipped).
    pub sim_lanes: usize,
    /// Lanes that reached their done condition.
    pub sim_completed: usize,
    /// Job wall-clock seconds.
    pub wall_s: f64,
}

/// One job's failure, with enough context to re-run it in isolation.
#[derive(Debug)]
pub struct JobFailure {
    /// The job's label, verbatim.
    pub label: String,
    /// Design name (empty when translation never produced one).
    pub design: String,
    /// The first failing component, when the failure is per-shape.
    pub component: String,
    /// The failing shape's cache-key digest (hex), when per-shape.
    pub cache_key: String,
    /// The failing stage: `translate`, a per-shape phase (`compile`,
    /// `synth`, `verify`, `map`, `statemin`), an injected fault, `sim`,
    /// `check`, or `panic` for a caught job unwind.
    pub phase: &'static str,
    /// Human-readable error.
    pub error: String,
}

impl std::fmt::Display for JobFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "job {} ({}): phase {}: {}",
            self.label, self.design, self.phase, self.error
        )?;
        if !self.component.is_empty() {
            write!(f, " [component {} key {}]", self.component, self.cache_key)?;
        }
        Ok(())
    }
}

impl std::error::Error for JobFailure {}

/// Drains the flight recorder for a failed job: the dump carries the
/// failure's design/component/cache_key/phase so forensics correlate with
/// the structured error, and goes to a file (or stderr), never stdout.
fn dump_failure(failure: &JobFailure) {
    bmbe_obs::recorder::note("batch.job.failed", || failure.to_string());
    bmbe_obs::recorder::dump(
        "job-failure",
        &[
            ("label", failure.label.clone()),
            ("design", failure.design.clone()),
            ("component", failure.component.clone()),
            ("cache_key", failure.cache_key.clone()),
            ("phase", failure.phase.to_string()),
            ("error", failure.error.clone()),
        ],
    );
}

/// The whole batch's outcome: per-job results in job order plus the
/// fleet-wide shape accounting.
pub struct BatchSummary {
    /// Per-job outcomes, in submission order.
    pub jobs: Vec<Result<JobReport, JobFailure>>,
    /// Distinct shape digests resolved across the fleet.
    pub distinct_shapes: usize,
    /// Shapes synthesized across the fleet (each exactly once).
    pub synthesized: usize,
    /// Singleflight waits (a job blocked on another's flight).
    pub shared_waits: usize,
    /// Cache hits across the fleet (memory or disk).
    pub cache_hits: usize,
    /// Job-level worker threads used.
    pub job_workers: usize,
    /// Worker threads inside each job's synthesis.
    pub inner_threads: usize,
    /// Batch wall-clock seconds.
    pub wall_s: f64,
}

impl BatchSummary {
    /// Number of failed jobs.
    pub fn failed(&self) -> usize {
        self.jobs.iter().filter(|j| j.is_err()).count()
    }
}

/// Runs one job's flow through the registry, then its optional sim stage.
/// `parent_span` is the fleet's `batch.run` span id, so job spans nest
/// under it across worker threads.
fn run_job(
    job: &BatchJob,
    registry: &ShapeRegistry<'_>,
    inner: usize,
    parent_span: u64,
) -> Result<JobReport, JobFailure> {
    let start = Instant::now();
    let _job_span = bmbe_obs::span_with_parent!("batch.job", "batch", parent_span);
    bmbe_obs::annotate_str!("job.label", &job.label);
    bmbe_obs::annotate_str!("job.design", job.design.netlist.name());
    bmbe_obs::recorder::note("batch.job", || {
        format!("job {} ({}) started", job.label, job.design.netlist.name())
    });
    let fail = |design: &str, phase: &'static str, error: String| JobFailure {
        label: job.label.clone(),
        design: design.to_string(),
        component: String::new(),
        cache_key: String::new(),
        phase,
        error,
    };
    let design_name = job.design.netlist.name().to_string();
    let (flow, shape_stats) =
        flow_through_registry(&job.label, &job.design, &job.options, registry, inner)?;
    let components_before = flow.components_before;

    let (mut sim_lanes, mut sim_completed) = (0usize, 0usize);
    if let (Some(scenario), true) = (&job.scenario, job.sim_batch > 0) {
        let scenarios: Vec<_> = variants_of(scenario, job.sim_batch, job.seed)
            .iter()
            .map(to_flow_scenario)
            .collect();
        let outcomes = simulate_scenarios(
            &job.design,
            &flow,
            &scenarios,
            &Delays::default(),
            SimBackend::Compiled,
            inner,
            None,
        );
        sim_lanes = outcomes.len();
        match outcomes.first() {
            Some(Ok(base)) if base.completed => {
                check_outcome(&scenario.check, base)
                    .map_err(|detail| fail(&design_name, "check", detail))?;
            }
            Some(Ok(_)) => {
                return Err(fail(
                    &design_name,
                    "sim",
                    "base scenario did not reach its done condition".into(),
                ))
            }
            Some(Err(e)) => return Err(fail(&design_name, "sim", e.to_string())),
            None => {}
        }
        sim_completed = outcomes
            .iter()
            .filter(|o| o.as_ref().is_ok_and(|o| o.completed))
            .count();
    }

    Ok(JobReport {
        label: job.label.clone(),
        design: design_name,
        components_before,
        controllers: flow.controllers.len(),
        products: flow.total_products(),
        control_area: flow.control_area,
        distinct_shapes: shape_stats.distinct,
        cache_hits: shape_stats.hits,
        synthesized: shape_stats.synthesized,
        shared: shape_stats.shared,
        sim_lanes,
        sim_completed,
        wall_s: start.elapsed().as_secs_f64(),
    })
}

/// How one design's shapes resolved through the registry.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShapeStats {
    /// Distinct shape digests in the design.
    pub distinct: usize,
    /// Shapes served from the shared cache (memory or disk).
    pub hits: usize,
    /// Shapes this caller synthesized (it claimed the flight).
    pub synthesized: usize,
    /// Shapes reused from another caller's in-flight synthesis.
    pub shared: usize,
}

/// Runs one design's flow — translate, cluster, key, resolve each unique
/// shape through the registry, instantiate — and returns the
/// [`FlowResult`] plus how its shapes resolved.
///
/// This is the per-design half of [`run_job`], shared with the
/// differential gauntlet so corpus designs route through exactly the
/// singleflight + shared-cache path the batch fleet uses.
///
/// # Errors
///
/// Returns a [`JobFailure`] naming the design, component, cache key, and
/// phase on any translate or synthesis error.
pub fn flow_through_registry(
    label: &str,
    design: &CompiledDesign,
    options: &FlowOptions,
    registry: &ShapeRegistry<'_>,
    inner: usize,
) -> Result<(FlowResult, ShapeStats), JobFailure> {
    let fail = |design: &str, phase: &'static str, error: String| JobFailure {
        label: label.to_string(),
        design: design.to_string(),
        component: String::new(),
        cache_key: String::new(),
        phase,
        error,
    };
    let design_name = design.netlist.name().to_string();
    let mut ctrl = balsa_to_ch(&design.netlist)
        .map_err(|e| fail(&design_name, "translate", e.to_string()))?;
    let components_before = ctrl.components.len();
    let cluster_report = options
        .optimize
        .then(|| ctrl.t2_clustering(&options.cluster));
    let templates = if options.use_templates {
        template_table(&design.netlist)
    } else {
        Default::default()
    };

    // Resolve unique shapes in deterministic component order, so the first
    // failing component is the one the serial pipeline would report.
    let keyed: Vec<KeyedProgram> = ctrl
        .components
        .iter()
        .map(|comp| {
            KeyedProgram::new(
                &comp.program,
                options.minimize_mode,
                options.minimize_backend,
                options.map_objective,
                options.map_style,
            )
        })
        .collect();
    let mut shapes: HashMap<&CacheKey, Arc<SynthArtifact>> = HashMap::new();
    let (mut hits, mut synthesized, mut shared) = (0usize, 0usize, 0usize);
    let mut phases = PhaseProfile::default();
    for (comp, k) in ctrl.components.iter().zip(&keyed) {
        if shapes.contains_key(&k.key) {
            continue;
        }
        match registry.resolve(k, options, inner) {
            Ok((artifact, resolution)) => {
                match resolution {
                    Resolution::Hit => hits += 1,
                    Resolution::Synthesized => {
                        // Owners alone account the synthesis time, mirroring
                        // the pipeline's "cache hits contribute nothing".
                        phases.accumulate(&artifact.profile);
                        synthesized += 1;
                    }
                    Resolution::Shared => shared += 1,
                }
                shapes.insert(&k.key, artifact);
            }
            Err(e) => {
                return Err(JobFailure {
                    label: label.to_string(),
                    design: design_name,
                    component: comp.name.clone(),
                    cache_key: format!("{:016x}", k.key.digest()),
                    phase: e.phase(),
                    error: e.to_string(),
                })
            }
        }
    }
    registry.cache.record(hits + shared, synthesized);

    let controllers: Vec<ControllerArtifact> = ctrl
        .components
        .iter()
        .zip(&keyed)
        .map(|(comp, k)| {
            let template = templates.get(&comp.name).copied();
            instantiate(&shapes[&k.key], k, &comp.name, &comp.program, template)
        })
        .collect();
    let control_area = controllers.iter().map(ControllerArtifact::area).sum();
    let flow = FlowResult {
        design: design_name,
        components_before,
        controllers,
        cluster_report,
        control_area,
        cache_hits: hits + shared,
        cache_misses: synthesized,
        threads_used: inner,
        phases,
    };
    Ok((
        flow,
        ShapeStats {
            distinct: shapes.len(),
            hits,
            synthesized,
            shared,
        },
    ))
}

/// Runs a batch of design jobs over a shared cache, sharding distinct
/// shape digests across the worker pool so each is synthesized exactly
/// once per fleet.
///
/// The thread budget splits between job-level workers
/// (`threads.min(jobs)`) and synthesis threads inside each job; waiters on
/// a shared flight block their job worker, which is deadlock-free because
/// the owning flight always runs to completion on its own worker. Job
/// order is preserved in the summary; a failing (or panicking) job never
/// takes its siblings down.
pub fn run_batch(
    jobs: &[BatchJob],
    library: &Library,
    cache: &ControllerCache,
    threads: usize,
) -> BatchSummary {
    let start = Instant::now();
    let span = bmbe_obs::span!("batch.run", "batch");
    let root_span = span.id();
    let registry = ShapeRegistry::new(cache, library);
    let threads = threads.max(1);
    let job_workers = threads.min(jobs.len()).max(1);
    let inner = (threads / job_workers).max(1);
    bmbe_obs::trace_gauge!("batch.jobs.pending", jobs.len() as i64);
    let results: Vec<Result<JobReport, JobFailure>> = bmbe_par::par_try_map(
        jobs,
        job_workers,
        |i, job| format!("batch job {i} ({})", job.label),
        |_, job| {
            let outcome = run_job(job, &registry, inner, root_span);
            bmbe_obs::trace_gauge!("batch.jobs.pending", add: -1);
            outcome
        },
    )
    .into_iter()
    .zip(jobs)
    .map(|(slot, job)| {
        let outcome = slot.unwrap_or_else(|e| {
            Err(JobFailure {
                label: job.label.clone(),
                design: job.design.netlist.name().to_string(),
                component: String::new(),
                cache_key: String::new(),
                phase: "panic",
                error: e.payload,
            })
        });
        match &outcome {
            Ok(_) => bmbe_obs::trace_counter!("batch.jobs.completed", 1),
            Err(failure) => {
                bmbe_obs::trace_counter!("batch.jobs.failed", 1);
                dump_failure(failure);
            }
        }
        outcome
    })
    .collect();
    drop(span);
    BatchSummary {
        jobs: results,
        distinct_shapes: registry.distinct_shapes(),
        synthesized: registry.synthesized(),
        shared_waits: registry.shared_waits(),
        cache_hits: registry.cache_hits(),
        job_workers,
        inner_threads: inner,
        wall_s: start.elapsed().as_secs_f64(),
    }
}
