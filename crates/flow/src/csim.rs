//! The bit-parallel compiled simulation backend for complete designs.
//!
//! [`compile_sim`] walks the same design structure as
//! [`crate::simbuild::simulate_with`] — synthesized controllers, select
//! adapters, behavioural datapath components, and the scripted environment
//! — but lowers it into a [`bmbe_sim::CompiledCircuit`]: controllers
//! become levelized instruction tapes over their technology-mapped gates
//! (one lane-parallel op per cell), and every primitive evaluates all 64
//! scenario lanes of a batch at once.
//!
//! The lane-packing layer is [`CompiledSim::run_batch`]: it takes up to
//! [`LANES`] scenarios, binds each to a lane (a partial batch simply
//! leaves the upper lanes dead — the engine's live mask pads them out),
//! runs the batch, and demuxes the per-lane results back into ordinary
//! [`SimOutcome`]s so downstream consumers are untouched.
//! [`simulate_scenarios`] is the batch entry point that picks a backend
//! ([`SimBackend::Auto`] compiles when there is more than one scenario)
//! and fans compiled chunks out across worker threads; because one wave's
//! result cannot depend on evaluation order and the circuit is compiled
//! once up front, compiled outcomes are bit-identical at any thread count.
//!
//! The compiled backend is untimed. Differential tests assert
//! [`SimOutcome::same_behaviour`] against the event-wheel oracle, which
//! remains the timing/hazard reference.

use crate::fault::{FaultPhase, FaultPlan};
use crate::pipeline::FlowResult;
use crate::simbuild::{
    provider_name, simulate_all, Done, Scenario, SimBuildError, SimJob, SimOutcome, SimStats,
};
use bmbe_balsa::CompiledDesign;
use bmbe_gates::SubjectNode;
use bmbe_hsnet::{Component, ComponentKind, Netlist};
use bmbe_sim::{
    CCh, CPrim, CSite, CWire, CircuitBuilder, CompiledCircuit, DoneSpec, GateSpec, LaneSpec,
    RunSpec, SchedulerKind, SimBackend, LANES,
};
use bmbe_sim::prims::Delays;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::time::Instant;

/// Safety net against a non-quiescing (oscillating) circuit; real designs
/// either complete or quiesce in far fewer waves.
const MAX_WAVES: u64 = 1_000_000;

/// A design compiled for bit-parallel simulation, with the environment
/// primitives needed to bind scenarios to lanes and demux results.
pub struct CompiledSim {
    circuit: CompiledCircuit,
    driver: CPrim,
    /// Input port name -> pull provider.
    providers: BTreeMap<String, CPrim>,
    /// Output port name -> push consumer.
    consumers: BTreeMap<String, CPrim>,
    /// Sync port name -> responder.
    syncs: BTreeMap<String, CPrim>,
    /// Memory name -> memory primitive.
    mems: Vec<(String, CPrim)>,
}

struct NameTable {
    wires: HashMap<String, CWire>,
    chans: HashMap<String, CCh>,
}

impl NameTable {
    fn wire(&mut self, b: &mut CircuitBuilder, name: &str) -> CWire {
        if let Some(&w) = self.wires.get(name) {
            return w;
        }
        let w = b.wire();
        self.wires.insert(name.to_string(), w);
        w
    }

    fn ch(&mut self, b: &mut CircuitBuilder, name: &str) -> CCh {
        if let Some(&c) = self.chans.get(name) {
            return c;
        }
        let c = CCh {
            req: self.wire(b, &format!("{name}_r")),
            ack: self.wire(b, &format!("{name}_a")),
            slot: b.slot(),
        };
        self.chans.insert(name.to_string(), c);
        c
    }
}

/// Compiles a design (controllers, datapath, environment) into a
/// [`CompiledSim`]. `input_ports` names the ports the scenarios script as
/// inputs — the compiled circuit fixes port directions up front, so every
/// scenario of every batch run on this circuit must script exactly these
/// ports (enforced by [`CompiledSim::run_batch`]).
///
/// `fault` injects a deterministic [`FaultPhase::SimCompile`] failure at
/// the targeted controller index (the flow's fan-out order), for the
/// recovery-path tests.
///
/// # Errors
///
/// [`SimBuildError::Compile`] when a controller netlist cannot be
/// levelized into a tape (or a fault is injected there).
pub fn compile_sim(
    design: &CompiledDesign,
    flow: &FlowResult,
    input_ports: &BTreeSet<String>,
    fault: Option<&FaultPlan>,
) -> Result<CompiledSim, SimBuildError> {
    let _span = bmbe_obs::span!("sim.compile", "sim");
    let netlist = &design.netlist;
    let mut b = CircuitBuilder::new();
    let mut t = NameTable {
        wires: HashMap::new(),
        chans: HashMap::new(),
    };

    // Select channels needing an adapter, with branch counts (sorted: the
    // compiled circuit must be built in a deterministic order).
    let mut adapted: BTreeMap<String, usize> = BTreeMap::new();
    for comp in netlist.components() {
        match &comp.kind {
            ComponentKind::Case { branches } => {
                let name = netlist.channel(comp.channels[1]).name.clone();
                adapted.insert(name, *branches);
            }
            ComponentKind::While => {
                let name = netlist.channel(comp.channels[1]).name.clone();
                adapted.insert(name, 2);
            }
            _ => {}
        }
    }

    // Controllers: one levelized tape per synthesized artifact, built from
    // its technology-mapped gates (the subject-graph nodes are the tape's
    // scratch slots).
    for (i, art) in flow.controllers.iter().enumerate() {
        if let Some(plan) = fault {
            if plan.targets_job(i) {
                plan.trip(FaultPhase::SimCompile)
                    .map_err(|_| SimBuildError::Compile {
                        controller: art.name.clone(),
                        detail: format!("injected fault at sim_compile of job {i}"),
                    })?;
            }
        }
        let ctrl = &art.controller;
        let subject = &art.mapped.subject;
        let bad = |detail: String| SimBuildError::Compile {
            controller: art.name.clone(),
            detail,
        };
        let root_of = |name: &str| {
            subject
                .roots
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, r)| r)
        };
        let out_roots: Vec<usize> = ctrl
            .outputs
            .iter()
            .map(|n| root_of(n).ok_or_else(|| bad(format!("no function root for output {n}"))))
            .collect::<Result<_, _>>()?;
        let state_roots: Vec<usize> = (0..ctrl.num_state_bits)
            .map(|j| {
                root_of(&format!("y{j}"))
                    .ok_or_else(|| bad(format!("no function root for state bit y{j}")))
            })
            .collect::<Result<_, _>>()?;
        let ones: Vec<usize> = subject
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n, SubjectNode::One))
            .map(|(ix, _)| ix)
            .collect();
        let gates: Vec<GateSpec> = art
            .mapped
            .gates
            .iter()
            .map(|g| GateSpec {
                cell: g.cell,
                inputs: g.inputs.clone(),
                output: g.output,
            })
            .collect();
        let inputs: Vec<CWire> = ctrl.inputs.iter().map(|n| t.wire(&mut b, n)).collect();
        let outputs: Vec<CWire> = ctrl.outputs.iter().map(|n| t.wire(&mut b, n)).collect();
        b.add_controller(
            &art.name,
            inputs,
            outputs,
            ctrl.num_state_bits,
            ctrl.initial_code,
            subject.nodes.len(),
            &ones,
            &gates,
            &out_roots,
            &state_roots,
        )
        .map_err(|e| SimBuildError::Compile {
            controller: art.name.clone(),
            detail: e.to_string(),
        })?;
    }

    // Select adapters.
    for (chan, branches) in &adapted {
        let sel_req = t.wire(&mut b, &format!("{chan}_r"));
        let sel_acks: Vec<CWire> = (0..*branches)
            .map(|i| t.wire(&mut b, &format!("{chan}_a{i}")))
            .collect();
        let provider = t.ch(&mut b, &provider_name(chan));
        b.add_select_adapter(sel_req, sel_acks, provider);
    }

    // Datapath components.
    let chan_name = |netlist: &Netlist, comp: &Component, port: usize| -> String {
        let raw = netlist.channel(comp.channels[port]).name.clone();
        if adapted.contains_key(&raw) {
            provider_name(&raw)
        } else {
            raw
        }
    };
    let mut mems: Vec<(String, CPrim)> = Vec::new();
    for comp in netlist.components() {
        match &comp.kind {
            ComponentKind::Variable { reads, .. } => {
                let write = t.ch(&mut b, &chan_name(netlist, comp, 0));
                let read_chs: Vec<CCh> = (0..*reads)
                    .map(|i| {
                        let name = chan_name(netlist, comp, 1 + i);
                        t.ch(&mut b, &name)
                    })
                    .collect();
                b.add_variable(write, read_chs);
            }
            ComponentKind::Constant { value, .. } => {
                let ch = t.ch(&mut b, &chan_name(netlist, comp, 0));
                b.add_constant(ch, *value);
            }
            ComponentKind::BinaryFunc { op, .. } => {
                let out = t.ch(&mut b, &chan_name(netlist, comp, 0));
                let lhs = t.ch(&mut b, &chan_name(netlist, comp, 1));
                let rhs = t.ch(&mut b, &chan_name(netlist, comp, 2));
                b.add_binfunc(*op, out, lhs, rhs);
            }
            ComponentKind::UnaryFunc { op, .. } => {
                let out = t.ch(&mut b, &chan_name(netlist, comp, 0));
                let operand = t.ch(&mut b, &chan_name(netlist, comp, 1));
                b.add_unfunc(*op, out, operand);
            }
            ComponentKind::CallMux { inputs, .. } => {
                let ins: Vec<CCh> = (0..*inputs)
                    .map(|i| {
                        let name = chan_name(netlist, comp, i);
                        t.ch(&mut b, &name)
                    })
                    .collect();
                let out = t.ch(&mut b, &chan_name(netlist, comp, *inputs));
                b.add_call_mux(ins, out);
            }
            ComponentKind::PullMux { clients, .. } => {
                let cl: Vec<CCh> = (0..*clients)
                    .map(|i| {
                        let name = chan_name(netlist, comp, i);
                        t.ch(&mut b, &name)
                    })
                    .collect();
                let source = t.ch(&mut b, &chan_name(netlist, comp, *clients));
                b.add_pull_mux(cl, source);
            }
            ComponentKind::Memory {
                words,
                reads,
                writes,
                ..
            } => {
                let mem_name = netlist
                    .channel(comp.channels[0])
                    .name
                    .strip_suffix("_rd0")
                    .unwrap_or("mem")
                    .to_string();
                let mut port = 0;
                let mut rsites = Vec::new();
                for _ in 0..*reads {
                    let data = t.ch(&mut b, &chan_name(netlist, comp, port));
                    let addr = t.ch(&mut b, &chan_name(netlist, comp, port + 1));
                    rsites.push(CSite { data, addr });
                    port += 2;
                }
                let mut wsites = Vec::new();
                for _ in 0..*writes {
                    let data = t.ch(&mut b, &chan_name(netlist, comp, port));
                    let addr = t.ch(&mut b, &chan_name(netlist, comp, port + 1));
                    wsites.push(CSite { data, addr });
                    port += 2;
                }
                let id = b.add_memory(*words, rsites, wsites);
                mems.push((mem_name, id));
            }
            ComponentKind::Fetch => {
                let pull = t.ch(&mut b, &chan_name(netlist, comp, 1));
                let push = t.ch(&mut b, &chan_name(netlist, comp, 2));
                b.add_fetch(pull, push);
            }
            _ => {}
        }
    }

    // Environment: activation driver.
    let act_name = netlist.channel(design.activate).name.clone();
    let act_req = t.wire(&mut b, &format!("{act_name}_r"));
    let act_ack = t.wire(&mut b, &format!("{act_name}_a"));
    let driver = b.add_activation_driver(act_req, act_ack);

    // Environment: ports (sorted for a deterministic build).
    let mut providers = BTreeMap::new();
    let mut consumers = BTreeMap::new();
    let mut syncs = BTreeMap::new();
    let ports: BTreeMap<&String, _> = design.port_channels.iter().collect();
    for (name, &chid) in ports {
        let channel = netlist.channel(chid);
        if channel.width == 0 {
            let req = t.wire(&mut b, &format!("{name}_r"));
            let ack = t.wire(&mut b, &format!("{name}_a"));
            syncs.insert(name.clone(), b.add_sync_responder(req, ack));
        } else {
            let ch = t.ch(&mut b, name);
            if input_ports.contains(name) {
                providers.insert(name.clone(), b.add_pull_provider(ch));
            } else {
                consumers.insert(name.clone(), b.add_push_consumer(ch));
            }
        }
    }

    Ok(CompiledSim {
        circuit: b.finish(),
        driver,
        providers,
        consumers,
        syncs,
        mems,
    })
}

impl CompiledSim {
    /// The underlying circuit (tape statistics for reports).
    pub fn circuit(&self) -> &CompiledCircuit {
        &self.circuit
    }

    /// Runs up to [`LANES`] scenarios as one bit-parallel batch and demuxes
    /// one [`SimOutcome`] per scenario, in order.
    ///
    /// The compiled backend is untimed: each outcome reports `time_ns` 0,
    /// `events` = the lane's applied wire changes, and batch-wide stats
    /// (`lanes`, `waves`, shared `wall_s`).
    ///
    /// # Errors
    ///
    /// [`SimBuildError::BatchShape`] if the batch is empty, exceeds
    /// [`LANES`], or a scenario scripts a port set different from the one
    /// the circuit was compiled for; [`SimBuildError::UnknownPort`] if a
    /// done condition names an unknown port.
    pub fn run_batch(&self, scenarios: &[Scenario]) -> Result<Vec<SimOutcome>, SimBuildError> {
        if scenarios.is_empty() || scenarios.len() > LANES {
            return Err(SimBuildError::BatchShape(format!(
                "batch of {} scenarios (need 1..={LANES})",
                scenarios.len()
            )));
        }
        let mut lanes = Vec::with_capacity(scenarios.len());
        for s in scenarios {
            for port in s.input_values.keys() {
                if !self.providers.contains_key(port) {
                    return Err(SimBuildError::BatchShape(format!(
                        "scenario scripts port {port}, but the circuit was compiled without it \
                         as an input"
                    )));
                }
            }
            let provider_values: Vec<(CPrim, Vec<u64>)> = self
                .providers
                .iter()
                .map(|(name, &p)| {
                    (p, s.input_values.get(name).cloned().unwrap_or_default())
                })
                .collect();
            let memory_init: Vec<(CPrim, Vec<u64>)> = self
                .mems
                .iter()
                .filter_map(|(name, p)| s.memory_init.get(name).map(|init| (*p, init.clone())))
                .collect();
            let done = match &s.done {
                Done::Activations(n) => DoneSpec::Activations(self.driver, *n as u64),
                Done::Outputs { port, count } => DoneSpec::Outputs(
                    *self
                        .consumers
                        .get(port)
                        .ok_or_else(|| SimBuildError::UnknownPort(port.clone()))?,
                    *count,
                ),
                Done::Syncs { port, count } => DoneSpec::Syncs(
                    *self
                        .syncs
                        .get(port)
                        .ok_or_else(|| SimBuildError::UnknownPort(port.clone()))?,
                    *count as u64,
                ),
            };
            lanes.push(LaneSpec {
                activation_cycles: s.activation_cycles as u64,
                provider_values,
                memory_init,
                done,
            });
        }
        let n = lanes.len();
        let spec = RunSpec {
            lanes,
            max_waves: MAX_WAVES,
        };
        let start = Instant::now();
        let r = self.circuit.run(&spec);
        let wall_s = start.elapsed().as_secs_f64();
        // Live lanes only: in a partial batch the dead padding is masked
        // out of every write (and asserted event-free at harvest), so the
        // gauge and the per-outcome stats report the work of the `n`
        // scenarios actually run, not of 64 lanes.
        let total_events = r.live_events();
        let events_per_s = if wall_s > 0.0 {
            total_events as f64 / wall_s
        } else {
            0.0
        };
        bmbe_obs::gauge!("sim.compiled.events_per_s").set(events_per_s as i64);
        let outcomes = (0..n)
            .map(|lane| SimOutcome {
                completed: r.completed >> lane & 1 == 1,
                time_ns: 0.0,
                events: r.lane_events[lane],
                outputs: self
                    .consumers
                    .iter()
                    .map(|(name, p)| (name.clone(), r.consumer_received[&p.0][lane].clone()))
                    .collect(),
                sync_counts: self
                    .syncs
                    .iter()
                    .map(|(name, p)| (name.clone(), r.sync_counts[&p.0][lane] as usize))
                    .collect(),
                memories: self
                    .mems
                    .iter()
                    .map(|(name, p)| (name.clone(), r.memories[&p.0][lane].clone()))
                    .collect(),
                stats: SimStats {
                    backend: SimBackend::Compiled,
                    scheduler: SchedulerKind::default(),
                    lanes: n,
                    waves: r.waves,
                    peak_queue_depth: 0,
                    wall_s,
                    far_heap_hits: 0,
                    refits: 0,
                    events_per_s,
                },
            })
            .collect();
        Ok(outcomes)
    }
}

/// The set of ports a scenario batch scripts as inputs — what
/// [`compile_sim`] needs to fix port directions.
pub fn batch_input_ports(scenarios: &[Scenario]) -> BTreeSet<String> {
    scenarios
        .iter()
        .flat_map(|s| s.input_values.keys().cloned())
        .collect()
}

/// Simulates a scenario set on the chosen backend, returning one outcome
/// per scenario, in order.
///
/// [`SimBackend::EventWheel`] runs each scenario as an independent event
/// simulation across `threads` workers (exactly [`simulate_all`] with the
/// auto-picked scheduler). [`SimBackend::Compiled`] compiles the design
/// once, packs the scenarios into [`LANES`]-wide batches, and fans the
/// batches out across `threads` workers; results are bit-identical at any
/// thread count. [`SimBackend::Auto`] compiles when the set has more than
/// one scenario.
///
/// Worker panics (including injected `sim_compile` faults of
/// [`crate::FaultKind::Panic`]) are isolated per job and surface as
/// [`SimBuildError::Panic`].
pub fn simulate_scenarios(
    design: &CompiledDesign,
    flow: &FlowResult,
    scenarios: &[Scenario],
    delays: &Delays,
    backend: SimBackend,
    threads: usize,
    fault: Option<&FaultPlan>,
) -> Vec<Result<SimOutcome, SimBuildError>> {
    if scenarios.is_empty() {
        return Vec::new();
    }
    match backend.resolve(scenarios.len()) {
        SimBackend::EventWheel | SimBackend::Auto => {
            let jobs: Vec<SimJob<'_>> = scenarios
                .iter()
                .map(|scenario| SimJob {
                    design,
                    flow,
                    scenario,
                    scheduler: SchedulerKind::Auto,
                })
                .collect();
            simulate_all(&jobs, delays, threads)
        }
        SimBackend::Compiled => {
            let input_ports = batch_input_ports(scenarios);
            let cs = match bmbe_par::catch_job(|| compile_sim(design, flow, &input_ports, fault)) {
                Ok(Ok(cs)) => cs,
                Ok(Err(e)) => return scenarios.iter().map(|_| Err(e.clone())).collect(),
                Err(payload) => {
                    let e = SimBuildError::Panic(payload);
                    return scenarios.iter().map(|_| Err(e.clone())).collect();
                }
            };
            let chunks: Vec<&[Scenario]> = scenarios.chunks(LANES).collect();
            let results = bmbe_par::par_try_map(
                &chunks,
                threads,
                |i, chunk| format!("sim batch {i} ({} lanes)", chunk.len()),
                |_, chunk| cs.run_batch(chunk),
            );
            let mut out = Vec::with_capacity(scenarios.len());
            for (chunk, slot) in chunks.iter().zip(results) {
                match slot {
                    Ok(Ok(outcomes)) => out.extend(outcomes.into_iter().map(Ok)),
                    Ok(Err(e)) => out.extend(chunk.iter().map(|_| Err(e.clone()))),
                    Err(job) => out.extend(
                        chunk
                            .iter()
                            .map(|_| Err(SimBuildError::Panic(job.payload.clone()))),
                    ),
                }
            }
            out
        }
    }
}
