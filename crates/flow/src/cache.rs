//! Content-addressed controller cache.
//!
//! Real designs instantiate the same handful of control-component shapes
//! (sequencers, calls, decision-waits, …) dozens of times, and the
//! expensive part of the back-end — exact hazard-free minimization is
//! worst-case exponential — depends only on the component's *structure*,
//! not on its channel names. The cache therefore addresses artifacts by a
//! canonical structural key: the printed form of the alpha-renamed CH
//! program ([`bmbe_core::ast::alpha_rename`]) plus the synthesis-relevant
//! options ([`MinimizeMode`], [`MapObjective`], [`MapStyle`]). Each unique
//! shape is compiled, state-minimized, synthesized, technology-mapped, and
//! verified exactly once; every further instance re-materializes the cached
//! artifact by renaming its canonical wires (`k0_r`, `k1_a`, …) back to the
//! instance's actual channel names.
//!
//! The cache is thread-safe (a mutexed map probed before and after the
//! parallel fan-out) and can be shared across flow runs: the bench drivers
//! reuse one cache across all four benchmark designs and across the
//! unoptimized/optimized sides of a comparison.

use crate::profile::PhaseProfile;
use bmbe_bm::statemin::minimize_states;
use bmbe_bm::synth::{synthesize_parallel, Controller, MinimizeMode, SynthError};
use bmbe_core::ast::{alpha_rename, ChExpr};
use bmbe_core::compile::{compile_to_bm, CompileError};
use bmbe_core::parse::print_ch;
use bmbe_gates::{map as techmap, Library, MapObjective, MapStyle, MappedNetlist, SubjectGraph};
use bmbe_logic::Cover;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// The content address of a controller shape: canonical program text plus
/// the options that change what synthesis produces.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Printed alpha-renamed CH program (or the literal program text for
    /// verb programs, which cannot be renamed).
    pub canonical: String,
    /// Minimization mode.
    pub minimize_mode: MinimizeMode,
    /// Technology-mapping objective.
    pub map_objective: MapObjective,
    /// Technology-mapping style.
    pub map_style: MapStyle,
}

/// A component program keyed for the cache: the content address, the
/// canonical program a miss must synthesize, and the channel-name table for
/// re-instantiating the canonical artifact under the component's names.
#[derive(Debug, Clone)]
pub struct KeyedProgram {
    /// The content address.
    pub key: CacheKey,
    /// The alpha-renamed program (the program itself for verb programs).
    pub canonical: ChExpr,
    /// Actual channel names in canonical order: wire `k{i}_s` of the
    /// canonical artifact is wire `{names[i]}_s` of the instance. Empty
    /// when the program could not be renamed (identity mapping).
    pub names: Vec<String>,
}

impl KeyedProgram {
    /// Keys a component program under the given synthesis options.
    pub fn new(
        program: &ChExpr,
        minimize_mode: MinimizeMode,
        map_objective: MapObjective,
        map_style: MapStyle,
    ) -> Self {
        let (canonical, names) = match alpha_rename(program) {
            Some((canonical, names)) => (canonical, names),
            None => (program.clone(), Vec::new()),
        };
        KeyedProgram {
            key: CacheKey {
                canonical: print_ch(&canonical),
                minimize_mode,
                map_objective,
                map_style,
            },
            canonical,
            names,
        }
    }

    /// Maps a canonical wire name (`k{i}_suffix`) back to the instance's
    /// actual wire name (`{names[i]}_suffix`). Non-canonical names (state
    /// bits `y{j}`, or anything when the mapping is empty) pass through.
    pub fn rename_wire(&self, wire: &str) -> String {
        if self.names.is_empty() {
            return wire.to_string();
        }
        if let Some((prefix, suffix)) = wire.rsplit_once('_') {
            if let Some(index) = prefix
                .strip_prefix('k')
                .and_then(|d| d.parse::<usize>().ok())
            {
                if let Some(actual) = self.names.get(index) {
                    return format!("{actual}_{suffix}");
                }
            }
        }
        wire.to_string()
    }
}

/// A stage failure for one controller shape. Unlike
/// [`crate::pipeline::FlowError`] it carries no component name: the same
/// shape error applies to every instance of the shape.
#[derive(Debug)]
pub enum ShapeError {
    /// CH-to-BMS compilation (or state minimization) failed.
    Compile(CompileError),
    /// Controller synthesis failed.
    Synth(SynthError),
    /// Ternary hazard verification failed.
    Hazard(String),
    /// Post-mapping verification failed.
    MappedHazard(String),
}

/// The cached product of the per-shape synthesis chain.
#[derive(Debug)]
pub struct SynthArtifact {
    /// Burst-Mode specification states (after state minimization).
    pub bm_states: usize,
    /// The synthesized two-level controller (canonical wire names).
    pub controller: Controller,
    /// The technology-mapped netlist (canonical root names).
    pub mapped: MappedNetlist,
    /// Wall-clock breakdown of the chain that produced this artifact.
    pub profile: PhaseProfile,
}

/// Runs the full per-shape chain: CH-to-BMS compile, state minimization,
/// hazard-free synthesis (its per-function minimizations fanned across up
/// to `threads` workers), ternary verification, technology mapping, and
/// post-mapping verification.
///
/// Each phase runs inside a `bmbe_obs` span (`shape.compile`,
/// `shape.statemin`, `shape.synth`, `shape.verify`, `shape.map`), and the
/// artifact's [`PhaseProfile`] is *generated from those spans* by a
/// [`bmbe_obs::with_span_observer`] subscriber — the profile and the
/// exported trace are the same measurement, whether or not tracing is
/// enabled.
///
/// # Errors
///
/// Returns the first failing stage.
pub fn synthesize_shape(
    spec_name: &str,
    program: &ChExpr,
    minimize_mode: MinimizeMode,
    map_objective: MapObjective,
    map_style: MapStyle,
    library: &Library,
    threads: usize,
) -> Result<SynthArtifact, ShapeError> {
    let profile = Rc::new(RefCell::new(PhaseProfile {
        shapes: 1,
        ..PhaseProfile::default()
    }));
    let sink = profile.clone();
    let result = bmbe_obs::with_span_observer(
        move |name, _cat, dur| {
            let mut p = sink.borrow_mut();
            match name {
                "shape.compile" => p.compile += dur,
                "shape.statemin" => p.statemin += dur,
                "shape.synth" => p.synth += dur,
                "shape.verify" => p.verify += dur,
                "shape.map" => p.map += dur,
                _ => {}
            }
        },
        || {
            let spec = {
                let _s = bmbe_obs::span!("shape.compile", "flow");
                compile_to_bm(spec_name, program).map_err(ShapeError::Compile)?
            };
            let spec = {
                let _s = bmbe_obs::span!("shape.statemin", "flow");
                minimize_states(&spec)
                    .map(|r| r.spec)
                    .map_err(|e| ShapeError::Compile(CompileError::Bm(e)))?
            };
            let controller = {
                let _s = bmbe_obs::span!("shape.synth", "flow");
                synthesize_parallel(&spec, minimize_mode, threads).map_err(ShapeError::Synth)?
            };
            {
                let _s = bmbe_obs::span!("shape.verify", "flow");
                controller.verify_ternary().map_err(ShapeError::Hazard)?;
            }
            let mapped = {
                let _s = bmbe_obs::span!("shape.map", "flow");
                let functions: Vec<(String, &Cover)> = controller
                    .outputs
                    .iter()
                    .cloned()
                    .chain((0..controller.num_state_bits).map(|j| format!("y{j}")))
                    .zip(
                        controller
                            .output_covers
                            .iter()
                            .chain(controller.next_state_covers.iter()),
                    )
                    .collect();
                let subject = match minimize_mode {
                    MinimizeMode::Speed => {
                        SubjectGraph::from_covers(controller.num_vars(), &functions)
                    }
                    MinimizeMode::Area => {
                        SubjectGraph::from_covers_shared(controller.num_vars(), &functions)
                    }
                };
                techmap(&subject, library, map_objective, map_style)
            };
            {
                let _s = bmbe_obs::span!("shape.verify", "flow");
                if let Some(v) = bmbe_gates::verify_mapped(&controller, &mapped).first() {
                    return Err(ShapeError::MappedHazard(v.to_string()));
                }
            }
            Ok((spec.num_states(), controller, mapped))
        },
    );
    let (bm_states, controller, mapped) = result?;
    let mut profile = Rc::try_unwrap(profile)
        .expect("span observer released at scope exit")
        .into_inner();
    profile.prime_gen = controller.minimize_stats.prime_gen;
    profile.covering = controller.minimize_stats.covering;
    profile.debug_check_subphases(threads);
    Ok(SynthArtifact {
        bm_states,
        controller,
        mapped,
        profile,
    })
}

/// Approximate in-memory footprint of a stored artifact plus its key text:
/// the canonical program text, the controller's covers, and the mapped
/// gates. An observability estimate (the `cache.bytes` counter), not an
/// allocator measurement.
fn approx_artifact_bytes(key: &CacheKey, artifact: &SynthArtifact) -> usize {
    use std::mem::size_of;
    let cover_bytes: usize = artifact
        .controller
        .output_covers
        .iter()
        .chain(artifact.controller.next_state_covers.iter())
        .map(|c| size_of::<Cover>() + std::mem::size_of_val(c.cubes()))
        .sum();
    let gate_bytes: usize = artifact
        .mapped
        .gates
        .iter()
        .map(|g| std::mem::size_of_val(g) + g.inputs.len() * size_of::<usize>())
        .sum();
    key.canonical.len() + size_of::<SynthArtifact>() + cover_bytes + gate_bytes
}

/// Lifetime hit/miss counters of a [`ControllerCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from an existing entry (including entries created
    /// earlier in the same flow run by a structurally identical component).
    pub hits: usize,
    /// Unique shapes synthesized.
    pub misses: usize,
}

/// A thread-safe, content-addressed store of synthesized controller shapes.
#[derive(Debug, Default)]
pub struct ControllerCache {
    entries: Mutex<HashMap<CacheKey, Arc<SynthArtifact>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl ControllerCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct shapes stored.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache lock").len()
    }

    /// Whether the cache holds no shapes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime hit/miss counters (accumulated across every run sharing
    /// this cache).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Looks up a shape without touching the counters.
    pub fn peek(&self, key: &CacheKey) -> Option<Arc<SynthArtifact>> {
        self.entries.lock().expect("cache lock").get(key).cloned()
    }

    /// Stores a shape.
    pub fn store(&self, key: CacheKey, artifact: Arc<SynthArtifact>) {
        bmbe_obs::trace_counter!("cache.bytes", approx_artifact_bytes(&key, &artifact) as u64);
        self.entries
            .lock()
            .expect("cache lock")
            .insert(key, artifact);
    }

    /// Adds to the lifetime counters (one flow run's totals at a time).
    pub fn record(&self, hits: usize, misses: usize) {
        if hits > 0 {
            bmbe_obs::trace_counter!("cache.hits", hits as u64);
        }
        if misses > 0 {
            bmbe_obs::trace_counter!("cache.misses", misses as u64);
        }
        self.hits.fetch_add(hits, Ordering::Relaxed);
        self.misses.fetch_add(misses, Ordering::Relaxed);
    }

    /// Serial convenience used by the ablation drivers: key the program,
    /// return the cached artifact or synthesize-and-store it, together with
    /// the name table for re-instantiation.
    ///
    /// # Errors
    ///
    /// Returns the first failing stage of a miss's synthesis chain.
    pub fn get_or_synthesize(
        &self,
        program: &ChExpr,
        minimize_mode: MinimizeMode,
        map_objective: MapObjective,
        map_style: MapStyle,
        library: &Library,
    ) -> Result<(Arc<SynthArtifact>, KeyedProgram), ShapeError> {
        let keyed = KeyedProgram::new(program, minimize_mode, map_objective, map_style);
        if let Some(entry) = self.peek(&keyed.key) {
            self.record(1, 0);
            return Ok((entry, keyed));
        }
        let artifact = Arc::new(synthesize_shape(
            "shape",
            &keyed.canonical,
            minimize_mode,
            map_objective,
            map_style,
            library,
            1,
        )?);
        self.store(keyed.key.clone(), artifact.clone());
        self.record(0, 1);
        Ok((artifact, keyed))
    }
}
