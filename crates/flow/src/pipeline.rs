//! The back-end pipeline of Fig. 1: partition → Balsa-to-CH → clustering →
//! CH-to-BMS → Minimalist synthesis → technology mapping → hazard analysis.

use crate::cache::{
    synthesize_shape_with_fault, CacheKey, ControllerCache, KeyedProgram, ShapeError, SynthArtifact,
};
use crate::fault::FaultPlan;
use crate::profile::PhaseProfile;
use crate::templates::{template_table, Template};
use bmbe_balsa::CompiledDesign;
use bmbe_bm::synth::{Controller, MinimizeMode};
use bmbe_logic::MinimizeBackend;
use bmbe_core::balsa_to_ch::{balsa_to_ch, TranslateError};
use bmbe_core::opt::cluster::{ClusterOptions, ClusterReport};
use bmbe_gates::{Library, MapObjective, MapStyle, MappedNetlist};
use bmbe_par::par_try_map;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Flow configuration.
#[derive(Debug, Clone)]
pub struct FlowOptions {
    /// Run the clustering optimizations (`T1`+`T2`).
    pub optimize: bool,
    /// Minimization mode (Minimalist's speed/area split).
    pub minimize_mode: MinimizeMode,
    /// Hazard-free minimizer backend (part of the cache key): the exact
    /// prime-enumerating engine, the espresso-style cube-cofactor engine,
    /// or the per-function automatic split (the default).
    pub minimize_backend: MinimizeBackend,
    /// Technology-mapping objective.
    pub map_objective: MapObjective,
    /// Mapping style (the paper's split-module flow vs whole-controller).
    pub map_style: MapStyle,
    /// Clustering options.
    pub cluster: ClusterOptions,
    /// Annotate unclustered components with hand-optimized template
    /// area/latency (stock Balsa's baseline, §6) instead of the figures of
    /// their individually synthesized controllers.
    pub use_templates: bool,
    /// Memoize synthesis through the content-addressed controller cache so
    /// structurally identical components are synthesized once. Off = the
    /// original per-instance path (each component compiled from its own
    /// program); the two paths produce identical product counts, areas, and
    /// delays.
    pub cache: bool,
    /// Worker threads for the per-component synthesis fan-out. `None` uses
    /// [`bmbe_par::default_threads`] (the `BMBE_THREADS` environment
    /// variable, or every available core); `Some(1)` forces the serial
    /// path. Results are identical (same order, same artifacts, same first
    /// error) regardless of the thread count.
    pub threads: Option<usize>,
    /// Deterministic fault injection: force a panic or a typed error at a
    /// chosen phase of a chosen synthesis job (see [`FaultPlan`]). `None`
    /// (the default everywhere) injects nothing; the bench binaries
    /// populate it from `BMBE_FAULT` via [`FlowOptions::with_env_fault`].
    pub fault: Option<FaultPlan>,
}

impl FlowOptions {
    /// The paper's optimized flow: clustering + speed scripts + split-module
    /// delay-oriented mapping.
    pub fn optimized() -> Self {
        FlowOptions {
            optimize: true,
            minimize_mode: MinimizeMode::Speed,
            minimize_backend: MinimizeBackend::default(),
            map_objective: MapObjective::Delay,
            map_style: MapStyle::SplitModules,
            cluster: ClusterOptions::default(),
            use_templates: false,
            cache: true,
            threads: None,
            fault: None,
        }
    }

    /// The unoptimized baseline: stock Balsa — one hand-optimized template
    /// component per handshake component, no clustering.
    pub fn unoptimized() -> Self {
        FlowOptions {
            optimize: false,
            use_templates: true,
            ..Self::optimized()
        }
    }

    /// The seed's serial, uncached behaviour: per-instance synthesis on one
    /// thread. The reference against which the cached/parallel path is
    /// checked bit-identical.
    pub fn serial_uncached(mut self) -> Self {
        self.cache = false;
        self.threads = Some(1);
        self
    }

    /// Arms the fault plan named by the `BMBE_FAULT` environment variable
    /// (`<phase>:<nth>[:err]`), if any — the switch the bench binaries use
    /// so recovery paths can be smoke-tested from CI without code changes.
    pub fn with_env_fault(mut self) -> Self {
        if let Some(plan) = FaultPlan::from_env() {
            self.fault = Some(plan);
        }
        self
    }
}

/// Errors raised by the flow.
#[derive(Debug)]
pub enum FlowError {
    /// Balsa-to-CH translation failed.
    Translate(TranslateError),
    /// A per-controller synthesis job failed (a compile/synth/verify/map
    /// error, a caught worker panic, or an injected fault). Carries the full
    /// context of the failing job: the design, the component, the
    /// content-addressed cache key of its shape, and the phase that failed —
    /// enough to re-run exactly that job in isolation.
    Job {
        /// The design whose flow failed. Sibling designs sharing the same
        /// cache are unaffected.
        design: String,
        /// The first component (in deterministic component order) whose
        /// shape failed.
        component: String,
        /// The shape's content-addressed cache key, as a hex digest.
        cache_key: String,
        /// The per-shape phase that failed (`compile`, `synth`, `verify`,
        /// `map`, `statemin`, or `panic` for a caught unwind).
        phase: &'static str,
        /// The underlying shape error.
        error: ShapeError,
    },
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Translate(e) => write!(f, "translate: {e}"),
            FlowError::Job {
                design,
                component,
                cache_key,
                phase,
                error,
            } => write!(
                f,
                "{design}/{component}: phase {phase} (cache key {cache_key}): {error}"
            ),
        }
    }
}

impl std::error::Error for FlowError {}

impl From<TranslateError> for FlowError {
    fn from(e: TranslateError) -> Self {
        FlowError::Translate(e)
    }
}

/// One synthesized and mapped controller.
pub struct ControllerArtifact {
    /// Component (or cluster) name.
    pub name: String,
    /// Number of BM specification states.
    pub bm_states: usize,
    /// The synthesized two-level controller.
    pub controller: Controller,
    /// The technology-mapped netlist.
    pub mapped: MappedNetlist,
    /// The CH program it came from.
    pub program: bmbe_core::ast::ChExpr,
    /// Hand-optimized template annotation, when this artifact stands for a
    /// stock Balsa component (the unoptimized baseline).
    pub template: Option<Template>,
}

impl ControllerArtifact {
    /// Cell area of the controller (µm²).
    pub fn area(&self) -> f64 {
        self.template.map_or(self.mapped.area, |t| t.area)
    }

    /// Worst input-to-output delay (ns).
    pub fn critical_delay(&self) -> f64 {
        self.template
            .map_or_else(|| self.mapped.critical_delay(), |t| t.delay_ns)
    }
}

/// The result of running the control flow.
pub struct FlowResult {
    /// Design name.
    pub design: String,
    /// Control components before clustering.
    pub components_before: usize,
    /// Controllers after clustering (equal when unoptimized).
    pub controllers: Vec<ControllerArtifact>,
    /// The clustering report (when optimization ran).
    pub cluster_report: Option<ClusterReport>,
    /// Total control cell area (µm²).
    pub control_area: f64,
    /// Components whose controller came out of the content-addressed cache
    /// (an earlier run sharing the cache, or a structurally identical
    /// component of this run). Zero when the cache is disabled.
    pub cache_hits: usize,
    /// Unique controller shapes synthesized by this run (every component
    /// when the cache is disabled).
    pub cache_misses: usize,
    /// Worker threads the fan-out actually used (the resolved value of
    /// [`FlowOptions::threads`]).
    pub threads_used: usize,
    /// Aggregate per-phase wall-clock profile of the shapes this run
    /// synthesized (cache hits contribute nothing).
    pub phases: PhaseProfile,
}

impl FlowResult {
    /// Total number of two-level products across controllers.
    pub fn total_products(&self) -> usize {
        self.controllers
            .iter()
            .map(|c| c.controller.num_products())
            .sum()
    }
}

impl ShapeError {
    /// Attaches the full job context — design, component, cache key, and
    /// failing phase — producing the flow-level error report.
    fn into_flow(self, design: &str, component: &str, key: &CacheKey) -> FlowError {
        let phase = self.phase();
        let cache_key = format!("{:016x}", key.digest());
        // Every per-shape flow failure drains the flight recorder with the
        // same identity fields the typed error carries (file/stderr sink
        // only — the pure-JSON stdout contract holds; a no-op when no dump
        // sink is configured).
        bmbe_obs::recorder::dump(
            "flow-error",
            &[
                ("design", design.to_string()),
                ("component", component.to_string()),
                ("cache_key", cache_key.clone()),
                ("phase", phase.to_string()),
            ],
        );
        FlowError::Job {
            design: design.to_string(),
            component: component.to_string(),
            cache_key,
            phase,
            error: self,
        }
    }
}

/// Re-materializes a cached canonical artifact as one component's
/// controller: clones the shape, renames canonical wires back to the
/// component's channel names, and attaches the instance name. Shared with
/// the batch driver (`crate::batch`), whose jobs resolve shapes through
/// the fleet-wide singleflight registry instead of this pipeline.
pub(crate) fn instantiate(
    shape: &SynthArtifact,
    keyed: &KeyedProgram,
    name: &str,
    program: &bmbe_core::ast::ChExpr,
    template: Option<Template>,
) -> ControllerArtifact {
    let mut controller = shape.controller.clone();
    controller.name = name.to_string();
    controller.rename_signals(|wire| keyed.rename_wire(wire));
    let mut mapped = shape.mapped.clone();
    mapped.rename_roots(|wire| keyed.rename_wire(wire));
    ControllerArtifact {
        name: name.to_string(),
        bm_states: shape.bm_states,
        controller,
        mapped,
        program: program.clone(),
        template,
    }
}

/// Runs one component through the per-shape chain under its own name and
/// program (the uncached path, and the error-reporting path of the cached
/// one).
fn synthesize_direct(
    name: &str,
    program: &bmbe_core::ast::ChExpr,
    options: &FlowOptions,
    library: &Library,
    threads: usize,
    fault: Option<&FaultPlan>,
) -> Result<SynthArtifact, ShapeError> {
    synthesize_shape_with_fault(
        name,
        program,
        options.minimize_mode,
        options.minimize_backend,
        options.map_objective,
        options.map_style,
        library,
        threads,
        fault,
    )
}

/// Canonical-program-text length below which a shape counts as small work:
/// cheap controllers finish in well under the cost of parking them on a
/// worker thread, so fanning them out loses time. The value sits between
/// the largest shape of the small benchmark designs and the long-pole
/// cluster controllers that actually profit from a worker (measured via
/// `perf_report`; see BENCH_flow.json).
const PAR_COST_CUTOFF: usize = 160;

/// Splits the flow's thread budget between the per-shape fan-out and the
/// parallelism *inside* each shape (per-function jobs and the partitioned
/// prime-generation worklist), returning `(workers, inner)` with
/// `workers * inner <= threads.max(1)` — the two levels compose instead of
/// double-subscribing the pool.
///
/// The outer width is set by the number of shapes above the small-work
/// cutoff, not by the total shape count: small shapes finish in noise, so
/// counting them would starve the long poles of inner workers. With fewer
/// than two long poles the outer loop stays serial and the whole budget
/// moves inside — which is where a single huge cluster controller spends
/// it best.
fn fanout_budget(threads: usize, costs: impl Iterator<Item = usize>) -> (usize, usize) {
    let threads = threads.max(1);
    let big = costs.filter(|&c| c >= PAR_COST_CUTOFF).count();
    if big < 2 {
        return (1, threads);
    }
    let workers = threads.min(big);
    (workers, (threads / workers).max(1))
}

/// Runs the control back-end on a compiled design with a private,
/// run-local controller cache.
///
/// # Errors
///
/// See [`FlowError`]; every stage re-verifies its output.
pub fn run_control_flow(
    design: &CompiledDesign,
    options: &FlowOptions,
    library: &Library,
) -> Result<FlowResult, FlowError> {
    run_control_flow_with(design, options, library, &ControllerCache::new())
}

/// Runs the control back-end on a compiled design, reusing (and growing)
/// the given controller cache. Sharing one cache across runs lets the
/// bench drivers synthesize each controller shape once across all four
/// benchmark designs and both sides of an unoptimized/optimized
/// comparison.
///
/// The per-component loop fans out across threads (see
/// [`FlowOptions::threads`]): unique cache misses are deduplicated first,
/// so only distinct shapes occupy workers. Component order, artifacts, and
/// the first failing component's error are identical to the serial
/// uncached path.
///
/// # Errors
///
/// See [`FlowError`]; every stage re-verifies its output.
pub fn run_control_flow_with(
    design: &CompiledDesign,
    options: &FlowOptions,
    library: &Library,
    cache: &ControllerCache,
) -> Result<FlowResult, FlowError> {
    let _flow_span = bmbe_obs::span!("flow.run", "flow");
    bmbe_obs::annotate_str!("job.design", design.netlist.name());
    let mut ctrl = {
        let _s = bmbe_obs::span!("flow.translate", "flow");
        balsa_to_ch(&design.netlist)?
    };
    let components_before = ctrl.components.len();
    let cluster_report = if options.optimize {
        let _s = bmbe_obs::span!("flow.cluster", "flow");
        Some(ctrl.t2_clustering(&options.cluster))
    } else {
        None
    };
    let templates = if options.use_templates {
        template_table(&design.netlist)
    } else {
        Default::default()
    };
    let threads = options.threads.unwrap_or_else(bmbe_par::default_threads);

    let mut controllers = Vec::with_capacity(ctrl.components.len());
    let mut phases = PhaseProfile::default();
    let cache_hits;
    let cache_misses;
    if options.cache {
        // Key every component, probe the cache, and fan the unique misses
        // out across workers.
        let _key_span = bmbe_obs::span!("flow.key", "flow");
        let keyed: Vec<KeyedProgram> = ctrl
            .components
            .iter()
            .map(|comp| {
                KeyedProgram::new(
                    &comp.program,
                    options.minimize_mode,
                    options.minimize_backend,
                    options.map_objective,
                    options.map_style,
                )
            })
            .collect();
        drop(_key_span);
        let mut shapes: HashMap<&crate::cache::CacheKey, Option<Arc<SynthArtifact>>> =
            HashMap::new();
        let mut pending: Vec<&KeyedProgram> = Vec::new();
        for k in &keyed {
            shapes.entry(&k.key).or_insert_with(|| {
                let found = cache.peek(&k.key);
                if found.is_none() {
                    pending.push(k);
                }
                found
            });
        }
        cache_misses = pending.len();
        cache_hits = ctrl.components.len() - cache_misses;
        cache.record(cache_hits, cache_misses);
        // Longest job first, so the long-pole shape never starts last;
        // results are matched back through `shapes` by key, so dispatch
        // order is free to differ from component order.
        pending.sort_by_key(|k| std::cmp::Reverse(k.key.canonical.len()));
        let (workers, inner) =
            fanout_budget(threads, pending.iter().map(|k| k.key.canonical.len()));
        // The fan-out queue depth: set to the number of unique misses, then
        // decremented by each worker as its shape finishes — the Chrome
        // counter lane shows the queue draining.
        bmbe_obs::trace_gauge!("flow.pending_shapes", pending.len() as i64);
        let fanout_span = bmbe_obs::span!("flow.synth", "flow");
        let fanout_parent = fanout_span.id();
        let synthesized: Vec<Result<SynthArtifact, ShapeError>> = if workers == 1 {
            // Inline path: with fewer than two long-pole shapes (e.g. a
            // 2-shape design with no dedup, like the clustered Stack) the
            // fan-out machinery is pure overhead — run the misses on the
            // calling thread, keeping the same job indexing (for fault
            // targeting) and the same per-shape panic isolation.
            pending
                .iter()
                .enumerate()
                .map(|(i, k)| {
                    let _g = bmbe_obs::span_with_parent!("shape.job", "flow", fanout_parent);
                    let fault = options.fault.as_ref().filter(|f| f.targets_job(i));
                    let result = bmbe_par::catch_job(|| {
                        synthesize_direct("shape", &k.canonical, options, library, inner, fault)
                    })
                    .unwrap_or_else(|payload| Err(ShapeError::Panic(payload)));
                    bmbe_obs::trace_gauge!("flow.pending_shapes", add: -1);
                    result
                })
                .collect()
        } else {
            par_try_map(
                &pending,
                workers,
                |i, k| format!("shape job {i} (cache key {:016x})", k.key.digest()),
                |i, k| {
                    let _g = bmbe_obs::span_with_parent!("shape.job", "flow", fanout_parent);
                    let fault = options.fault.as_ref().filter(|f| f.targets_job(i));
                    let result =
                        synthesize_direct("shape", &k.canonical, options, library, inner, fault);
                    bmbe_obs::trace_gauge!("flow.pending_shapes", add: -1);
                    result
                },
            )
            .into_iter()
            // A panicked worker folds into the same per-shape error channel
            // as a typed failure; its siblings have already completed.
            .map(|slot| slot.unwrap_or_else(|job| Err(ShapeError::Panic(job.payload))))
            .collect()
        };
        drop(fanout_span);
        let mut failed: HashMap<&crate::cache::CacheKey, ShapeError> = HashMap::new();
        for (k, result) in pending.iter().zip(synthesized) {
            match result {
                Ok(artifact) => {
                    phases.accumulate(&artifact.profile);
                    let artifact = Arc::new(artifact);
                    cache.store(k.key.clone(), artifact.clone());
                    shapes.insert(&k.key, Some(artifact));
                }
                Err(e) => {
                    bmbe_obs::trace_counter!("flow.jobs.failed", 1);
                    failed.insert(&k.key, e);
                }
            }
        }
        // Assemble in component order; the first component whose shape
        // failed reports the error the serial path would have raised (the
        // shape is re-run under the component's own names so the error
        // text matches exactly). Panics and injected faults are reported
        // as-is — re-running those jobs would just fail (or, for an
        // index-targeted injection, spuriously succeed) again.
        for (comp, k) in ctrl.components.iter().zip(&keyed) {
            let artifact = match shapes.get(&k.key) {
                Some(Some(artifact)) => {
                    let template = templates.get(&comp.name).copied();
                    instantiate(artifact, k, &comp.name, &comp.program, template)
                }
                _ => {
                    debug_assert!(failed.contains_key(&k.key));
                    if let Some(e @ (ShapeError::Panic(_) | ShapeError::Injected(_))) =
                        failed.remove(&k.key)
                    {
                        return Err(e.into_flow(design.netlist.name(), &comp.name, &k.key));
                    }
                    bmbe_obs::trace_counter!("flow.jobs.retried", 1);
                    let retried = bmbe_par::catch_job(|| {
                        synthesize_direct(&comp.name, &comp.program, options, library, threads, None)
                    })
                    .unwrap_or_else(|payload| Err(ShapeError::Panic(payload)));
                    match retried {
                        Err(e) => {
                            return Err(e.into_flow(design.netlist.name(), &comp.name, &k.key))
                        }
                        // Name-dependent divergence (canonical failed,
                        // direct succeeded) — use the direct artifact and
                        // leave the shape uncached.
                        Ok(shape) => {
                            phases.accumulate(&shape.profile);
                            let template = templates.get(&comp.name).copied();
                            ControllerArtifact {
                                name: comp.name.clone(),
                                bm_states: shape.bm_states,
                                controller: shape.controller,
                                mapped: shape.mapped,
                                program: comp.program.clone(),
                                template,
                            }
                        }
                    }
                }
            };
            controllers.push(artifact);
        }
    } else {
        cache_hits = 0;
        cache_misses = ctrl.components.len();
        let costs: Vec<usize> = ctrl
            .components
            .iter()
            .map(|comp| bmbe_core::parse::print_ch(&comp.program).len())
            .collect();
        let (workers, inner) = fanout_budget(threads, costs.into_iter());
        bmbe_obs::trace_gauge!("flow.pending_shapes", ctrl.components.len() as i64);
        let fanout_span = bmbe_obs::span!("flow.synth", "flow");
        let fanout_parent = fanout_span.id();
        let synthesized = par_try_map(
            &ctrl.components,
            workers,
            |i, comp| format!("component job {i} ({})", comp.name),
            |i, comp| {
                let _g = bmbe_obs::span_with_parent!("shape.job", "flow", fanout_parent);
                let fault = options.fault.as_ref().filter(|f| f.targets_job(i));
                let result =
                    synthesize_direct(&comp.name, &comp.program, options, library, inner, fault);
                bmbe_obs::trace_gauge!("flow.pending_shapes", add: -1);
                result
            },
        );
        drop(fanout_span);
        for (comp, slot) in ctrl.components.iter().zip(synthesized) {
            let result = slot.unwrap_or_else(|job| Err(ShapeError::Panic(job.payload)));
            let shape = result.map_err(|e| {
                bmbe_obs::trace_counter!("flow.jobs.failed", 1);
                let key = KeyedProgram::new(
                    &comp.program,
                    options.minimize_mode,
                    options.minimize_backend,
                    options.map_objective,
                    options.map_style,
                )
                .key;
                e.into_flow(design.netlist.name(), &comp.name, &key)
            })?;
            phases.accumulate(&shape.profile);
            let template = templates.get(&comp.name).copied();
            controllers.push(ControllerArtifact {
                name: comp.name.clone(),
                bm_states: shape.bm_states,
                controller: shape.controller,
                mapped: shape.mapped,
                program: comp.program.clone(),
                template,
            });
        }
    }
    // One source of truth for area accounting: the artifact's own figure
    // (template annotation when present, mapped area otherwise).
    let control_area = controllers.iter().map(ControllerArtifact::area).sum();
    Ok(FlowResult {
        design: design.netlist.name().to_string(),
        components_before,
        controllers,
        cluster_report,
        control_area,
        cache_hits,
        cache_misses,
        threads_used: threads,
        phases,
    })
}

#[cfg(test)]
mod budget_tests {
    use super::{fanout_budget, PAR_COST_CUTOFF};

    const BIG: usize = PAR_COST_CUTOFF;
    const SMALL: usize = PAR_COST_CUTOFF - 1;

    #[test]
    fn composed_levels_never_oversubscribe() {
        for threads in 0..=9 {
            for big in 0..=6 {
                for small in 0..=6 {
                    let costs = std::iter::repeat(BIG)
                        .take(big)
                        .chain(std::iter::repeat(SMALL).take(small));
                    let (workers, inner) = fanout_budget(threads, costs);
                    assert!(workers >= 1 && inner >= 1);
                    assert!(
                        workers * inner <= threads.max(1),
                        "threads={threads} big={big} small={small}: \
                         workers={workers} inner={inner}"
                    );
                }
            }
        }
    }

    #[test]
    fn single_long_pole_gets_the_whole_budget_inside() {
        // One big shape among many small ones: the outer loop stays serial
        // and every worker moves inside the long pole — small shapes must
        // not be counted as fan-out jobs (the regression this pins).
        let costs = || std::iter::once(BIG).chain(std::iter::repeat(SMALL).take(20));
        assert_eq!(fanout_budget(8, costs()), (1, 8));
        assert_eq!(fanout_budget(1, costs()), (1, 1));
    }

    #[test]
    fn two_shape_design_without_dedup_stays_inline() {
        // The clustered Stack benchmark: one tiny loop controller and one
        // 500+-char cluster controller, no dedup between them. Exactly one
        // shape clears the cutoff, so the outer loop must stay inline
        // (workers == 1) at every thread count — fanning two jobs out for
        // one long pole and one trivial shape only buys scheduling
        // overhead (the BENCH_flow.json Stack regression this pins).
        let stack_like = || [62usize, 537].into_iter();
        for threads in [1, 2, 4, 8] {
            let (workers, inner) = fanout_budget(threads, stack_like());
            assert_eq!(workers, 1, "threads={threads}");
            assert_eq!(inner, threads);
        }
    }

    #[test]
    fn long_poles_split_the_budget_with_the_remainder_inside() {
        // Two long poles, eight workers: fan the poles out and give each
        // four inner workers, rather than eight outer workers with small
        // shapes diluting the inner budget to one.
        let costs = || {
            std::iter::repeat(BIG)
                .take(2)
                .chain(std::iter::repeat(SMALL).take(10))
        };
        assert_eq!(fanout_budget(8, costs()), (2, 4));
        // More poles than workers: outer width caps at the thread budget.
        let many = || std::iter::repeat(BIG).take(12);
        assert_eq!(fanout_budget(4, many()), (4, 1));
    }
}
