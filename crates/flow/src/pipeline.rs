//! The back-end pipeline of Fig. 1: partition → Balsa-to-CH → clustering →
//! CH-to-BMS → Minimalist synthesis → technology mapping → hazard analysis.

use crate::cache::{synthesize_shape, ControllerCache, KeyedProgram, ShapeError, SynthArtifact};
use crate::profile::PhaseProfile;
use crate::templates::{template_table, Template};
use bmbe_balsa::CompiledDesign;
use bmbe_bm::synth::{Controller, MinimizeMode, SynthError};
use bmbe_core::balsa_to_ch::{balsa_to_ch, TranslateError};
use bmbe_core::compile::CompileError;
use bmbe_core::opt::cluster::{ClusterOptions, ClusterReport};
use bmbe_gates::{Library, MapObjective, MapStyle, MappedNetlist};
use bmbe_par::par_map;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Flow configuration.
#[derive(Debug, Clone)]
pub struct FlowOptions {
    /// Run the clustering optimizations (`T1`+`T2`).
    pub optimize: bool,
    /// Minimization mode (Minimalist's speed/area split).
    pub minimize_mode: MinimizeMode,
    /// Technology-mapping objective.
    pub map_objective: MapObjective,
    /// Mapping style (the paper's split-module flow vs whole-controller).
    pub map_style: MapStyle,
    /// Clustering options.
    pub cluster: ClusterOptions,
    /// Annotate unclustered components with hand-optimized template
    /// area/latency (stock Balsa's baseline, §6) instead of the figures of
    /// their individually synthesized controllers.
    pub use_templates: bool,
    /// Memoize synthesis through the content-addressed controller cache so
    /// structurally identical components are synthesized once. Off = the
    /// original per-instance path (each component compiled from its own
    /// program); the two paths produce identical product counts, areas, and
    /// delays.
    pub cache: bool,
    /// Worker threads for the per-component synthesis fan-out. `None` uses
    /// [`bmbe_par::default_threads`] (the `BMBE_THREADS` environment
    /// variable, or every available core); `Some(1)` forces the serial
    /// path. Results are identical (same order, same artifacts, same first
    /// error) regardless of the thread count.
    pub threads: Option<usize>,
}

impl FlowOptions {
    /// The paper's optimized flow: clustering + speed scripts + split-module
    /// delay-oriented mapping.
    pub fn optimized() -> Self {
        FlowOptions {
            optimize: true,
            minimize_mode: MinimizeMode::Speed,
            map_objective: MapObjective::Delay,
            map_style: MapStyle::SplitModules,
            cluster: ClusterOptions::default(),
            use_templates: false,
            cache: true,
            threads: None,
        }
    }

    /// The unoptimized baseline: stock Balsa — one hand-optimized template
    /// component per handshake component, no clustering.
    pub fn unoptimized() -> Self {
        FlowOptions {
            optimize: false,
            use_templates: true,
            ..Self::optimized()
        }
    }

    /// The seed's serial, uncached behaviour: per-instance synthesis on one
    /// thread. The reference against which the cached/parallel path is
    /// checked bit-identical.
    pub fn serial_uncached(mut self) -> Self {
        self.cache = false;
        self.threads = Some(1);
        self
    }
}

/// Errors raised by the flow.
#[derive(Debug)]
pub enum FlowError {
    /// Balsa-to-CH translation failed.
    Translate(TranslateError),
    /// CH-to-BMS compilation failed for a component.
    Compile {
        /// The component.
        component: String,
        /// The underlying error.
        error: CompileError,
    },
    /// Controller synthesis failed.
    Synth {
        /// The component.
        component: String,
        /// The underlying error.
        error: SynthError,
    },
    /// The synthesized controller failed ternary hazard verification.
    Hazard {
        /// The component.
        component: String,
        /// Description.
        detail: String,
    },
    /// The mapped controller failed post-mapping verification.
    MappedHazard {
        /// The component.
        component: String,
        /// Description.
        detail: String,
    },
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Translate(e) => write!(f, "translate: {e}"),
            FlowError::Compile { component, error } => write!(f, "{component}: {error}"),
            FlowError::Synth { component, error } => write!(f, "{component}: {error}"),
            FlowError::Hazard { component, detail } => write!(f, "{component}: hazard: {detail}"),
            FlowError::MappedHazard { component, detail } => {
                write!(f, "{component}: mapped hazard: {detail}")
            }
        }
    }
}

impl std::error::Error for FlowError {}

impl From<TranslateError> for FlowError {
    fn from(e: TranslateError) -> Self {
        FlowError::Translate(e)
    }
}

/// One synthesized and mapped controller.
pub struct ControllerArtifact {
    /// Component (or cluster) name.
    pub name: String,
    /// Number of BM specification states.
    pub bm_states: usize,
    /// The synthesized two-level controller.
    pub controller: Controller,
    /// The technology-mapped netlist.
    pub mapped: MappedNetlist,
    /// The CH program it came from.
    pub program: bmbe_core::ast::ChExpr,
    /// Hand-optimized template annotation, when this artifact stands for a
    /// stock Balsa component (the unoptimized baseline).
    pub template: Option<Template>,
}

impl ControllerArtifact {
    /// Cell area of the controller (µm²).
    pub fn area(&self) -> f64 {
        self.template.map_or(self.mapped.area, |t| t.area)
    }

    /// Worst input-to-output delay (ns).
    pub fn critical_delay(&self) -> f64 {
        self.template
            .map_or_else(|| self.mapped.critical_delay(), |t| t.delay_ns)
    }
}

/// The result of running the control flow.
pub struct FlowResult {
    /// Design name.
    pub design: String,
    /// Control components before clustering.
    pub components_before: usize,
    /// Controllers after clustering (equal when unoptimized).
    pub controllers: Vec<ControllerArtifact>,
    /// The clustering report (when optimization ran).
    pub cluster_report: Option<ClusterReport>,
    /// Total control cell area (µm²).
    pub control_area: f64,
    /// Components whose controller came out of the content-addressed cache
    /// (an earlier run sharing the cache, or a structurally identical
    /// component of this run). Zero when the cache is disabled.
    pub cache_hits: usize,
    /// Unique controller shapes synthesized by this run (every component
    /// when the cache is disabled).
    pub cache_misses: usize,
    /// Worker threads the fan-out actually used (the resolved value of
    /// [`FlowOptions::threads`]).
    pub threads_used: usize,
    /// Aggregate per-phase wall-clock profile of the shapes this run
    /// synthesized (cache hits contribute nothing).
    pub phases: PhaseProfile,
}

impl FlowResult {
    /// Total number of two-level products across controllers.
    pub fn total_products(&self) -> usize {
        self.controllers
            .iter()
            .map(|c| c.controller.num_products())
            .sum()
    }
}

impl ShapeError {
    /// Attaches the component name, producing the flow-level error the
    /// serial path would have reported.
    fn into_flow(self, component: String) -> FlowError {
        match self {
            ShapeError::Compile(error) => FlowError::Compile { component, error },
            ShapeError::Synth(error) => FlowError::Synth { component, error },
            ShapeError::Hazard(detail) => FlowError::Hazard { component, detail },
            ShapeError::MappedHazard(detail) => FlowError::MappedHazard { component, detail },
        }
    }
}

/// Re-materializes a cached canonical artifact as one component's
/// controller: clones the shape, renames canonical wires back to the
/// component's channel names, and attaches the instance name.
fn instantiate(
    shape: &SynthArtifact,
    keyed: &KeyedProgram,
    name: &str,
    program: &bmbe_core::ast::ChExpr,
    template: Option<Template>,
) -> ControllerArtifact {
    let mut controller = shape.controller.clone();
    controller.name = name.to_string();
    controller.rename_signals(|wire| keyed.rename_wire(wire));
    let mut mapped = shape.mapped.clone();
    mapped.rename_roots(|wire| keyed.rename_wire(wire));
    ControllerArtifact {
        name: name.to_string(),
        bm_states: shape.bm_states,
        controller,
        mapped,
        program: program.clone(),
        template,
    }
}

/// Runs one component through the per-shape chain under its own name and
/// program (the uncached path, and the error-reporting path of the cached
/// one).
fn synthesize_direct(
    name: &str,
    program: &bmbe_core::ast::ChExpr,
    options: &FlowOptions,
    library: &Library,
    threads: usize,
) -> Result<SynthArtifact, ShapeError> {
    synthesize_shape(
        name,
        program,
        options.minimize_mode,
        options.map_objective,
        options.map_style,
        library,
        threads,
    )
}

/// Splits a thread budget between the outer per-shape fan-out and the
/// per-function minimizations inside each shape: with fewer jobs than
/// workers the spare workers move inside the shapes, so a single long-pole
/// controller still gets the full budget.
fn inner_threads(threads: usize, jobs: usize) -> usize {
    (threads / threads.min(jobs).max(1)).max(1)
}

/// Canonical-program-text length below which a shape counts as small work:
/// cheap controllers finish in well under the cost of parking them on a
/// worker thread, so fanning them out loses time. The value sits between
/// the largest shape of the small benchmark designs and the long-pole
/// cluster controllers that actually profit from a worker (measured via
/// `perf_report`; see BENCH_flow.json).
const PAR_COST_CUTOFF: usize = 160;

/// Whether a per-shape fan-out is worth spawning workers for: only when at
/// least two shapes are above the small-work cutoff. Otherwise the outer
/// loop stays serial and the whole thread budget moves *inside* the shapes
/// (see [`inner_threads`]), which is where a single long pole spends it
/// best.
fn worth_fanning_out(costs: impl Iterator<Item = usize>) -> bool {
    costs.filter(|&c| c >= PAR_COST_CUTOFF).count() >= 2
}

/// Runs the control back-end on a compiled design with a private,
/// run-local controller cache.
///
/// # Errors
///
/// See [`FlowError`]; every stage re-verifies its output.
pub fn run_control_flow(
    design: &CompiledDesign,
    options: &FlowOptions,
    library: &Library,
) -> Result<FlowResult, FlowError> {
    run_control_flow_with(design, options, library, &ControllerCache::new())
}

/// Runs the control back-end on a compiled design, reusing (and growing)
/// the given controller cache. Sharing one cache across runs lets the
/// bench drivers synthesize each controller shape once across all four
/// benchmark designs and both sides of an unoptimized/optimized
/// comparison.
///
/// The per-component loop fans out across threads (see
/// [`FlowOptions::threads`]): unique cache misses are deduplicated first,
/// so only distinct shapes occupy workers. Component order, artifacts, and
/// the first failing component's error are identical to the serial
/// uncached path.
///
/// # Errors
///
/// See [`FlowError`]; every stage re-verifies its output.
pub fn run_control_flow_with(
    design: &CompiledDesign,
    options: &FlowOptions,
    library: &Library,
    cache: &ControllerCache,
) -> Result<FlowResult, FlowError> {
    let _flow_span = bmbe_obs::span!("flow.run", "flow");
    let mut ctrl = {
        let _s = bmbe_obs::span!("flow.translate", "flow");
        balsa_to_ch(&design.netlist)?
    };
    let components_before = ctrl.components.len();
    let cluster_report = if options.optimize {
        let _s = bmbe_obs::span!("flow.cluster", "flow");
        Some(ctrl.t2_clustering(&options.cluster))
    } else {
        None
    };
    let templates = if options.use_templates {
        template_table(&design.netlist)
    } else {
        Default::default()
    };
    let threads = options.threads.unwrap_or_else(bmbe_par::default_threads);

    let mut controllers = Vec::with_capacity(ctrl.components.len());
    let mut phases = PhaseProfile::default();
    let cache_hits;
    let cache_misses;
    if options.cache {
        // Key every component, probe the cache, and fan the unique misses
        // out across workers.
        let _key_span = bmbe_obs::span!("flow.key", "flow");
        let keyed: Vec<KeyedProgram> = ctrl
            .components
            .iter()
            .map(|comp| {
                KeyedProgram::new(
                    &comp.program,
                    options.minimize_mode,
                    options.map_objective,
                    options.map_style,
                )
            })
            .collect();
        drop(_key_span);
        let mut shapes: HashMap<&crate::cache::CacheKey, Option<Arc<SynthArtifact>>> =
            HashMap::new();
        let mut pending: Vec<&KeyedProgram> = Vec::new();
        for k in &keyed {
            shapes.entry(&k.key).or_insert_with(|| {
                let found = cache.peek(&k.key);
                if found.is_none() {
                    pending.push(k);
                }
                found
            });
        }
        cache_misses = pending.len();
        cache_hits = ctrl.components.len() - cache_misses;
        cache.record(cache_hits, cache_misses);
        // Longest job first, so the long-pole shape never starts last;
        // results are matched back through `shapes` by key, so dispatch
        // order is free to differ from component order.
        pending.sort_by_key(|k| std::cmp::Reverse(k.key.canonical.len()));
        let workers = if worth_fanning_out(pending.iter().map(|k| k.key.canonical.len())) {
            threads
        } else {
            1
        };
        let inner = inner_threads(threads, if workers == 1 { 1 } else { pending.len() });
        // The fan-out queue depth: set to the number of unique misses, then
        // decremented by each worker as its shape finishes — the Chrome
        // counter lane shows the queue draining.
        bmbe_obs::trace_gauge!("flow.pending_shapes", pending.len() as i64);
        let fanout_span = bmbe_obs::span!("flow.synth", "flow");
        let fanout_parent = fanout_span.id();
        let synthesized: Vec<Result<SynthArtifact, ShapeError>> =
            par_map(&pending, workers, |_, k| {
                let _g = bmbe_obs::span_with_parent!("shape.job", "flow", fanout_parent);
                let result = synthesize_direct("shape", &k.canonical, options, library, inner);
                bmbe_obs::trace_gauge!("flow.pending_shapes", add: -1);
                result
            });
        drop(fanout_span);
        let mut failed: HashMap<&crate::cache::CacheKey, ShapeError> = HashMap::new();
        for (k, result) in pending.iter().zip(synthesized) {
            match result {
                Ok(artifact) => {
                    phases.accumulate(&artifact.profile);
                    let artifact = Arc::new(artifact);
                    cache.store(k.key.clone(), artifact.clone());
                    shapes.insert(&k.key, Some(artifact));
                }
                Err(e) => {
                    failed.insert(&k.key, e);
                }
            }
        }
        // Assemble in component order; the first component whose shape
        // failed reports the error the serial path would have raised (the
        // shape is re-run under the component's own names so the error
        // text matches exactly).
        for (comp, k) in ctrl.components.iter().zip(&keyed) {
            let artifact = match shapes.get(&k.key) {
                Some(Some(artifact)) => {
                    let template = templates.get(&comp.name).copied();
                    instantiate(artifact, k, &comp.name, &comp.program, template)
                }
                _ => {
                    debug_assert!(failed.contains_key(&k.key));
                    match synthesize_direct(&comp.name, &comp.program, options, library, threads) {
                        Err(e) => return Err(e.into_flow(comp.name.clone())),
                        // Name-dependent divergence (canonical failed,
                        // direct succeeded) — use the direct artifact and
                        // leave the shape uncached.
                        Ok(shape) => {
                            phases.accumulate(&shape.profile);
                            let template = templates.get(&comp.name).copied();
                            ControllerArtifact {
                                name: comp.name.clone(),
                                bm_states: shape.bm_states,
                                controller: shape.controller,
                                mapped: shape.mapped,
                                program: comp.program.clone(),
                                template,
                            }
                        }
                    }
                }
            };
            controllers.push(artifact);
        }
    } else {
        cache_hits = 0;
        cache_misses = ctrl.components.len();
        let costs: Vec<usize> = ctrl
            .components
            .iter()
            .map(|comp| bmbe_core::parse::print_ch(&comp.program).len())
            .collect();
        let workers = if worth_fanning_out(costs.into_iter()) {
            threads
        } else {
            1
        };
        let inner = inner_threads(
            threads,
            if workers == 1 {
                1
            } else {
                ctrl.components.len()
            },
        );
        bmbe_obs::trace_gauge!("flow.pending_shapes", ctrl.components.len() as i64);
        let fanout_span = bmbe_obs::span!("flow.synth", "flow");
        let fanout_parent = fanout_span.id();
        let synthesized: Vec<Result<SynthArtifact, ShapeError>> =
            par_map(&ctrl.components, workers, |_, comp| {
                let _g = bmbe_obs::span_with_parent!("shape.job", "flow", fanout_parent);
                let result = synthesize_direct(&comp.name, &comp.program, options, library, inner);
                bmbe_obs::trace_gauge!("flow.pending_shapes", add: -1);
                result
            });
        drop(fanout_span);
        for (comp, result) in ctrl.components.iter().zip(synthesized) {
            let shape = result.map_err(|e| e.into_flow(comp.name.clone()))?;
            phases.accumulate(&shape.profile);
            let template = templates.get(&comp.name).copied();
            controllers.push(ControllerArtifact {
                name: comp.name.clone(),
                bm_states: shape.bm_states,
                controller: shape.controller,
                mapped: shape.mapped,
                program: comp.program.clone(),
                template,
            });
        }
    }
    // One source of truth for area accounting: the artifact's own figure
    // (template annotation when present, mapped area otherwise).
    let control_area = controllers.iter().map(ControllerArtifact::area).sum();
    Ok(FlowResult {
        design: design.netlist.name().to_string(),
        components_before,
        controllers,
        cluster_report,
        control_area,
        cache_hits,
        cache_misses,
        threads_used: threads,
        phases,
    })
}
