//! The back-end pipeline of Fig. 1: partition → Balsa-to-CH → clustering →
//! CH-to-BMS → Minimalist synthesis → technology mapping → hazard analysis.

use crate::templates::{template_table, Template};
use bmbe_balsa::CompiledDesign;
use bmbe_bm::statemin::minimize_states;
use bmbe_bm::synth::{synthesize, Controller, MinimizeMode, SynthError};
use bmbe_core::balsa_to_ch::{balsa_to_ch, TranslateError};
use bmbe_core::compile::{compile_to_bm, CompileError};
use bmbe_core::opt::cluster::{ClusterOptions, ClusterReport};
use bmbe_gates::{
    map as techmap, Library, MapObjective, MapStyle, MappedNetlist, SubjectGraph,
};
use bmbe_logic::Cover;
use std::fmt;

/// Flow configuration.
#[derive(Debug, Clone)]
pub struct FlowOptions {
    /// Run the clustering optimizations (`T1`+`T2`).
    pub optimize: bool,
    /// Minimization mode (Minimalist's speed/area split).
    pub minimize_mode: MinimizeMode,
    /// Technology-mapping objective.
    pub map_objective: MapObjective,
    /// Mapping style (the paper's split-module flow vs whole-controller).
    pub map_style: MapStyle,
    /// Clustering options.
    pub cluster: ClusterOptions,
    /// Annotate unclustered components with hand-optimized template
    /// area/latency (stock Balsa's baseline, §6) instead of the figures of
    /// their individually synthesized controllers.
    pub use_templates: bool,
}

impl FlowOptions {
    /// The paper's optimized flow: clustering + speed scripts + split-module
    /// delay-oriented mapping.
    pub fn optimized() -> Self {
        FlowOptions {
            optimize: true,
            minimize_mode: MinimizeMode::Speed,
            map_objective: MapObjective::Delay,
            map_style: MapStyle::SplitModules,
            cluster: ClusterOptions::default(),
            use_templates: false,
        }
    }

    /// The unoptimized baseline: stock Balsa — one hand-optimized template
    /// component per handshake component, no clustering.
    pub fn unoptimized() -> Self {
        FlowOptions { optimize: false, use_templates: true, ..Self::optimized() }
    }
}

/// Errors raised by the flow.
#[derive(Debug)]
pub enum FlowError {
    /// Balsa-to-CH translation failed.
    Translate(TranslateError),
    /// CH-to-BMS compilation failed for a component.
    Compile {
        /// The component.
        component: String,
        /// The underlying error.
        error: CompileError,
    },
    /// Controller synthesis failed.
    Synth {
        /// The component.
        component: String,
        /// The underlying error.
        error: SynthError,
    },
    /// The synthesized controller failed ternary hazard verification.
    Hazard {
        /// The component.
        component: String,
        /// Description.
        detail: String,
    },
    /// The mapped controller failed post-mapping verification.
    MappedHazard {
        /// The component.
        component: String,
        /// Description.
        detail: String,
    },
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Translate(e) => write!(f, "translate: {e}"),
            FlowError::Compile { component, error } => write!(f, "{component}: {error}"),
            FlowError::Synth { component, error } => write!(f, "{component}: {error}"),
            FlowError::Hazard { component, detail } => write!(f, "{component}: hazard: {detail}"),
            FlowError::MappedHazard { component, detail } => {
                write!(f, "{component}: mapped hazard: {detail}")
            }
        }
    }
}

impl std::error::Error for FlowError {}

impl From<TranslateError> for FlowError {
    fn from(e: TranslateError) -> Self {
        FlowError::Translate(e)
    }
}

/// One synthesized and mapped controller.
pub struct ControllerArtifact {
    /// Component (or cluster) name.
    pub name: String,
    /// Number of BM specification states.
    pub bm_states: usize,
    /// The synthesized two-level controller.
    pub controller: Controller,
    /// The technology-mapped netlist.
    pub mapped: MappedNetlist,
    /// The CH program it came from.
    pub program: bmbe_core::ast::ChExpr,
    /// Hand-optimized template annotation, when this artifact stands for a
    /// stock Balsa component (the unoptimized baseline).
    pub template: Option<Template>,
}

impl ControllerArtifact {
    /// Cell area of the controller (µm²).
    pub fn area(&self) -> f64 {
        self.template.map_or(self.mapped.area, |t| t.area)
    }

    /// Worst input-to-output delay (ns).
    pub fn critical_delay(&self) -> f64 {
        self.template.map_or_else(|| self.mapped.critical_delay(), |t| t.delay_ns)
    }
}

/// The result of running the control flow.
pub struct FlowResult {
    /// Design name.
    pub design: String,
    /// Control components before clustering.
    pub components_before: usize,
    /// Controllers after clustering (equal when unoptimized).
    pub controllers: Vec<ControllerArtifact>,
    /// The clustering report (when optimization ran).
    pub cluster_report: Option<ClusterReport>,
    /// Total control cell area (µm²).
    pub control_area: f64,
}

impl FlowResult {
    /// Total number of two-level products across controllers.
    pub fn total_products(&self) -> usize {
        self.controllers.iter().map(|c| c.controller.num_products()).sum()
    }
}

/// Runs the control back-end on a compiled design.
///
/// # Errors
///
/// See [`FlowError`]; every stage re-verifies its output.
pub fn run_control_flow(
    design: &CompiledDesign,
    options: &FlowOptions,
    library: &Library,
) -> Result<FlowResult, FlowError> {
    let mut ctrl = balsa_to_ch(&design.netlist)?;
    let components_before = ctrl.components.len();
    let cluster_report = if options.optimize {
        Some(ctrl.t2_clustering(&options.cluster))
    } else {
        None
    };
    let templates = if options.use_templates { template_table(&design.netlist) } else { Default::default() };
    let mut controllers = Vec::new();
    let mut control_area = 0.0;
    for comp in &ctrl.components {
        let spec = compile_to_bm(&comp.name, &comp.program).map_err(|error| {
            FlowError::Compile { component: comp.name.clone(), error }
        })?;
        // State minimization (Minimalist's reduction step) before assignment.
        let spec = minimize_states(&spec)
            .map(|r| r.spec)
            .map_err(|error| FlowError::Compile {
                component: comp.name.clone(),
                error: bmbe_core::CompileError::Bm(error),
            })?;
        let controller = synthesize(&spec, options.minimize_mode)
            .map_err(|error| FlowError::Synth { component: comp.name.clone(), error })?;
        controller.verify_ternary().map_err(|detail| FlowError::Hazard {
            component: comp.name.clone(),
            detail,
        })?;
        let functions: Vec<(String, &Cover)> = controller
            .outputs
            .iter()
            .cloned()
            .chain((0..controller.num_state_bits).map(|j| format!("y{j}")))
            .zip(controller.output_covers.iter().chain(controller.next_state_covers.iter()))
            .collect();
        let subject = match options.minimize_mode {
            MinimizeMode::Speed => SubjectGraph::from_covers(controller.num_vars(), &functions),
            MinimizeMode::Area => {
                SubjectGraph::from_covers_shared(controller.num_vars(), &functions)
            }
        };
        let mapped = techmap(&subject, library, options.map_objective, options.map_style);
        let violations = bmbe_gates::verify_mapped(&controller, &mapped);
        if let Some(v) = violations.first() {
            return Err(FlowError::MappedHazard {
                component: comp.name.clone(),
                detail: v.to_string(),
            });
        }
        let template = templates.get(&comp.name).copied();
        control_area += template.map_or(mapped.area, |t| t.area);
        controllers.push(ControllerArtifact {
            name: comp.name.clone(),
            bm_states: spec.num_states(),
            controller,
            mapped,
            program: comp.program.clone(),
            template,
        });
    }
    Ok(FlowResult {
        design: design.netlist.name().to_string(),
        components_before,
        controllers,
        cluster_report,
        control_area,
    })
}
