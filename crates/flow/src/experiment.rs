//! Side-by-side unoptimized/optimized runs (the Table 3 harness).

use crate::area::datapath_area;
use crate::cache::ControllerCache;
use crate::pipeline::{run_control_flow_with, FlowError, FlowOptions, FlowResult};
use crate::simbuild::{simulate, Scenario, SimBuildError, SimOutcome};
use bmbe_balsa::CompiledDesign;
use bmbe_gates::Library;
use bmbe_sim::prims::Delays;
use std::fmt;

/// One design measured both ways.
pub struct Comparison {
    /// Design name.
    pub design: String,
    /// Unoptimized flow artifacts.
    pub unopt: FlowResult,
    /// Optimized flow artifacts.
    pub opt: FlowResult,
    /// Unoptimized benchmark run.
    pub unopt_run: SimOutcome,
    /// Optimized benchmark run.
    pub opt_run: SimOutcome,
    /// Shared datapath area (µm²).
    pub datapath_area: f64,
}

impl Comparison {
    /// Speed improvement (percent, positive = optimized faster).
    pub fn speed_improvement(&self) -> f64 {
        100.0 * (self.unopt_run.time_ns - self.opt_run.time_ns) / self.unopt_run.time_ns
    }

    /// Total area of the unoptimized circuit (µm²).
    pub fn unopt_area(&self) -> f64 {
        self.unopt.control_area + self.datapath_area
    }

    /// Total area of the optimized circuit (µm²).
    pub fn opt_area(&self) -> f64 {
        self.opt.control_area + self.datapath_area
    }

    /// Area overhead (percent, positive = optimized bigger).
    pub fn area_overhead(&self) -> f64 {
        100.0 * (self.opt_area() - self.unopt_area()) / self.unopt_area()
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: speed {:.2} ns -> {:.2} ns ({:+.2}%), area {:.0} -> {:.0} um^2 ({:+.2}%)",
            self.design,
            self.unopt_run.time_ns,
            self.opt_run.time_ns,
            self.speed_improvement(),
            self.unopt_area(),
            self.opt_area(),
            self.area_overhead()
        )
    }
}

/// Errors from a comparison run.
#[derive(Debug)]
pub enum ExperimentError {
    /// The control flow failed.
    Flow(FlowError),
    /// Simulation construction failed.
    Sim(SimBuildError),
    /// A benchmark run did not complete.
    Incomplete {
        /// Which side failed.
        side: &'static str,
        /// Time reached (ns).
        at_ns: f64,
    },
    /// A benchmark simulation job panicked; the panic was caught and the
    /// sibling run completed.
    Panic {
        /// Which side panicked.
        side: &'static str,
        /// The stringified panic payload.
        payload: String,
    },
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::Flow(e) => write!(f, "flow: {e}"),
            ExperimentError::Sim(e) => write!(f, "sim: {e}"),
            ExperimentError::Incomplete { side, at_ns } => {
                write!(
                    f,
                    "{side} benchmark did not complete (cutoff at {at_ns} ns)"
                )
            }
            ExperimentError::Panic { side, payload } => {
                write!(f, "{side} benchmark simulation panicked: {payload}")
            }
        }
    }
}

impl std::error::Error for ExperimentError {}

impl From<FlowError> for ExperimentError {
    fn from(e: FlowError) -> Self {
        ExperimentError::Flow(e)
    }
}

impl From<SimBuildError> for ExperimentError {
    fn from(e: SimBuildError) -> Self {
        ExperimentError::Sim(e)
    }
}

/// Runs the unoptimized and optimized flows on a design and simulates the
/// benchmark scenario on both.
///
/// # Errors
///
/// See [`ExperimentError`].
pub fn compare(
    design: &CompiledDesign,
    scenario: &Scenario,
    library: &Library,
    delays: &Delays,
) -> Result<Comparison, ExperimentError> {
    compare_with(design, scenario, library, delays, &ControllerCache::new())
}

/// [`compare`] with a caller-supplied controller cache, so shapes shared
/// between the unoptimized and optimized flows — and, when the caller
/// reuses the cache, across designs — are synthesized once.
///
/// # Errors
///
/// See [`ExperimentError`].
pub fn compare_with(
    design: &CompiledDesign,
    scenario: &Scenario,
    library: &Library,
    delays: &Delays,
    cache: &ControllerCache,
) -> Result<Comparison, ExperimentError> {
    // `with_env_fault` makes both flows BMBE_FAULT-selectable, so the
    // bench binaries built on `compare_with` get fault injection for free.
    let unopt = run_control_flow_with(
        design,
        &FlowOptions::unoptimized().with_env_fault(),
        library,
        cache,
    )?;
    let opt = run_control_flow_with(
        design,
        &FlowOptions::optimized().with_env_fault(),
        library,
        cache,
    )?;
    // The two benchmark runs are independent; fan them across workers.
    // Outcomes are checked in unoptimized-then-optimized order, so the
    // reported error is the one the serial code would have raised. A
    // panicking simulation job is caught and reported as a typed error
    // without taking its sibling down.
    let flows = [("unoptimized", &unopt), ("optimized", &opt)];
    let mut runs = bmbe_par::par_try_map(
        &flows,
        flows.len(),
        |_, (side, _)| format!("{side} benchmark simulation"),
        |_, (_, flow)| simulate(design, flow, scenario, delays),
    )
    .into_iter()
    .zip(["unoptimized", "optimized"])
    .map(|(slot, side)| {
        slot.unwrap_or_else(|job| {
            Err(SimBuildError::Panic(job.payload))
        })
        .map_err(|e| match e {
            SimBuildError::Panic(payload) => ExperimentError::Panic { side, payload },
            other => ExperimentError::Sim(other),
        })
    });
    let unopt_run = runs.next().expect("one result per job")?;
    let opt_run = runs.next().expect("one result per job")?;
    if !unopt_run.completed {
        return Err(ExperimentError::Incomplete {
            side: "unoptimized",
            at_ns: unopt_run.time_ns,
        });
    }
    if !opt_run.completed {
        return Err(ExperimentError::Incomplete {
            side: "optimized",
            at_ns: opt_run.time_ns,
        });
    }
    Ok(Comparison {
        design: design.netlist.name().to_string(),
        datapath_area: datapath_area(&design.netlist),
        unopt,
        opt,
        unopt_run,
        opt_run,
    })
}
