#![warn(missing_docs)]
//! # bmbe-flow
//!
//! The complete Balsa back-end of Fig. 1: starting from mini-Balsa source,
//! compile to handshake components ([`bmbe_balsa`]), split control from
//! datapath, translate control to CH, cluster (`T1`/`T2`), compile to
//! Burst-Mode, synthesize hazard-free two-level logic, technology map,
//! verify hazard freedom, and simulate the resulting circuit against a
//! benchmark [`simbuild::Scenario`].
//!
//! [`experiment::compare`] runs the unoptimized and optimized flows on a
//! design and reports the paper's Table 3 quantities (speed, area,
//! improvement, overhead).

pub mod area;
pub mod batch;
pub mod cache;
pub mod csim;
pub mod experiment;
pub mod fault;
pub mod gauntlet;
pub mod pipeline;
pub mod profile;
pub mod simbuild;
pub mod table3;
pub mod templates;

pub use area::{component_area, datapath_area};
pub use batch::{
    flow_through_registry, run_batch, BatchJob, BatchSummary, JobFailure, JobReport, Resolution,
    ShapeRegistry, ShapeStats,
};
pub use gauntlet::{run_gauntlet, Finding, GauntletConfig, GauntletReport, OracleCounts};
pub use cache::{
    CacheKey, CacheStats, ControllerCache, DiskCache, DiskMiss, KeyedProgram, Provenance,
    ShapeError,
    SynthArtifact, CACHE_DIR_ENV,
};
pub use csim::{batch_input_ports, compile_sim, simulate_scenarios, CompiledSim};
pub use bmbe_sim::SimBackend;
pub use experiment::{compare, compare_with, Comparison};
pub use bmbe_logic::MinimizeBackend;
pub use fault::{FaultKind, FaultParseError, FaultPhase, FaultPlan};
pub use pipeline::{
    run_control_flow, run_control_flow_with, ControllerArtifact, FlowError, FlowOptions, FlowResult,
};
pub use profile::PhaseProfile;
pub use simbuild::{
    simulate, simulate_all, simulate_with, Done, Scenario, SimBuildError, SimJob, SimOutcome,
    SimStats,
};
pub use table3::{
    check_outcome, run_design, run_design_with, run_designs_with, to_flow_scenario, BenchError,
};
pub use templates::{template_of, template_table, Template};

#[cfg(test)]
mod tests;
