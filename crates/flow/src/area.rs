//! Datapath area model.
//!
//! The paper maps datapath components with the stock Balsa technology
//! mapper; both the optimized and unoptimized circuits share the identical
//! datapath, so the area *difference* in Table 3 comes from the control
//! side. Here datapath area is estimated per component kind from its
//! structural parameters with per-bit figures consistent with the synthetic
//! cell library.

use bmbe_hsnet::{BinOp, ComponentKind, Netlist, UnOp};

/// Estimated area (µm²) of one datapath component.
pub fn component_area(kind: &ComponentKind) -> f64 {
    match kind {
        ComponentKind::Variable { width, reads } => {
            // A latch per bit plus read buffering per port.
            60.0 + 95.0 * f64::from(*width) + 30.0 * f64::from(*width) * (*reads as f64)
        }
        ComponentKind::Constant { width, .. } => 20.0 + 2.0 * f64::from(*width),
        ComponentKind::BinaryFunc { op, width } => {
            let per_bit = match op {
                BinOp::Add | BinOp::Sub => 180.0,
                BinOp::Eq | BinOp::Lt | BinOp::SLt => 120.0,
                BinOp::And | BinOp::Or | BinOp::Xor => 45.0,
                BinOp::Shr => 15.0, // constant shifts are wiring; model a mux sliver
            };
            60.0 + per_bit * f64::from(*width)
        }
        ComponentKind::UnaryFunc { op, width } => match op {
            UnOp::Id => 0.0,
            UnOp::Not => 27.0 * f64::from(*width),
            UnOp::Neg => 160.0 * f64::from(*width),
            UnOp::IsNeg => 30.0,
            UnOp::IsZero => 40.0 + 10.0 * f64::from(*width),
        },
        ComponentKind::CallMux { inputs, width } => {
            60.0 + 40.0 * f64::from(*width) * (*inputs as f64 - 1.0).max(1.0)
        }
        ComponentKind::PullMux { clients, width } => {
            60.0 + 40.0 * f64::from(*width) * (*clients as f64 - 1.0).max(1.0)
        }
        ComponentKind::Memory {
            words,
            width,
            reads,
            writes,
        } => 500.0 + 12.0 * (*words as f64) * f64::from(*width) + 200.0 * (*reads + *writes) as f64,
        // Control components are costed by technology mapping instead.
        _ => 0.0,
    }
}

/// Total datapath area of a netlist (µm²).
pub fn datapath_area(netlist: &Netlist) -> f64 {
    netlist
        .components()
        .iter()
        .filter(|c| !c.kind.is_control())
        .map(|c| component_area(&c.kind))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wider_components_cost_more() {
        let narrow = component_area(&ComponentKind::Variable { width: 8, reads: 1 });
        let wide = component_area(&ComponentKind::Variable {
            width: 32,
            reads: 1,
        });
        assert!(wide > narrow);
        let adder = component_area(&ComponentKind::BinaryFunc {
            op: BinOp::Add,
            width: 32,
        });
        let gate = component_area(&ComponentKind::BinaryFunc {
            op: BinOp::And,
            width: 32,
        });
        assert!(adder > gate);
    }

    #[test]
    fn control_components_are_free_here() {
        assert_eq!(
            component_area(&ComponentKind::Sequence { branches: 3 }),
            0.0
        );
        assert_eq!(component_area(&ComponentKind::Fetch), 0.0);
    }

    #[test]
    fn identity_bridge_is_free() {
        assert_eq!(
            component_area(&ComponentKind::UnaryFunc {
                op: UnOp::Id,
                width: 0
            }),
            0.0
        );
    }
}
