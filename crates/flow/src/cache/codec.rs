//! Binary codec for persisted synthesis artifacts.
//!
//! [`super::disk::DiskCache`] stores one [`SynthArtifact`] per file; this
//! module defines the *payload* encoding — a compact, versioned,
//! deterministic binary form of the cache key and the full artifact
//! (controller covers, state assignment, function specs, mapped netlist,
//! subject graph, and the phase profile). The encoding is:
//!
//! - **self-contained** — no external schema; every variable-length field
//!   carries its length, every enum a one-byte tag;
//! - **deterministic** — encoding the same artifact twice yields identical
//!   bytes (hash maps are serialized in sorted key order, floats as IEEE
//!   bit patterns), so a disk hit can be byte-compared against a fresh
//!   synthesis in the durability tests;
//! - **strict on decode** — any truncation, unknown tag, or length
//!   overrun is a typed [`CodecError`], never a panic or a partial value.
//!   The disk layer treats every decode error as a corrupt entry and
//!   evicts it.
//!
//! Versioning lives in the entry *header* (see `disk.rs`), not here: a
//! payload is only decoded after the header's format version and checksum
//! have been verified.

use super::{CacheKey, SynthArtifact};
use crate::profile::PhaseProfile;
use bmbe_bm::assign::StateAssignment;
use bmbe_bm::synth::{Controller, MinimizeMode};
use bmbe_gates::{
    CellKind, MapObjective, MapStyle, MappedGate, MappedNetlist, Module, SubjectGraph, SubjectNode,
};
use bmbe_logic::hfmin::{FunctionSpec, MinimizeBackend, MinimizeStats, SpecTransition};
use bmbe_logic::{Cover, Cube};
use std::fmt;
use std::time::Duration;

/// A payload decode failure. Each variant names what the reader was
/// looking at when the bytes ran out or stopped making sense — enough to
/// debug a corrupt entry without a hex dump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the field at `offset` was complete.
    Truncated {
        /// Byte offset of the incomplete field.
        offset: usize,
        /// What was being decoded.
        what: &'static str,
    },
    /// An enum tag byte had no defined meaning.
    BadTag {
        /// What was being decoded.
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A length prefix was implausibly large (guards against a corrupt
    /// length causing a giant allocation before the checksum would have
    /// caught it).
    BadLength {
        /// What was being decoded.
        what: &'static str,
        /// The claimed element count.
        len: u64,
    },
    /// Bytes remained after the payload decoded completely.
    TrailingBytes {
        /// Number of undecoded bytes.
        extra: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { offset, what } => {
                write!(f, "truncated while decoding {what} at byte {offset}")
            }
            CodecError::BadTag { what, tag } => write!(f, "bad {what} tag {tag:#04x}"),
            CodecError::BadLength { what, len } => write!(f, "implausible {what} length {len}"),
            CodecError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the payload")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// FNV-1a over a byte slice — the checksum the disk layer stores in the
/// entry header, and the same construction [`CacheKey::digest`] uses.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Element-count ceiling for length-prefixed sequences. Far above any real
/// artifact (the largest benchmark subject graph has a few thousand
/// nodes), far below anything that could exhaust memory on decode.
const MAX_SEQ: u64 = 1 << 28;

/// Append-only byte sink for encoding.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    fn duration(&mut self, v: Duration) {
        self.u64(v.as_nanos() as u64);
    }

    fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Cursor over a byte slice for decoding.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over the whole slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let out = &self.buf[self.pos..end];
                self.pos = end;
                Ok(out)
            }
            None => Err(CodecError::Truncated {
                offset: self.pos,
                what,
            }),
        }
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, CodecError> {
        Ok(self.take(1, what)?[0])
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, CodecError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    fn len(&mut self, what: &'static str) -> Result<usize, CodecError> {
        let v = self.u64(what)?;
        if v > MAX_SEQ {
            return Err(CodecError::BadLength { what, len: v });
        }
        Ok(v as usize)
    }

    fn usize(&mut self, what: &'static str) -> Result<usize, CodecError> {
        self.len(what)
    }

    fn f64(&mut self, what: &'static str) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    fn bool(&mut self, what: &'static str) -> Result<bool, CodecError> {
        Ok(self.u8(what)? != 0)
    }

    fn duration(&mut self, what: &'static str) -> Result<Duration, CodecError> {
        Ok(Duration::from_nanos(self.u64(what)?))
    }

    fn str(&mut self, what: &'static str) -> Result<String, CodecError> {
        let n = self.len(what)?;
        let b = self.take(n, what)?;
        String::from_utf8(b.to_vec()).map_err(|_| CodecError::BadTag { what, tag: 0xff })
    }

    fn finish(self) -> Result<(), CodecError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes {
                extra: self.buf.len() - self.pos,
            })
        }
    }
}

// ---------------------------------------------------------------- enums

fn mode_tag(v: MinimizeMode) -> u8 {
    match v {
        MinimizeMode::Speed => 0,
        MinimizeMode::Area => 1,
    }
}

fn mode_untag(tag: u8) -> Result<MinimizeMode, CodecError> {
    match tag {
        0 => Ok(MinimizeMode::Speed),
        1 => Ok(MinimizeMode::Area),
        tag => Err(CodecError::BadTag {
            what: "MinimizeMode",
            tag,
        }),
    }
}

fn backend_tag(v: MinimizeBackend) -> u8 {
    match v {
        MinimizeBackend::ExactPrimes => 0,
        MinimizeBackend::CubeCofactor => 1,
        MinimizeBackend::Auto => 2,
    }
}

fn backend_untag(tag: u8) -> Result<MinimizeBackend, CodecError> {
    match tag {
        0 => Ok(MinimizeBackend::ExactPrimes),
        1 => Ok(MinimizeBackend::CubeCofactor),
        2 => Ok(MinimizeBackend::Auto),
        tag => Err(CodecError::BadTag {
            what: "MinimizeBackend",
            tag,
        }),
    }
}

fn objective_tag(v: MapObjective) -> u8 {
    match v {
        MapObjective::Area => 0,
        MapObjective::Delay => 1,
    }
}

fn objective_untag(tag: u8) -> Result<MapObjective, CodecError> {
    match tag {
        0 => Ok(MapObjective::Area),
        1 => Ok(MapObjective::Delay),
        tag => Err(CodecError::BadTag {
            what: "MapObjective",
            tag,
        }),
    }
}

fn style_tag(v: MapStyle) -> u8 {
    match v {
        MapStyle::SplitModules => 0,
        MapStyle::WholeController => 1,
    }
}

fn style_untag(tag: u8) -> Result<MapStyle, CodecError> {
    match tag {
        0 => Ok(MapStyle::SplitModules),
        1 => Ok(MapStyle::WholeController),
        tag => Err(CodecError::BadTag {
            what: "MapStyle",
            tag,
        }),
    }
}

fn cell_tag(v: CellKind) -> u8 {
    match v {
        CellKind::Inv => 0,
        CellKind::Buf => 1,
        CellKind::Nand2 => 2,
        CellKind::Nand3 => 3,
        CellKind::Nand4 => 4,
        CellKind::And2 => 5,
        CellKind::Or2 => 6,
        CellKind::Nor2 => 7,
        CellKind::Ao21 => 8,
        CellKind::Ao22 => 9,
        CellKind::Tie0 => 10,
        CellKind::Tie1 => 11,
        CellKind::Celem2 => 12,
    }
}

fn cell_untag(tag: u8) -> Result<CellKind, CodecError> {
    Ok(match tag {
        0 => CellKind::Inv,
        1 => CellKind::Buf,
        2 => CellKind::Nand2,
        3 => CellKind::Nand3,
        4 => CellKind::Nand4,
        5 => CellKind::And2,
        6 => CellKind::Or2,
        7 => CellKind::Nor2,
        8 => CellKind::Ao21,
        9 => CellKind::Ao22,
        10 => CellKind::Tie0,
        11 => CellKind::Tie1,
        12 => CellKind::Celem2,
        tag => {
            return Err(CodecError::BadTag {
                what: "CellKind",
                tag,
            })
        }
    })
}

// ----------------------------------------------------------- composites

fn put_cover(w: &mut Writer, cover: &Cover) {
    w.usize(cover.cubes().len());
    for cube in cover.cubes() {
        w.u8(cube.num_vars() as u8);
        w.u64(cube.care_mask());
        w.u64(cube.value_mask());
    }
}

fn get_cover(r: &mut Reader<'_>) -> Result<Cover, CodecError> {
    let n = r.len("cover")?;
    let mut cubes = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let vars = r.u8("cube vars")? as usize;
        if vars > 64 {
            return Err(CodecError::BadTag {
                what: "cube vars",
                tag: vars as u8,
            });
        }
        let care = r.u64("cube care")?;
        let value = r.u64("cube value")?;
        cubes.push(Cube::from_masks(vars, care, value));
    }
    Ok(Cover::from_cubes(cubes))
}

fn put_function_spec(w: &mut Writer, spec: &FunctionSpec) {
    w.usize(spec.num_vars());
    w.usize(spec.transitions().len());
    for t in spec.transitions() {
        w.u64(t.start);
        w.u64(t.end);
        w.bool(t.from);
        w.bool(t.to);
    }
}

fn get_function_spec(r: &mut Reader<'_>) -> Result<FunctionSpec, CodecError> {
    let vars = r.usize("spec vars")?;
    if vars > 64 {
        return Err(CodecError::BadLength {
            what: "spec vars",
            len: vars as u64,
        });
    }
    let n = r.len("spec transitions")?;
    let mut spec = FunctionSpec::new(vars);
    for _ in 0..n {
        let start = r.u64("transition start")?;
        let end = r.u64("transition end")?;
        let from = r.bool("transition from")?;
        let to = r.bool("transition to")?;
        spec.add_transition(SpecTransition {
            start,
            end,
            from,
            to,
        });
    }
    Ok(spec)
}

fn put_stats(w: &mut Writer, s: &MinimizeStats) {
    w.duration(s.prime_gen);
    w.duration(s.covering);
    w.usize(s.exact_funcs);
    w.usize(s.cofactor_funcs);
    w.usize(s.cofactor_depth);
    w.usize(s.worklist_merges);
}

fn get_stats(r: &mut Reader<'_>) -> Result<MinimizeStats, CodecError> {
    Ok(MinimizeStats {
        prime_gen: r.duration("stats prime_gen")?,
        covering: r.duration("stats covering")?,
        exact_funcs: r.usize("stats exact_funcs")?,
        cofactor_funcs: r.usize("stats cofactor_funcs")?,
        cofactor_depth: r.usize("stats cofactor_depth")?,
        worklist_merges: r.usize("stats worklist_merges")?,
    })
}

fn put_controller(w: &mut Writer, c: &Controller) {
    w.str(&c.name);
    w.usize(c.inputs.len());
    for s in &c.inputs {
        w.str(s);
    }
    w.usize(c.outputs.len());
    for s in &c.outputs {
        w.str(s);
    }
    w.usize(c.num_state_bits);
    w.usize(c.output_covers.len());
    for cover in &c.output_covers {
        put_cover(w, cover);
    }
    w.usize(c.next_state_covers.len());
    for cover in &c.next_state_covers {
        put_cover(w, cover);
    }
    w.usize(c.assignment.num_bits);
    w.usize(c.assignment.codes.len());
    for &code in &c.assignment.codes {
        w.u64(code);
    }
    w.u64(c.initial_inputs);
    w.u64(c.initial_outputs);
    w.u64(c.initial_code);
    w.bool(c.exact);
    put_stats(w, &c.minimize_stats);
    w.usize(c.function_specs.len());
    for spec in &c.function_specs {
        put_function_spec(w, spec);
    }
}

fn get_controller(r: &mut Reader<'_>) -> Result<Controller, CodecError> {
    let name = r.str("controller name")?;
    let inputs = get_strings(r, "controller inputs")?;
    let outputs = get_strings(r, "controller outputs")?;
    let num_state_bits = r.usize("state bits")?;
    let output_covers = get_covers(r, "output covers")?;
    let next_state_covers = get_covers(r, "next-state covers")?;
    let num_bits = r.usize("assignment bits")?;
    let n_codes = r.len("assignment codes")?;
    let mut codes = Vec::with_capacity(n_codes.min(1024));
    for _ in 0..n_codes {
        codes.push(r.u64("assignment code")?);
    }
    let initial_inputs = r.u64("initial inputs")?;
    let initial_outputs = r.u64("initial outputs")?;
    let initial_code = r.u64("initial code")?;
    let exact = r.bool("exact flag")?;
    let minimize_stats = get_stats(r)?;
    let n_specs = r.len("function specs")?;
    let mut function_specs = Vec::with_capacity(n_specs.min(1024));
    for _ in 0..n_specs {
        function_specs.push(get_function_spec(r)?);
    }
    Ok(Controller {
        name,
        inputs,
        outputs,
        num_state_bits,
        output_covers,
        next_state_covers,
        assignment: StateAssignment { num_bits, codes },
        initial_inputs,
        initial_outputs,
        initial_code,
        exact,
        minimize_stats,
        function_specs,
    })
}

fn get_strings(r: &mut Reader<'_>, what: &'static str) -> Result<Vec<String>, CodecError> {
    let n = r.len(what)?;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        out.push(r.str(what)?);
    }
    Ok(out)
}

fn get_covers(r: &mut Reader<'_>, what: &'static str) -> Result<Vec<Cover>, CodecError> {
    let n = r.len(what)?;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        out.push(get_cover(r)?);
    }
    Ok(out)
}

fn put_subject(w: &mut Writer, g: &SubjectGraph) {
    w.usize(g.nodes.len());
    for node in &g.nodes {
        match *node {
            SubjectNode::Input(i) => {
                w.u8(0);
                w.usize(i);
            }
            SubjectNode::Zero => w.u8(1),
            SubjectNode::One => w.u8(2),
            SubjectNode::Inv(a) => {
                w.u8(3);
                w.usize(a);
            }
            SubjectNode::Nand2(a, b) => {
                w.u8(4);
                w.usize(a);
                w.usize(b);
            }
        }
    }
    w.usize(g.modules.len());
    for module in &g.modules {
        w.u8(match module {
            Module::Level1 => 0,
            Module::Level2 => 1,
        });
    }
    w.usize(g.roots.len());
    for (name, node) in &g.roots {
        w.str(name);
        w.usize(*node);
    }
    w.usize(g.num_inputs);
    w.usize(g.fanout.len());
    for &f in &g.fanout {
        w.usize(f);
    }
}

fn get_subject(r: &mut Reader<'_>) -> Result<SubjectGraph, CodecError> {
    let n_nodes = r.len("subject nodes")?;
    let mut nodes = Vec::with_capacity(n_nodes.min(4096));
    for _ in 0..n_nodes {
        let tag = r.u8("subject node tag")?;
        nodes.push(match tag {
            0 => SubjectNode::Input(r.usize("input index")?),
            1 => SubjectNode::Zero,
            2 => SubjectNode::One,
            3 => SubjectNode::Inv(r.usize("inv operand")?),
            4 => SubjectNode::Nand2(r.usize("nand a")?, r.usize("nand b")?),
            tag => {
                return Err(CodecError::BadTag {
                    what: "SubjectNode",
                    tag,
                })
            }
        });
    }
    let n_modules = r.len("subject modules")?;
    let mut modules = Vec::with_capacity(n_modules.min(4096));
    for _ in 0..n_modules {
        modules.push(match r.u8("module tag")? {
            0 => Module::Level1,
            1 => Module::Level2,
            tag => return Err(CodecError::BadTag { what: "Module", tag }),
        });
    }
    let n_roots = r.len("subject roots")?;
    let mut roots = Vec::with_capacity(n_roots.min(1024));
    for _ in 0..n_roots {
        let name = r.str("root name")?;
        let node = r.usize("root node")?;
        roots.push((name, node));
    }
    let num_inputs = r.usize("subject num_inputs")?;
    let n_fanout = r.len("subject fanout")?;
    let mut fanout = Vec::with_capacity(n_fanout.min(4096));
    for _ in 0..n_fanout {
        fanout.push(r.usize("fanout count")?);
    }
    Ok(SubjectGraph {
        nodes,
        modules,
        roots,
        num_inputs,
        fanout,
    })
}

fn put_mapped(w: &mut Writer, m: &MappedNetlist) {
    w.usize(m.gates.len());
    for gate in &m.gates {
        w.u8(cell_tag(gate.cell));
        w.usize(gate.inputs.len());
        for &input in &gate.inputs {
            w.usize(input);
        }
        w.usize(gate.output);
    }
    w.f64(m.area);
    // Deterministic bytes: delays in sorted key order.
    let mut delays: Vec<(&String, &f64)> = m.output_delays.iter().collect();
    delays.sort_by(|a, b| a.0.cmp(b.0));
    w.usize(delays.len());
    for (name, &delay) in delays {
        w.str(name);
        w.f64(delay);
    }
    put_subject(w, &m.subject);
}

fn get_mapped(r: &mut Reader<'_>) -> Result<MappedNetlist, CodecError> {
    let n_gates = r.len("mapped gates")?;
    let mut gates = Vec::with_capacity(n_gates.min(4096));
    for _ in 0..n_gates {
        let cell = cell_untag(r.u8("cell tag")?)?;
        let n_inputs = r.len("gate inputs")?;
        let mut inputs = Vec::with_capacity(n_inputs.min(16));
        for _ in 0..n_inputs {
            inputs.push(r.usize("gate input")?);
        }
        let output = r.usize("gate output")?;
        gates.push(MappedGate {
            cell,
            inputs,
            output,
        });
    }
    let area = r.f64("mapped area")?;
    let n_delays = r.len("output delays")?;
    let mut output_delays = std::collections::HashMap::with_capacity(n_delays.min(1024));
    for _ in 0..n_delays {
        let name = r.str("delay name")?;
        let delay = r.f64("delay value")?;
        output_delays.insert(name, delay);
    }
    let subject = get_subject(r)?;
    Ok(MappedNetlist {
        gates,
        area,
        output_delays,
        subject,
    })
}

fn put_profile(w: &mut Writer, p: &PhaseProfile) {
    w.duration(p.compile);
    w.duration(p.statemin);
    w.duration(p.synth);
    w.duration(p.prime_gen);
    w.duration(p.covering);
    w.duration(p.verify);
    w.duration(p.map);
    w.usize(p.shapes);
}

fn get_profile(r: &mut Reader<'_>) -> Result<PhaseProfile, CodecError> {
    Ok(PhaseProfile {
        compile: r.duration("profile compile")?,
        statemin: r.duration("profile statemin")?,
        synth: r.duration("profile synth")?,
        prime_gen: r.duration("profile prime_gen")?,
        covering: r.duration("profile covering")?,
        verify: r.duration("profile verify")?,
        map: r.duration("profile map")?,
        shapes: r.usize("profile shapes")?,
    })
}

fn put_key(w: &mut Writer, key: &CacheKey) {
    w.str(&key.canonical);
    w.u8(mode_tag(key.minimize_mode));
    w.u8(backend_tag(key.minimize_backend));
    w.u8(objective_tag(key.map_objective));
    w.u8(style_tag(key.map_style));
}

fn get_key(r: &mut Reader<'_>) -> Result<CacheKey, CodecError> {
    Ok(CacheKey {
        canonical: r.str("key canonical")?,
        minimize_mode: mode_untag(r.u8("key mode")?)?,
        minimize_backend: backend_untag(r.u8("key backend")?)?,
        map_objective: objective_untag(r.u8("key objective")?)?,
        map_style: style_untag(r.u8("key style")?)?,
    })
}

/// Encodes a cache entry payload: the full content address followed by the
/// artifact. Deterministic — identical inputs produce identical bytes.
pub fn encode_entry(key: &CacheKey, artifact: &SynthArtifact) -> Vec<u8> {
    let mut w = Writer::new();
    put_key(&mut w, key);
    w.usize(artifact.bm_states);
    put_controller(&mut w, &artifact.controller);
    put_mapped(&mut w, &artifact.mapped);
    put_profile(&mut w, &artifact.profile);
    w.into_bytes()
}

/// Decodes a cache entry payload produced by [`encode_entry`].
///
/// # Errors
///
/// Any structural problem — truncation, a bad tag, trailing bytes — is a
/// [`CodecError`]; the caller treats the entry as corrupt.
pub fn decode_entry(bytes: &[u8]) -> Result<(CacheKey, SynthArtifact), CodecError> {
    let mut r = Reader::new(bytes);
    let key = get_key(&mut r)?;
    let bm_states = r.usize("artifact bm_states")?;
    let controller = get_controller(&mut r)?;
    let mapped = get_mapped(&mut r)?;
    let profile = get_profile(&mut r)?;
    r.finish()?;
    Ok((
        key,
        SynthArtifact {
            bm_states,
            controller,
            mapped,
            profile,
        },
    ))
}

#[cfg(test)]
mod codec_tests {
    use super::*;
    use crate::cache::{synthesize_shape, KeyedProgram};
    use bmbe_core::components::sequencer;
    use bmbe_gates::Library;

    fn sample() -> (CacheKey, SynthArtifact) {
        let program = sequencer("p", &["a".to_string(), "b".to_string(), "c".to_string()]);
        let keyed = KeyedProgram::new(
            &program,
            MinimizeMode::Speed,
            MinimizeBackend::default(),
            MapObjective::Delay,
            MapStyle::SplitModules,
        );
        let artifact = synthesize_shape(
            "shape",
            &keyed.canonical,
            MinimizeMode::Speed,
            MinimizeBackend::default(),
            MapObjective::Delay,
            MapStyle::SplitModules,
            &Library::cmos035(),
            1,
        )
        .expect("shape synthesizes");
        (keyed.key, artifact)
    }

    #[test]
    fn round_trips_bit_identically() {
        let (key, artifact) = sample();
        let bytes = encode_entry(&key, &artifact);
        let (key2, artifact2) = decode_entry(&bytes).expect("decodes");
        assert_eq!(key, key2);
        // Re-encoding the decoded artifact must reproduce the bytes
        // exactly — the codec is deterministic and lossless.
        assert_eq!(bytes, encode_entry(&key2, &artifact2));
        assert_eq!(artifact.bm_states, artifact2.bm_states);
        assert_eq!(
            artifact.controller.output_covers,
            artifact2.controller.output_covers
        );
        assert_eq!(
            artifact.mapped.area.to_bits(),
            artifact2.mapped.area.to_bits()
        );
        assert_eq!(artifact.mapped.output_delays, artifact2.mapped.output_delays);
    }

    #[test]
    fn encoding_is_deterministic() {
        let (key, artifact) = sample();
        assert_eq!(encode_entry(&key, &artifact), encode_entry(&key, &artifact));
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let (key, artifact) = sample();
        let bytes = encode_entry(&key, &artifact);
        // Chop the payload at a spread of prefixes (every length near the
        // start, then a coarse sweep): each must fail, never panic.
        for cut in (0..64.min(bytes.len())).chain((64..bytes.len()).step_by(97)) {
            assert!(
                decode_entry(&bytes[..cut]).is_err(),
                "truncation at {cut} must not decode"
            );
        }
    }

    #[test]
    fn corrupt_tags_are_typed_errors() {
        let (key, artifact) = sample();
        let mut bytes = encode_entry(&key, &artifact);
        // Flip a byte inside the key's option tags (right after the
        // canonical text), producing an undefined enum tag.
        let at = 8 + key.canonical.len();
        bytes[at] = 0x7f;
        match decode_entry(&bytes) {
            Err(CodecError::BadTag { .. }) => {}
            other => panic!("expected BadTag, got {other:?}"),
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let (key, artifact) = sample();
        let mut bytes = encode_entry(&key, &artifact);
        bytes.push(0);
        match decode_entry(&bytes) {
            Err(CodecError::TrailingBytes { extra: 1 }) => {}
            other => panic!("expected TrailingBytes, got {other:?}"),
        }
    }
}
